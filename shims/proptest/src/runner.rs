//! The deterministic case runner and its RNG.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The generator backing all strategies: xoshiro256++ seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is ~n/2^64 — irrelevant at test-generation scale.
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` over `config.cases` deterministic cases. On panic the failing
/// case number and seed are reported before the panic is propagated, since
/// this stand-in does not shrink.
pub fn run<F: FnMut(&mut TestRng)>(name: &str, config: &ProptestConfig, mut body: F) {
    let base = fnv1a(name);
    for case in 0..config.cases {
        let seed = base ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest (std-only stand-in): property `{name}` failed at \
                 case {case}/{} (seed {seed:#018x}); no shrinking available",
                config.cases
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_is_deterministic() {
        let mut seen_a = Vec::new();
        run("det", &ProptestConfig::with_cases(5), |rng| {
            seen_a.push(rng.next_u64());
        });
        let mut seen_b = Vec::new();
        run("det", &ProptestConfig::with_cases(5), |rng| {
            seen_b.push(rng.next_u64());
        });
        assert_eq!(seen_a, seen_b);
        assert_eq!(seen_a.len(), 5);
        // Different cases get different seeds.
        assert_ne!(seen_a[0], seen_a[1]);
    }

    #[test]
    fn below_in_range() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
