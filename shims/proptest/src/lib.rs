//! Minimal stand-in for the `proptest` property-testing crate.
//!
//! The build image has no access to crates.io, so this workspace vendors the
//! slice of proptest's API its tests use: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `boxed`, range and tuple strategies, a
//! regex-subset string strategy, [`collection::vec()`], [`prop_oneof!`], and
//! the [`proptest!`] macro driving a deterministic seeded case runner.
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! case number and seed instead of a minimised input), and string strategies
//! support only the regex subset the tests use (char classes, `\PC`, `*`,
//! `+`, `{m,n}`).

#![forbid(unsafe_code)]

pub mod collection;
pub mod runner;
pub mod strategy;
pub mod string;

pub mod prelude {
    //! The commonly used names, mirroring `proptest::prelude`.
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property; panics (failing the case) with the
/// formatted message otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }` runs
/// `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident ( $($p:pat_param in $s:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let __config: $crate::runner::ProptestConfig = $cfg;
                $crate::runner::run(stringify!($name), &__config, |__rng| {
                    $(let $p = ($s).gen_value(__rng);)+
                    $body
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::runner::ProptestConfig::default()) $($rest)*);
    };
}
