//! Collection strategies (`proptest::collection::vec`).

use crate::runner::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec()`]: an exact `usize` or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span + 1) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_spec() {
        let mut rng = TestRng::seed_from_u64(9);
        let exact = vec(0u32..5, 6);
        assert_eq!(exact.gen_value(&mut rng).len(), 6);
        let ranged = vec(0u32..5, 1..=4);
        for _ in 0..100 {
            let v = ranged.gen_value(&mut rng);
            assert!((1..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn nested_vec_of_tuples() {
        let mut rng = TestRng::seed_from_u64(10);
        let rows = vec(vec((0u32..7, 1u32..=100), 1..=4), 5);
        let v = rows.gen_value(&mut rng);
        assert_eq!(v.len(), 5);
        for row in &v {
            assert!((1..=4).contains(&row.len()));
        }
    }
}
