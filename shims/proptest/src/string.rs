//! String strategies from a regex subset.
//!
//! Real proptest interprets a `&str` strategy as a full regex; this stand-in
//! supports the subset the workspace's tests use:
//!
//! * literal characters and `\`-escaped literals;
//! * character classes `[...]` with ranges (`a-z`), escaped members, and
//!   literal `-` at the edges;
//! * `\PC` — any printable character (ASCII plus a few multibyte samples);
//! * postfix quantifiers `*` (0..=32), `+` (1..=32) and `{m,n}` / `{n}`.

use crate::runner::TestRng;
use crate::strategy::Strategy;

#[derive(Debug, Clone)]
enum Item {
    /// Pick uniformly from this pool.
    Pool(Vec<char>),
    /// Any printable character.
    Printable,
}

#[derive(Debug, Clone)]
struct Piece {
    item: Item,
    min: usize,
    max: usize,
}

/// Printable sample pool for `\PC`: full ASCII printable range plus a few
/// multibyte characters to exercise UTF-8 handling.
const EXTRA_PRINTABLE: &[char] = &['é', 'λ', '→', '✓', '日'];

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
    let mut pool = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated character class");
        match c {
            ']' => {
                if let Some(p) = pending {
                    pool.push(p);
                }
                return pool;
            }
            '\\' => {
                if let Some(p) = pending.replace(chars.next().expect("dangling escape")) {
                    pool.push(p);
                }
            }
            '-' => {
                // Range if we have a pending start and a following end that
                // is not the class terminator.
                match (pending.take(), chars.peek().copied()) {
                    (Some(lo), Some(hi)) if hi != ']' => {
                        let hi = chars.next().expect("range end");
                        assert!(lo <= hi, "reversed class range {lo}-{hi}");
                        pool.extend(lo..=hi);
                    }
                    (start, _) => {
                        if let Some(p) = start {
                            pool.push(p);
                        }
                        pool.push('-');
                    }
                }
            }
            c => {
                if let Some(p) = pending.replace(c) {
                    pool.push(p);
                }
            }
        }
    }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
    match chars.peek() {
        Some('*') => {
            chars.next();
            (0, 32)
        }
        Some('+') => {
            chars.next();
            (1, 32)
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        }
        _ => (1, 1),
    }
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let item = match c {
            '[' => Item::Pool(parse_class(&mut chars)),
            '\\' => match chars.next().expect("dangling escape") {
                'P' => {
                    let category = chars.next().expect("\\P needs a category");
                    assert_eq!(category, 'C', "only \\PC is supported");
                    Item::Printable
                }
                lit => Item::Pool(vec![lit]),
            },
            lit => Item::Pool(vec![lit]),
        };
        let (min, max) = parse_quantifier(&mut chars);
        pieces.push(Piece { item, min, max });
    }
    pieces
}

/// Generates strings matching the regex-subset `pattern`.
#[derive(Debug, Clone)]
pub struct StringStrategy {
    pieces: Vec<Piece>,
}

impl StringStrategy {
    /// Parses `pattern`; panics on syntax outside the supported subset.
    pub fn new(pattern: &str) -> Self {
        StringStrategy {
            pieces: parse_pattern(pattern),
        }
    }
}

impl Strategy for StringStrategy {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..count {
                match &piece.item {
                    Item::Pool(pool) => {
                        out.push(pool[rng.below(pool.len() as u64) as usize]);
                    }
                    Item::Printable => {
                        let ascii_span = 0x7Fu64 - 0x20;
                        let i = rng.below(ascii_span + EXTRA_PRINTABLE.len() as u64);
                        if i < ascii_span {
                            out.push(char::from(0x20 + i as u8));
                        } else {
                            out.push(EXTRA_PRINTABLE[(i - ascii_span) as usize]);
                        }
                    }
                }
            }
        }
        out
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        StringStrategy::new(self).gen_value(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_pattern() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = StringStrategy::new("[a-z][a-z0-9_]{0,6}");
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!((1..=7).contains(&v.chars().count()), "{v:?}");
            let mut cs = v.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_star() {
        let mut rng = TestRng::seed_from_u64(5);
        let s = StringStrategy::new("\\PC*");
        let mut max_len = 0;
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            max_len = max_len.max(v.chars().count());
            assert!(v.chars().all(|c| !c.is_control()), "{v:?}");
        }
        assert!(max_len > 4);
    }

    #[test]
    fn class_with_escapes_and_edge_dash() {
        let mut rng = TestRng::seed_from_u64(6);
        let s = StringStrategy::new("[a-z0-9\\[\\]()<>=!&|+*/:;.'\" -]{0,80}");
        let allowed: Vec<char> = ('a'..='z')
            .chain('0'..='9')
            .chain("[]()<>=!&|+*/:;.'\" -".chars())
            .collect();
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!(v.chars().count() <= 80);
            assert!(v.chars().all(|c| allowed.contains(&c)), "{v:?}");
        }
    }

    #[test]
    fn exact_and_plus_quantifiers() {
        let mut rng = TestRng::seed_from_u64(7);
        let s = StringStrategy::new("x{3}y+");
        for _ in 0..50 {
            let v = s.gen_value(&mut rng);
            assert!(v.starts_with("xxx"));
            assert!(v[3..].chars().all(|c| c == 'y'));
            assert!(!v[3..].is_empty());
        }
    }
}
