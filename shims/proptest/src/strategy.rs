//! The [`Strategy`] trait and its combinators.

use crate::runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy's type. The result is cheaply cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.gen_value(rng)))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Uniform choice among type-erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].gen_value(rng)
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        v.min(self.end.next_down())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
        v.min(self.end.next_down())
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = (-50i64..50).gen_value(&mut rng);
            assert!((-50..50).contains(&v));
            let u = (1u32..=100).gen_value(&mut rng);
            assert!((1..=100).contains(&u));
            let f = (0.5f64..5.0).gen_value(&mut rng);
            assert!((0.5..5.0).contains(&f));
        }
    }

    #[test]
    fn float_ranges_with_zero_or_negative_end() {
        let mut rng = TestRng::seed_from_u64(8);
        for _ in 0..2000 {
            let a = (-1.0f64..0.0).gen_value(&mut rng);
            assert!((-1.0..0.0).contains(&a), "{a}");
            let b = (-2.0f64..-1.0).gen_value(&mut rng);
            assert!((-2.0..-1.0).contains(&b), "{b}");
            let c = (-1.0f32..0.0).gen_value(&mut rng);
            assert!((-1.0..0.0).contains(&c), "{c}");
        }
    }

    #[test]
    fn map_flat_map_boxed_union_compose() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = (1usize..=4)
            .prop_flat_map(|n| (Just(n), 0u32..10))
            .prop_map(|(n, x)| n as u32 + x)
            .boxed();
        let t = s.clone();
        let u = Union::new(vec![s, t, Just(99u32).boxed()]);
        let mut saw_map = false;
        let mut saw_just = false;
        for _ in 0..200 {
            let v = u.gen_value(&mut rng);
            assert!(v <= 14 || v == 99, "{v}");
            saw_map |= v <= 14;
            saw_just |= v == 99;
        }
        assert!(saw_map && saw_just);
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = any::<bool>();
        let draws: Vec<bool> = (0..64).map(|_| s.gen_value(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }
}
