//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The build image has no access to crates.io, so this workspace vendors the
//! slice of criterion's API its benches use: [`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], benchmark groups with
//! [`BenchmarkGroup::sample_size`], and benchers with [`Bencher::iter`] /
//! [`Bencher::iter_batched`].
//!
//! Measurement model: each benchmark is warmed up briefly, then timed over
//! `sample_size` samples whose per-sample iteration count is auto-calibrated
//! so one sample takes a measurable slice of wall-clock time. The harness
//! reports mean and median ns/iter on stdout — enough to compare kernels
//! before and after an optimisation, which is all this workspace needs.
//!
//! Passing `--test` (as `cargo test` does for harness-less targets) runs each
//! closure once and exits, so benches double as smoke tests.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The stand-in runs one routine
/// call per setup call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// Passed to benchmark closures; drives the measurement loop.
pub struct Bencher<'a> {
    samples: usize,
    smoke: bool,
    results: &'a mut Vec<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, reporting ns per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            black_box(routine());
            return;
        }
        // Calibrate iterations per sample to ~5ms, capped for slow routines.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.results.extend(per_iter);
    }

    /// Times `routine` over fresh inputs built by `setup`; only the routine
    /// is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke {
            black_box(routine(setup()));
            return;
        }
        let total = self.samples.max(1);
        for _ in 0..total {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn summarize(name: &str, results: &[f64]) {
    if results.is_empty() {
        return;
    }
    let mut sorted = results.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let median = sorted[sorted.len() / 2];
    println!("{name:<60} mean {mean:>14.1} ns/iter   median {median:>14.1} ns/iter");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut results = Vec::new();
        let mut b = Bencher {
            samples: self.sample_size,
            smoke: self.criterion.smoke,
            results: &mut results,
        };
        f(&mut b);
        if self.criterion.smoke {
            println!("{full}: ok (smoke)");
        } else {
            summarize(&full, &results);
        }
        self
    }

    /// Ends the group (markers only; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes harness-less bench targets with `--test`;
        // `cargo bench` passes `--bench`. In test mode run everything once.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { smoke }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 20,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into();
        let mut results = Vec::new();
        let mut b = Bencher {
            samples: 20,
            smoke: self.smoke,
            results: &mut results,
        };
        f(&mut b);
        if self.smoke {
            println!("{name}: ok (smoke)");
        } else {
            summarize(&name, &results);
        }
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_records() {
        let mut results = Vec::new();
        let mut b = Bencher {
            samples: 3,
            smoke: false,
            results: &mut results,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|&ns| ns >= 0.0));
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_measures_routine_only() {
        let mut results = Vec::new();
        let mut b = Bencher {
            samples: 2,
            smoke: false,
            results: &mut results,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(results.len(), 2);
    }
}
