//! Minimal stand-in for the `rand` crate.
//!
//! The build image has no access to crates.io, so this workspace vendors the
//! small slice of `rand`'s API it actually uses: [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen`] for `f64` / `bool`.
//!
//! The generator is xoshiro256++ (the algorithm behind `SmallRng` on 64-bit
//! targets), seeded through SplitMix64 as recommended by its authors, so
//! statistical quality matches what the real crate would provide. It is not
//! cryptographically secure — neither is `SmallRng`.

#![forbid(unsafe_code)]

/// A value that can be produced uniformly by an RNG.
pub trait Standard {
    /// Draws one value from `rng`.
    fn draw(rng: &mut rngs::SmallRng) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw(rng: &mut rngs::SmallRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw(rng: &mut rngs::SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw(rng: &mut rngs::SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut rngs::SmallRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Subset of `rand::Rng`.
pub trait Rng {
    /// Draws a uniformly distributed value of the inferred type.
    fn gen<T: Standard>(&mut self) -> T;
}

/// Subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, which
            // also guards against the all-zero state xoshiro cannot leave.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::Rng for SmallRng {
        fn gen<T: super::Standard>(&mut self) -> T {
            T::draw(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_uniform_ish() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..1000).map(|_| a.gen::<f64>()).collect();
        let ys: Vec<f64> = (0..1000).map(|_| b.gen::<f64>()).collect();
        assert_eq!(xs, ys);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bools_hit_both_values() {
        let mut r = SmallRng::seed_from_u64(7);
        let draws: Vec<bool> = (0..64).map(|_| r.gen::<bool>()).collect();
        assert!(draws.iter().any(|&b| b));
        assert!(draws.iter().any(|&b| !b));
    }
}
