//! **statguard-mimo** — statistical guarantees of performance for MIMO RTL
//! designs via probabilistic model checking.
//!
//! A from-scratch Rust reproduction of Kumar & Vasudevan, *Statistical
//! Guarantees of Performance for MIMO Designs* (UIUC CSL tech report
//! UILU-ENG-09-2217, December 2009 / DSN 2010): model MIMO RTL components
//! (including channel noise and quantization) as discrete-time Markov
//! chains, express BER-like metrics as pCTL properties, check them
//! exactly with an explicit-state probabilistic model checker, and fight
//! state explosion with certified property-preserving reductions.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`signal`] | `smg-signal` | complex numbers, Gaussian tails, SNR, BPSK, quantizers, Rayleigh fading |
//! | [`rtl`] | `smg-rtl` | saturating counters, shift registers, clocked components |
//! | [`dtmc`] | `smg-dtmc` | DTMC models, state-space exploration, transient/steady-state analysis |
//! | [`mdp`] | `smg-mdp` | MDP models (nondeterminism + probability), min/max value iteration for worst-case guarantees |
//! | [`pctl`] | `smg-pctl` | pCTL syntax, parser, model-checking algorithms (incl. `Pmin`/`Pmax` over MDPs), and the batch-oriented `CheckSession` over either model family |
//! | [`reduce`] | `smg-reduce` | strong lumping, bisimulation certificates, symmetry reduction |
//! | [`viterbi`] | `smg-viterbi` | the Viterbi decoder case study (full, reduced, convergence models) |
//! | [`detector`] | `smg-detector` | the ML MIMO detector case study (full, symmetry-reduced models) |
//! | [`sim`] | `smg-sim` | Monte-Carlo baseline with confidence intervals |
//! | [`core`] | `smg-core` | end-to-end analyzers producing the paper's tables |
//! | [`lang`] | `smg-lang` | PRISM-style guarded-command modeling language and compiler |
//! | [`lint`] | `smg-lint` | interval-domain static analysis of guarded-command models (dead guards, range escapes, certain deadlocks, …) |
//!
//! # Quickstart
//!
//! ```
//! use statguard_mimo::prelude::*;
//!
//! // Analyse a small Viterbi decoder: best / average / worst case error.
//! let report = ViterbiAnalyzer::new(ViterbiConfig::small())
//!     .horizon(50)
//!     .analyze()?;
//! println!("P1 = {}, P2 (BER) = {}, P3 = {}", report.p1, report.p2, report.p3);
//! assert!(report.p2 > 0.0);
//! # Ok::<(), statguard_mimo::core::CoreError>(())
//! ```
//!
//! See `examples/` for complete walkthroughs of every case study and
//! `crates/bench/src/bin/` for the binaries regenerating each table and
//! figure of the paper.

#![forbid(unsafe_code)]

pub use smg_core as core;
pub use smg_detector as detector;
pub use smg_dtmc as dtmc;
pub use smg_lang as lang;
pub use smg_lint as lint;
pub use smg_mdp as mdp;
pub use smg_pctl as pctl;
pub use smg_reduce as reduce;
pub use smg_rtl as rtl;
pub use smg_signal as signal;
pub use smg_sim as sim;
pub use smg_viterbi as viterbi;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use smg_core::{
        analyzer::{DetectorAnalyzer, DetectorReport, ViterbiAnalyzer, ViterbiReport},
        steady_scan, CoreError, PerfMetric, Table,
    };
    pub use smg_detector::{DetectorConfig, DetectorModel, SymmetricDetectorModel};
    pub use smg_dtmc::{explore, explore_memoryless, DtmcModel, ExploreOptions, MemorylessModel};
    pub use smg_lang::{compile_any, parse as lang_parse, CompiledAny};
    pub use smg_lint::{lint as lang_lint, lint_with as lang_lint_with, LintOptions, LintReport};
    pub use smg_mdp::{explore as explore_mdp, MdpModel, Opt, ViOptions};
    pub use smg_pctl::{
        check_mdp_query, check_query, parse_property, AnyModel, CheckOptions, CheckResult,
        CheckSession,
    };
    pub use smg_sim::{
        estimate, sprt, BerEstimator, DetectorSimulation, SprtConfig, ViterbiSimulation,
    };
    pub use smg_viterbi::{ConvergenceModel, FullModel, ReducedModel, ViterbiConfig};

    /// Compiles a checked `dtmc` program to an explicit chain.
    #[deprecated(
        since = "0.1.0",
        note = "use `compile_any` + `CheckSession` (model-family dispatch without the \
                WrongModelType dance), or call `smg_lang::compile` directly"
    )]
    pub fn lang_compile(
        checked: smg_lang::CheckedProgram,
    ) -> Result<smg_lang::CompiledModel, smg_lang::LangError> {
        smg_lang::compile(checked)
    }

    /// Compiles a checked `mdp` program to an explicit MDP.
    #[deprecated(
        since = "0.1.0",
        note = "use `compile_any` + `CheckSession` (model-family dispatch without the \
                WrongModelType dance), or call `smg_lang::compile_mdp` directly"
    )]
    pub fn lang_compile_mdp(
        checked: smg_lang::CheckedProgram,
    ) -> Result<smg_lang::CompiledMdp, smg_lang::LangError> {
        smg_lang::compile_mdp(checked)
    }
}
