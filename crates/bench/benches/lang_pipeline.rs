//! Criterion benches for the guarded-command front end: how much does
//! authoring a model in the language cost relative to building the same
//! chain natively? (PRISM pays this parse/compile cost on every run; the
//! paper's Table I times include it as "model construction".)
//!
//! Three stages are measured separately — parse, semantic check + compile,
//! and property checking on the resulting chain — plus the native
//! construction of the identical chain as the baseline, and the
//! reachability-reward solver added on top of the paper's property set.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use smg_dtmc::{explore, ExploreOptions};
use smg_lang as lang;
use smg_pctl::{check_query, parse_property};
use smg_viterbi::{ReducedModel, ViterbiConfig};

/// A mid-sized counter chain in the language, sized by `n`.
fn counter_src(n: usize) -> String {
    let mut s = String::from("dtmc\nmodule m\n");
    s.push_str(&format!("  x : [0..{n}] init 0;\n"));
    s.push_str(&format!(
        "  [] x<{n} -> 0.25:(x'=0) + 0.75:(x'=x+1);\n  [] x={n} -> (x'=0);\n"
    ));
    s.push_str("endmodule\nlabel \"top\" = x=");
    s.push_str(&n.to_string());
    s.push_str(";\nrewards x=");
    s.push_str(&n.to_string());
    s.push_str(" : 1; endrewards\n");
    s
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("lang_pipeline");
    g.sample_size(20);

    // Stage costs on a 1000-state counter.
    let src = counter_src(1000);
    g.bench_function("parse_1k_state_program", |b| {
        b.iter(|| lang::parse(&src).unwrap().modules.len())
    });
    let program = lang::parse(&src).unwrap();
    g.bench_function("check_and_compile_1k", |b| {
        b.iter_batched(
            || program.clone(),
            |p| {
                lang::compile(lang::check(p).unwrap())
                    .unwrap()
                    .dtmc
                    .n_states()
            },
            BatchSize::SmallInput,
        )
    });

    // Native-vs-language construction of the same Viterbi chain: explore
    // the native model, render it, and compare compile time against the
    // native exploration.
    let cfg = ViterbiConfig::small();
    let native = ReducedModel::new(cfg).unwrap();
    let explored = explore(&native, &ExploreOptions::default()).unwrap();
    let text = lang::program_text(&explored.dtmc);
    g.bench_function("viterbi_native_explore", |b| {
        b.iter(|| {
            explore(&native, &ExploreOptions::default())
                .unwrap()
                .dtmc
                .n_states()
        })
    });
    g.bench_function("viterbi_via_language", |b| {
        b.iter(|| {
            lang::compile(lang::check(lang::parse(&text).unwrap()).unwrap())
                .unwrap()
                .dtmc
                .n_states()
        })
    });

    // Property checking on the compiled chain: the paper's three property
    // shapes plus the reachability reward.
    let compiled = lang::compile(lang::check(lang::parse(&text).unwrap()).unwrap()).unwrap();
    for prop in [
        "P=? [ G<=100 !flag ]",
        "R=? [ I=100 ]",
        "S=? [ flag ]",
        "R=? [ F flag ]",
    ] {
        let property = parse_property(prop).unwrap();
        g.bench_function(format!("check {prop}"), |b| {
            b.iter(|| check_query(&compiled.dtmc, &property).unwrap().value())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
