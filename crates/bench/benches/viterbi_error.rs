//! Criterion benches for the Table I workload: building and checking the
//! Viterbi error models, full versus reduced — the paper's headline
//! scalability claim (the reduction makes checking tractable).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use smg_core::analyzer::ViterbiAnalyzer;
use smg_dtmc::{explore, transient, ExploreOptions};
use smg_viterbi::{FullModel, ReducedModel, ViterbiConfig};

fn bench_build(c: &mut Criterion) {
    let cfg = ViterbiConfig::small();
    let mut g = c.benchmark_group("viterbi_build");
    g.sample_size(10);
    g.bench_function("full_model_explore", |b| {
        b.iter_batched(
            || FullModel::new(cfg.clone()).unwrap(),
            |m| explore(&m, &ExploreOptions::default()).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("reduced_model_explore", |b| {
        b.iter_batched(
            || ReducedModel::new(cfg.clone()).unwrap(),
            |m| explore(&m, &ExploreOptions::default()).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_check(c: &mut Criterion) {
    let cfg = ViterbiConfig::small();
    let full = explore(
        &FullModel::new(cfg.clone()).unwrap(),
        &ExploreOptions::default(),
    )
    .unwrap()
    .dtmc;
    let reduced = explore(
        &ReducedModel::new(cfg.clone()).unwrap(),
        &ExploreOptions::default(),
    )
    .unwrap()
    .dtmc;
    let mut g = c.benchmark_group("viterbi_p2_t300");
    g.sample_size(10);
    g.bench_function("on_full_model", |b| {
        b.iter(|| transient::instantaneous_reward(&full, 300))
    });
    g.bench_function("on_reduced_model", |b| {
        b.iter(|| transient::instantaneous_reward(&reduced, 300))
    });
    g.finish();

    // The whole Table I pipeline at small scale.
    let mut g = c.benchmark_group("viterbi_table1_pipeline");
    g.sample_size(10);
    g.bench_function("p1_p2_p3_reduced_only", |b| {
        b.iter(|| {
            ViterbiAnalyzer::new(cfg.clone())
                .horizon(100)
                .analyze()
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_check);
criterion_main!(benches);
