//! Criterion benches for the reduction machinery itself — the ablation
//! DESIGN.md calls out: hand abstraction (`F_abs`) versus automatic
//! coarsest lumping versus no reduction at all.

use criterion::{criterion_group, criterion_main, Criterion};
use smg_dtmc::{explore, ExploreOptions};
use smg_reduce::{check_lumping, lump, Partition};
use smg_viterbi::{f_abs, FullModel, ViterbiConfig};

fn bench_lumping(c: &mut Criterion) {
    let cfg = ViterbiConfig::small();
    let l = cfg.traceback_len;
    let full = explore(&FullModel::new(cfg).unwrap(), &ExploreOptions::default()).unwrap();
    let hand = Partition::from_key_fn(full.dtmc.n_states(), |i| f_abs(&full.states[i], l));

    let mut g = c.benchmark_group("reductions");
    g.sample_size(10);
    g.bench_function("coarsest_lumping_auto", |b| {
        b.iter(|| lump::coarsest_lumping(&full.dtmc).block_count())
    });
    g.bench_function("hand_partition_from_f_abs", |b| {
        b.iter(|| {
            Partition::from_key_fn(full.dtmc.n_states(), |i| f_abs(&full.states[i], l))
                .block_count()
        })
    });
    g.bench_function("certify_hand_lumping", |b| {
        b.iter(|| check_lumping(&full.dtmc, &hand).is_ok())
    });
    g.bench_function("quotient_construction", |b| {
        b.iter(|| lump::quotient(&full.dtmc, &hand).unwrap().n_states())
    });
    g.finish();
}

criterion_group!(benches, bench_lumping);
criterion_main!(benches);
