//! Criterion benches for the Tables III–V workloads: transient reward
//! sweeps and steady-state detection, plus the Figure 2 L-sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use smg_dtmc::{explore, transient, ExploreOptions};
use smg_viterbi::{ConvergenceModel, ReducedModel, ViterbiConfig};

fn bench_reward_series(c: &mut Criterion) {
    let dtmc = explore(
        &ReducedModel::new(ViterbiConfig::small()).unwrap(),
        &ExploreOptions::default(),
    )
    .unwrap()
    .dtmc;
    let mut g = c.benchmark_group("table3_reward_sweep");
    g.sample_size(10);
    for t in [100usize, 300, 1000] {
        g.bench_function(format!("reward_series_t{t}"), |b| {
            b.iter(|| transient::instantaneous_reward_series(&dtmc, t).len())
        });
    }
    g.bench_function("steady_state_detection", |b| {
        b.iter(|| transient::detect_steady_state(&dtmc, 1e-12, 100_000).converged_at)
    });
    g.finish();
}

fn bench_fig2_sweep(c: &mut Criterion) {
    let base = ViterbiConfig::small().with_snr_db(8.0);
    let mut g = c.benchmark_group("fig2_l_sweep");
    g.sample_size(10);
    g.bench_function("c1_over_l_2_to_8", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for l in 2..=8usize {
                let m = ConvergenceModel::new(base.clone().with_traceback_len(l)).unwrap();
                let e = explore(&m, &ExploreOptions::default()).unwrap();
                acc += transient::instantaneous_reward(&e.dtmc, 200);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_reward_series, bench_fig2_sweep);
criterion_main!(benches);
