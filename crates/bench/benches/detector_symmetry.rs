//! Criterion benches for the Table II workload: enumerating the detector
//! state space with and without symmetry reduction.
//!
//! The canonical (multiset) enumeration should beat the full product by a
//! factor tracking Table II's state-count reduction.

use criterion::{criterion_group, criterion_main, Criterion};
use smg_detector::{DetectorConfig, DetectorModel, SymmetricDetectorModel};
use smg_dtmc::{explore_memoryless, ExploreOptions, MemorylessModel};

fn bench_enumeration(c: &mut Criterion) {
    let cfg = DetectorConfig::small();
    let full = DetectorModel::new(cfg.clone()).unwrap();
    let sym = SymmetricDetectorModel::new(cfg).unwrap();
    let mut g = c.benchmark_group("detector_1x2_enumeration");
    g.sample_size(10);
    g.bench_function("full_model", |b| b.iter(|| full.step_distribution().len()));
    g.bench_function("symmetry_reduced", |b| {
        b.iter(|| sym.step_distribution().len())
    });
    g.finish();
}

fn bench_ber(c: &mut Criterion) {
    let cfg = DetectorConfig::small();
    let full = DetectorModel::new(cfg.clone()).unwrap();
    let sym = SymmetricDetectorModel::new(cfg).unwrap();
    let mut g = c.benchmark_group("detector_1x2_ber");
    g.sample_size(10);
    g.bench_function("full_model", |b| b.iter(|| full.ber()));
    g.bench_function("symmetry_reduced", |b| b.iter(|| sym.ber()));
    g.finish();
}

fn bench_explore(c: &mut Criterion) {
    let cfg = DetectorConfig::small();
    let sym = SymmetricDetectorModel::new(cfg).unwrap();
    let mut g = c.benchmark_group("detector_explore_rank_one");
    g.sample_size(10);
    g.bench_function("explore_memoryless", |b| {
        b.iter(|| {
            explore_memoryless(&sym, &ExploreOptions::default())
                .unwrap()
                .stats
                .states
        })
    });
    g.finish();
}

criterion_group!(benches, bench_enumeration, bench_ber, bench_explore);
criterion_main!(benches);
