//! Shared plumbing for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has a binary in `src/bin/`:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table I — Viterbi error properties P1/P2/P3, M vs M_R |
//! | `table2` | Table II — detector symmetry reduction factors |
//! | `table3` | Table III — Viterbi P2 vs T (steady-state approach) |
//! | `table4` | Table IV — Viterbi C1 vs T |
//! | `table5` | Table V — detector BER (P2) vs T |
//! | `fig2` | Figure 2 — C1 as a function of L |
//! | `sim_compare` | §V text — model checking vs 10⁵/10⁷-step simulation |
//! | `all_tables` | everything above, in order |
//!
//! Binaries honour `SMG_SCALE=small` for quick smoke runs (CI/debug); the
//! default is the paper-scale configuration. Absolute values differ from
//! the paper's (its RTL bit-widths are unpublished — see DESIGN.md §3);
//! the *shapes* are the reproduction target, and EXPERIMENTS.md records
//! both sides.

use smg_detector::DetectorConfig;
use smg_viterbi::ViterbiConfig;

/// Experiment scale, selected by the `SMG_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale models (default; use `--release`).
    Paper,
    /// Reduced models for smoke runs (`SMG_SCALE=small`).
    Small,
}

/// Reads the scale from the environment.
pub fn scale() -> Scale {
    match std::env::var("SMG_SCALE").as_deref() {
        Ok("small") => Scale::Small,
        _ => Scale::Paper,
    }
}

/// The Viterbi error-property configuration at a scale (Table I, III).
pub fn viterbi_config(scale: Scale) -> ViterbiConfig {
    match scale {
        Scale::Paper => ViterbiConfig::paper(),
        Scale::Small => ViterbiConfig::small(),
    }
}

/// The Viterbi convergence configuration at a scale (Table IV, Figure 2).
pub fn convergence_config(scale: Scale) -> ViterbiConfig {
    match scale {
        Scale::Paper => ViterbiConfig::convergence_paper(),
        Scale::Small => ViterbiConfig::small().with_snr_db(8.0),
    }
}

/// The 1x2 detector configuration at a scale (Tables II and V).
pub fn detector_1x2(scale: Scale) -> DetectorConfig {
    match scale {
        Scale::Paper => DetectorConfig::mimo_1x2(),
        Scale::Small => DetectorConfig::small(),
    }
}

/// The 1x4 detector configuration at a scale (Tables II and V).
pub fn detector_1x4(scale: Scale) -> DetectorConfig {
    match scale {
        Scale::Paper => DetectorConfig::mimo_1x4(),
        Scale::Small => {
            let mut c = DetectorConfig::small().with_nr(4).with_snr_db(12.0);
            c.h_levels = 2;
            c.y_levels = 2;
            c
        }
    }
}

/// Simulation step budgets at a scale (§V comparison).
pub fn sim_budgets(scale: Scale) -> (u64, u64) {
    match scale {
        // The paper simulates 1e5 and 1e7 steps.
        Scale::Paper => (100_000, 10_000_000),
        Scale::Small => (10_000, 200_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_valid_at_both_scales() {
        for s in [Scale::Paper, Scale::Small] {
            assert!(viterbi_config(s).validate().is_ok());
            assert!(convergence_config(s).validate().is_ok());
            assert!(detector_1x2(s).validate().is_ok());
            assert!(detector_1x4(s).validate().is_ok());
            let (a, b) = sim_budgets(s);
            assert!(a < b);
        }
    }

    #[test]
    fn scale_reads_env() {
        // Not setting the variable here (process-global); just check the
        // default path is Paper when unset or unrecognized.
        std::env::remove_var("SMG_SCALE");
        assert_eq!(scale(), Scale::Paper);
    }
}
