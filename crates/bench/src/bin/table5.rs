//! Table V — BER (P2) for the MIMO detectors as a function of T.
//!
//! Paper (RI=3): 1x2 at 8 dB ≈ 0.277–0.296; 1x4 at 12 dB ≈ 1.08e-5 at all
//! of T=5, 10, 20. The reproduced shape: the detector chain mixes in one
//! step (RI=3), P2 is flat in T, and the 1x4 system's BER sits orders of
//! magnitude below the 1x2 system's.

use smg_bench::{detector_1x2, detector_1x4, scale};
use smg_core::analyzer::DetectorAnalyzer;
use smg_core::report::fmt_prob;
use smg_core::Table;

fn main() {
    let s = scale();
    println!("Table V: BER for MIMO detectors\n");
    let mut t = Table::new(
        "BER for MIMO detectors (RI=3)",
        &["MIMO", "T=5", "T=10", "T=20", "exact BER"],
    );
    for (name, config) in [("1x2", detector_1x2(s)), ("1x4", detector_1x4(s))] {
        println!("building {config} ...");
        let report = DetectorAnalyzer::new(config)
            .horizons(vec![5, 10, 20])
            .analyze()
            .expect("analysis failed");
        let mut row = vec![name.to_string()];
        for &(_, v) in &report.p2_at {
            row.push(fmt_prob(v));
        }
        row.push(fmt_prob(report.ber));
        t.row(&row);
        assert_eq!(report.full_stats.reachability_iterations, 3, "paper's RI=3");
    }
    println!("\n{t}");
}
