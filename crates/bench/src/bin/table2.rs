//! Table II — symmetry reduction of the MIMO detector.
//!
//! Paper:
//!
//! | MIMO | states (M) | states (M_R) | factor |
//! |---|---|---|---|
//! | 1x2 (8 dB) | 569,480 | 32,088 | 18 |
//! | 1x4 (12 dB) | 524,288 | 1,320 | 400 |
//!
//! The reproduced shape: the factor grows steeply with the number of
//! interchangeable blocks (bounded by `(2·N_R)!` — 24 for 1x2, 40,320 for
//! 1x4 — and realized up to block-value multiplicities).

use smg_bench::{detector_1x2, detector_1x4, scale};
use smg_core::analyzer::DetectorAnalyzer;
use smg_core::Table;

fn main() {
    let s = scale();
    println!("Table II: symmetry reduction of MIMO detector\n");
    let mut t = Table::new(
        "Symmetry reduction of MIMO detector",
        &[
            "MIMO",
            "states (original M)",
            "states (reduced M_R)",
            "reduction factor",
        ],
    );
    for (name, config) in [("1x2", detector_1x2(s)), ("1x4", detector_1x4(s))] {
        println!("building {config} ...");
        let report = DetectorAnalyzer::new(config)
            .horizons(vec![5])
            .analyze()
            .expect("analysis failed");
        let red = report.reduction();
        t.row(&[
            name.into(),
            red.original_states.to_string(),
            red.reduced_states.to_string(),
            format!("{:.0}", red.factor()),
        ]);
    }
    println!("\n{t}");
}
