//! Table III — P2 for the Viterbi decoder as a function of T.
//!
//! Paper (RI=263): T=100 → 0.2373, T=300 → 0.2394, T=600 → 0.2397,
//! T=1000 → 0.2398. The reproduced shape: P2 approaches a steady-state
//! value, with changes shrinking once T exceeds the reachability fixpoint —
//! "once steady state is attained, we consider P2 as the BER of the
//! system".

use smg_bench::{scale, viterbi_config};
use smg_core::{steady_scan, Table};
use smg_dtmc::{explore, ExploreOptions};
use smg_viterbi::ReducedModel;

fn main() {
    let config = viterbi_config(scale());
    println!("Table III: P2 for the Viterbi decoder ({config})\n");

    let model = ReducedModel::new(config).expect("config valid");
    let explored = explore(&model, &ExploreOptions::default()).expect("exploration");
    println!(
        "reduced model: {} states, RI={}",
        explored.stats.states, explored.stats.reachability_iterations
    );

    let horizons = [100usize, 300, 600, 1000];
    let scan = steady_scan(&explored.dtmc, &horizons, 1e-12).expect("scan");

    let mut t = Table::new(
        &format!(
            "P2 for the Viterbi decoder (RI={})",
            explored.stats.reachability_iterations
        ),
        &["T=100", "T=300", "T=600", "T=1000"],
    );
    t.row(
        &horizons
            .iter()
            .map(|&h| format!("{:.4}", scan.value_at(h).expect("sampled")))
            .collect::<Vec<_>>(),
    );
    println!("{t}");
    match scan.converged_at {
        Some(step) => println!("steady state detected at step {step} (tol 1e-12)"),
        None => println!("steady state not yet reached at T=1000"),
    }
    println!("steady-state BER = {:.6}", scan.final_value);
}
