//! Machine-readable DTMC-engine performance report.
//!
//! Writes `BENCH_dtmc.json` (in the current directory, or the path given as
//! the first argument) with:
//!
//! * exploration throughput (states/sec) for a synthetic 2-D lattice model
//!   at small/medium/large scale;
//! * SpMV kernel latency (ns/iter) for the forward and backward products at
//!   n ∈ {1e3, 1e5, 1e6};
//! * Gauss–Seidel sweep timing at the same sizes;
//! * for each kernel, a `seed_shape` reference measurement that reproduces
//!   the seed engine's allocation behaviour (a fresh `Vec` per step, a
//!   `successors()` allocation per row) so the report carries its own
//!   before/after ratio on whatever machine it runs on;
//! * a `pool` section: fork-join dispatch latency of the persistent worker
//!   pool against the scoped-spawn baseline it replaced, plus exploration
//!   throughput at 1, 2, and 4 worker shards (states/sec on the largest
//!   lattice — the scaling is real on multicore machines and ~1.0x on
//!   single-core ones, where the shards still run but share one lane);
//! * an `mdp` section: min/max Bellman-backup latency (ns per
//!   value-iteration step) on a synthetic ~3-actions-per-state MDP at
//!   n ∈ {1e3, 1e5}, swept over dedicated 1/2/4-lane pools (lanes = 1 is
//!   the sequential fallback; multi-lane runs use the dynamically
//!   dispatched chunk kernel and are bit-identical to it);
//! * a `certified` section: end-to-end unbounded-reachability solve time
//!   of certified interval iteration against the plain residual-test value
//!   iteration it replaces, at the SpMV sizes — the cost of a sound error
//!   bound (a dual sweep does roughly twice the work per iteration, plus
//!   the qualitative pre-pass, minus whatever the residual test
//!   under-iterates);
//! * a `topo` section: topological (SCC-ordered) solving against the
//!   global solvers on a layered feed-forward chain
//!   ([`smg_dtmc::synthetic::layered_chain`], depth 100) at the SpMV
//!   sizes — plain value iteration and certified interval iteration each
//!   timed both ways. The chain is all trivial SCCs, so the topological
//!   drivers collapse to one backsubstitution pass where the global
//!   solvers iterate to convergence over the whole matrix;
//! * a `session` section: a four-property family with shared targets
//!   (`F target`, its threshold form, the reachability reward and
//!   `G !target`) checked through one `CheckSession::check_all` against
//!   the naive per-call `check_query` loop, at n ∈ {1e3, 1e5} — the
//!   amortization claim of the batch API (three of the four properties
//!   reuse the one unbounded reachability solve).
//!
//! Future PRs append their own run to compare trajectories; keep the keys
//! stable.

use smg_dtmc::{explore, BitVec, DtmcModel, ExploreOptions, TransitionMatrix};
use std::fmt::Write as _;
use std::time::Instant;

/// A 2-D lattice random walk: simple transitions, state count `w * w`,
/// hash-heavy interning — an exploration stress test.
struct Lattice {
    w: u32,
}

impl DtmcModel for Lattice {
    type State = (u32, u32);
    fn initial_states(&self) -> Vec<((u32, u32), f64)> {
        vec![((0, 0), 1.0)]
    }
    fn transitions(&self, &(x, y): &(u32, u32)) -> Vec<((u32, u32), f64)> {
        let mut succ = Vec::with_capacity(4);
        let w = self.w;
        succ.push(((x.wrapping_add(1) % w, y), 0.25));
        succ.push((((x + w - 1) % w, y), 0.25));
        succ.push(((x, (y + 1) % w), 0.25));
        succ.push(((x, (y + w - 1) % w), 0.25));
        succ
    }
}

/// A synthetic sparse chain with ~4 off-diagonal entries per row.
fn synthetic_chain(n: usize) -> smg_dtmc::Dtmc {
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut builder = smg_dtmc::CsrBuilder::with_capacity(n, n * 4);
    let mut row = Vec::with_capacity(4);
    for _ in 0..n {
        row.clear();
        let k = 2 + (next() % 3) as usize;
        for _ in 0..k {
            row.push(((next() % n as u64) as u32, 0.0));
        }
        let p = 1.0 / k as f64;
        for slot in row.iter_mut() {
            slot.1 = p;
        }
        builder
            .push_row(&mut row)
            .expect("synthetic rows stochastic");
    }
    let matrix = TransitionMatrix::Sparse(builder.finish());
    smg_dtmc::Dtmc::new(
        matrix,
        vec![(0, 1.0)],
        std::collections::BTreeMap::new(),
        vec![0.0; n],
    )
    .expect("valid synthetic chain")
}

/// A synthetic MDP: 2–4 actions per state, ~3 successors per action —
/// power-law-free but action-heavy, the Bellman backup stress shape.
fn synthetic_mdp(n: usize) -> smg_mdp::Mdp {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut builder = smg_mdp::MdpBuilder::with_capacity(n, n * 3, n * 9);
    let mut row = Vec::with_capacity(4);
    for _ in 0..n {
        let actions = 2 + (next() % 3) as usize;
        for _ in 0..actions {
            row.clear();
            let k = 2 + (next() % 3) as usize;
            for _ in 0..k {
                row.push(((next() % n as u64) as u32, 1.0 / k as f64));
            }
            builder.push_action(&mut row).expect("stochastic action");
        }
        builder.finish_state().expect("at least one action");
    }
    smg_mdp::Mdp::new(
        builder.finish(),
        vec![(0, 1.0)],
        std::collections::BTreeMap::new(),
        vec![0.0; n],
    )
    .expect("valid synthetic MDP")
}

fn time_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    // One warm-up, then the best of `reps` (robust to scheduler noise).
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Times two variants of the same kernel with *interleaved* reps, so
/// frequency scaling, cache warm-up, and scheduler noise hit both alike.
/// Back-to-back `time_ns` pairs systematically flattered whichever ran
/// second — visible as phantom sub-1.0x "regressions" on small kernels.
fn time_pair_ns<RA, RB>(
    reps: usize,
    mut a: impl FnMut() -> RA,
    mut b: impl FnMut() -> RB,
) -> (f64, f64) {
    std::hint::black_box(a());
    std::hint::black_box(b());
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(a());
        best_a = best_a.min(start.elapsed().as_nanos() as f64);
        let start = Instant::now();
        std::hint::black_box(b());
        best_b = best_b.min(start.elapsed().as_nanos() as f64);
    }
    (best_a, best_b)
}

/// The seed engine's propagation shape: a fresh output vector every step.
fn seed_shape_forward(dtmc: &smg_dtmc::Dtmc, steps: usize) -> Vec<f64> {
    let mut pi = dtmc.initial_dense();
    for _ in 0..steps {
        pi = dtmc.matrix().forward(&pi);
    }
    pi
}

fn engine_forward(dtmc: &smg_dtmc::Dtmc, steps: usize) -> Vec<f64> {
    let mut pi = dtmc.initial_dense();
    let mut next = vec![0.0; pi.len()];
    for _ in 0..steps {
        dtmc.matrix().forward_into(&pi, &mut next);
        std::mem::swap(&mut pi, &mut next);
    }
    pi
}

/// The seed engine's Gauss–Seidel row shape: one `successors()` allocation
/// per row per sweep.
fn seed_shape_gs_sweeps(dtmc: &smg_dtmc::Dtmc, target: &BitVec, sweeps: usize) -> Vec<f64> {
    let n = dtmc.n_states();
    let mut x: Vec<f64> = (0..n)
        .map(|i| if target.get(i) { 1.0 } else { 0.0 })
        .collect();
    for _ in 0..sweeps {
        for i in 0..n {
            if target.get(i) {
                continue;
            }
            let mut acc = 0.0;
            let mut self_loop = 0.0;
            for (c, p) in dtmc.matrix().successors(i) {
                if c as usize == i {
                    self_loop += p;
                } else {
                    acc += p * x[c as usize];
                }
            }
            x[i] = if self_loop < 1.0 {
                acc / (1.0 - self_loop)
            } else {
                0.0
            };
        }
    }
    x
}

struct Entry {
    name: String,
    n: usize,
    engine_ns: f64,
    seed_shape_ns: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_dtmc.json".to_string());
    let quick = std::env::var("SMG_SCALE").as_deref() == Ok("small");
    let spmv_sizes: &[usize] = if quick {
        &[1_000, 100_000]
    } else {
        &[1_000, 100_000, 1_000_000]
    };

    let mut entries: Vec<Entry> = Vec::new();
    let mut explore_rates: Vec<(usize, f64)> = Vec::new();

    // Exploration throughput (sequential path: one shard).
    for w in if quick {
        vec![100u32]
    } else {
        vec![100u32, 316, 1000]
    } {
        let model = Lattice { w };
        let start = Instant::now();
        let e =
            explore(&model, &ExploreOptions::default().with_threads(1)).expect("lattice explores");
        let secs = start.elapsed().as_secs_f64();
        let states = e.dtmc.n_states();
        explore_rates.push((states, states as f64 / secs));
        eprintln!("explore n={states}: {:.0} states/sec", states as f64 / secs);
    }

    // Pool section: dispatch latency + sharded-exploration scaling.
    // A dedicated 4-lane pool keeps the dispatch numbers comparable across
    // machines whatever SMG_THREADS / the core count happen to be.
    let dispatch_pool = smg_dtmc::pool::with_lanes(4);
    let dispatch_ns = time_ns(2000, || {
        dispatch_pool.run(4, &|t| {
            std::hint::black_box(t);
        })
    });
    let scoped_spawn_ns = time_ns(200, || {
        std::thread::scope(|scope| {
            for t in 1..4 {
                scope.spawn(move || std::hint::black_box(t));
            }
            std::hint::black_box(0)
        })
    });
    eprintln!(
        "pool dispatch {dispatch_ns:.0} ns vs scoped spawn {scoped_spawn_ns:.0} ns \
         ({:.1}x cheaper)",
        scoped_spawn_ns / dispatch_ns.max(1.0)
    );
    let pool_w = if quick { 100u32 } else { 1000 };
    // In quick mode the lattice's BFS levels are small, so lower the
    // parallel threshold to keep the sharded pipeline exercised in CI.
    let pool_min_level = if quick {
        32
    } else {
        smg_dtmc::explore::PAR_MIN_LEVEL
    };
    let mut pool_explore: Vec<(usize, usize, f64)> = Vec::new();
    for threads in [1usize, 2, 4] {
        let model = Lattice { w: pool_w };
        let options = ExploreOptions::default()
            .with_threads(threads)
            .with_par_min_level(pool_min_level);
        let start = Instant::now();
        let e = explore(&model, &options).expect("lattice explores");
        let secs = start.elapsed().as_secs_f64();
        let states = e.dtmc.n_states();
        pool_explore.push((threads, states, states as f64 / secs));
        eprintln!(
            "explore n={states} threads={threads}: {:.0} states/sec",
            states as f64 / secs
        );
    }

    // MDP value iteration: Bellman backups per step at 1/2/4 lanes.
    // Lanes = 1 runs the sequential fallback; multi-lane runs force the
    // dynamically dispatched chunk kernel on a dedicated pool, so the
    // sweep is meaningful whatever SMG_THREADS is set to.
    let mdp_sizes: &[usize] = &[1_000, 100_000];
    let mut mdp_entries: Vec<(usize, usize, f64)> = Vec::new();
    for &n in mdp_sizes {
        let mdp = synthetic_mdp(n);
        let target = BitVec::from_fn(n, |i| i % 97 == 0);
        let all = BitVec::ones(n);
        let steps = if n >= 100_000 { 8 } else { 32 };
        let reps = if n >= 100_000 { 7 } else { 25 };
        for lanes in [1usize, 2, 4] {
            let vio = if lanes == 1 {
                smg_mdp::ViOptions::default().with_par_min_states(usize::MAX)
            } else {
                smg_mdp::ViOptions {
                    pool: Some(smg_dtmc::pool::with_lanes(lanes)),
                    ..smg_mdp::ViOptions::default().with_par_min_states(0)
                }
            };
            let ns = time_ns(reps, || {
                smg_mdp::vi::bounded_until_values(
                    &mdp,
                    &all,
                    &target,
                    steps,
                    smg_mdp::Opt::Max,
                    &vio,
                )
                .expect("bounded VI")
            }) / steps as f64;
            eprintln!("mdp_vi n={n} lanes={lanes}: {ns:.0} ns/iter");
            mdp_entries.push((n, lanes, ns));
        }
    }

    // Certified interval iteration vs the plain residual-test VI it
    // replaces: full unbounded-reachability solves, interleaved.
    // Full solves are orders of magnitude longer than single sweeps, so
    // the size sweep stops at 1e5 and the reps stay small — the overhead
    // ratio is stable well before the big-kernel rep counts.
    let mut certified_entries: Vec<(usize, f64, f64)> = Vec::new();
    for &n in &[1_000usize, 100_000] {
        let dtmc = synthetic_chain(n);
        let target = BitVec::from_fn(n, |i| i % 97 == 0);
        let reps = if n >= 100_000 { 2 } else { 5 };
        let (plain, interval) = time_pair_ns(
            reps,
            || {
                smg_dtmc::transient::unbounded_reach_values(&dtmc, &target, 1e-8, 1_000_000)
                    .expect("plain VI converges")
            },
            || {
                smg_dtmc::solve::interval_reach_values(&dtmc, &target, 1e-8, 10_000_000)
                    .expect("interval iteration converges")
            },
        );
        eprintln!(
            "certified n={n}: plain VI {plain:.0} ns, interval {interval:.0} ns \
             ({:.2}x overhead)",
            interval / plain.max(1.0)
        );
        certified_entries.push((n, plain, interval));
    }

    // Topological vs global solving on the layered chain: the shape the
    // paper's pipeline models take (a DAG of trivial SCCs), where
    // SCC-ordered backsubstitution replaces global convergence outright.
    // Width scales with n at fixed depth 100, so the per-iteration matrix
    // cost grows while the global solvers' iteration count stays pinned
    // by the diameter — the honest comparison for the speedup claim.
    struct TopoEntry {
        n: usize,
        global_vi_ns: f64,
        topo_vi_ns: f64,
        global_certified_ns: f64,
        topo_certified_ns: f64,
    }
    let mut topo_entries: Vec<TopoEntry> = Vec::new();
    for &n in spmv_sizes {
        let depth = 100;
        let width = (n / depth).max(1);
        let dtmc = smg_dtmc::synthetic::layered_chain(depth, width);
        let target = dtmc.label("target").expect("generator labels").clone();
        let reps = if n >= 1_000_000 {
            2
        } else if n >= 100_000 {
            3
        } else {
            5
        };
        let (global_vi, topo_vi) = time_pair_ns(
            reps,
            || {
                smg_dtmc::transient::unbounded_reach_values(&dtmc, &target, 1e-8, 1_000_000)
                    .expect("global VI converges")
            },
            || {
                smg_dtmc::solve::topo_reach_values(&dtmc, &target, 1e-8, 1_000_000)
                    .expect("topological VI converges")
            },
        );
        let (global_cert, topo_cert) = time_pair_ns(
            reps,
            || {
                smg_dtmc::solve::interval_reach_values(&dtmc, &target, 1e-8, 10_000_000)
                    .expect("global interval iteration converges")
            },
            || {
                smg_dtmc::solve::topo_interval_reach_values(&dtmc, &target, 1e-8, 10_000_000)
                    .expect("topological interval iteration converges")
            },
        );
        eprintln!(
            "topo n={}: VI {global_vi:.0} -> {topo_vi:.0} ns ({:.2}x), \
             certified {global_cert:.0} -> {topo_cert:.0} ns ({:.2}x)",
            dtmc.n_states(),
            global_vi / topo_vi.max(1.0),
            global_cert / topo_cert.max(1.0)
        );
        topo_entries.push(TopoEntry {
            n: dtmc.n_states(),
            global_vi_ns: global_vi,
            topo_vi_ns: topo_vi,
            global_certified_ns: global_cert,
            topo_certified_ns: topo_cert,
        });
    }

    // Session amortization: one CheckSession over a shared-subformula
    // property family vs the naive per-call loop. The family is chosen so
    // the unbounded reachability solve of `F target` is the dominant cost
    // and three of the four properties can reuse it.
    let session_props: Vec<smg_pctl::Property> = [
        "P=? [ F target ]",
        "P>=0.5 [ F target ]",
        "R=? [ F target ]",
        "P=? [ G !target ]",
    ]
    .iter()
    .map(|p| smg_pctl::parse_property(p).expect("valid property"))
    .collect();
    let mut session_entries: Vec<(usize, f64, f64)> = Vec::new();
    for &n in &[1_000usize, 100_000] {
        let mut dtmc = synthetic_chain(n);
        dtmc.insert_label("target", BitVec::from_fn(n, |i| i % 97 == 0))
            .expect("fresh label");
        let reps = if n >= 100_000 { 2 } else { 5 };
        let (per_call, batched) = time_pair_ns(
            reps,
            || {
                session_props
                    .iter()
                    .map(|p| smg_pctl::check_query(&dtmc, p).expect("checks").value())
                    .sum::<f64>()
            },
            || {
                // A fresh session per rep keeps the cache cold at the
                // start of every measurement (the model clone is noise
                // next to the solves).
                let session = smg_pctl::CheckSession::new(dtmc.clone());
                session
                    .check_all(&session_props)
                    .expect("checks")
                    .iter()
                    .map(|r| r.value())
                    .sum::<f64>()
            },
        );
        eprintln!(
            "session n={n}: per-call {per_call:.0} ns, check_all {batched:.0} ns \
             ({:.2}x faster batched)",
            per_call / batched.max(1.0)
        );
        session_entries.push((n, per_call, batched));
    }

    // SpMV + Gauss-Seidel kernels.
    for &n in spmv_sizes {
        let dtmc = synthetic_chain(n);
        let steps = if n >= 1_000_000 { 4 } else { 16 };
        let reps = if n >= 1_000_000 {
            3
        } else if n >= 100_000 {
            7
        } else {
            25
        };

        let (fwd, fwd_seed) = time_pair_ns(
            reps,
            || engine_forward(&dtmc, steps),
            || seed_shape_forward(&dtmc, steps),
        );
        entries.push(Entry {
            name: "spmv_forward".into(),
            n,
            engine_ns: fwd / steps as f64,
            seed_shape_ns: fwd_seed / steps as f64,
        });

        let x = vec![1.0; n];
        let mut out = vec![0.0; n];
        let (bwd, bwd_seed) = time_pair_ns(
            reps,
            || dtmc.matrix().backward_into(&x, &mut out),
            || dtmc.matrix().backward(&x).len(),
        );
        entries.push(Entry {
            name: "spmv_backward".into(),
            n,
            engine_ns: bwd,
            seed_shape_ns: bwd_seed,
        });

        let target = BitVec::from_fn(n, |i| i % 97 == 0);
        let sweeps = 4;
        let (gs, gs_seed) = time_pair_ns(
            reps,
            || smg_dtmc::solve::gauss_seidel_reach(&dtmc, &target, 0.0, sweeps).ok(),
            || seed_shape_gs_sweeps(&dtmc, &target, sweeps),
        );
        entries.push(Entry {
            name: "gauss_seidel_sweep".into(),
            n,
            engine_ns: gs / sweeps as f64,
            seed_shape_ns: gs_seed / sweeps as f64,
        });
        for e in entries.iter().rev().take(3) {
            eprintln!(
                "{} n={}: engine {:.0} ns/iter, seed-shape {:.0} ns/iter ({:.2}x)",
                e.name,
                e.n,
                e.engine_ns,
                e.seed_shape_ns,
                e.seed_shape_ns / e.engine_ns
            );
        }
    }

    // Hand-rolled JSON (the workspace is std-only).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"smg-bench-dtmc/1\",");
    let _ = writeln!(json, "  \"threads\": {},", smg_dtmc::par::max_threads());
    let _ = writeln!(
        json,
        "  \"parallel_feature\": {},",
        cfg!(feature = "parallel")
    );
    // Run metadata: enough to reproduce (or distrust) a number months
    // later without the CI log that produced it.
    json.push_str("  \"meta\": {\n");
    let _ = writeln!(json, "    \"threads\": {},", smg_dtmc::par::max_threads());
    let _ = writeln!(
        json,
        "    \"smg_threads_env\": {},",
        match std::env::var("SMG_THREADS") {
            Ok(v) => format!("\"{}\"", v.replace('"', "'")),
            Err(_) => "null".to_string(),
        }
    );
    let _ = writeln!(
        json,
        "    \"smg_scale_env\": {},",
        match std::env::var("SMG_SCALE") {
            Ok(v) => format!("\"{}\"", v.replace('"', "'")),
            Err(_) => "null".to_string(),
        }
    );
    let _ = writeln!(
        json,
        "    \"features\": {{\"parallel\": {}}},",
        cfg!(feature = "parallel")
    );
    let _ = writeln!(
        json,
        "    \"debug_assertions\": {},",
        cfg!(debug_assertions)
    );
    let rustc =
        std::process::Command::new(std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string()))
            .arg("--version")
            .output()
            .ok()
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty());
    let _ = writeln!(
        json,
        "    \"rustc\": {}",
        match rustc {
            Some(v) => format!("\"{}\"", v.replace('"', "'")),
            None => "null".to_string(),
        }
    );
    json.push_str("  },\n");
    json.push_str("  \"explore\": [\n");
    for (i, (states, rate)) in explore_rates.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"states\": {states}, \"states_per_sec\": {rate:.1}}}{}",
            if i + 1 < explore_rates.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"pool\": {\n");
    let _ = writeln!(json, "    \"workers\": {},", smg_dtmc::par::max_threads());
    let _ = writeln!(json, "    \"dispatch_ns\": {dispatch_ns:.1},");
    let _ = writeln!(json, "    \"scoped_spawn_ns\": {scoped_spawn_ns:.1},");
    json.push_str("    \"explore\": [\n");
    for (i, (threads, states, rate)) in pool_explore.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"threads\": {threads}, \"states\": {states}, \
             \"states_per_sec\": {rate:.1}}}{}",
            if i + 1 < pool_explore.len() { "," } else { "" }
        );
    }
    json.push_str("    ]\n  },\n  \"mdp\": [\n");
    for (i, (n, lanes, ns)) in mdp_entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {n}, \"lanes\": {lanes}, \"vi_ns_per_iter\": {ns:.1}}}{}",
            if i + 1 < mdp_entries.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"certified\": [\n");
    for (i, (n, plain, interval)) in certified_entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {n}, \"plain_vi_ns\": {plain:.1}, \"interval_ns\": {interval:.1}, \
             \"overhead\": {:.3}}}{}",
            interval / plain.max(1.0),
            if i + 1 < certified_entries.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ],\n  \"topo\": [\n");
    for (i, e) in topo_entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"global_vi_ns\": {:.1}, \"topo_vi_ns\": {:.1}, \
             \"global_certified_ns\": {:.1}, \"topo_certified_ns\": {:.1}, \
             \"certified_speedup\": {:.3}}}{}",
            e.n,
            e.global_vi_ns,
            e.topo_vi_ns,
            e.global_certified_ns,
            e.topo_certified_ns,
            e.global_certified_ns / e.topo_certified_ns.max(1.0),
            if i + 1 < topo_entries.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"session\": [\n");
    for (i, (n, per_call, batched)) in session_entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {n}, \"props\": 4, \"per_call_ns\": {per_call:.1}, \
             \"check_all_ns\": {batched:.1}, \"speedup\": {:.3}}}{}",
            per_call / batched.max(1.0),
            if i + 1 < session_entries.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ],\n  \"kernels\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"n\": {}, \"ns_per_iter\": {:.1}, \
             \"seed_shape_ns_per_iter\": {:.1}, \"speedup\": {:.3}}}{}",
            e.name,
            e.n,
            e.engine_ns,
            e.seed_shape_ns,
            e.seed_shape_ns / e.engine_ns,
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_dtmc.json");
    eprintln!("wrote {out_path}");
}
