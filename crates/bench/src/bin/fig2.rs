//! Figure 2 — C1 as a function of the traceback length L.
//!
//! Paper: "We verify from Figure 2 that the probability of non-convergence
//! decreases with traceback length and stabilizes past L=5m." (m=1.)
//! The binary prints both the data series and an ASCII plot.

use smg_bench::{convergence_config, scale};
use smg_core::Table;
use smg_dtmc::{explore, transient, ExploreOptions};
use smg_viterbi::ConvergenceModel;

fn main() {
    let base = convergence_config(scale());
    let horizon = 400;
    println!("Figure 2: C1 as a function of L ({base}, T={horizon})\n");

    let ls: Vec<usize> = (2..=12).collect();
    let mut series = Vec::new();
    let mut t = Table::new("C1 as a function of L", &["L", "states", "C1"]);
    for &l in &ls {
        let model =
            ConvergenceModel::new(base.clone().with_traceback_len(l)).expect("config valid");
        let explored = explore(&model, &ExploreOptions::default()).expect("exploration");
        let c1 = transient::instantaneous_reward(&explored.dtmc, horizon);
        t.row(&[
            l.to_string(),
            explored.dtmc.n_states().to_string(),
            format!("{c1:.3e}"),
        ]);
        series.push((l, c1));
    }
    println!("{t}");

    // ASCII plot on a log scale.
    let max_log = series
        .iter()
        .map(|&(_, v)| v.max(1e-300).log10())
        .fold(f64::NEG_INFINITY, f64::max);
    let min_log = series
        .iter()
        .map(|&(_, v)| v.max(1e-300).log10())
        .fold(f64::INFINITY, f64::min);
    let span = (max_log - min_log).max(1e-9);
    println!("log10(C1), normalized:");
    for &(l, v) in &series {
        let frac = (v.max(1e-300).log10() - min_log) / span;
        let width = (frac * 50.0).round() as usize;
        println!("  L={l:>2} |{} {v:.2e}", "#".repeat(width.max(1)));
    }
    println!(
        "\nshape check: C1 is non-increasing in L{}",
        if series.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-15) {
            " — confirmed"
        } else {
            " — VIOLATED"
        }
    );
}
