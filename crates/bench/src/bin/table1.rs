//! Table I — error properties of the Viterbi decoder.
//!
//! Paper (SNR 5 dB, T=300, L=6):
//!
//! | prop | states (M) | states (M_R) | time (s) | result |
//! |---|---|---|---|---|
//! | P1 | 53,558,744 | 8,505,363 | 90.80 | 3e-15 |
//! | P2 | 53,558,744 | 8,505,363 | 184.13 | 0.2394 |
//! | P3 | 107,504,890 | 16,435,490 | 365.68 | ≈ 1 |
//!
//! Absolute state counts and probabilities depend on unpublished RTL
//! bit-widths; the reproduced *shape* is: M_R is several times smaller than
//! M, the P3 model is about twice the P1/P2 model (one saturating counter),
//! P1 is astronomically small at 5 dB, P2 sits near 0.2–0.3, and P3 ≈ 1.

use smg_bench::{scale, viterbi_config};
use smg_core::analyzer::ViterbiAnalyzer;
use smg_core::report::fmt_prob;
use smg_core::Table;

fn main() {
    let config = viterbi_config(scale());
    let horizon = 300;
    println!("Table I: error properties for a Viterbi decoder");
    println!("config: {config}, T={horizon}\n");

    let report = ViterbiAnalyzer::new(config)
        .horizon(horizon)
        .worst_case_threshold(1)
        .include_full_model(true)
        .analyze()
        .expect("analysis failed");

    let full = report.full_stats.as_ref().expect("full model requested");
    let mut t = Table::new(
        "Error properties for a Viterbi decoder",
        &[
            "",
            "states (original M)",
            "states (reduced M_R)",
            "build+check time (s)",
            "result",
        ],
    );
    let time = |b: &smg_dtmc::BuildStats| {
        format!(
            "{:.2}",
            b.build_time.as_secs_f64() + report.check_time.as_secs_f64() / 3.0
        )
    };
    t.row(&[
        "P1".into(),
        full.states.to_string(),
        report.reduced_stats.states.to_string(),
        time(&report.reduced_stats),
        fmt_prob(report.p1),
    ]);
    t.row(&[
        "P2".into(),
        full.states.to_string(),
        report.reduced_stats.states.to_string(),
        time(&report.reduced_stats),
        fmt_prob(report.p2),
    ]);
    let p3_full = report.p3_full_stats.as_ref().expect("full model requested");
    t.row(&[
        "P3".into(),
        p3_full.states.to_string(),
        report.p3_stats.states.to_string(),
        time(&report.p3_stats),
        fmt_prob(report.p3),
    ]);
    println!("{t}");
    println!(
        "reduction factor M/M_R = {:.1}; RI = {}",
        report.reduction().expect("full model requested").factor(),
        report.reduced_stats.reachability_iterations
    );
}
