//! §V simulation comparison — model checking versus Monte-Carlo.
//!
//! Paper: "We simulate 10⁷ time steps to estimate a BER of 1.07×10⁻⁵ for
//! the 1x4 MIMO system in Table V. We observe zero bit errors in 10⁵ time
//! steps. This clearly illustrates the efficiency of our approach as
//! compared to simulation-based techniques, particularly for very low BER
//! requirements."

use smg_bench::{detector_1x2, detector_1x4, scale, sim_budgets, viterbi_config};
use smg_core::report::fmt_prob;
use smg_core::Table;
use smg_detector::DetectorModel;
use smg_dtmc::{explore, transient, ExploreOptions};
use smg_pctl::{check_query, parse_property, Property};
use smg_sim::{estimate, sprt, AgreementReport, DetectorSimulation, SprtConfig, ViterbiSimulation};
use smg_viterbi::ReducedModel;

fn main() {
    let s = scale();
    let (short_budget, long_budget) = sim_budgets(s);
    println!("§V comparison: model checking vs simulation\n");

    let mut t = Table::new(
        "Model-checked value vs Monte-Carlo estimate",
        &[
            "system",
            "model value",
            "sim steps",
            "errors seen",
            "estimate",
            "95% CI",
            "verdict",
        ],
    );

    // Viterbi BER.
    {
        let config = viterbi_config(s);
        let model = ReducedModel::new(config.clone()).expect("config valid");
        let explored = explore(&model, &ExploreOptions::default()).expect("exploration");
        let ber = transient::instantaneous_reward(&explored.dtmc, 1000);
        let mut sim = ViterbiSimulation::new(config, 7).expect("config valid");
        let est = sim.run(short_budget);
        let rep = AgreementReport::from_estimator(ber, &est, 0.95);
        t.row(&row("viterbi", &rep));
    }

    // Detectors: short budget (where 1x4 typically sees *zero* errors) and
    // long budget (where the estimate finally brackets the exact value).
    for (name, config) in [("1x2", detector_1x2(s)), ("1x4", detector_1x4(s))] {
        let exact = DetectorModel::new(config.clone())
            .expect("config valid")
            .ber();
        let mut sim = DetectorSimulation::new(config.clone(), 11).expect("config valid");
        let est_short = sim.run(short_budget);
        t.row(&row(
            &format!("{name} (short)"),
            &AgreementReport::from_estimator(exact, &est_short, 0.95),
        ));
        let est_long = sim.run(long_budget - short_budget);
        t.row(&row(
            &format!("{name} (long)"),
            &AgreementReport::from_estimator(exact, &est_long, 0.95),
        ));
    }
    println!("{t}");
    println!(
        "note: a zero-error short run says almost nothing about a low-BER system —\n\
         exactly the paper's argument for exhaustive model checking.\n"
    );

    // Statistical model checking on the Viterbi best-case property: the
    // third method, between simulation and exact checking.
    {
        let config = viterbi_config(s);
        let explored = explore(
            &ReducedModel::new(config).expect("config valid"),
            &ExploreOptions::default(),
        )
        .expect("exploration");
        let prop = "P=? [ G<=100 !flag ]";
        let parsed = parse_property(prop).expect("valid property");
        let exact = check_query(&explored.dtmc, &parsed)
            .expect("checkable")
            .value();
        let Property::ProbQuery(path) = parsed else {
            unreachable!()
        };
        let mut t = Table::new(
            &format!(
                "Statistical model checking of P1 = {prop} (exact = {})",
                fmt_prob(exact)
            ),
            &["method", "question", "answer", "sampled paths"],
        );
        let est = estimate(&explored.dtmc, &path, 0.01, 0.01, 17).expect("bounded");
        t.row(&[
            "Chernoff estimate".into(),
            "P1 ± 0.01 @ 99%".into(),
            fmt_prob(est.estimate),
            est.samples.to_string(),
        ]);
        for theta in [0.2, 0.8] {
            let out = sprt(
                &explored.dtmc,
                &path,
                SprtConfig {
                    theta,
                    delta: 0.02,
                    alpha: 0.01,
                    beta: 0.01,
                    max_samples: 5_000_000,
                },
                17,
            )
            .expect("bounded");
            t.row(&[
                "SPRT".into(),
                format!("P1 >= {theta}?"),
                format!("{:?}", out.decision),
                out.samples.to_string(),
            ]);
        }
        println!("{t}");
    }
}

fn row(name: &str, r: &AgreementReport) -> Vec<String> {
    vec![
        name.to_string(),
        fmt_prob(r.model_value),
        r.trials.to_string(),
        r.errors.to_string(),
        fmt_prob(r.estimate),
        format!("[{}, {}]", fmt_prob(r.ci.0), fmt_prob(r.ci.1)),
        if r.agrees() { "agree" } else { "disagree" }.to_string(),
    ]
}
