//! Extension experiment (beyond the paper's tables): the §IV-B 2x2 MIMO
//! system with BPSK signals.
//!
//! The paper derives its detector equations (14)–(15) for the 2x2 case but
//! evaluates only 1x2 and 1x4 detectors in Tables II and V. This binary
//! completes the picture: symmetry reduction and steady-state BER for the
//! 2x2 detector, in the same format as Tables II and V, plus a
//! spatial-diversity comparison across all three geometries — the reason
//! MIMO systems exist (§I: "MIMO systems are designed to meet these
//! \[BER\] requirements").
//!
//! Run with: `cargo run --release -p smg-bench --bin ext_2x2`

use smg_bench::{detector_1x2, detector_1x4, scale, Scale};
use smg_core::analyzer::DetectorAnalyzer;
use smg_core::{report::fmt_prob, Table};
use smg_detector::DetectorConfig;

fn detector_2x2(scale: Scale) -> DetectorConfig {
    match scale {
        Scale::Paper => DetectorConfig::mimo_2x2(),
        Scale::Small => {
            let mut c = DetectorConfig::mimo_2x2();
            c.h_levels = 2;
            c.y_levels = 3;
            c
        }
    }
}

fn main() {
    let s = scale();
    println!("Extension: the paper's §IV-B 2x2 detector, evaluated\n");

    let mut reduction = Table::new(
        "Symmetry reduction (Table II format, + 2x2)",
        &[
            "MIMO",
            "states (original M)",
            "states (reduced M_R)",
            "reduction factor",
        ],
    );
    let mut ber = Table::new(
        "Steady-state BER (Table V format, + 2x2)",
        &["MIMO", "SNR (dB)", "BER (P2)", "RI"],
    );

    for (name, config) in [
        ("1x2", detector_1x2(s)),
        ("2x2", detector_2x2(s)),
        ("1x4", detector_1x4(s)),
    ] {
        println!("building {config} ...");
        let report = DetectorAnalyzer::new(config.clone())
            .horizons(vec![5, 10, 20])
            .analyze()
            .expect("analysis failed");
        let red = report.reduction();
        reduction.row(&[
            name.into(),
            red.original_states.to_string(),
            red.reduced_states.to_string(),
            format!("{:.0}", red.factor()),
        ]);
        let last = report.p2_at.last().expect("horizons were provided");
        ber.row(&[
            name.into(),
            format!("{:.0}", config.snr_db),
            fmt_prob(last.1),
            report.reduced_stats.reachability_iterations.to_string(),
        ]);
    }
    println!("\n{reduction}");
    println!("{ber}");
    println!(
        "Reading: with two transmit antennas sharing the channel, the 2x2\n\
         detector sits between 1x2 and 1x4 in error performance at its SNR\n\
         (inter-stream interference costs diversity gain), while its 2·N_R=4\n\
         symmetric blocks give a Table-II-style reduction factor between the\n\
         1x2 and 1x4 factors."
    );
}
