//! Design-space ablation: how the quantizer resolution and path-metric
//! register width trade state count against fidelity.
//!
//! DESIGN.md calls these the two knobs that bound the Viterbi DTMC; the
//! paper leaves them implicit (its RTL bit-widths are unpublished). The
//! sweep shows (a) BER estimates converging as the quantizer refines —
//! quantization *is* a noise source, per the paper's introduction — and
//! (b) state count scaling roughly linearly in the path-metric cap while
//! the BER stays flat once the cap stops truncating real metric
//! differences.

use smg_core::Table;
use smg_dtmc::{explore, transient, ExploreOptions};
use smg_viterbi::{ReducedModel, ViterbiConfig};

fn ber_and_states(config: ViterbiConfig) -> (f64, usize) {
    let model = ReducedModel::new(config).expect("config valid");
    let e = explore(&model, &ExploreOptions::default()).expect("exploration");
    (
        transient::instantaneous_reward(&e.dtmc, 500),
        e.dtmc.n_states(),
    )
}

fn main() {
    println!("Ablation: quantizer resolution and path-metric width (Viterbi, 5 dB)\n");

    let mut t = Table::new(
        "Quantizer levels vs BER and state count (pm_cap=16, scale=2)",
        &["levels", "states", "BER (P2 @ T=500)"],
    );
    for levels in [2usize, 4, 6, 8, 12, 16] {
        let mut cfg = ViterbiConfig::paper();
        cfg.quant_levels = levels;
        let (ber, states) = ber_and_states(cfg);
        t.row(&[levels.to_string(), states.to_string(), format!("{ber:.5}")]);
    }
    println!("{t}");

    let mut t = Table::new(
        "Path-metric cap vs BER and state count (8 levels, scale=2)",
        &["pm_cap", "states", "BER (P2 @ T=500)"],
    );
    for cap in [4u32, 8, 12, 16, 24, 32] {
        let mut cfg = ViterbiConfig::paper();
        cfg.pm_cap = cap;
        let (ber, states) = ber_and_states(cfg);
        t.row(&[cap.to_string(), states.to_string(), format!("{ber:.5}")]);
    }
    println!("{t}");

    let mut t = Table::new(
        "Metric scale vs BER and state count (8 levels, pm_cap=16)",
        &["scale", "states", "BER (P2 @ T=500)"],
    );
    for scale in [1.0f64, 2.0, 3.0, 4.0] {
        let mut cfg = ViterbiConfig::paper();
        cfg.metric_scale = scale;
        let (ber, states) = ber_and_states(cfg);
        t.row(&[scale.to_string(), states.to_string(), format!("{ber:.5}")]);
    }
    println!("{t}");
    println!(
        "reading: finer quantizers and wider registers grow the chain; the BER\n\
         stabilizes once both stop being the dominant noise source — the point\n\
         where further RTL precision is wasted area, which is exactly the design\n\
         question the paper's methodology is built to answer quickly."
    );
}
