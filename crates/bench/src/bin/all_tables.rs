//! Regenerates every table and figure of the paper in order.
//!
//! `cargo run --release -p smg-bench --bin all_tables`
//! (set `SMG_SCALE=small` for a quick smoke run).

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "fig2",
        "sim_compare",
        "ext_2x2",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin directory");
    for bin in bins {
        println!("\n================ {bin} ================\n");
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nall tables and figures regenerated.");
}
