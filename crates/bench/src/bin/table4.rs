//! Table IV — convergence of the Viterbi decoder (property C1) vs T.
//!
//! Paper (L=8, SNR 8 dB, RI=77, ~61,000 states, checked within 120 s):
//! C1 ≈ 1.034e-3 at T=100, 1.04e-3 at T=400, 1.044e-3 at T=1000.
//! The reproduced shape: a small, nearly constant non-convergence
//! probability once past the reachability fixpoint.

use smg_bench::{convergence_config, scale};
use smg_core::{steady_scan, Table};
use smg_dtmc::{explore, ExploreOptions};
use smg_viterbi::ConvergenceModel;

fn main() {
    let config = convergence_config(scale());
    println!("Table IV: convergence of the Viterbi decoder ({config})\n");

    let start = std::time::Instant::now();
    let model = ConvergenceModel::new(config).expect("config valid");
    let explored = explore(&model, &ExploreOptions::default()).expect("exploration");
    let horizons = [100usize, 400, 1000];
    let scan = steady_scan(&explored.dtmc, &horizons, 1e-15).expect("scan");
    let elapsed = start.elapsed();

    println!(
        "reduced DTMC: {} states (orders of magnitude below the error model), RI={}",
        explored.stats.states, explored.stats.reachability_iterations
    );
    let mut t = Table::new(
        &format!(
            "Convergence of the Viterbi decoder (RI={})",
            explored.stats.reachability_iterations
        ),
        &["T=100", "T=400", "T=1000"],
    );
    t.row(
        &horizons
            .iter()
            .map(|&h| format!("{:.3e}", scan.value_at(h).expect("sampled")))
            .collect::<Vec<_>>(),
    );
    println!("{t}");
    println!(
        "checked C1 within {:.2}s (paper: 120 s)",
        elapsed.as_secs_f64()
    );
}
