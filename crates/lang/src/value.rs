//! Runtime values and the expression evaluator.
//!
//! Values follow PRISM's three-type system: `int`, `double`, `bool`, with
//! implicit `int → double` promotion in mixed arithmetic and comparisons.
//! State variables are always `int` or `bool`; `double` appears only in
//! constants, probabilities and reward values.

use crate::ast::{BinOp, Expr, Func};
use crate::error::LangError;
use std::collections::HashMap;
use std::fmt;

pub mod interval;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Double-precision float.
    Double(f64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Type name for error messages.
    pub fn type_name(self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Double(_) => "double",
            Value::Bool(_) => "bool",
        }
    }

    /// Coerces to a boolean.
    ///
    /// # Errors
    ///
    /// [`LangError::TypeMismatch`] for numeric values.
    pub fn as_bool(self, context: &str) -> Result<bool, LangError> {
        match self {
            Value::Bool(b) => Ok(b),
            other => Err(LangError::TypeMismatch {
                expected: "bool",
                found: other.type_name(),
                context: context.to_string(),
            }),
        }
    }

    /// Coerces to an integer (exact; doubles are rejected so that state
    /// variables cannot silently truncate).
    ///
    /// # Errors
    ///
    /// [`LangError::TypeMismatch`] for `double` and `bool` values.
    pub fn as_int(self, context: &str) -> Result<i64, LangError> {
        match self {
            Value::Int(v) => Ok(v),
            other => Err(LangError::TypeMismatch {
                expected: "int",
                found: other.type_name(),
                context: context.to_string(),
            }),
        }
    }

    /// Coerces to a double (promoting `int`).
    ///
    /// # Errors
    ///
    /// [`LangError::TypeMismatch`] for `bool` values.
    pub fn as_double(self, context: &str) -> Result<f64, LangError> {
        match self {
            Value::Int(v) => Ok(v as f64),
            Value::Double(v) => Ok(v),
            Value::Bool(_) => Err(LangError::TypeMismatch {
                expected: "numeric",
                found: "bool",
                context: context.to_string(),
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A name-resolution environment for [`eval`].
///
/// Lookup order: local bindings (state variables) first, then global
/// constants, then formulas (whose bodies are evaluated on demand in the
/// same environment — formulas may reference variables).
#[derive(Debug, Clone)]
pub struct Env<'a> {
    /// State-variable bindings.
    pub vars: HashMap<&'a str, Value>,
    /// Folded constants.
    pub consts: &'a HashMap<String, Value>,
    /// Formula bodies, expanded at reference sites.
    pub formulas: &'a HashMap<String, Expr>,
}

/// A borrowed empty map, for environments without constants or formulas.
pub fn no_consts() -> &'static HashMap<String, Value> {
    use std::sync::OnceLock;
    static EMPTY: OnceLock<HashMap<String, Value>> = OnceLock::new();
    EMPTY.get_or_init(HashMap::new)
}

/// A borrowed empty formula map.
pub fn no_formulas() -> &'static HashMap<String, Expr> {
    use std::sync::OnceLock;
    static EMPTY: OnceLock<HashMap<String, Expr>> = OnceLock::new();
    EMPTY.get_or_init(HashMap::new)
}

fn numeric_bin(op: BinOp, a: Value, b: Value, context: &str) -> Result<Value, LangError> {
    // Integer arithmetic stays integral except for division, which is real
    // (PRISM semantics: `/` always yields a double).
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        return Ok(match op {
            BinOp::Add => Value::Int(x.wrapping_add(y)),
            BinOp::Sub => Value::Int(x.wrapping_sub(y)),
            BinOp::Mul => Value::Int(x.wrapping_mul(y)),
            BinOp::Div => {
                if y == 0 {
                    return Err(LangError::DivisionByZero {
                        context: context.to_string(),
                    });
                }
                Value::Double(x as f64 / y as f64)
            }
            _ => unreachable!("numeric_bin called with non-arithmetic op"),
        });
    }
    let x = a.as_double(context)?;
    let y = b.as_double(context)?;
    Ok(match op {
        BinOp::Add => Value::Double(x + y),
        BinOp::Sub => Value::Double(x - y),
        BinOp::Mul => Value::Double(x * y),
        BinOp::Div => {
            if y == 0.0 {
                return Err(LangError::DivisionByZero {
                    context: context.to_string(),
                });
            }
            Value::Double(x / y)
        }
        _ => unreachable!("numeric_bin called with non-arithmetic op"),
    })
}

fn compare(op: BinOp, a: Value, b: Value, context: &str) -> Result<Value, LangError> {
    // Equality is defined on booleans too; ordering is numeric only.
    if let (Value::Bool(x), Value::Bool(y)) = (a, b) {
        return match op {
            BinOp::Eq => Ok(Value::Bool(x == y)),
            BinOp::Neq => Ok(Value::Bool(x != y)),
            _ => Err(LangError::TypeMismatch {
                expected: "numeric",
                found: "bool",
                context: context.to_string(),
            }),
        };
    }
    let x = a.as_double(context)?;
    let y = b.as_double(context)?;
    Ok(Value::Bool(match op {
        BinOp::Eq => x == y,
        BinOp::Neq => x != y,
        BinOp::Lt => x < y,
        BinOp::Le => x <= y,
        BinOp::Gt => x > y,
        BinOp::Ge => x >= y,
        _ => unreachable!("compare called with non-relational op"),
    }))
}

fn apply(func: Func, args: &[Value], context: &str) -> Result<Value, LangError> {
    match func {
        Func::Min | Func::Max => {
            let take_max = func == Func::Max;
            // Stay integral if every argument is an int.
            if args.iter().all(|v| matches!(v, Value::Int(_))) {
                let mut best = args[0].as_int(context)?;
                for v in &args[1..] {
                    let v = v.as_int(context)?;
                    best = if take_max { best.max(v) } else { best.min(v) };
                }
                Ok(Value::Int(best))
            } else {
                let mut best = args[0].as_double(context)?;
                for v in &args[1..] {
                    let v = v.as_double(context)?;
                    best = if take_max { best.max(v) } else { best.min(v) };
                }
                Ok(Value::Double(best))
            }
        }
        Func::Floor => Ok(Value::Int(args[0].as_double(context)?.floor() as i64)),
        Func::Ceil => Ok(Value::Int(args[0].as_double(context)?.ceil() as i64)),
        Func::Mod => {
            let a = args[0].as_int(context)?;
            let b = args[1].as_int(context)?;
            if b == 0 {
                return Err(LangError::DivisionByZero {
                    context: format!("mod in {context}"),
                });
            }
            Ok(Value::Int(a.rem_euclid(b)))
        }
        Func::Pow => match (args[0], args[1]) {
            (Value::Int(a), Value::Int(b)) if b >= 0 => {
                let exp = u32::try_from(b).map_err(|_| LangError::BadNumber {
                    text: format!("pow exponent {b}"),
                    pos: crate::error::Pos::start(),
                })?;
                Ok(Value::Int(a.wrapping_pow(exp)))
            }
            _ => {
                let a = args[0].as_double(context)?;
                let b = args[1].as_double(context)?;
                Ok(Value::Double(a.powf(b)))
            }
        },
    }
}

/// Evaluates `expr` in `env`.
///
/// # Errors
///
/// [`LangError::UndefinedName`] for unresolved names,
/// [`LangError::TypeMismatch`] for ill-typed operations,
/// [`LangError::DivisionByZero`] for `/ 0` and `mod(_, 0)`.
pub fn eval(expr: &Expr, env: &Env<'_>) -> Result<Value, LangError> {
    match expr {
        Expr::Int(v) => Ok(Value::Int(*v)),
        Expr::Double(v) => Ok(Value::Double(*v)),
        Expr::Bool(v) => Ok(Value::Bool(*v)),
        Expr::Name(name, pos) => {
            if let Some(v) = env.vars.get(name.as_str()) {
                return Ok(*v);
            }
            if let Some(v) = env.consts.get(name) {
                return Ok(*v);
            }
            if let Some(body) = env.formulas.get(name) {
                return eval(body, env);
            }
            Err(LangError::UndefinedName {
                name: name.clone(),
                pos: *pos,
            })
        }
        Expr::Neg(e) => match eval(e, env)? {
            Value::Int(v) => Ok(Value::Int(-v)),
            Value::Double(v) => Ok(Value::Double(-v)),
            Value::Bool(_) => Err(LangError::TypeMismatch {
                expected: "numeric",
                found: "bool",
                context: "unary minus".to_string(),
            }),
        },
        Expr::Not(e) => Ok(Value::Bool(!eval(e, env)?.as_bool("operand of !")?)),
        Expr::Bin(op, a, b) => match op {
            BinOp::Or => {
                // Short-circuit, as users expect from guards.
                if eval(a, env)?.as_bool("operand of |")? {
                    Ok(Value::Bool(true))
                } else {
                    Ok(Value::Bool(eval(b, env)?.as_bool("operand of |")?))
                }
            }
            BinOp::And => {
                if !eval(a, env)?.as_bool("operand of &")? {
                    Ok(Value::Bool(false))
                } else {
                    Ok(Value::Bool(eval(b, env)?.as_bool("operand of &")?))
                }
            }
            BinOp::Implies => {
                if !eval(a, env)?.as_bool("operand of =>")? {
                    Ok(Value::Bool(true))
                } else {
                    Ok(Value::Bool(eval(b, env)?.as_bool("operand of =>")?))
                }
            }
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let va = eval(a, env)?;
                let vb = eval(b, env)?;
                compare(*op, va, vb, "comparison")
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let va = eval(a, env)?;
                let vb = eval(b, env)?;
                numeric_bin(*op, va, vb, "arithmetic")
            }
        },
        Expr::Ite(c, a, b) => {
            if eval(c, env)?.as_bool("condition of ?:")? {
                eval(a, env)
            } else {
                eval(b, env)
            }
        }
        Expr::Apply(func, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, env)?);
            }
            apply(*func, &vals, func.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Pos;

    fn ev(e: &Expr) -> Value {
        let env = Env {
            vars: HashMap::new(),
            consts: no_consts(),
            formulas: no_formulas(),
        };
        eval(e, &env).unwrap()
    }

    fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    #[test]
    fn integer_arithmetic_stays_integral() {
        assert_eq!(
            ev(&bin(BinOp::Add, Expr::Int(2), Expr::Int(3))),
            Value::Int(5)
        );
        assert_eq!(
            ev(&bin(BinOp::Mul, Expr::Int(2), Expr::Int(3))),
            Value::Int(6)
        );
    }

    #[test]
    fn division_is_always_real() {
        assert_eq!(
            ev(&bin(BinOp::Div, Expr::Int(1), Expr::Int(2))),
            Value::Double(0.5)
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let env = Env {
            vars: HashMap::new(),
            consts: no_consts(),
            formulas: no_formulas(),
        };
        assert!(matches!(
            eval(&bin(BinOp::Div, Expr::Int(1), Expr::Int(0)), &env),
            Err(LangError::DivisionByZero { .. })
        ));
    }

    #[test]
    fn mixed_arithmetic_promotes() {
        assert_eq!(
            ev(&bin(BinOp::Add, Expr::Int(1), Expr::Double(0.5))),
            Value::Double(1.5)
        );
    }

    #[test]
    fn comparisons_and_bool_equality() {
        assert_eq!(
            ev(&bin(BinOp::Le, Expr::Int(2), Expr::Double(2.0))),
            Value::Bool(true)
        );
        assert_eq!(
            ev(&bin(BinOp::Eq, Expr::Bool(true), Expr::Bool(false))),
            Value::Bool(false)
        );
    }

    #[test]
    fn ordering_booleans_is_a_type_error() {
        let env = Env {
            vars: HashMap::new(),
            consts: no_consts(),
            formulas: no_formulas(),
        };
        assert!(matches!(
            eval(&bin(BinOp::Lt, Expr::Bool(true), Expr::Bool(false)), &env),
            Err(LangError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn logical_ops_short_circuit() {
        // `false & (1/0 > 0)` must not evaluate the RHS.
        let rhs = bin(
            BinOp::Gt,
            bin(BinOp::Div, Expr::Int(1), Expr::Int(0)),
            Expr::Int(0),
        );
        assert_eq!(
            ev(&bin(BinOp::And, Expr::Bool(false), rhs.clone())),
            Value::Bool(false)
        );
        assert_eq!(
            ev(&bin(BinOp::Or, Expr::Bool(true), rhs.clone())),
            Value::Bool(true)
        );
        assert_eq!(
            ev(&bin(BinOp::Implies, Expr::Bool(false), rhs)),
            Value::Bool(true)
        );
    }

    #[test]
    fn ite_selects_branch() {
        let e = Expr::Ite(
            Box::new(Expr::Bool(false)),
            Box::new(Expr::Int(1)),
            Box::new(Expr::Int(2)),
        );
        assert_eq!(ev(&e), Value::Int(2));
    }

    #[test]
    fn functions_follow_prism_semantics() {
        assert_eq!(
            ev(&Expr::Apply(
                Func::Min,
                vec![Expr::Int(3), Expr::Int(1), Expr::Int(2)]
            )),
            Value::Int(1)
        );
        assert_eq!(
            ev(&Expr::Apply(
                Func::Max,
                vec![Expr::Int(3), Expr::Double(3.5)]
            )),
            Value::Double(3.5)
        );
        assert_eq!(
            ev(&Expr::Apply(Func::Floor, vec![Expr::Double(-1.5)])),
            Value::Int(-2)
        );
        assert_eq!(
            ev(&Expr::Apply(Func::Ceil, vec![Expr::Double(1.2)])),
            Value::Int(2)
        );
        // Euclidean mod: result is non-negative for positive modulus.
        assert_eq!(
            ev(&Expr::Apply(Func::Mod, vec![Expr::Int(-1), Expr::Int(4)])),
            Value::Int(3)
        );
        assert_eq!(
            ev(&Expr::Apply(Func::Pow, vec![Expr::Int(2), Expr::Int(10)])),
            Value::Int(1024)
        );
        assert_eq!(
            ev(&Expr::Apply(Func::Pow, vec![Expr::Int(2), Expr::Int(-1)])),
            Value::Double(0.5)
        );
    }

    #[test]
    fn names_resolve_vars_then_consts_then_formulas() {
        let mut consts = HashMap::new();
        consts.insert("k".to_string(), Value::Int(10));
        let mut formulas = HashMap::new();
        formulas.insert(
            "twice".to_string(),
            bin(BinOp::Mul, Expr::Int(2), Expr::name("x")),
        );
        let mut vars = HashMap::new();
        vars.insert("x", Value::Int(4));
        let env = Env {
            vars,
            consts: &consts,
            formulas: &formulas,
        };
        assert_eq!(eval(&Expr::name("x"), &env).unwrap(), Value::Int(4));
        assert_eq!(eval(&Expr::name("k"), &env).unwrap(), Value::Int(10));
        // Formula expands in the same environment, seeing `x`.
        assert_eq!(eval(&Expr::name("twice"), &env).unwrap(), Value::Int(8));
        assert!(matches!(
            eval(&Expr::Name("nope".into(), Pos::start()), &env),
            Err(LangError::UndefinedName { .. })
        ));
    }

    #[test]
    fn value_coercions_report_types() {
        assert_eq!(Value::Int(3).as_double("t").unwrap(), 3.0);
        assert!(Value::Double(0.5).as_int("t").is_err());
        assert!(Value::Bool(true).as_double("t").is_err());
        assert_eq!(Value::Bool(true).type_name(), "bool");
        assert_eq!(Value::from(2i64), Value::Int(2));
        assert_eq!(Value::from(0.5f64), Value::Double(0.5));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
