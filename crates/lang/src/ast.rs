//! Abstract syntax for the guarded-command language.
//!
//! A [`Program`] mirrors a PRISM `dtmc` model file: constants, formulas,
//! modules of range-bounded variables and guarded commands, `label`
//! declarations naming atomic propositions, and `rewards` blocks.

use crate::error::Pos;
use std::fmt;

/// Binary operators, in increasing binding strength groups (see
/// [`crate::parser`] for precedence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `|`
    Or,
    /// `&`
    And,
    /// `=>` (material implication)
    Implies,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (always real division, as in PRISM)
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "|",
            BinOp::And => "&",
            BinOp::Implies => "=>",
            BinOp::Eq => "=",
            BinOp::Neq => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// Built-in functions (`min`, `max`, `floor`, `ceil`, `mod`, `pow`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    /// `min(a, b, ...)` — smallest argument.
    Min,
    /// `max(a, b, ...)` — largest argument.
    Max,
    /// `floor(a)` — round towards −∞ (result is `int`).
    Floor,
    /// `ceil(a)` — round towards +∞ (result is `int`).
    Ceil,
    /// `mod(a, b)` — Euclidean remainder (result is `int`, always ≥ 0 for
    /// `b > 0`, matching PRISM).
    Mod,
    /// `pow(a, b)` — exponentiation (`int` if both args are `int` and
    /// `b ≥ 0`, else `double`).
    Pow,
}

impl Func {
    /// Parses a function name.
    pub fn from_name(name: &str) -> Option<Func> {
        Some(match name {
            "min" => Func::Min,
            "max" => Func::Max,
            "floor" => Func::Floor,
            "ceil" => Func::Ceil,
            "mod" => Func::Mod,
            "pow" => Func::Pow,
            _ => return None,
        })
    }

    /// The surface name.
    pub fn name(self) -> &'static str {
        match self {
            Func::Min => "min",
            Func::Max => "max",
            Func::Floor => "floor",
            Func::Ceil => "ceil",
            Func::Mod => "mod",
            Func::Pow => "pow",
        }
    }

    /// Number of arguments accepted: `(min, max)` — `None` max means
    /// variadic.
    pub fn arity(self) -> (usize, Option<usize>) {
        match self {
            Func::Min | Func::Max => (2, None),
            Func::Floor | Func::Ceil => (1, Some(1)),
            Func::Mod | Func::Pow => (2, Some(2)),
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Double(f64),
    /// Boolean literal.
    Bool(bool),
    /// Variable, constant or formula reference.
    Name(String, Pos),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional `cond ? a : b`.
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function application.
    Apply(Func, Vec<Expr>),
}

impl Expr {
    /// Shorthand for a name with a default position (used by tests and by
    /// programmatic model builders).
    pub fn name(s: &str) -> Expr {
        Expr::Name(s.to_string(), Pos::start())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Double(v) => {
                // Keep round-trippability: always show a decimal point.
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Bool(v) => write!(f, "{v}"),
            Expr::Name(s, _) => write!(f, "{s}"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Not(e) => write!(f, "(!{e})"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Ite(c, a, b) => write!(f, "({c} ? {a} : {b})"),
            Expr::Apply(func, args) => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Declared type of a constant or variable.
#[derive(Debug, Clone, PartialEq)]
pub enum DeclType {
    /// `bool`
    Bool,
    /// `int` with an inclusive range `[lo..hi]` (expressions over
    /// constants).
    Range(Expr, Expr),
}

/// A module-local state variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// `bool` or a range.
    pub ty: DeclType,
    /// Initial-value expression (defaults to `lo` / `false`).
    pub init: Option<Expr>,
    /// Source position of the declaration.
    pub pos: Pos,
}

/// One `(x'=e)` assignment inside an update.
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// Target variable.
    pub var: String,
    /// New-value expression (primed semantics: reads are *pre*-state).
    pub value: Expr,
    /// Source position of the target.
    pub pos: Pos,
}

/// One probabilistic branch of a command: `prob : (x'=..) & (y'=..)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Probability expression (defaults to `1` when omitted).
    pub prob: Expr,
    /// Assignments applied atomically. An empty list is PRISM's `true`
    /// (self-loop for this module's variables).
    pub assigns: Vec<Assign>,
}

/// A guarded command `[label] guard -> u1 + u2 + ...;`.
#[derive(Debug, Clone, PartialEq)]
pub struct Command {
    /// Optional synchronization label (parsed and kept for display; the
    /// compiler's synchronous-product semantics steps every module each
    /// tick, so labels have no further effect — see `crate::model`).
    pub action: Option<String>,
    /// Boolean guard.
    pub guard: Expr,
    /// Probabilistic updates.
    pub updates: Vec<Update>,
    /// Source position of the opening `[`.
    pub pos: Pos,
}

/// A module: named variables plus guarded commands.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Variables owned (written) by this module.
    pub vars: Vec<VarDecl>,
    /// Guarded commands.
    pub commands: Vec<Command>,
    /// Source position of the `module` keyword.
    pub pos: Pos,
}

/// A `const` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDecl {
    /// Constant name.
    pub name: String,
    /// Optional annotated type keyword (`int` / `double` / `bool`) —
    /// retained for display; the value's runtime type is what matters.
    pub ty: Option<String>,
    /// Defining expression (may reference earlier constants).
    pub value: Expr,
    /// Source position.
    pub pos: Pos,
}

/// A `formula` declaration — a macro expanded by name at evaluation sites.
#[derive(Debug, Clone, PartialEq)]
pub struct FormulaDecl {
    /// Formula name.
    pub name: String,
    /// Body.
    pub body: Expr,
    /// Source position.
    pub pos: Pos,
}

/// A `label "name" = expr;` declaration — an atomic proposition.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelDecl {
    /// Proposition name (the quoted string).
    pub name: String,
    /// Defining boolean expression.
    pub body: Expr,
    /// Source position.
    pub pos: Pos,
}

/// One `guard : value;` item in a rewards block (state rewards only —
/// the paper's reward models are all state rewards).
#[derive(Debug, Clone, PartialEq)]
pub struct RewardItem {
    /// States the reward applies to.
    pub guard: Expr,
    /// Reward value expression.
    pub value: Expr,
}

/// A `rewards ["name"] ... endrewards` block.
#[derive(Debug, Clone, PartialEq)]
pub struct RewardsDecl {
    /// Optional name; the unnamed block is the model's default reward
    /// structure.
    pub name: Option<String>,
    /// Items, summed per state.
    pub items: Vec<RewardItem>,
    /// Source position.
    pub pos: Pos,
}

/// The declared model type of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelType {
    /// `dtmc` (or `probabilistic`): all choice is resolved
    /// probabilistically — several enabled commands in one module make a
    /// uniform choice (PRISM's DTMC convention).
    #[default]
    Dtmc,
    /// `mdp` (or `nondeterministic`): several enabled commands are a
    /// **nondeterministic** choice — each combination of one enabled
    /// command per module compiles to an MDP action, and properties
    /// quantify over the choices (`Pmin`/`Pmax`).
    Mdp,
}

impl ModelType {
    /// The surface keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            ModelType::Dtmc => "dtmc",
            ModelType::Mdp => "mdp",
        }
    }
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The declared model type (`dtmc` if the header is absent).
    pub model_type: ModelType,
    /// `const` declarations, in source order.
    pub consts: Vec<ConstDecl>,
    /// `formula` declarations.
    pub formulas: Vec<FormulaDecl>,
    /// Modules, in source order (their variables concatenate to form the
    /// state vector).
    pub modules: Vec<Module>,
    /// Atomic propositions.
    pub labels: Vec<LabelDecl>,
    /// Reward structures.
    pub rewards: Vec<RewardsDecl>,
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.model_type.keyword())?;
        for c in &self.consts {
            match &c.ty {
                Some(ty) => writeln!(f, "const {ty} {} = {};", c.name, c.value)?,
                None => writeln!(f, "const {} = {};", c.name, c.value)?,
            }
        }
        for fm in &self.formulas {
            writeln!(f, "formula {} = {};", fm.name, fm.body)?;
        }
        for m in &self.modules {
            writeln!(f, "module {}", m.name)?;
            for v in &m.vars {
                match &v.ty {
                    DeclType::Bool => write!(f, "  {} : bool", v.name)?,
                    DeclType::Range(lo, hi) => write!(f, "  {} : [{lo}..{hi}]", v.name)?,
                }
                match &v.init {
                    Some(e) => writeln!(f, " init {e};")?,
                    None => writeln!(f, ";")?,
                }
            }
            for cmd in &m.commands {
                match &cmd.action {
                    Some(a) => write!(f, "  [{a}] {} -> ", cmd.guard)?,
                    None => write!(f, "  [] {} -> ", cmd.guard)?,
                }
                for (i, u) in cmd.updates.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{} : ", u.prob)?;
                    if u.assigns.is_empty() {
                        write!(f, "true")?;
                    }
                    for (j, a) in u.assigns.iter().enumerate() {
                        if j > 0 {
                            write!(f, " & ")?;
                        }
                        write!(f, "({}'={})", a.var, a.value)?;
                    }
                }
                writeln!(f, ";")?;
            }
            writeln!(f, "endmodule")?;
        }
        for l in &self.labels {
            writeln!(f, "label \"{}\" = {};", l.name, l.body)?;
        }
        for r in &self.rewards {
            match &r.name {
                Some(n) => writeln!(f, "rewards \"{n}\"")?,
                None => writeln!(f, "rewards")?,
            }
            for item in &r.items {
                writeln!(f, "  {} : {};", item.guard, item.value)?;
            }
            writeln!(f, "endrewards")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn func_names_round_trip() {
        for f in [
            Func::Min,
            Func::Max,
            Func::Floor,
            Func::Ceil,
            Func::Mod,
            Func::Pow,
        ] {
            assert_eq!(Func::from_name(f.name()), Some(f));
        }
        assert_eq!(Func::from_name("sin"), None);
    }

    #[test]
    fn expr_display_parenthesizes() {
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::name("x")),
            Box::new(Expr::Bin(
                BinOp::Mul,
                Box::new(Expr::Int(2)),
                Box::new(Expr::name("y")),
            )),
        );
        assert_eq!(e.to_string(), "(x + (2 * y))");
    }

    #[test]
    fn double_display_keeps_decimal_point() {
        assert_eq!(Expr::Double(1.0).to_string(), "1.0");
        assert_eq!(Expr::Double(0.25).to_string(), "0.25");
    }

    #[test]
    fn program_display_is_valid_surface_syntax() {
        let p = Program {
            modules: vec![Module {
                name: "m".into(),
                vars: vec![VarDecl {
                    name: "x".into(),
                    ty: DeclType::Range(Expr::Int(0), Expr::Int(3)),
                    init: Some(Expr::Int(0)),
                    pos: Pos::start(),
                }],
                commands: vec![Command {
                    action: None,
                    guard: Expr::Bool(true),
                    updates: vec![Update {
                        prob: Expr::Double(1.0),
                        assigns: vec![Assign {
                            var: "x".into(),
                            value: Expr::Int(0),
                            pos: Pos::start(),
                        }],
                    }],
                    pos: Pos::start(),
                }],
                pos: Pos::start(),
            }],
            ..Program::default()
        };
        let text = p.to_string();
        assert!(text.contains("module m"));
        assert!(text.contains("x : [0..3] init 0;"));
        assert!(text.contains("[] true -> 1.0 : (x'=0);"));
    }
}
