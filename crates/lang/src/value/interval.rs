//! Sound interval abstract interpretation for [`Expr`].
//!
//! [`eval_abs`] evaluates an expression over a *box* — an abstract value
//! per state variable, typically the declared `[lo..hi]` range — instead
//! of a single valuation, and returns an [`AbsVal`] that over-approximates
//! every outcome the concrete evaluator [`eval`](super::eval) could
//! produce anywhere in the box.
//!
//! # Soundness contract
//!
//! Let `σ` be any concrete valuation drawn from the box described by an
//! [`AbsEnv`]. The abstract evaluator maintains two guarantees:
//!
//! 1. **Over-approximation** — if `eval(e, σ)` returns `Ok(v)`, then `v`
//!    lies in the concretization of `eval_abs(e, env)`.
//! 2. **Error conservatism** — if `eval(e, σ)` can return an error (or
//!    panic) for *some* `σ` in the box, `eval_abs` returns [`AbsVal::Top`].
//!
//! Together these make every *definite* answer trustworthy: when
//! [`AbsVal::truth`] says `Some(false)`, the concrete guard evaluates to
//! `false` — without error — at every valuation in the box. This is the
//! property the `smg-lint` dead-guard and certain-deadlock diagnostics
//! build on; they may only make claims that hold for *all* reachable
//! states, and reachable states are a subset of the box.
//!
//! The abstract operators mirror [`super::eval`] case by case:
//! wrapping integer arithmetic goes to `Top` whenever an endpoint
//! combination overflows (the wrapped value would fall outside the naive
//! interval), division goes to `Top` whenever the divisor interval
//! contains zero (a [`LangError::DivisionByZero`](crate::LangError) is
//! possible), and `&`/`|`/`=>` reproduce the concrete evaluator's
//! short-circuiting — `false & e` is definitely `false` even when `e`
//! alone would be `Top`, because the concrete evaluator never looks at
//! `e`.
//!
//! Interval endpoints are combined through the same `i64 → f64`
//! conversions the concrete evaluator applies. Those conversions and the
//! IEEE-754 `+ - * /` operations are monotone in each argument, so taking
//! the min/max over endpoint combinations is sound without any extra
//! precision guard.

use super::Value;
use crate::ast::{BinOp, Expr, Func};
use std::collections::HashMap;

/// Formula references are expanded at most this deep before the abstract
/// evaluator gives up with [`AbsVal::Top`] (guards against cyclic
/// `formula` definitions, which the concrete evaluator would chase
/// forever).
const MAX_FORMULA_DEPTH: u32 = 64;

/// The abstract counterpart of [`Value`]: a sound over-approximation of
/// every value an expression can take over a box of variable ranges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbsVal {
    /// An inclusive integer interval `[lo, hi]`.
    Int(i64, i64),
    /// An inclusive real interval `[lo, hi]`; endpoints are never NaN but
    /// may be infinite.
    Double(f64, f64),
    /// A boolean as `(can_be_false, can_be_true)`; at least one flag is
    /// always set.
    Bool(bool, bool),
    /// Unknown: any value of any type, or a runtime error.
    Top,
}

impl AbsVal {
    /// The singleton abstraction of a concrete boolean.
    pub fn bool_const(b: bool) -> AbsVal {
        AbsVal::Bool(!b, b)
    }

    /// The abstraction of "any boolean".
    pub fn bool_any() -> AbsVal {
        AbsVal::Bool(true, true)
    }

    /// The exact abstraction of a concrete value.
    pub fn from_value(v: Value) -> AbsVal {
        match v {
            Value::Int(i) => AbsVal::Int(i, i),
            Value::Double(d) if d.is_nan() => AbsVal::Top,
            Value::Double(d) => AbsVal::Double(d, d),
            Value::Bool(b) => AbsVal::bool_const(b),
        }
    }

    /// `Some(true)` / `Some(false)` when the value is a *definite*
    /// boolean — the concrete evaluation cannot error and always yields
    /// that truth value anywhere in the box — and `None` otherwise.
    pub fn truth(self) -> Option<bool> {
        match self {
            AbsVal::Bool(false, true) => Some(true),
            AbsVal::Bool(true, false) => Some(false),
            _ => None,
        }
    }

    /// Whether the abstraction pins a single numeric value, returned as
    /// the `f64` the concrete evaluator's `as_double` coercion would
    /// produce.
    pub fn singleton(self) -> Option<f64> {
        match self {
            AbsVal::Int(l, h) if l == h => Some(l as f64),
            AbsVal::Double(l, h) if l == h => Some(l),
            _ => None,
        }
    }

    /// The interval after the concrete `int → double` promotion: `None`
    /// for booleans and `Top` (where the promotion would error).
    fn as_f64_pair(self) -> Option<(f64, f64)> {
        match self {
            AbsVal::Int(l, h) => Some((l as f64, h as f64)),
            AbsVal::Double(l, h) => Some((l, h)),
            _ => None,
        }
    }

    /// Least upper bound of two abstractions (used to merge `ite`
    /// branches). Mixed types go to `Top`: the concrete result type then
    /// depends on the branch, which downstream coercions must not trust.
    pub fn join(a: AbsVal, b: AbsVal) -> AbsVal {
        match (a, b) {
            (AbsVal::Int(al, ah), AbsVal::Int(bl, bh)) => AbsVal::Int(al.min(bl), ah.max(bh)),
            (AbsVal::Double(al, ah), AbsVal::Double(bl, bh)) => {
                AbsVal::Double(al.min(bl), ah.max(bh))
            }
            (AbsVal::Bool(af, at), AbsVal::Bool(bf, bt)) => AbsVal::Bool(af || bf, at || bt),
            _ => AbsVal::Top,
        }
    }
}

/// A box of abstract variable values plus the (concrete) constant and
/// formula tables — the abstract analogue of [`super::Env`].
pub struct AbsEnv<'a> {
    /// Abstract state-variable bindings.
    pub vars: HashMap<&'a str, AbsVal>,
    /// Folded constants.
    pub consts: &'a HashMap<String, Value>,
    /// Formula bodies, expanded at reference sites.
    pub formulas: &'a HashMap<String, Expr>,
}

/// Abstractly evaluates `expr` over the box described by `env`.
///
/// Never fails: anything the analysis cannot bound — including every
/// case where the concrete evaluator could error — comes back as
/// [`AbsVal::Top`].
pub fn eval_abs(expr: &Expr, env: &AbsEnv<'_>) -> AbsVal {
    eval_rec(expr, env, MAX_FORMULA_DEPTH)
}

fn eval_rec(expr: &Expr, env: &AbsEnv<'_>, depth: u32) -> AbsVal {
    match expr {
        Expr::Int(v) => AbsVal::Int(*v, *v),
        Expr::Double(v) if v.is_nan() => AbsVal::Top,
        Expr::Double(v) => AbsVal::Double(*v, *v),
        Expr::Bool(v) => AbsVal::bool_const(*v),
        // Same resolution order as the concrete evaluator: variables,
        // then constants, then formulas.
        Expr::Name(name, _) => {
            if let Some(v) = env.vars.get(name.as_str()) {
                return *v;
            }
            if let Some(v) = env.consts.get(name) {
                return AbsVal::from_value(*v);
            }
            if let Some(body) = env.formulas.get(name) {
                if depth == 0 {
                    return AbsVal::Top;
                }
                return eval_rec(body, env, depth - 1);
            }
            AbsVal::Top
        }
        Expr::Neg(e) => match eval_rec(e, env, depth) {
            // `-i64::MIN` overflows in the concrete evaluator.
            AbsVal::Int(l, h) if l != i64::MIN => AbsVal::Int(-h, -l),
            AbsVal::Double(l, h) => AbsVal::Double(-h, -l),
            _ => AbsVal::Top,
        },
        Expr::Not(e) => match eval_rec(e, env, depth) {
            AbsVal::Bool(f, t) => AbsVal::Bool(t, f),
            _ => AbsVal::Top,
        },
        Expr::Bin(op, a, b) => match op {
            BinOp::Or | BinOp::And | BinOp::Implies => logic(*op, a, b, env, depth),
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                compare_abs(*op, eval_rec(a, env, depth), eval_rec(b, env, depth))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                numeric_abs(*op, eval_rec(a, env, depth), eval_rec(b, env, depth))
            }
        },
        Expr::Ite(c, t, f) => match eval_rec(c, env, depth) {
            AbsVal::Bool(false, true) => eval_rec(t, env, depth),
            AbsVal::Bool(true, false) => eval_rec(f, env, depth),
            AbsVal::Bool(true, true) => {
                AbsVal::join(eval_rec(t, env, depth), eval_rec(f, env, depth))
            }
            _ => AbsVal::Top,
        },
        Expr::Apply(func, args) => {
            let vals: Vec<AbsVal> = args.iter().map(|a| eval_rec(a, env, depth)).collect();
            apply_abs(*func, &vals)
        }
    }
}

/// `|`, `&` and `=>` with the concrete evaluator's short-circuiting: a
/// definite left operand hides both errors and unknowns on the right.
fn logic(op: BinOp, a: &Expr, b: &Expr, env: &AbsEnv<'_>, depth: u32) -> AbsVal {
    let lhs = eval_rec(a, env, depth);
    let short = match op {
        // `true | _` is true, `false & _` is false, `false => _` is true.
        BinOp::Or => lhs.truth() == Some(true),
        BinOp::And => lhs.truth() == Some(false),
        BinOp::Implies => lhs.truth() == Some(false),
        _ => unreachable!("logic called with non-logical op"),
    };
    if short {
        return AbsVal::bool_const(op != BinOp::And);
    }
    let AbsVal::Bool(af, at) = lhs else {
        return AbsVal::Top;
    };
    // The right operand is evaluated on at least one path, so any error
    // or unknown there taints the result.
    let AbsVal::Bool(bf, bt) = eval_rec(b, env, depth) else {
        return AbsVal::Top;
    };
    match op {
        BinOp::Or => AbsVal::Bool(af && bf, at || bt),
        BinOp::And => AbsVal::Bool(af || bf, at && bt),
        BinOp::Implies => AbsVal::Bool(at && bf, af || bt),
        _ => unreachable!(),
    }
}

fn compare_abs(op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
    // Boolean equality mirrors `compare`: `=`/`!=` are defined, ordering
    // is a type error (hence Top).
    if let (AbsVal::Bool(af, at), AbsVal::Bool(bf, bt)) = (a, b) {
        return match op {
            BinOp::Eq | BinOp::Neq => {
                let flip = op == BinOp::Neq;
                // Outcomes over every pair drawn from the two flag sets.
                let can_eq = (af && bf) || (at && bt);
                let can_ne = (af && bt) || (at && bf);
                let (can_true, can_false) = if flip {
                    (can_ne, can_eq)
                } else {
                    (can_eq, can_ne)
                };
                AbsVal::Bool(can_false, can_true)
            }
            _ => AbsVal::Top,
        };
    }
    let (Some((al, ah)), Some((bl, bh))) = (a.as_f64_pair(), b.as_f64_pair()) else {
        return AbsVal::Top;
    };
    let (can_true, can_false) = match op {
        BinOp::Lt => (al < bh, ah >= bl),
        BinOp::Le => (al <= bh, ah > bl),
        BinOp::Gt => (ah > bl, al <= bh),
        BinOp::Ge => (ah >= bl, al < bh),
        BinOp::Eq => (ah >= bl && bh >= al, !(al == ah && bl == bh && al == bl)),
        BinOp::Neq => (!(al == ah && bl == bh && al == bl), ah >= bl && bh >= al),
        _ => unreachable!("compare_abs called with non-relational op"),
    };
    if !can_true && !can_false {
        // Possible only with empty/inverted intervals, which callers
        // never construct; stay sound anyway.
        return AbsVal::Top;
    }
    AbsVal::Bool(can_false, can_true)
}

fn numeric_abs(op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
    // Integer add/sub/mul stay integral; the concrete evaluator *wraps*
    // on overflow, so any endpoint combination that leaves i64 makes the
    // naive interval unsound — give up instead.
    if let (AbsVal::Int(al, ah), AbsVal::Int(bl, bh)) = (a, b) {
        if op != BinOp::Div {
            let combos = |f: fn(i128, i128) -> i128| -> AbsVal {
                let products = [
                    f(al as i128, bl as i128),
                    f(al as i128, bh as i128),
                    f(ah as i128, bl as i128),
                    f(ah as i128, bh as i128),
                ];
                let lo = products.iter().copied().min().unwrap_or(0);
                let hi = products.iter().copied().max().unwrap_or(0);
                if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
                    AbsVal::Top
                } else {
                    AbsVal::Int(lo as i64, hi as i64)
                }
            };
            return match op {
                BinOp::Add => combos(|x, y| x + y),
                BinOp::Sub => combos(|x, y| x - y),
                BinOp::Mul => combos(|x, y| x * y),
                _ => unreachable!(),
            };
        }
    }
    let (Some((al, ah)), Some((bl, bh))) = (a.as_f64_pair(), b.as_f64_pair()) else {
        return AbsVal::Top;
    };
    if op == BinOp::Div && bl <= 0.0 && bh >= 0.0 {
        // The divisor interval contains zero: DivisionByZero is possible.
        return AbsVal::Top;
    }
    let f = |x: f64, y: f64| -> f64 {
        match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            _ => unreachable!("numeric_abs called with non-arithmetic op"),
        }
    };
    // Each IEEE-754 operation is monotone in each argument (rounding
    // included), so extremes occur at endpoint combinations.
    let combos = [f(al, bl), f(al, bh), f(ah, bl), f(ah, bh)];
    if combos.iter().any(|v| v.is_nan()) {
        return AbsVal::Top;
    }
    let lo = combos.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = combos.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    AbsVal::Double(lo, hi)
}

fn apply_abs(func: Func, args: &[AbsVal]) -> AbsVal {
    match func {
        Func::Min | Func::Max => {
            let take_max = func == Func::Max;
            // Integral iff every argument is integral, like `apply`.
            if args.iter().all(|v| matches!(v, AbsVal::Int(..))) {
                let mut lo = None;
                let mut hi = None;
                for v in args {
                    let AbsVal::Int(l, h) = *v else {
                        unreachable!()
                    };
                    lo = Some(pick(lo, l, take_max));
                    hi = Some(pick(hi, h, take_max));
                }
                match (lo, hi) {
                    (Some(l), Some(h)) => AbsVal::Int(l, h),
                    _ => AbsVal::Top,
                }
            } else {
                let mut lo = None;
                let mut hi = None;
                for v in args {
                    let Some((l, h)) = v.as_f64_pair() else {
                        return AbsVal::Top;
                    };
                    lo = Some(pick_f(lo, l, take_max));
                    hi = Some(pick_f(hi, h, take_max));
                }
                match (lo, hi) {
                    (Some(l), Some(h)) => AbsVal::Double(l, h),
                    _ => AbsVal::Top,
                }
            }
        }
        Func::Floor | Func::Ceil => {
            // `as_double` then floor/ceil then `as i64`: every step is
            // monotone (the cast saturates), so endpoint images bound the
            // interior exactly as the concrete evaluator computes it.
            let Some((l, h)) = args.first().and_then(|v| v.as_f64_pair()) else {
                return AbsVal::Top;
            };
            let round = |v: f64| -> i64 {
                if func == Func::Floor {
                    v.floor() as i64
                } else {
                    v.ceil() as i64
                }
            };
            AbsVal::Int(round(l), round(h))
        }
        Func::Mod => {
            let (Some(&AbsVal::Int(al, ah)), Some(&AbsVal::Int(bl, bh))) =
                (args.first(), args.get(1))
            else {
                return AbsVal::Top;
            };
            if bl <= 0 && bh >= 0 {
                // mod(_, 0) is DivisionByZero.
                return AbsVal::Top;
            }
            if al == i64::MIN && bl <= -1 && bh >= -1 {
                // `i64::MIN.rem_euclid(-1)` overflows.
                return AbsVal::Top;
            }
            if al == ah && bl == bh {
                let v = al.rem_euclid(bl);
                return AbsVal::Int(v, v);
            }
            // rem_euclid(b) lands in [0, |b| - 1] for any b ≠ 0.
            let bound = (bl as i128).abs().max((bh as i128).abs()) - 1;
            AbsVal::Int(0, i64::try_from(bound).unwrap_or(i64::MAX))
        }
        Func::Pow => {
            let (Some(&base), Some(&exp)) = (args.first(), args.get(1)) else {
                return AbsVal::Top;
            };
            if let (AbsVal::Int(al, ah), AbsVal::Int(bl, bh)) = (base, exp) {
                if bl < 0 {
                    // Falls through to powf in the concrete evaluator.
                    return pow_double(base, exp);
                }
                let (Ok(el), Ok(eh)) = (u32::try_from(bl), u32::try_from(bh)) else {
                    // Exponents beyond u32 are a concrete BadNumber error.
                    return AbsVal::Top;
                };
                if al == ah && el == eh {
                    let v = al.wrapping_pow(el);
                    return AbsVal::Int(v, v);
                }
                if al >= 0 && el == eh {
                    // x^k is monotone for x ≥ 0; only trust it when no
                    // endpoint wraps.
                    match (al.checked_pow(el), ah.checked_pow(eh)) {
                        (Some(l), Some(h)) => return AbsVal::Int(l, h),
                        _ => return AbsVal::Top,
                    }
                }
                return AbsVal::Top;
            }
            pow_double(base, exp)
        }
    }
}

/// `powf` is not guaranteed correctly rounded, so only singleton inputs —
/// where the abstract result is the literal concrete result — are pinned.
fn pow_double(base: AbsVal, exp: AbsVal) -> AbsVal {
    match (base.singleton(), exp.singleton()) {
        (Some(b), Some(e)) => {
            let v = b.powf(e);
            if v.is_nan() {
                AbsVal::Top
            } else {
                AbsVal::Double(v, v)
            }
        }
        _ => AbsVal::Top,
    }
}

fn pick(acc: Option<i64>, v: i64, take_max: bool) -> i64 {
    match acc {
        None => v,
        Some(a) if take_max => a.max(v),
        Some(a) => a.min(v),
    }
}

fn pick_f(acc: Option<f64>, v: f64, take_max: bool) -> f64 {
    match acc {
        None => v,
        Some(a) if take_max => a.max(v),
        Some(a) => a.min(v),
    }
}

/// Narrows the variable box in place to (a superset of) the valuations
/// satisfying `guard`, and reports whether the narrowed box is still
/// non-empty.
///
/// Sound in the only direction that matters: every valuation of the
/// original box that satisfies the guard is still inside the narrowed
/// box. Narrowing handles conjunctions, boolean-variable literals and
/// comparisons with a bare variable on one side; everything else is left
/// untouched (no narrowing is always sound).
///
/// A `false` return means the guard is unsatisfiable over the box — the
/// narrowed intervals became empty.
pub fn refine_box(
    guard: &Expr,
    vars: &mut HashMap<&str, AbsVal>,
    consts: &HashMap<String, Value>,
    formulas: &HashMap<String, Expr>,
    depth: u32,
) -> bool {
    if depth == 0 {
        return true;
    }
    match guard {
        Expr::Bin(BinOp::And, a, b) => {
            refine_box(a, vars, consts, formulas, depth - 1)
                && refine_box(b, vars, consts, formulas, depth - 1)
        }
        Expr::Name(name, _) => {
            if let Some(v) = vars.get_mut(name.as_str()) {
                if let AbsVal::Bool(_, can_true) = *v {
                    if !can_true {
                        return false;
                    }
                    *v = AbsVal::bool_const(true);
                }
                true
            } else if let Some(body) = formulas.get(name) {
                refine_box(body, vars, consts, formulas, depth - 1)
            } else {
                true
            }
        }
        Expr::Not(inner) => {
            if let Expr::Name(name, _) = &**inner {
                if let Some(v) = vars.get_mut(name.as_str()) {
                    if let AbsVal::Bool(can_false, _) = *v {
                        if !can_false {
                            return false;
                        }
                        *v = AbsVal::bool_const(false);
                    }
                }
            }
            true
        }
        Expr::Bin(op, lhs, rhs)
            if matches!(
                op,
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq
            ) =>
        {
            if let Expr::Name(name, _) = &**lhs {
                return narrow_var(name, *op, rhs, vars, consts, formulas);
            }
            if let Expr::Name(name, _) = &**rhs {
                // `e OP x` is `x mirror(OP) e`.
                let mirrored = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Le => BinOp::Ge,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Ge => BinOp::Le,
                    BinOp::Eq => BinOp::Eq,
                    _ => unreachable!(),
                };
                return narrow_var(name, mirrored, lhs, vars, consts, formulas);
            }
            true
        }
        _ => true,
    }
}

/// Narrows variable `name` by `name OP bound` where `bound`'s interval is
/// computed over the current (wider) box — sound because the wider box's
/// bounds still bound the expression on the narrowed box.
fn narrow_var(
    name: &str,
    op: BinOp,
    bound: &Expr,
    vars: &mut HashMap<&str, AbsVal>,
    consts: &HashMap<String, Value>,
    formulas: &HashMap<String, Expr>,
) -> bool {
    let Some(&current) = vars.get(name) else {
        return true;
    };
    let bound_abs = {
        let env = AbsEnv {
            vars: vars.clone(),
            consts,
            formulas,
        };
        eval_abs(bound, &env)
    };
    match current {
        AbsVal::Int(mut lo, mut hi) => {
            let Some((bl, bh)) = bound_abs.as_f64_pair() else {
                return true;
            };
            // An integer x with x < v satisfies x ≤ ceil(v) - 1 for
            // integral v and x ≤ floor(v) otherwise; dually for >.
            let below = |v: f64, strict: bool| -> Option<i64> {
                if !v.is_finite() || v.abs() >= i64::MAX as f64 {
                    return None;
                }
                let f = v.floor();
                let mut b = f as i64;
                if strict && f == v {
                    b -= 1;
                }
                Some(b)
            };
            let above = |v: f64, strict: bool| -> Option<i64> {
                if !v.is_finite() || v.abs() >= i64::MAX as f64 {
                    return None;
                }
                let c = v.ceil();
                let mut b = c as i64;
                if strict && c == v {
                    b += 1;
                }
                Some(b)
            };
            match op {
                BinOp::Lt => {
                    if let Some(b) = below(bh, true) {
                        hi = hi.min(b);
                    }
                }
                BinOp::Le => {
                    if let Some(b) = below(bh, false) {
                        hi = hi.min(b);
                    }
                }
                BinOp::Gt => {
                    if let Some(b) = above(bl, true) {
                        lo = lo.max(b);
                    }
                }
                BinOp::Ge => {
                    if let Some(b) = above(bl, false) {
                        lo = lo.max(b);
                    }
                }
                BinOp::Eq => {
                    if let Some(b) = below(bh, false) {
                        hi = hi.min(b);
                    }
                    if let Some(b) = above(bl, false) {
                        lo = lo.max(b);
                    }
                }
                _ => {}
            }
            if lo > hi {
                return false;
            }
            if let Some(v) = vars.get_mut(name) {
                *v = AbsVal::Int(lo, hi);
            }
            true
        }
        AbsVal::Bool(can_false, can_true) if op == BinOp::Eq => {
            // `b = e` with a definite boolean e pins b.
            match bound_abs.truth() {
                Some(true) => {
                    if !can_true {
                        return false;
                    }
                    if let Some(v) = vars.get_mut(name) {
                        *v = AbsVal::bool_const(true);
                    }
                    true
                }
                Some(false) => {
                    if !can_false {
                        return false;
                    }
                    if let Some(v) = vars.get_mut(name) {
                        *v = AbsVal::bool_const(false);
                    }
                    true
                }
                None => true,
            }
        }
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::super::{eval, Env};
    use super::*;
    use crate::parser::parse_expr;

    /// Concrete membership in the concretization of an abstraction.
    fn member(v: Value, a: AbsVal) -> bool {
        match (v, a) {
            (_, AbsVal::Top) => true,
            (Value::Int(i), AbsVal::Int(l, h)) => l <= i && i <= h,
            (Value::Double(d), AbsVal::Double(l, h)) => l <= d && d <= h,
            (Value::Bool(false), AbsVal::Bool(f, _)) => f,
            (Value::Bool(true), AbsVal::Bool(_, t)) => t,
            _ => false,
        }
    }

    /// Exhaustively checks the soundness contract of `eval_abs` for one
    /// expression over the box x ∈ [-3..4], y ∈ [0..3], b ∈ bool.
    fn assert_sound(src: &str) {
        let expr = parse_expr(src).expect("expression parses");
        let consts = HashMap::new();
        let formulas = HashMap::new();
        let mut vars = HashMap::new();
        vars.insert("x", AbsVal::Int(-3, 4));
        vars.insert("y", AbsVal::Int(0, 3));
        vars.insert("b", AbsVal::bool_any());
        let abs = eval_abs(
            &expr,
            &AbsEnv {
                vars,
                consts: &consts,
                formulas: &formulas,
            },
        );
        for x in -3..=4i64 {
            for y in 0..=3i64 {
                for b in [false, true] {
                    let mut cvars = HashMap::new();
                    cvars.insert("x", Value::Int(x));
                    cvars.insert("y", Value::Int(y));
                    cvars.insert("b", Value::Bool(b));
                    let env = Env {
                        vars: cvars,
                        consts: &consts,
                        formulas: &formulas,
                    };
                    match eval(&expr, &env) {
                        Ok(v) => assert!(
                            member(v, abs),
                            "{src}: concrete {v:?} escapes abstract {abs:?} at x={x} y={y} b={b}"
                        ),
                        Err(e) => assert_eq!(
                            abs,
                            AbsVal::Top,
                            "{src}: concrete error {e} but abstract {abs:?} is not Top"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn abstract_evaluation_over_approximates_concrete() {
        for src in [
            "x + y",
            "x - 2 * y",
            "x * x",
            "x / 7",
            "x / y",
            "x / (y + 1)",
            "-x",
            "!b",
            "x < y",
            "x <= 3",
            "x = y",
            "x != 0",
            "b & x < y",
            "b | x >= -3",
            "b => x > 1",
            "x < y & !b",
            "b ? x : y",
            "x < 0 ? -x : x",
            "min(x, y)",
            "max(x, y, 2)",
            "min(x, 2.5)",
            "floor(x / 2)",
            "ceil(x / (y + 1))",
            "mod(x, 3)",
            "mod(x, y)",
            "pow(2, y)",
            "pow(x, 2)",
            "pow(x, y)",
            "pow(2.0, x)",
            "(x + y) * (x - y)",
            "x < y | x = y",
            "1 / 0",
            "mod(3, 0)",
        ] {
            assert_sound(src);
        }
    }

    #[test]
    fn definite_answers_are_definite() {
        let consts = HashMap::new();
        let formulas = HashMap::new();
        let mut vars = HashMap::new();
        vars.insert("x", AbsVal::Int(0, 5));
        let env = AbsEnv {
            vars,
            consts: &consts,
            formulas: &formulas,
        };
        let definitely =
            |src: &str| eval_abs(&parse_expr(src).expect("expression parses"), &env).truth();
        assert_eq!(definitely("x < 6"), Some(true));
        assert_eq!(definitely("x > 5"), Some(false));
        assert_eq!(definitely("x >= 0 & x <= 5"), Some(true));
        assert_eq!(definitely("x < 3"), None);
        // Short-circuit hides the unbounded right operand.
        assert_eq!(definitely("x > 5 & 1 / 0 > 0"), Some(false));
        assert_eq!(definitely("x < 6 | 1 / 0 > 0"), Some(true));
        // But the non-short-circuit side stays unknown.
        assert_eq!(definitely("x < 3 & 1 / 0 > 0"), None);
    }

    #[test]
    fn refine_narrows_comparisons() {
        let consts = HashMap::new();
        let formulas = HashMap::new();
        let mut vars: HashMap<&str, AbsVal> = HashMap::new();
        vars.insert("x", AbsVal::Int(0, 10));
        vars.insert("b", AbsVal::bool_any());
        let guard = parse_expr("x < 4 & x >= 2 & b").expect("guard parses");
        assert!(refine_box(&guard, &mut vars, &consts, &formulas, 16));
        assert_eq!(vars["x"], AbsVal::Int(2, 3));
        assert_eq!(vars["b"], AbsVal::bool_const(true));

        let mut vars: HashMap<&str, AbsVal> = HashMap::new();
        vars.insert("x", AbsVal::Int(0, 10));
        let dead = parse_expr("x > 10").expect("guard parses");
        assert!(!refine_box(&dead, &mut vars, &consts, &formulas, 16));

        // `10 <= x` mirrors to `x >= 10`.
        let mut vars: HashMap<&str, AbsVal> = HashMap::new();
        vars.insert("x", AbsVal::Int(0, 10));
        let rev = parse_expr("10 <= x").expect("guard parses");
        assert!(refine_box(&rev, &mut vars, &consts, &formulas, 16));
        assert_eq!(vars["x"], AbsVal::Int(10, 10));
    }
}
