//! Recursive-descent parser for the guarded-command language.
//!
//! Grammar (PRISM-compatible subset; `?` marks optional, `*` repetition):
//!
//! ```text
//! program   := "dtmc"? item*
//! item      := const | formula | label | module | rewards
//! const     := "const" type? IDENT "=" expr ";"
//! type      := "int" | "double" | "bool"
//! formula   := "formula" IDENT "=" expr ";"
//! label     := "label" STRING "=" expr ";"
//! module    := "module" IDENT vardecl* command* "endmodule"
//! vardecl   := IDENT ":" ( "bool" | "[" expr ".." expr "]" ) ("init" expr)? ";"
//! command   := "[" IDENT? "]" expr "->" update ("+" update)* ";"
//! update    := (expr ":")? ( "true" | assign ("&" assign)* )
//! assign    := "(" IDENT "'" "=" expr ")"
//! rewards   := "rewards" STRING? (expr ":" expr ";")* "endrewards"
//! ```
//!
//! Expression precedence, loosest first: `? :`, `=>`, `|`, `&`, `!`,
//! relational (`= != < <= > >=`, non-associative), `+ -`, `* /`, unary `-`,
//! atoms. This matches PRISM except that PRISM's `<->` is omitted.

use crate::ast::*;
use crate::error::{LangError, Pos};
use crate::token::{lex, Spanned, Tok};

/// Parses a program from source text.
///
/// # Errors
///
/// Any lexing error, or [`LangError::UnexpectedToken`] with the position of
/// the first token that does not fit the grammar.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), smg_lang::LangError> {
/// let program = smg_lang::parse(
///     "dtmc
///      module coin
///        heads : bool init false;
///        [] true -> 0.5:(heads'=true) + 0.5:(heads'=false);
///      endmodule
///      label \"h\" = heads;",
/// )?;
/// assert_eq!(program.modules.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<Program, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, i: 0 };
    p.program()
}

/// Parses a single expression (used by the CLI for `-const`-style
/// overrides and by tests).
///
/// # Errors
///
/// As for [`parse`]; trailing tokens after the expression are rejected.
pub fn parse_expr(src: &str) -> Result<Expr, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, i: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err<T>(&self, expected: &str) -> Result<T, LangError> {
        Err(LangError::UnexpectedToken {
            expected: expected.to_string(),
            found: self.peek().describe(),
            pos: self.pos(),
        })
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), LangError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(what)
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), LangError> {
        if self.peek().is_kw(kw) {
            self.bump();
            Ok(())
        } else {
            self.err(&format!("keyword `{kw}`"))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_eof(&self) -> Result<(), LangError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            self.err("end of input")
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Pos), LangError> {
        let pos = self.pos();
        match self.peek() {
            Tok::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok((s, pos))
            }
            _ => self.err(what),
        }
    }

    fn program(&mut self) -> Result<Program, LangError> {
        let mut prog = Program::default();
        // Optional model-type header.
        if self.peek().is_kw("dtmc") || self.peek().is_kw("probabilistic") {
            self.bump();
        } else if self.peek().is_kw("mdp") || self.peek().is_kw("nondeterministic") {
            prog.model_type = ModelType::Mdp;
            self.bump();
        }
        loop {
            match self.peek() {
                Tok::Eof => return Ok(prog),
                Tok::Ident(kw) if kw == "const" => {
                    let c = self.const_decl()?;
                    prog.consts.push(c);
                }
                Tok::Ident(kw) if kw == "formula" => {
                    self.bump();
                    let (name, pos) = self.ident("formula name")?;
                    self.expect(&Tok::Eq, "`=`")?;
                    let body = self.expr()?;
                    self.expect(&Tok::Semi, "`;`")?;
                    prog.formulas.push(FormulaDecl { name, body, pos });
                }
                Tok::Ident(kw) if kw == "label" => {
                    self.bump();
                    let pos = self.pos();
                    let name = match self.peek() {
                        Tok::Str(s) => {
                            let s = s.clone();
                            self.bump();
                            s
                        }
                        _ => return self.err("label name string"),
                    };
                    self.expect(&Tok::Eq, "`=`")?;
                    let body = self.expr()?;
                    self.expect(&Tok::Semi, "`;`")?;
                    prog.labels.push(LabelDecl { name, body, pos });
                }
                Tok::Ident(kw) if kw == "module" => {
                    let m = self.module()?;
                    prog.modules.push(m);
                }
                Tok::Ident(kw) if kw == "rewards" => {
                    let r = self.rewards()?;
                    prog.rewards.push(r);
                }
                _ => return self.err("`const`, `formula`, `label`, `module` or `rewards`"),
            }
        }
    }

    fn const_decl(&mut self) -> Result<ConstDecl, LangError> {
        let pos = self.pos();
        self.expect_kw("const")?;
        let mut ty = None;
        for t in ["int", "double", "bool"] {
            if self.peek().is_kw(t) {
                ty = Some(t.to_string());
                self.bump();
                break;
            }
        }
        let (name, _) = self.ident("constant name")?;
        if matches!(self.peek(), Tok::Semi) {
            // `const int N;` — undefined constant, which we do not support.
            return Err(LangError::UnboundConstant { name });
        }
        self.expect(&Tok::Eq, "`=`")?;
        let value = self.expr()?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(ConstDecl {
            name,
            ty,
            value,
            pos,
        })
    }

    fn module(&mut self) -> Result<Module, LangError> {
        let pos = self.pos();
        self.expect_kw("module")?;
        let (name, _) = self.ident("module name")?;
        let mut vars = Vec::new();
        let mut commands = Vec::new();
        loop {
            match self.peek() {
                Tok::Ident(kw) if kw == "endmodule" => {
                    self.bump();
                    return Ok(Module {
                        name,
                        vars,
                        commands,
                        pos,
                    });
                }
                Tok::LBracket => commands.push(self.command()?),
                Tok::Ident(_) => vars.push(self.var_decl()?),
                _ => return self.err("variable declaration, command or `endmodule`"),
            }
        }
    }

    fn var_decl(&mut self) -> Result<VarDecl, LangError> {
        let (name, pos) = self.ident("variable name")?;
        self.expect(&Tok::Colon, "`:`")?;
        let ty = if self.eat_kw("bool") {
            DeclType::Bool
        } else {
            self.expect(&Tok::LBracket, "`bool` or `[lo..hi]` range")?;
            let lo = self.expr()?;
            self.expect(&Tok::DotDot, "`..`")?;
            let hi = self.expr()?;
            self.expect(&Tok::RBracket, "`]`")?;
            DeclType::Range(lo, hi)
        };
        let init = if self.eat_kw("init") {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&Tok::Semi, "`;`")?;
        Ok(VarDecl {
            name,
            ty,
            init,
            pos,
        })
    }

    fn command(&mut self) -> Result<Command, LangError> {
        let pos = self.pos();
        self.expect(&Tok::LBracket, "`[`")?;
        let action = match self.peek() {
            Tok::Ident(s) => {
                let s = s.clone();
                self.bump();
                Some(s)
            }
            _ => None,
        };
        self.expect(&Tok::RBracket, "`]`")?;
        let guard = self.expr()?;
        self.expect(&Tok::Arrow, "`->`")?;
        let mut updates = vec![self.update()?];
        while matches!(self.peek(), Tok::Plus) {
            self.bump();
            updates.push(self.update()?);
        }
        self.expect(&Tok::Semi, "`;`")?;
        Ok(Command {
            action,
            guard,
            updates,
            pos,
        })
    }

    /// One probabilistic branch. The `prob :` prefix is optional (defaults
    /// to probability 1). Disambiguation: we parse an expression; if a `:`
    /// follows, it was the probability, otherwise the expression must have
    /// been the literal `true` (PRISM's empty update) — assignments always
    /// start with `(` followed by `IDENT '`, which cannot be confused with
    /// an expression because we look ahead for the prime.
    fn update(&mut self) -> Result<Update, LangError> {
        // Case 1: update starts directly with an assignment list.
        if self.starts_assign() {
            return Ok(Update {
                prob: Expr::Int(1),
                assigns: self.assign_list()?,
            });
        }
        // Case 2: `true` with no probability.
        if self.peek().is_kw("true") && !matches!(self.toks[self.i + 1].tok, Tok::Colon) {
            self.bump();
            return Ok(Update {
                prob: Expr::Int(1),
                assigns: Vec::new(),
            });
        }
        // Case 3: `prob : (...)` or `prob : true`.
        let prob = self.expr()?;
        self.expect(&Tok::Colon, "`:` after update probability")?;
        if self.eat_kw("true") {
            return Ok(Update {
                prob,
                assigns: Vec::new(),
            });
        }
        Ok(Update {
            prob,
            assigns: self.assign_list()?,
        })
    }

    /// Whether the upcoming tokens are `( IDENT '` — the start of an
    /// assignment rather than a parenthesized probability expression.
    fn starts_assign(&self) -> bool {
        matches!(self.toks.get(self.i).map(|s| &s.tok), Some(Tok::LParen))
            && matches!(
                self.toks.get(self.i + 1).map(|s| &s.tok),
                Some(Tok::Ident(_))
            )
            && matches!(self.toks.get(self.i + 2).map(|s| &s.tok), Some(Tok::Prime))
    }

    fn assign_list(&mut self) -> Result<Vec<Assign>, LangError> {
        let mut out = vec![self.assign()?];
        while matches!(self.peek(), Tok::Amp) {
            self.bump();
            out.push(self.assign()?);
        }
        Ok(out)
    }

    fn assign(&mut self) -> Result<Assign, LangError> {
        self.expect(&Tok::LParen, "`(`")?;
        let (var, pos) = self.ident("assignment target")?;
        self.expect(&Tok::Prime, "`'`")?;
        self.expect(&Tok::Eq, "`=`")?;
        let value = self.expr()?;
        self.expect(&Tok::RParen, "`)`")?;
        Ok(Assign { var, value, pos })
    }

    fn rewards(&mut self) -> Result<RewardsDecl, LangError> {
        let pos = self.pos();
        self.expect_kw("rewards")?;
        let name = match self.peek() {
            Tok::Str(s) => {
                let s = s.clone();
                self.bump();
                Some(s)
            }
            _ => None,
        };
        let mut items = Vec::new();
        while !self.peek().is_kw("endrewards") {
            if matches!(self.peek(), Tok::Eof) {
                return self.err("`endrewards`");
            }
            let guard = self.expr()?;
            self.expect(&Tok::Colon, "`:`")?;
            let value = self.expr()?;
            self.expect(&Tok::Semi, "`;`")?;
            items.push(RewardItem { guard, value });
        }
        self.bump(); // endrewards
        Ok(RewardsDecl { name, items, pos })
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.ite()
    }

    fn ite(&mut self) -> Result<Expr, LangError> {
        let cond = self.implies()?;
        if matches!(self.peek(), Tok::Question) {
            self.bump();
            let then = self.ite()?;
            self.expect(&Tok::Colon, "`:` in conditional")?;
            let els = self.ite()?;
            return Ok(Expr::Ite(Box::new(cond), Box::new(then), Box::new(els)));
        }
        Ok(cond)
    }

    fn implies(&mut self) -> Result<Expr, LangError> {
        let lhs = self.or()?;
        if matches!(self.peek(), Tok::Implies) {
            self.bump();
            // Right-associative.
            let rhs = self.implies()?;
            return Ok(Expr::Bin(BinOp::Implies, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn or(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and()?;
        while matches!(self.peek(), Tok::Pipe) {
            self.bump();
            let rhs = self.and()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.not()?;
        while matches!(self.peek(), Tok::Amp) {
            self.bump();
            let rhs = self.not()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not(&mut self) -> Result<Expr, LangError> {
        if matches!(self.peek(), Tok::Not) {
            self.bump();
            let inner = self.not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.rel()
    }

    fn rel(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Neq => BinOp::Neq,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        if matches!(self.peek(), Tok::Minus) {
            self.bump();
            let inner = self.unary()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Double(v) => {
                self.bump();
                Ok(Expr::Double(v))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if name == "true" {
                    return Ok(Expr::Bool(true));
                }
                if name == "false" {
                    return Ok(Expr::Bool(false));
                }
                if let Some(func) = Func::from_name(&name) {
                    if matches!(self.peek(), Tok::LParen) {
                        self.bump();
                        let mut args = vec![self.expr()?];
                        while matches!(self.peek(), Tok::Comma) {
                            self.bump();
                            args.push(self.expr()?);
                        }
                        self.expect(&Tok::RParen, "`)`")?;
                        let (lo, hi) = func.arity();
                        if args.len() < lo || hi.is_some_and(|h| args.len() > h) {
                            return Err(LangError::UnexpectedToken {
                                expected: format!(
                                    "{} arguments to {}",
                                    match hi {
                                        Some(h) if h == lo => format!("{lo}"),
                                        Some(h) => format!("{lo}..{h}"),
                                        None => format!("at least {lo}"),
                                    },
                                    func.name()
                                ),
                                found: format!("{}", args.len()),
                                pos,
                            });
                        }
                        return Ok(Expr::Apply(func, args));
                    }
                }
                Ok(Expr::Name(name, pos))
            }
            _ => self.err("expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_readme_die_fragment() {
        let src = r#"
            dtmc
            // Knuth-Yao style fragment
            module die
              s : [0..3] init 0;
              [] s=0 -> 0.5:(s'=1) + 0.5:(s'=2);
              [] s>0 -> (s'=s);
            endmodule
            label "done" = s>0;
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.modules.len(), 1);
        assert_eq!(p.modules[0].vars.len(), 1);
        assert_eq!(p.modules[0].commands.len(), 2);
        assert_eq!(p.labels.len(), 1);
        assert_eq!(p.labels[0].name, "done");
    }

    #[test]
    fn update_probability_defaults_to_one() {
        let p = parse("module m x : bool; [] true -> (x'=!x); endmodule").unwrap();
        let u = &p.modules[0].commands[0].updates[0];
        assert_eq!(u.prob, Expr::Int(1));
        assert_eq!(u.assigns.len(), 1);
    }

    #[test]
    fn true_update_is_empty_assign_list() {
        let p = parse("module m x : bool; [] true -> true; endmodule").unwrap();
        assert!(p.modules[0].commands[0].updates[0].assigns.is_empty());
        let p = parse("module m x : bool; [] true -> 0.3:true + 0.7:(x'=true); endmodule").unwrap();
        assert!(p.modules[0].commands[0].updates[0].assigns.is_empty());
        assert_eq!(p.modules[0].commands[0].updates.len(), 2);
    }

    #[test]
    fn parenthesized_probability_is_not_mistaken_for_assignment() {
        // `(p) : (x'=true)` — probability in parens.
        let p = parse(
            "const double p = 0.25; module m x : bool; [] true -> (p):(x'=true) + (1-p):true; endmodule",
        )
        .unwrap();
        assert_eq!(p.modules[0].commands[0].updates.len(), 2);
    }

    #[test]
    fn precedence_binds_arithmetic_tighter_than_comparison() {
        let e = parse_expr("x + 1 < 2 * y").unwrap();
        let Expr::Bin(BinOp::Lt, lhs, rhs) = e else {
            panic!("expected comparison at top");
        };
        assert!(matches!(*lhs, Expr::Bin(BinOp::Add, _, _)));
        assert!(matches!(*rhs, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn implication_is_right_associative() {
        let e = parse_expr("a => b => c").unwrap();
        let Expr::Bin(BinOp::Implies, _, rhs) = e else {
            panic!("expected implies at top");
        };
        assert!(matches!(*rhs, Expr::Bin(BinOp::Implies, _, _)));
    }

    #[test]
    fn conditional_nests() {
        let e = parse_expr("a ? 1 : b ? 2 : 3").unwrap();
        let Expr::Ite(_, _, els) = e else {
            panic!("expected conditional");
        };
        assert!(matches!(*els, Expr::Ite(_, _, _)));
    }

    #[test]
    fn function_arity_is_checked() {
        assert!(parse_expr("floor(1.5)").is_ok());
        assert!(parse_expr("floor(1.5, 2)").is_err());
        assert!(parse_expr("mod(5)").is_err());
        assert!(parse_expr("min(1,2,3,4)").is_ok());
    }

    #[test]
    fn undefined_const_is_rejected() {
        assert!(matches!(
            parse("const int N;").unwrap_err(),
            LangError::UnboundConstant { .. }
        ));
    }

    #[test]
    fn rewards_blocks_parse_named_and_unnamed() {
        let p = parse(
            r#"module m x : bool; [] true -> true; endmodule
               rewards x : 1; endrewards
               rewards "steps" true : 0.5; endrewards"#,
        )
        .unwrap();
        assert_eq!(p.rewards.len(), 2);
        assert_eq!(p.rewards[0].name, None);
        assert_eq!(p.rewards[1].name.as_deref(), Some("steps"));
    }

    #[test]
    fn error_position_points_at_problem() {
        let err = parse("module m x : bool; [] true -> ; endmodule").unwrap_err();
        let LangError::UnexpectedToken { pos, .. } = err else {
            panic!("expected UnexpectedToken");
        };
        assert_eq!(pos.line, 1);
        assert_eq!(pos.col, 31);
    }

    #[test]
    fn synchronization_labels_are_kept() {
        let p = parse("module m x : bool; [tick] true -> (x'=!x); endmodule").unwrap();
        assert_eq!(p.modules[0].commands[0].action.as_deref(), Some("tick"));
    }

    #[test]
    fn display_round_trips_through_parse() {
        let src = r#"
            dtmc
            const double p = 0.3;
            formula stay = x=0 & !done;
            module m
              x : [0..2] init 0;
              done : bool init false;
              [] stay -> p:(x'=1) + (1-p):(x'=0);
              [] x>0 -> (done'=true) & (x'=min(x+1, 2));
              [] done -> true;
            endmodule
            label "fin" = done;
            rewards
              done : 1;
            endrewards
        "#;
        let p1 = parse(src).unwrap();
        let p2 = parse(&p1.to_string()).unwrap();
        // Positions differ between the two parses; the pretty-printed
        // forms (which elide positions) must agree exactly.
        assert_eq!(p1.to_string(), p2.to_string());
    }

    #[test]
    fn trailing_garbage_in_expr_is_rejected() {
        assert!(parse_expr("1 + 2 )").is_err());
    }
}
