//! Error types for lexing, parsing, semantic analysis and evaluation.

use std::error::Error;
use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// The start of the text.
    pub fn start() -> Self {
        Pos { line: 1, col: 1 }
    }
}

impl Default for Pos {
    fn default() -> Self {
        Pos::start()
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error raised while turning source text into a checked model.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// A character that cannot start any token.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Where it was found.
        pos: Pos,
    },
    /// A string or block comment that was never closed.
    UnterminatedToken {
        /// Human description of what was open ("string literal", "comment").
        what: &'static str,
        /// Where the open token started.
        pos: Pos,
    },
    /// A numeric literal that does not parse.
    BadNumber {
        /// The literal text.
        text: String,
        /// Where it was found.
        pos: Pos,
    },
    /// The parser found a token it did not expect.
    UnexpectedToken {
        /// What the parser was looking for.
        expected: String,
        /// What it found instead.
        found: String,
        /// Where.
        pos: Pos,
    },
    /// A name was declared twice (variable, constant, formula, module or
    /// label).
    DuplicateName {
        /// The name.
        name: String,
        /// Where the second declaration appears.
        pos: Pos,
    },
    /// A name was used but never declared.
    UndefinedName {
        /// The name.
        name: String,
        /// Where it is referenced.
        pos: Pos,
    },
    /// An expression has the wrong type (e.g. a boolean guard that
    /// evaluates to an integer).
    TypeMismatch {
        /// What was expected ("bool", "int", "numeric").
        expected: &'static str,
        /// What the expression produced.
        found: &'static str,
        /// Context for the message (e.g. "guard of command 3").
        context: String,
    },
    /// A command update assigns to a variable owned by another module.
    ForeignAssignment {
        /// The variable.
        var: String,
        /// The module attempting the write.
        module: String,
    },
    /// Division by zero or `mod` by zero during constant folding or state
    /// expansion.
    DivisionByZero {
        /// Context for the message.
        context: String,
    },
    /// A variable was driven outside its declared range.
    OutOfRange {
        /// The variable.
        var: String,
        /// The value that was assigned.
        value: i64,
        /// The declared range.
        lo: i64,
        /// The declared range.
        hi: i64,
    },
    /// The probabilities of a command's updates do not sum to one.
    BadDistribution {
        /// The module owning the command.
        module: String,
        /// Index of the command within the module (0-based).
        command: usize,
        /// The observed sum.
        sum: f64,
    },
    /// A probability expression evaluated to a negative or non-finite
    /// value.
    BadProbability {
        /// Context for the message.
        context: String,
        /// The observed value.
        value: f64,
    },
    /// A state was reached in which some module has no enabled command.
    /// (Modules stutter only if `allow_stutter` is set on the compiler.)
    Deadlock {
        /// The module with no enabled command.
        module: String,
        /// Debug rendering of the state's variable assignment.
        state: String,
    },
    /// A constant was declared without a value (unsupported here — this
    /// implementation has no `-const` command line substitution).
    UnboundConstant {
        /// The constant name.
        name: String,
    },
    /// The program declares no module.
    NoModules,
    /// The variable range is empty (`lo > hi`).
    EmptyRange {
        /// The variable.
        var: String,
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
    /// A compiler entry point was handed a program of the other model
    /// type (`compile` wants `dtmc`, `compile_mdp` is the MDP path).
    WrongModelType {
        /// The model type the program declares.
        declared: &'static str,
        /// The entry point that should be used instead.
        hint: &'static str,
    },
    /// Error propagated from the DTMC layer while assembling the explicit
    /// chain.
    Dtmc(String),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::UnexpectedChar { ch, pos } => {
                write!(f, "{pos}: unexpected character {ch:?}")
            }
            LangError::UnterminatedToken { what, pos } => {
                write!(f, "{pos}: unterminated {what}")
            }
            LangError::BadNumber { text, pos } => {
                write!(f, "{pos}: malformed numeric literal {text:?}")
            }
            LangError::UnexpectedToken {
                expected,
                found,
                pos,
            } => write!(f, "{pos}: expected {expected}, found {found}"),
            LangError::DuplicateName { name, pos } => {
                write!(f, "{pos}: duplicate declaration of {name:?}")
            }
            LangError::UndefinedName { name, pos } => {
                write!(f, "{pos}: undefined name {name:?}")
            }
            LangError::TypeMismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            LangError::ForeignAssignment { var, module } => write!(
                f,
                "module {module:?} assigns to variable {var:?} owned by another module"
            ),
            LangError::DivisionByZero { context } => {
                write!(f, "division by zero in {context}")
            }
            LangError::OutOfRange { var, value, lo, hi } => write!(
                f,
                "variable {var:?} driven to {value}, outside its range [{lo}..{hi}]"
            ),
            LangError::BadDistribution {
                module,
                command,
                sum,
            } => write!(
                f,
                "updates of command {command} in module {module:?} sum to {sum}, not 1"
            ),
            LangError::BadProbability { context, value } => {
                write!(f, "non-probability value {value} in {context}")
            }
            LangError::Deadlock { module, state } => write!(
                f,
                "module {module:?} has no enabled command in state {state}"
            ),
            LangError::UnboundConstant { name } => {
                write!(f, "constant {name:?} has no defining expression")
            }
            LangError::NoModules => write!(f, "program declares no module"),
            LangError::EmptyRange { var, lo, hi } => {
                write!(f, "variable {var:?} has empty range [{lo}..{hi}]")
            }
            LangError::WrongModelType { declared, hint } => {
                write!(f, "program declares model type `{declared}`; {hint}")
            }
            LangError::Dtmc(msg) => write!(f, "dtmc construction failed: {msg}"),
        }
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_display_as_line_colon_col() {
        let p = Pos { line: 3, col: 14 };
        assert_eq!(p.to_string(), "3:14");
        assert_eq!(Pos::start(), Pos::default());
    }

    #[test]
    fn error_messages_name_the_offender() {
        let e = LangError::OutOfRange {
            var: "pm0".into(),
            value: 17,
            lo: 0,
            hi: 15,
        };
        let msg = e.to_string();
        assert!(msg.contains("pm0") && msg.contains("17") && msg.contains("[0..15]"));

        let e = LangError::Deadlock {
            module: "trellis".into(),
            state: "{x=1}".into(),
        };
        assert!(e.to_string().contains("trellis"));
    }
}
