//! # smg-lang — a guarded-command modeling language for DTMCs
//!
//! The paper's workflow hands RTL-derived probabilistic models to PRISM,
//! whose input is a guarded-command language of modules, range-bounded
//! variables and probabilistic updates. This crate provides that front
//! end for the rest of the workspace: a parser and compiler for a
//! PRISM-compatible subset, targeting [`smg_dtmc`]'s explicit chains and
//! implicit [`smg_dtmc::DtmcModel`]s.
//!
//! Pipeline: [`parse`] → [`check()`](check()) → [`compile`] (or wrap the checked
//! program in a [`LangModel`] to use the generic exploration/reduction
//! tooling). Callers that don't care which model family a file declares
//! use [`compile_any`], which dispatches on the `dtmc`/`mdp` header and
//! returns an [`smg_pctl::AnyModel`] ready for a
//! [`smg_pctl::CheckSession`].
//!
//! ```
//! # fn main() -> Result<(), smg_lang::LangError> {
//! // A two-state "channel": a bit is hit by noise with probability 0.1.
//! let src = r#"
//!     dtmc
//!     const double p_err = 0.1;
//!     module channel
//!       err : bool init false;
//!       [] true -> p_err:(err'=true) + (1-p_err):(err'=false);
//!     endmodule
//!     label "err" = err;
//!     rewards err : 1; endrewards
//! "#;
//! let compiled = smg_lang::compile(smg_lang::check(smg_lang::parse(src)?)?)?;
//! // The expected instantaneous reward at any step t>=1 is the BER, 0.1.
//! let ber = smg_dtmc::transient::instantaneous_reward(&compiled.dtmc, 5);
//! assert!((ber - 0.1).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```
//!
//! ## Deviations from PRISM
//!
//! Documented per item; the load-bearing ones are: `dtmc` and `mdp`
//! models only (an `mdp` header switches overlapping guards from uniform
//! choice to nondeterministic actions — see [`compile_mdp`]); **modules
//! compose synchronously** (every module steps each clock tick, matching
//! the paper's clocked-RTL reading — identical to PRISM for single-module
//! programs; under `mdp` each combination of one enabled command per
//! module is one action); undefined (`-const`-style) constants are not
//! supported; rewards blocks carry state rewards only.

pub mod ast;
pub mod check;
pub mod error;
pub mod export;
pub mod model;
pub mod parser;
pub mod token;
pub mod value;

pub use ast::{Expr, ModelType, Program};
pub use check::{check, CheckedProgram, VarInfo};
pub use error::{LangError, Pos};
pub use export::program_text;
pub use model::{
    compile, compile_any, compile_any_with, compile_mdp, compile_mdp_with, compile_with,
    CompiledAny, CompiledMdp, CompiledModel, ExpandOptions, LangModel,
};
pub use parser::{parse, parse_expr};
pub use value::interval::{eval_abs, refine_box, AbsEnv, AbsVal};
pub use value::{eval, Env, Value};
