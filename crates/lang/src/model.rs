//! State-space expansion: from a [`CheckedProgram`] to an explicit
//! [`Dtmc`], and a [`DtmcModel`] adapter for the reduction/bisimulation
//! tooling.
//!
//! # Semantics
//!
//! * A state is an assignment to the concatenated variable vector of all
//!   modules (`Vec<i64>`, booleans as 0/1).
//! * **All modules step synchronously on every clock tick** and their
//!   randomness is independent, so the joint transition probability is the
//!   product over modules. This is the clocked-RTL semantics of the paper
//!   (every DTMC transition is one clock cycle) and of
//!   [`smg_dtmc::SyncProduct`]; it coincides with PRISM's DTMC semantics
//!   for single-module programs. Synchronization labels are parsed but do
//!   not restrict stepping.
//! * Within one module, if several commands are enabled in a state the
//!   module makes a **uniform choice** among them (PRISM's DTMC
//!   convention); if none is enabled the module *stutters* (keeps its
//!   variables) when [`ExpandOptions::allow_stutter`] is set, and expansion
//!   fails with [`LangError::Deadlock`] otherwise.
//! * Update right-hand sides read the **pre-state** (primed semantics);
//!   unassigned variables keep their values; a variable assigned outside
//!   its declared range aborts expansion with [`LangError::OutOfRange`]
//!   (PRISM raises the analogous runtime error).

use crate::ast::Expr;
use crate::check::CheckedProgram;
use crate::error::LangError;
use crate::value::{eval, Env, Value};
use smg_dtmc::bitvec::BitVec;
use smg_dtmc::matrix::{CsrMatrix, TransitionMatrix};
use smg_dtmc::{Dtmc, DtmcModel};
use smg_mdp::{Mdp, MdpBuilder};
use smg_obs as obs;
use smg_pctl::AnyModel;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Probability mass below which an update branch is treated as absent, and
/// tolerance for "sums to one" checks. Matches the DTMC layer's
/// stochasticity tolerance.
const PROB_TOL: f64 = 1e-9;

/// Knobs for [`compile_with`].
#[derive(Debug, Clone, Copy)]
pub struct ExpandOptions {
    /// Maximum number of states to enumerate before giving up (guards
    /// against typos that blow up the space). Default: 4,000,000.
    pub max_states: usize,
    /// If `true`, a module with no enabled command keeps its variables for
    /// that tick instead of the whole expansion failing. Default: `false`
    /// (a deadlocked module is almost always a modeling bug in clocked
    /// designs).
    pub allow_stutter: bool,
}

impl Default for ExpandOptions {
    fn default() -> Self {
        ExpandOptions {
            max_states: 4_000_000,
            allow_stutter: false,
        }
    }
}

/// The result of compiling a program: the explicit chain plus the
/// name↔state bookkeeping a client needs to interpret it.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    /// The explicit DTMC. Labels carry the program's `label` declarations;
    /// the reward vector is the default reward structure (see
    /// [`CompiledModel::reward_vector`]).
    pub dtmc: Dtmc,
    /// Variable names in state-vector order.
    pub var_names: Vec<String>,
    /// The concrete variable assignment of every explored state, indexed
    /// by [`smg_dtmc::StateId`].
    pub states: Vec<Vec<i64>>,
    /// Named reward structures (`rewards "name" ...`), as dense vectors.
    pub named_rewards: BTreeMap<String, Vec<f64>>,
}

impl CompiledModel {
    /// A reward structure by name; `None` requests the default (unnamed)
    /// structure, which is also baked into [`CompiledModel::dtmc`].
    pub fn reward_vector(&self, name: Option<&str>) -> Option<&[f64]> {
        match name {
            None => Some(self.dtmc.rewards()),
            Some(n) => self.named_rewards.get(n).map(Vec::as_slice),
        }
    }

    /// Renders a state as `{x=1, b=false}` for diagnostics.
    pub fn render_state(&self, id: smg_dtmc::StateId) -> String {
        render_assignment(&self.var_names, &self.states[id as usize])
    }
}

fn render_assignment(names: &[String], vals: &[i64]) -> String {
    let mut s = String::from("{");
    for (i, (n, v)) in names.iter().zip(vals).enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("{n}={v}"));
    }
    s.push('}');
    s
}

/// A checked program viewed as an implicit [`DtmcModel`].
///
/// This adapter exists for interop with the exploration, reduction and
/// bisimulation tooling, which are generic over `DtmcModel`. Prefer
/// [`compile`] when you just want the explicit chain — it reports
/// expansion errors as `Result`s, whereas the trait's `transitions` has no
/// error channel and **panics** on deadlocks, bad distributions and
/// range violations (each panic message names the state).
#[derive(Debug, Clone)]
pub struct LangModel {
    checked: CheckedProgram,
    options: ExpandOptions,
    /// Label names leaked to `'static` (once per `LangModel`, bounded by
    /// the program's label count) because [`DtmcModel`] identifies atomic
    /// propositions by `&'static str`.
    ap_names: Vec<&'static str>,
}

impl LangModel {
    /// Wraps a checked program with default options.
    pub fn new(checked: CheckedProgram) -> Self {
        Self::with_options(checked, ExpandOptions::default())
    }

    /// Wraps a checked program.
    pub fn with_options(checked: CheckedProgram, options: ExpandOptions) -> Self {
        let ap_names = checked
            .program
            .labels
            .iter()
            .map(|l| &*Box::leak(l.name.clone().into_boxed_str()))
            .collect();
        LangModel {
            checked,
            options,
            ap_names,
        }
    }

    /// The checked program.
    pub fn checked(&self) -> &CheckedProgram {
        &self.checked
    }

    /// The initial state vector.
    pub fn initial_state(&self) -> Vec<i64> {
        self.checked.vars.iter().map(|v| v.init).collect()
    }

    fn env<'a>(&'a self, state: &[i64]) -> Env<'a> {
        let mut vars = HashMap::with_capacity(self.checked.vars.len());
        for (info, &raw) in self.checked.vars.iter().zip(state) {
            let v = if info.is_bool {
                Value::Bool(raw != 0)
            } else {
                Value::Int(raw)
            };
            vars.insert(info.name.as_str(), v);
        }
        Env {
            vars,
            consts: &self.checked.consts,
            formulas: &self.checked.formulas,
        }
    }

    /// Evaluates a boolean expression (a label body or reward guard) in a
    /// state.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors ([`LangError::TypeMismatch`] etc.).
    pub fn eval_bool(&self, e: &Expr, state: &[i64], context: &str) -> Result<bool, LangError> {
        eval(e, &self.env(state))?.as_bool(context)
    }

    /// Evaluates a numeric expression in a state.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn eval_num(&self, e: &Expr, state: &[i64], context: &str) -> Result<f64, LangError> {
        eval(e, &self.env(state))?.as_double(context)
    }

    /// The indices of the commands of module `m` whose guards hold, or the
    /// deadlock/stutter resolution when none does: `Ok(None)` means the
    /// module stutters this tick.
    fn enabled_commands(
        &self,
        env: &Env,
        m: &crate::ast::Module,
        state: &[i64],
    ) -> Result<Option<Vec<usize>>, LangError> {
        let mut enabled: Vec<usize> = Vec::new();
        for (ci, cmd) in m.commands.iter().enumerate() {
            let g = eval(&cmd.guard, env)?
                .as_bool(&format!("guard of command {ci} in module {}", m.name))?;
            if g {
                enabled.push(ci);
            }
        }
        if enabled.is_empty() {
            if self.options.allow_stutter {
                return Ok(None);
            }
            return Err(LangError::Deadlock {
                module: m.name.clone(),
                state: render_assignment(
                    &self
                        .checked
                        .vars
                        .iter()
                        .map(|v| v.name.clone())
                        .collect::<Vec<_>>(),
                    state,
                ),
            });
        }
        Ok(Some(enabled))
    }

    /// The update distribution of command `ci` of module `m` as deltas,
    /// with every probability scaled by `scale` — the DTMC path passes its
    /// uniform choice weight, the MDP path 1 (each command is its own
    /// action).
    fn command_dist(
        &self,
        env: &Env,
        m: &crate::ast::Module,
        ci: usize,
        scale: f64,
    ) -> Result<Vec<(Delta, f64)>, LangError> {
        let cmd = &m.commands[ci];
        let mut dist: Vec<(Delta, f64)> = Vec::new();
        let mut sum = 0.0;
        for u in &cmd.updates {
            let p = eval(&u.prob, env)?
                .as_double(&format!("probability in command {ci} of module {}", m.name))?;
            if !(0.0..=1.0 + PROB_TOL).contains(&p) || p.is_nan() {
                return Err(LangError::BadProbability {
                    context: format!("command {ci} of module {}", m.name),
                    value: p,
                });
            }
            sum += p;
            // Only exact zeros are dropped: near-zero branches are
            // real probability mass (the detector chains carry
            // ~1e-11 outcomes), and dropping them would both skew
            // results and break row stochasticity.
            if p <= 0.0 {
                continue;
            }
            let mut delta: Delta = Vec::with_capacity(u.assigns.len());
            for a in &u.assigns {
                let vi = self.checked.var_index[&a.var];
                let info = &self.checked.vars[vi];
                let val = eval(&a.value, env)?;
                let new = if info.is_bool {
                    i64::from(val.as_bool(&format!("assignment to {}", a.var))?)
                } else {
                    val.as_int(&format!("assignment to {}", a.var))?
                };
                if new < info.lo || new > info.hi {
                    return Err(LangError::OutOfRange {
                        var: a.var.clone(),
                        value: new,
                        lo: info.lo,
                        hi: info.hi,
                    });
                }
                delta.push((vi, new));
            }
            dist.push((delta, scale * p));
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(LangError::BadDistribution {
                module: m.name.clone(),
                command: ci,
                sum,
            });
        }
        Ok(dist)
    }

    /// The successor distribution of `state`, or the expansion error that
    /// makes it undefined.
    ///
    /// # Errors
    ///
    /// [`LangError::Deadlock`] (unless stuttering is allowed),
    /// [`LangError::BadDistribution`], [`LangError::BadProbability`],
    /// [`LangError::OutOfRange`], plus any expression-evaluation error.
    pub fn transitions_checked(&self, state: &[i64]) -> Result<Vec<(Vec<i64>, f64)>, LangError> {
        let env = self.env(state);
        let mut module_dists: Vec<Vec<(Delta, f64)>> =
            Vec::with_capacity(self.checked.program.modules.len());
        for m in &self.checked.program.modules {
            let Some(enabled) = self.enabled_commands(&env, m, state)? else {
                module_dists.push(vec![(Vec::new(), 1.0)]);
                continue;
            };
            // Uniform choice among enabled commands.
            let choice_w = 1.0 / enabled.len() as f64;
            let mut dist: Vec<(Delta, f64)> = Vec::new();
            for &ci in &enabled {
                dist.extend(self.command_dist(&env, m, ci, choice_w)?);
            }
            module_dists.push(dist);
        }
        let dists: Vec<&[(Delta, f64)]> = module_dists.iter().map(Vec::as_slice).collect();
        Ok(combine_module_dists(state, &dists))
    }

    /// The enabled actions of `state` under **MDP semantics**: every
    /// combination of one enabled command per module is one action (the
    /// nondeterministic synchronous product), and each action's
    /// distribution is the product of its commands' update distributions.
    /// Where the DTMC semantics normalizes overlapping guards into a
    /// uniform choice, here the choice is adversarial — `Pmin`/`Pmax`
    /// quantify over it. A module with no enabled command stutters when
    /// [`ExpandOptions::allow_stutter`] is set (contributing a single
    /// identity command to every action) and deadlocks otherwise.
    ///
    /// For single-module programs this coincides with PRISM's MDP
    /// semantics; actions are ordered lexicographically by the source
    /// order of the chosen commands, so action indices are stable.
    ///
    /// # Errors
    ///
    /// As for [`LangModel::transitions_checked`].
    pub fn actions_checked(&self, state: &[i64]) -> Result<Vec<ActionDist>, LangError> {
        let env = self.env(state);
        // Per module: the distributions of its enabled commands (a
        // stuttering module contributes one identity command).
        let mut module_cmds: Vec<Vec<Vec<(Delta, f64)>>> =
            Vec::with_capacity(self.checked.program.modules.len());
        for m in &self.checked.program.modules {
            let Some(enabled) = self.enabled_commands(&env, m, state)? else {
                module_cmds.push(vec![vec![(Vec::new(), 1.0)]]);
                continue;
            };
            let mut cmds = Vec::with_capacity(enabled.len());
            for &ci in &enabled {
                cmds.push(self.command_dist(&env, m, ci, 1.0)?);
            }
            module_cmds.push(cmds);
        }

        // Odometer over the command choice of each module.
        let mut actions = Vec::new();
        let mut idx = vec![0usize; module_cmds.len()];
        loop {
            let chosen: Vec<&[(Delta, f64)]> = idx
                .iter()
                .zip(&module_cmds)
                .map(|(&k, cmds)| cmds[k].as_slice())
                .collect();
            actions.push(combine_module_dists(state, &chosen));
            let mut k = module_cmds.len();
            loop {
                if k == 0 {
                    return Ok(actions);
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < module_cmds[k].len() {
                    break;
                }
                idx[k] = 0;
            }
        }
    }
}

/// One MDP action (or DTMC step): a distribution over successor state
/// vectors.
pub type ActionDist = Vec<(Vec<i64>, f64)>;

/// A sparse variable update: `(var index, new value)` pairs.
type Delta = Vec<(usize, i64)>;

/// The synchronous product of one delta-distribution per module: cartesian
/// combination applied to `state`, with duplicate successors merged so
/// downstream consumers see a distribution, not a multiset. Successors are
/// returned sorted by state vector: the merge map's iteration order is
/// per-instance random, and letting it leak would make BFS state ids (and
/// every exported artifact) differ from run to run — and between the DTMC
/// and MDP compilers on the same program.
fn combine_module_dists(state: &[i64], module_dists: &[&[(Delta, f64)]]) -> Vec<(Vec<i64>, f64)> {
    let mut out: Vec<(Vec<i64>, f64)> = vec![(state.to_vec(), 1.0)];
    for dist in module_dists {
        let mut next = Vec::with_capacity(out.len() * dist.len());
        for (base, bp) in &out {
            for (delta, dp) in *dist {
                let mut s = base.clone();
                for &(vi, val) in delta {
                    s[vi] = val;
                }
                next.push((s, bp * dp));
            }
        }
        out = next;
    }
    let mut merged: HashMap<Vec<i64>, f64> = HashMap::with_capacity(out.len());
    for (s, p) in out {
        *merged.entry(s).or_insert(0.0) += p;
    }
    let mut out: Vec<(Vec<i64>, f64)> = merged.into_iter().collect();
    out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    out
}

impl DtmcModel for LangModel {
    type State = Vec<i64>;

    fn initial_states(&self) -> Vec<(Vec<i64>, f64)> {
        vec![(self.initial_state(), 1.0)]
    }

    /// # Panics
    ///
    /// On any expansion error (deadlock, bad distribution, range
    /// violation) — the trait has no error channel. Use
    /// [`LangModel::transitions_checked`] or [`compile`] to keep errors as
    /// values.
    fn transitions(&self, state: &Vec<i64>) -> Vec<(Vec<i64>, f64)> {
        match self.transitions_checked(state) {
            Ok(t) => t,
            Err(e) => panic!("state expansion failed: {e}"),
        }
    }

    fn atomic_propositions(&self) -> Vec<&'static str> {
        self.ap_names.clone()
    }

    fn holds(&self, ap: &str, state: &Vec<i64>) -> bool {
        for (l, name) in self.checked.program.labels.iter().zip(&self.ap_names) {
            if *name == ap {
                return self
                    .eval_bool(&l.body, state, "label body")
                    .unwrap_or_else(|e| panic!("label {ap:?} failed to evaluate: {e}"));
            }
        }
        false
    }

    fn state_reward(&self, state: &Vec<i64>) -> f64 {
        let Some(block) = default_rewards_block(&self.checked) else {
            return 0.0;
        };
        let mut total = 0.0;
        for item in &block.items {
            let on = self
                .eval_bool(&item.guard, state, "reward guard")
                .unwrap_or_else(|e| panic!("reward guard failed to evaluate: {e}"));
            if on {
                total += self
                    .eval_num(&item.value, state, "reward value")
                    .unwrap_or_else(|e| panic!("reward value failed to evaluate: {e}"));
            }
        }
        total
    }
}

/// The default reward structure: the unnamed block if present, else the
/// first block, else none.
fn default_rewards_block(cp: &CheckedProgram) -> Option<&crate::ast::RewardsDecl> {
    cp.program
        .rewards
        .iter()
        .find(|r| r.name.is_none())
        .or_else(|| cp.program.rewards.first())
}

/// Compiles a checked program into an explicit [`Dtmc`] with default
/// options.
///
/// # Errors
///
/// Any expansion error; see [`LangModel::transitions_checked`]. Also
/// [`LangError::Dtmc`] if the enumerated space exceeds
/// [`ExpandOptions::max_states`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), smg_lang::LangError> {
/// let program = smg_lang::parse(
///     "module coin
///        heads : bool;
///        [] true -> 0.5:(heads'=true) + 0.5:(heads'=false);
///      endmodule
///      label \"h\" = heads;",
/// )?;
/// let compiled = smg_lang::compile(smg_lang::check(program)?)?;
/// assert_eq!(compiled.dtmc.n_states(), 2); // heads=false (also init), heads=true
/// # Ok(())
/// # }
/// ```
pub fn compile(checked: CheckedProgram) -> Result<CompiledModel, LangError> {
    compile_with(checked, ExpandOptions::default())
}

/// Compiles with explicit options.
///
/// # Errors
///
/// As for [`compile`].
pub fn compile_with(
    checked: CheckedProgram,
    options: ExpandOptions,
) -> Result<CompiledModel, LangError> {
    if checked.program.model_type == crate::ast::ModelType::Mdp {
        return Err(LangError::WrongModelType {
            declared: "mdp",
            hint: "use compile_mdp (or the CLI, which dispatches on the header)",
        });
    }
    let model = LangModel::with_options(checked, options);
    let init = model.initial_state();
    let explore_start = obs::enabled().then(std::time::Instant::now);

    let mut index: HashMap<Vec<i64>, u32> = HashMap::new();
    let mut states: Vec<Vec<i64>> = Vec::new();
    let mut rows: Vec<Vec<(u32, f64)>> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::new();

    index.insert(init.clone(), 0);
    states.push(init);
    queue.push_back(0);

    // BFS level bookkeeping: level k is fully discovered before its first
    // state is expanded, so `states.len()` at that moment is where level
    // k+1 will start.
    let mut levels: u64 = 0;
    let mut next_level_start: usize = 0;

    while let Some(id) = queue.pop_front() {
        if id as usize == next_level_start {
            levels += 1;
            next_level_start = states.len();
        }
        let succ = model.transitions_checked(&states[id as usize])?;
        let mut row: Vec<(u32, f64)> = Vec::with_capacity(succ.len());
        for (s, p) in succ {
            let next_id = match index.entry(s) {
                Entry::Occupied(o) => *o.get(),
                Entry::Vacant(v) => {
                    let nid = states.len() as u32;
                    if states.len() >= options.max_states {
                        return Err(LangError::Dtmc(format!(
                            "state space exceeds max_states={}",
                            options.max_states
                        )));
                    }
                    states.push(v.key().clone());
                    v.insert(nid);
                    queue.push_back(nid);
                    nid
                }
            };
            row.push((next_id, p));
        }
        row.sort_by_key(|&(s, _)| s);
        debug_assert!(rows.len() == id as usize);
        rows.push(row);
    }

    let n = states.len();
    let matrix = TransitionMatrix::Sparse(
        CsrMatrix::from_rows(rows).map_err(|e| LangError::Dtmc(e.to_string()))?,
    );
    if let Some(start) = explore_start {
        obs::counter_add("smg_explore_states_total", None, n as u64);
        obs::counter_add(
            "smg_explore_transitions_total",
            None,
            matrix.logical_transitions() as u64,
        );
        obs::counter_add("smg_explore_levels_total", None, levels);
        obs::observe("smg_explore_seconds", None, start.elapsed().as_secs_f64());
    }

    let mut labels: BTreeMap<String, BitVec> = BTreeMap::new();
    for l in &model.checked().program.labels {
        let mut bv = BitVec::zeros(n);
        for (i, s) in states.iter().enumerate() {
            bv.set(i, model.eval_bool(&l.body, s, "label body")?);
        }
        labels.insert(l.name.clone(), bv);
    }

    let eval_block = |block: &crate::ast::RewardsDecl| -> Result<Vec<f64>, LangError> {
        let mut out = vec![0.0; n];
        for (i, s) in states.iter().enumerate() {
            let mut total = 0.0;
            for item in &block.items {
                if model.eval_bool(&item.guard, s, "reward guard")? {
                    total += model.eval_num(&item.value, s, "reward value")?;
                }
            }
            out[i] = total;
        }
        Ok(out)
    };

    let default_rewards = match default_rewards_block(model.checked()) {
        Some(block) => eval_block(block)?,
        None => vec![0.0; n],
    };
    let mut named_rewards = BTreeMap::new();
    for block in &model.checked().program.rewards {
        if let Some(name) = &block.name {
            named_rewards.insert(name.clone(), eval_block(block)?);
        }
    }

    let dtmc = Dtmc::new(matrix, vec![(0, 1.0)], labels, default_rewards)
        .map_err(|e| LangError::Dtmc(e.to_string()))?;

    let var_names = model
        .checked()
        .vars
        .iter()
        .map(|v| v.name.clone())
        .collect();
    Ok(CompiledModel {
        dtmc,
        var_names,
        states,
        named_rewards,
    })
}

/// The result of compiling an `mdp` program: the explicit MDP plus the
/// same name↔state bookkeeping as [`CompiledModel`].
#[derive(Debug, Clone)]
pub struct CompiledMdp {
    /// The explicit MDP. Labels carry the program's `label` declarations;
    /// the reward vector is the default reward structure.
    pub mdp: Mdp,
    /// Variable names in state-vector order.
    pub var_names: Vec<String>,
    /// The concrete variable assignment of every explored state, indexed
    /// by [`smg_dtmc::StateId`].
    pub states: Vec<Vec<i64>>,
    /// Named reward structures (`rewards "name" ...`), as dense vectors.
    pub named_rewards: BTreeMap<String, Vec<f64>>,
}

impl CompiledMdp {
    /// A reward structure by name; `None` requests the default (unnamed)
    /// structure, which is also baked into [`CompiledMdp::mdp`].
    pub fn reward_vector(&self, name: Option<&str>) -> Option<&[f64]> {
        match name {
            None => Some(self.mdp.rewards()),
            Some(n) => self.named_rewards.get(n).map(Vec::as_slice),
        }
    }

    /// Renders a state as `{x=1, b=false}` for diagnostics.
    pub fn render_state(&self, id: smg_dtmc::StateId) -> String {
        render_assignment(&self.var_names, &self.states[id as usize])
    }
}

/// Compiles a checked program into an explicit [`Mdp`] with default
/// options, under the MDP semantics of [`LangModel::actions_checked`].
///
/// Accepts programs of either declared model type: compiling a `dtmc`
/// program here reinterprets its overlapping guards as nondeterministic
/// (useful to ask "what if the uniform choice were adversarial?"), while
/// [`compile`] rejects `mdp` programs outright — collapsing declared
/// nondeterminism into coin flips silently is never what the model meant.
///
/// # Errors
///
/// Any expansion error; see [`LangModel::actions_checked`]. Also
/// [`LangError::Dtmc`] if the enumerated space exceeds
/// [`ExpandOptions::max_states`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), smg_lang::LangError> {
/// let program = smg_lang::parse(
///     "mdp
///      module chan
///        err : bool init false;
///        [] !err -> 0.01:(err'=true) + 0.99:(err'=false); // quiet regime
///        [] !err -> 0.2:(err'=true) + 0.8:(err'=false);   // bursty regime
///        [] err  -> true;
///      endmodule
///      label \"err\" = err;",
/// )?;
/// let compiled = smg_lang::compile_mdp(smg_lang::check(program)?)?;
/// assert_eq!(compiled.mdp.n_states(), 2);
/// assert_eq!(compiled.mdp.action_count(0), 2); // the adversary's regimes
/// # Ok(())
/// # }
/// ```
pub fn compile_mdp(checked: CheckedProgram) -> Result<CompiledMdp, LangError> {
    compile_mdp_with(checked, ExpandOptions::default())
}

/// Compiles to an explicit [`Mdp`] with explicit options.
///
/// # Errors
///
/// As for [`compile_mdp`].
pub fn compile_mdp_with(
    checked: CheckedProgram,
    options: ExpandOptions,
) -> Result<CompiledMdp, LangError> {
    let model = LangModel::with_options(checked, options);
    let init = model.initial_state();
    let explore_start = obs::enabled().then(std::time::Instant::now);

    let mut index: HashMap<Vec<i64>, u32> = HashMap::new();
    let mut states: Vec<Vec<i64>> = Vec::new();
    let mut builder = MdpBuilder::default();
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut row: Vec<(u32, f64)> = Vec::new();

    index.insert(init.clone(), 0);
    states.push(init);
    queue.push_back(0);

    // Same BFS level bookkeeping as the DTMC path above.
    let mut levels: u64 = 0;
    let mut next_level_start: usize = 0;

    while let Some(id) = queue.pop_front() {
        if id as usize == next_level_start {
            levels += 1;
            next_level_start = states.len();
        }
        let actions = model.actions_checked(&states[id as usize])?;
        debug_assert!(!actions.is_empty(), "modules are non-empty");
        for succ in actions {
            row.clear();
            for (s, p) in succ {
                let next_id = match index.entry(s) {
                    Entry::Occupied(o) => *o.get(),
                    Entry::Vacant(v) => {
                        let nid = states.len() as u32;
                        if states.len() >= model.options.max_states {
                            return Err(LangError::Dtmc(format!(
                                "state space exceeds max_states={}",
                                model.options.max_states
                            )));
                        }
                        states.push(v.key().clone());
                        v.insert(nid);
                        queue.push_back(nid);
                        nid
                    }
                };
                row.push((next_id, p));
            }
            builder
                .push_action(&mut row)
                .map_err(|e| LangError::Dtmc(e.to_string()))?;
        }
        debug_assert!(builder.states() == id as usize);
        builder
            .finish_state()
            .map_err(|e| LangError::Dtmc(e.to_string()))?;
    }

    let n = states.len();
    let mut labels: BTreeMap<String, BitVec> = BTreeMap::new();
    for l in &model.checked().program.labels {
        let mut bv = BitVec::zeros(n);
        for (i, s) in states.iter().enumerate() {
            bv.set(i, model.eval_bool(&l.body, s, "label body")?);
        }
        labels.insert(l.name.clone(), bv);
    }

    let eval_block = |block: &crate::ast::RewardsDecl| -> Result<Vec<f64>, LangError> {
        let mut out = vec![0.0; n];
        for (i, s) in states.iter().enumerate() {
            let mut total = 0.0;
            for item in &block.items {
                if model.eval_bool(&item.guard, s, "reward guard")? {
                    total += model.eval_num(&item.value, s, "reward value")?;
                }
            }
            out[i] = total;
        }
        Ok(out)
    };

    let default_rewards = match default_rewards_block(model.checked()) {
        Some(block) => eval_block(block)?,
        None => vec![0.0; n],
    };
    let mut named_rewards = BTreeMap::new();
    for block in &model.checked().program.rewards {
        if let Some(name) = &block.name {
            named_rewards.insert(name.clone(), eval_block(block)?);
        }
    }

    let mdp = Mdp::new(builder.finish(), vec![(0, 1.0)], labels, default_rewards)
        .map_err(|e| LangError::Dtmc(e.to_string()))?;
    if let Some(start) = explore_start {
        obs::counter_add("smg_explore_states_total", None, n as u64);
        obs::counter_add(
            "smg_explore_transitions_total",
            None,
            mdp.n_transitions() as u64,
        );
        obs::counter_add("smg_explore_levels_total", None, levels);
        obs::observe("smg_explore_seconds", None, start.elapsed().as_secs_f64());
    }

    let var_names = model
        .checked()
        .vars
        .iter()
        .map(|v| v.name.clone())
        .collect();
    Ok(CompiledMdp {
        mdp,
        var_names,
        states,
        named_rewards,
    })
}

/// The result of compiling a program of *either* model type: the explicit
/// model as an [`AnyModel`] plus the shared name↔state bookkeeping.
/// Produced by [`compile_any`], consumed by
/// [`smg_pctl::session::CheckSession`] (which accepts an `AnyModel`
/// directly via the `From` impl below).
#[derive(Debug, Clone)]
pub struct CompiledAny {
    /// The explicit model — a chain for `dtmc` programs, an MDP for `mdp`
    /// programs.
    pub model: AnyModel,
    /// Variable names in state-vector order.
    pub var_names: Vec<String>,
    /// The concrete variable assignment of every explored state, indexed
    /// by [`smg_dtmc::StateId`].
    pub states: Vec<Vec<i64>>,
    /// Named reward structures (`rewards "name" ...`), as dense vectors.
    pub named_rewards: BTreeMap<String, Vec<f64>>,
}

impl CompiledAny {
    /// Renders a state as `{x=1, b=false}` for diagnostics.
    pub fn render_state(&self, id: smg_dtmc::StateId) -> String {
        render_assignment(&self.var_names, &self.states[id as usize])
    }
}

impl From<CompiledAny> for AnyModel {
    fn from(c: CompiledAny) -> AnyModel {
        c.model
    }
}

/// Compiles a checked program into an [`AnyModel`], dispatching on the
/// program's declared model type: `dtmc` programs become explicit chains
/// (exactly as [`compile`]), `mdp` programs explicit MDPs (exactly as
/// [`compile_mdp`]). This is the entry point for callers that don't care
/// which family the model file declares — it replaces the
/// pick-an-entry-point-and-handle-[`LangError::WrongModelType`] dance with
/// a value [`smg_pctl::session::CheckSession`] accepts directly.
///
/// # Errors
///
/// As for [`compile`] / [`compile_mdp`] respectively — but never
/// [`LangError::WrongModelType`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use smg_pctl::{parse_property, CheckSession};
///
/// let program = smg_lang::parse(
///     "mdp
///      module chan
///        err : bool init false;
///        [] !err -> 0.01:(err'=true) + 0.99:(err'=false);
///        [] !err -> 0.2:(err'=true) + 0.8:(err'=false);
///        [] err  -> true;
///      endmodule
///      label \"err\" = err;",
/// )?;
/// let compiled = smg_lang::compile_any(smg_lang::check(program)?)?;
/// assert_eq!(compiled.model.kind(), "mdp");
/// let session = CheckSession::new(compiled.model);
/// let worst = session.check(&parse_property("Pmax=? [ F<=10 err ]")?)?;
/// assert!(worst.value() > 0.5);
/// # Ok(())
/// # }
/// ```
pub fn compile_any(checked: CheckedProgram) -> Result<CompiledAny, LangError> {
    compile_any_with(checked, ExpandOptions::default())
}

/// Compiles to an [`AnyModel`] with explicit options.
///
/// # Errors
///
/// As for [`compile_any`].
pub fn compile_any_with(
    checked: CheckedProgram,
    options: ExpandOptions,
) -> Result<CompiledAny, LangError> {
    match checked.program.model_type {
        crate::ast::ModelType::Dtmc => {
            let c = compile_with(checked, options)?;
            Ok(CompiledAny {
                model: AnyModel::Dtmc(c.dtmc),
                var_names: c.var_names,
                states: c.states,
                named_rewards: c.named_rewards,
            })
        }
        crate::ast::ModelType::Mdp => {
            let c = compile_mdp_with(checked, options)?;
            Ok(CompiledAny {
                model: AnyModel::Mdp(c.mdp),
                var_names: c.var_names,
                states: c.states,
                named_rewards: c.named_rewards,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::parser::parse;

    fn compiled(src: &str) -> Result<CompiledModel, LangError> {
        compile(check(parse(src).unwrap())?)
    }

    fn compiled_mdp(src: &str) -> Result<CompiledMdp, LangError> {
        compile_mdp(check(parse(src).unwrap())?)
    }

    #[test]
    fn coin_flip_has_three_states() {
        let m = compiled(
            "module coin
               heads : bool;
               [] true -> 0.5:(heads'=true) + 0.5:(heads'=false);
             endmodule
             label \"h\" = heads;",
        )
        .unwrap();
        assert_eq!(m.dtmc.n_states(), 2); // heads=false (init, revisited), heads=true
        assert_eq!(m.dtmc.label("h").unwrap().count_ones(), 1);
    }

    #[test]
    fn knuth_yao_die_is_uniform() {
        // The classic fair-coin-to-die chain: 13 states, each face 1/6.
        let m = compiled(
            "module die
               s : [0..7] init 0;
               d : [0..6] init 0;
               [] s=0 -> 0.5:(s'=1) + 0.5:(s'=2);
               [] s=1 -> 0.5:(s'=3) + 0.5:(s'=4);
               [] s=2 -> 0.5:(s'=5) + 0.5:(s'=6);
               [] s=3 -> 0.5:(s'=1) + 0.5:(s'=7)&(d'=1);
               [] s=4 -> 0.5:(s'=7)&(d'=2) + 0.5:(s'=7)&(d'=3);
               [] s=5 -> 0.5:(s'=7)&(d'=4) + 0.5:(s'=7)&(d'=5);
               [] s=6 -> 0.5:(s'=2) + 0.5:(s'=7)&(d'=6);
               [] s=7 -> (s'=7);
             endmodule
             label \"done\" = s=7;",
        )
        .unwrap();
        assert_eq!(m.dtmc.n_states(), 13);
        // Forward-propagate long enough to absorb: each face gets 1/6.
        let pi = smg_dtmc::transient::distribution_at(&m.dtmc, 100);
        for face in 1..=6i64 {
            let mass: f64 = m
                .states
                .iter()
                .enumerate()
                .filter(|(_, s)| s[0] == 7 && s[1] == face)
                .map(|(i, _)| pi[i])
                .sum();
            assert!((mass - 1.0 / 6.0).abs() < 1e-9, "face {face}: {mass}");
        }
    }

    #[test]
    fn unassigned_variables_keep_their_values() {
        let m = compiled(
            "module m
               x : [0..1] init 1;
               y : [0..1] init 0;
               [] true -> (y'=1-y);
             endmodule",
        )
        .unwrap();
        assert!(m.states.iter().all(|s| s[0] == 1));
    }

    #[test]
    fn two_modules_step_synchronously() {
        // Two independent toggles: the product chain alternates both bits
        // together — 2 reachable states, not 4.
        let m = compiled(
            "module a x : bool init false; [] true -> (x'=!x); endmodule
             module b y : bool init false; [] true -> (y'=!y); endmodule",
        )
        .unwrap();
        assert_eq!(m.dtmc.n_states(), 2);
        assert!(m.states.contains(&vec![0, 0]) && m.states.contains(&vec![1, 1]));
    }

    #[test]
    fn synchronous_probabilities_multiply() {
        let m = compiled(
            "module a x : bool; [] true -> 0.5:(x'=true) + 0.5:(x'=false); endmodule
             module b y : bool; [] true -> 0.5:(y'=true) + 0.5:(y'=false); endmodule",
        )
        .unwrap();
        // From the initial state, four successors each with mass 1/4.
        let row: Vec<(u32, f64)> = m.dtmc.matrix().successors(0);
        assert_eq!(row.len(), 4);
        for (_, p) in row {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn overlapping_guards_make_a_uniform_choice() {
        // Both commands enabled: uniform 1/2 over them, times their update
        // distributions.
        let m = compiled(
            "module m
               x : [0..2] init 0;
               [] x=0 -> (x'=1);
               [] x=0 -> (x'=2);
               [] x>0 -> (x'=x);
             endmodule",
        )
        .unwrap();
        let row = m.dtmc.matrix().successors(0);
        assert_eq!(row.len(), 2);
        for (_, p) in row {
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn deadlock_is_reported_with_state() {
        let err = compiled(
            "module m
               x : [0..1] init 0;
               [] x=0 -> (x'=1);
             endmodule",
        )
        .unwrap_err();
        let LangError::Deadlock { module, state } = err else {
            panic!("expected deadlock, got {err}");
        };
        assert_eq!(module, "m");
        assert!(state.contains("x=1"));
    }

    #[test]
    fn stutter_option_turns_deadlock_into_self_loop() {
        let cp = check(
            parse(
                "module m
               x : [0..1] init 0;
               [] x=0 -> (x'=1);
             endmodule",
            )
            .unwrap(),
        )
        .unwrap();
        let m = compile_with(
            cp,
            ExpandOptions {
                allow_stutter: true,
                ..ExpandOptions::default()
            },
        )
        .unwrap();
        assert_eq!(m.dtmc.n_states(), 2);
        assert_eq!(m.dtmc.matrix().successors(1), vec![(1, 1.0)]);
    }

    #[test]
    fn bad_distribution_is_rejected() {
        let err =
            compiled("module m x : bool; [] true -> 0.5:(x'=true) + 0.4:(x'=false); endmodule")
                .unwrap_err();
        assert!(matches!(err, LangError::BadDistribution { sum, .. } if (sum - 0.9).abs() < 1e-12));
    }

    #[test]
    fn negative_probability_is_rejected() {
        let err = compiled(
            "const double p = -0.25;
             module m x : bool; [] true -> p:(x'=true) + (1-p):(x'=false); endmodule",
        )
        .unwrap_err();
        assert!(matches!(err, LangError::BadProbability { .. }));
    }

    #[test]
    fn out_of_range_update_is_rejected_with_details() {
        let err =
            compiled("module m x : [0..3] init 0; [] true -> (x'=x+1); endmodule").unwrap_err();
        assert!(
            matches!(err, LangError::OutOfRange { ref var, value: 4, lo: 0, hi: 3 } if var == "x")
        );
    }

    #[test]
    fn state_cap_is_enforced() {
        let cp = check(
            parse("module m x : [0..1000000] init 0; [] true -> (x'=min(x+1, 1000000)); endmodule")
                .unwrap(),
        )
        .unwrap();
        let err = compile_with(
            cp,
            ExpandOptions {
                max_states: 100,
                ..ExpandOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, LangError::Dtmc(ref m) if m.contains("max_states")));
    }

    #[test]
    fn rewards_default_and_named() {
        let m = compiled(
            "module m
               x : [0..1] init 0;
               [] true -> (x'=1-x);
             endmodule
             rewards x=1 : 1; endrewards
             rewards \"double\" x=1 : 2; true : 0.5; endrewards",
        )
        .unwrap();
        let def = m.reward_vector(None).unwrap();
        let dbl = m.reward_vector(Some("double")).unwrap();
        for (i, s) in m.states.iter().enumerate() {
            if s[0] == 1 {
                assert_eq!(def[i], 1.0);
                assert_eq!(dbl[i], 2.5);
            } else {
                assert_eq!(def[i], 0.0);
                assert_eq!(dbl[i], 0.5);
            }
        }
        assert!(m.reward_vector(Some("missing")).is_none());
    }

    #[test]
    fn langmodel_implements_dtmcmodel_for_reduction_tooling() {
        let cp = check(
            parse(
                "module m
               x : [0..1] init 0;
               [] true -> 0.5:(x'=0) + 0.5:(x'=1);
             endmodule
             label \"one\" = x=1;",
            )
            .unwrap(),
        )
        .unwrap();
        let lm = LangModel::new(cp);
        assert_eq!(lm.initial_states(), vec![(vec![0], 1.0)]);
        assert_eq!(lm.transitions(&vec![0]).len(), 2);
        assert_eq!(lm.atomic_propositions(), vec!["one"]);
        assert!(lm.holds("one", &vec![1]));
        assert!(!lm.holds("one", &vec![0]));
        assert!(!lm.holds("unknown", &vec![1]));
        assert_eq!(lm.state_reward(&vec![1]), 0.0); // no rewards block
    }

    #[test]
    fn render_state_names_variables() {
        let m =
            compiled("module m x : [0..2] init 2; b : bool init true; [] true -> true; endmodule")
                .unwrap();
        assert_eq!(m.render_state(0), "{x=2, b=1}");
    }

    const REGIME_MDP: &str = r#"
        mdp
        module chan
          err : bool init false;
          [] !err -> 0.01:(err'=true) + 0.99:(err'=false);
          [] !err -> 0.2:(err'=true) + 0.8:(err'=false);
          [] err  -> true;
        endmodule
        label "err" = err;
        rewards err : 1; endrewards
    "#;

    #[test]
    fn mdp_overlapping_guards_become_actions() {
        let m = compiled_mdp(REGIME_MDP).unwrap();
        assert_eq!(m.mdp.n_states(), 2);
        assert_eq!(m.mdp.action_count(0), 2);
        assert_eq!(m.mdp.action_count(1), 1);
        // Action 0 is the first enabled command in source order.
        let a0: Vec<_> = m.mdp.action_row(0, 0).collect();
        let one = m.states.iter().position(|s| s[0] == 1).unwrap() as u32;
        assert!(a0
            .iter()
            .any(|&(c, p)| c == one && (p - 0.01).abs() < 1e-12));
        let a1: Vec<_> = m.mdp.action_row(0, 1).collect();
        assert!(a1.iter().any(|&(c, p)| c == one && (p - 0.2).abs() < 1e-12));
        assert_eq!(m.mdp.label("err").unwrap().count_ones(), 1);
        assert_eq!(m.mdp.rewards()[one as usize], 1.0);
        assert_eq!(m.render_state(0), "{err=0}");
    }

    #[test]
    fn mdp_multi_module_actions_are_command_combinations() {
        // Module a has 2 enabled commands, module b has 1: 2 actions, each
        // the synchronous product of its command choice.
        let m = compiled_mdp(
            "mdp
             module a x : bool; [] true -> (x'=true); [] true -> (x'=false); endmodule
             module b y : bool; [] true -> 0.5:(y'=true) + 0.5:(y'=false); endmodule",
        )
        .unwrap();
        assert_eq!(m.mdp.action_count(0), 2);
        for a in 0..2 {
            let row: Vec<_> = m.mdp.action_row(0, a).collect();
            assert_eq!(row.len(), 2, "each action splits only on b's coin");
            assert!(row.iter().all(|&(_, p)| (p - 0.5).abs() < 1e-12));
        }
    }

    #[test]
    fn mdp_deadlock_and_stutter() {
        let src = "mdp
             module m x : [0..1] init 0; [] x=0 -> (x'=1); endmodule";
        let err = compiled_mdp(src).unwrap_err();
        assert!(matches!(err, LangError::Deadlock { .. }));
        let m = compile_mdp_with(
            check(parse(src).unwrap()).unwrap(),
            ExpandOptions {
                allow_stutter: true,
                ..ExpandOptions::default()
            },
        )
        .unwrap();
        assert_eq!(m.mdp.n_states(), 2);
        assert_eq!(m.mdp.action_row(1, 0).collect::<Vec<_>>(), vec![(1, 1.0)]);
    }

    #[test]
    fn compile_rejects_mdp_programs_and_vice_versa_works() {
        let err = compiled(REGIME_MDP).unwrap_err();
        assert!(matches!(err, LangError::WrongModelType { .. }));
        // compile_mdp on a dtmc-typed program reinterprets the uniform
        // choice as nondeterministic.
        let m = compiled_mdp(
            "dtmc
             module m
               x : [0..2] init 0;
               [] x=0 -> (x'=1);
               [] x=0 -> (x'=2);
               [] x>0 -> (x'=x);
             endmodule",
        )
        .unwrap();
        assert_eq!(m.mdp.action_count(0), 2);
    }

    #[test]
    fn mdp_single_command_program_matches_dtmc_compile() {
        // With exactly one enabled command everywhere, the MDP is the DTMC
        // with one action per state.
        let src = "module die
               s : [0..3] init 0;
               [] s=0 -> 0.5:(s'=1) + 0.5:(s'=2);
               [] s>0 -> (s'=min(s+1, 3));
             endmodule
             label \"end\" = s=3;";
        let d = compiled(src).unwrap();
        let m = compiled_mdp(src).unwrap();
        assert_eq!(m.mdp.n_states(), d.dtmc.n_states());
        assert_eq!(m.mdp.n_choices(), d.dtmc.n_states());
        assert_eq!(m.states, d.states);
        for s in 0..d.dtmc.n_states() {
            assert_eq!(
                m.mdp.action_row(s, 0).collect::<Vec<_>>(),
                d.dtmc.matrix().successors(s),
                "state {s}"
            );
        }
    }

    #[test]
    fn mdp_named_rewards_and_state_cap() {
        let m = compiled_mdp(
            "mdp
             module m x : [0..1] init 0; [] true -> (x'=1-x); endmodule
             rewards x=1 : 1; endrewards
             rewards \"double\" x=1 : 2; endrewards",
        )
        .unwrap();
        assert_eq!(m.reward_vector(None).unwrap().iter().sum::<f64>(), 1.0);
        assert_eq!(
            m.reward_vector(Some("double")).unwrap().iter().sum::<f64>(),
            2.0
        );
        assert!(m.reward_vector(Some("missing")).is_none());
        let err = compile_mdp_with(
            check(
                parse("mdp module m x : [0..100000] init 0; [] true -> (x'=min(x+1,100000)); endmodule")
                    .unwrap(),
            )
            .unwrap(),
            ExpandOptions {
                max_states: 50,
                ..ExpandOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, LangError::Dtmc(ref s) if s.contains("max_states")));
    }

    #[test]
    fn formulas_are_usable_in_guards_and_labels() {
        let m = compiled(
            "formula at_top = x=2;
             module m
               x : [0..2] init 0;
               [] !at_top -> (x'=x+1);
               [] at_top -> (x'=0);
             endmodule
             label \"top\" = at_top;",
        )
        .unwrap();
        assert_eq!(m.dtmc.n_states(), 3);
        assert_eq!(m.dtmc.label("top").unwrap().count_ones(), 1);
    }

    #[test]
    fn compile_any_dispatches_on_the_header() {
        let dtmc_src = "dtmc
             module m
               x : bool init false;
               [] true -> 0.5:(x'=true) + 0.5:(x'=false);
             endmodule
             label \"x\" = x;";
        let any = compile_any(check(parse(dtmc_src).unwrap()).unwrap()).unwrap();
        assert_eq!(any.model.kind(), "dtmc");
        assert_eq!(any.model.n_states(), 2);
        assert_eq!(any.var_names, vec!["x"]);
        assert_eq!(any.render_state(0), "{x=0}");
        // Same program, mdp header: the model comes out nondeterministic,
        // and the bookkeeping matches the dedicated entry point's.
        let mdp_src = "mdp
             module m
               x : bool init false;
               [] !x -> 0.5:(x'=true) + 0.5:(x'=false);
               [] !x -> (x'=true);
               [] x -> true;
             endmodule
             label \"x\" = x;";
        let any = compile_any(check(parse(mdp_src).unwrap()).unwrap()).unwrap();
        assert_eq!(any.model.kind(), "mdp");
        let dedicated = compiled_mdp(mdp_src).unwrap();
        assert_eq!(any.states, dedicated.states);
        assert_eq!(
            any.model.as_mdp().unwrap().n_choices(),
            dedicated.mdp.n_choices()
        );
        // No WrongModelType dance in either direction.
        let model: AnyModel = any.into();
        assert!(model.is_mdp());
    }
}
