//! Semantic analysis: constant folding, name resolution and structural
//! checks, producing a [`CheckedProgram`] ready for state-space expansion.
//!
//! Checks performed here (before any state is enumerated):
//!
//! * constants fold in declaration order, rejecting duplicates, forward
//!   references and unbound names;
//! * variable ranges are constant, non-empty, and initial values lie inside
//!   them; variable, constant, formula and module names do not collide;
//! * every name referenced anywhere resolves to a variable, constant or
//!   formula (typos surface at compile time, not at some unlucky state);
//! * commands only assign to variables owned by their module;
//! * label names are unique.
//!
//! Type errors inside expressions (e.g. a guard evaluating to an integer)
//! are caught dynamically during expansion, where the offending state can
//! be reported.

use crate::ast::{DeclType, Expr, Program};
use crate::error::{LangError, Pos};
use crate::value::{eval, Env, Value};
use std::collections::{HashMap, HashSet};

/// A resolved state variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// Variable name.
    pub name: String,
    /// Inclusive lower bound (0 for `bool`).
    pub lo: i64,
    /// Inclusive upper bound (1 for `bool`).
    pub hi: i64,
    /// Initial value.
    pub init: i64,
    /// Whether declared `bool` (affects how values re-enter expressions).
    pub is_bool: bool,
    /// Index of the owning module in [`CheckedProgram::module_names`].
    pub module: usize,
}

/// A program that has passed semantic analysis.
#[derive(Debug, Clone)]
pub struct CheckedProgram {
    /// The source program (commands are interpreted from here during
    /// expansion).
    pub program: Program,
    /// Folded constants.
    pub consts: HashMap<String, Value>,
    /// Formula bodies by name.
    pub formulas: HashMap<String, Expr>,
    /// State variables in declaration order (module order, then source
    /// order within a module) — the state vector layout.
    pub vars: Vec<VarInfo>,
    /// Variable name → index in [`CheckedProgram::vars`].
    pub var_index: HashMap<String, usize>,
    /// Module names, in source order.
    pub module_names: Vec<String>,
}

impl CheckedProgram {
    /// Upper bound on the reachable state count: the product of all
    /// variable range sizes (saturating).
    pub fn state_space_bound(&self) -> u128 {
        self.vars
            .iter()
            .map(|v| (v.hi - v.lo + 1) as u128)
            .fold(1u128, |acc, n| acc.saturating_mul(n))
    }
}

/// Runs semantic analysis on a parsed program.
///
/// # Errors
///
/// See the module docs; every structural defect maps to a specific
/// [`LangError`] variant naming the offender.
pub fn check(program: Program) -> Result<CheckedProgram, LangError> {
    if program.modules.is_empty() {
        return Err(LangError::NoModules);
    }

    // Fold constants in order; each may reference those before it.
    let mut consts: HashMap<String, Value> = HashMap::new();
    let empty_formulas: HashMap<String, Expr> = HashMap::new();
    for c in &program.consts {
        if consts.contains_key(&c.name) {
            return Err(LangError::DuplicateName {
                name: c.name.clone(),
                pos: c.pos,
            });
        }
        let env = Env {
            vars: HashMap::new(),
            consts: &consts,
            formulas: &empty_formulas,
        };
        let v = eval(&c.value, &env)?;
        // Respect the annotated type where present (PRISM coerces
        // int-valued doubles; we require exact typing, but promote
        // int literals annotated as double).
        let v = match (c.ty.as_deref(), v) {
            (Some("double"), Value::Int(i)) => Value::Double(i as f64),
            (Some("int"), Value::Double(_)) | (Some("int"), Value::Bool(_)) => {
                return Err(LangError::TypeMismatch {
                    expected: "int",
                    found: v.type_name(),
                    context: format!("constant {}", c.name),
                })
            }
            (Some("bool"), v @ (Value::Int(_) | Value::Double(_))) => {
                return Err(LangError::TypeMismatch {
                    expected: "bool",
                    found: v.type_name(),
                    context: format!("constant {}", c.name),
                })
            }
            (_, v) => v,
        };
        consts.insert(c.name.clone(), v);
    }

    // Formula table (bodies checked for name resolution below).
    let mut formulas: HashMap<String, Expr> = HashMap::new();
    for f in &program.formulas {
        if formulas.contains_key(&f.name) || consts.contains_key(&f.name) {
            return Err(LangError::DuplicateName {
                name: f.name.clone(),
                pos: f.pos,
            });
        }
        formulas.insert(f.name.clone(), f.body.clone());
    }

    // Variables.
    let mut vars: Vec<VarInfo> = Vec::new();
    let mut var_index: HashMap<String, usize> = HashMap::new();
    let mut module_names: Vec<String> = Vec::new();
    let mut seen_modules: HashSet<&str> = HashSet::new();
    for (mi, m) in program.modules.iter().enumerate() {
        if !seen_modules.insert(&m.name) {
            return Err(LangError::DuplicateName {
                name: m.name.clone(),
                pos: m.pos,
            });
        }
        module_names.push(m.name.clone());
        for v in &m.vars {
            if var_index.contains_key(&v.name)
                || consts.contains_key(&v.name)
                || formulas.contains_key(&v.name)
            {
                return Err(LangError::DuplicateName {
                    name: v.name.clone(),
                    pos: v.pos,
                });
            }
            let const_env = Env {
                vars: HashMap::new(),
                consts: &consts,
                formulas: &empty_formulas,
            };
            let (lo, hi, is_bool) = match &v.ty {
                DeclType::Bool => (0, 1, true),
                DeclType::Range(lo_e, hi_e) => {
                    let lo =
                        eval(lo_e, &const_env)?.as_int(&format!("lower bound of {}", v.name))?;
                    let hi =
                        eval(hi_e, &const_env)?.as_int(&format!("upper bound of {}", v.name))?;
                    (lo, hi, false)
                }
            };
            if lo > hi {
                return Err(LangError::EmptyRange {
                    var: v.name.clone(),
                    lo,
                    hi,
                });
            }
            let init = match &v.init {
                None => {
                    if is_bool {
                        0
                    } else {
                        lo
                    }
                }
                Some(e) => {
                    let val = eval(e, &const_env)?;
                    if is_bool {
                        i64::from(val.as_bool(&format!("init of {}", v.name))?)
                    } else {
                        val.as_int(&format!("init of {}", v.name))?
                    }
                }
            };
            if init < lo || init > hi {
                return Err(LangError::OutOfRange {
                    var: v.name.clone(),
                    value: init,
                    lo,
                    hi,
                });
            }
            var_index.insert(v.name.clone(), vars.len());
            vars.push(VarInfo {
                name: v.name.clone(),
                lo,
                hi,
                init,
                is_bool,
                module: mi,
            });
        }
    }

    // Name resolution over every expression in the program.
    let resolve = |e: &Expr| -> Result<(), LangError> {
        let mut bad: Option<(String, Pos)> = None;
        walk_names(e, &mut |name, pos| {
            if bad.is_none()
                && !var_index.contains_key(name)
                && !consts.contains_key(name)
                && !formulas.contains_key(name)
                && name != "true"
                && name != "false"
            {
                bad = Some((name.to_string(), pos));
            }
        });
        match bad {
            Some((name, pos)) => Err(LangError::UndefinedName { name, pos }),
            None => Ok(()),
        }
    };
    for f in &program.formulas {
        resolve(&f.body)?;
    }
    for (mi, m) in program.modules.iter().enumerate() {
        for cmd in &m.commands {
            resolve(&cmd.guard)?;
            for u in &cmd.updates {
                resolve(&u.prob)?;
                for a in &u.assigns {
                    resolve(&a.value)?;
                    match var_index.get(&a.var) {
                        None => {
                            return Err(LangError::UndefinedName {
                                name: a.var.clone(),
                                pos: a.pos,
                            })
                        }
                        Some(&vi) if vars[vi].module != mi => {
                            return Err(LangError::ForeignAssignment {
                                var: a.var.clone(),
                                module: m.name.clone(),
                            })
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    }
    let mut seen_labels: HashSet<&str> = HashSet::new();
    for l in &program.labels {
        if !seen_labels.insert(&l.name) {
            return Err(LangError::DuplicateName {
                name: l.name.clone(),
                pos: l.pos,
            });
        }
        resolve(&l.body)?;
    }
    for r in &program.rewards {
        for item in &r.items {
            resolve(&item.guard)?;
            resolve(&item.value)?;
        }
    }

    Ok(CheckedProgram {
        program,
        consts,
        formulas,
        vars,
        var_index,
        module_names,
    })
}

/// Calls `f` for every name reference in `e`.
fn walk_names(e: &Expr, f: &mut impl FnMut(&str, Pos)) {
    match e {
        Expr::Int(_) | Expr::Double(_) | Expr::Bool(_) => {}
        Expr::Name(n, pos) => f(n, *pos),
        Expr::Neg(a) | Expr::Not(a) => walk_names(a, f),
        Expr::Bin(_, a, b) => {
            walk_names(a, f);
            walk_names(b, f);
        }
        Expr::Ite(c, a, b) => {
            walk_names(c, f);
            walk_names(a, f);
            walk_names(b, f);
        }
        Expr::Apply(_, args) => {
            for a in args {
                walk_names(a, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn checked(src: &str) -> Result<CheckedProgram, LangError> {
        check(parse(src).unwrap())
    }

    #[test]
    fn constants_fold_in_order() {
        let cp = checked(
            "const int N = 4; const int M = N*2; const double p = 1/4;
             module m x : [0..M] init N; [] true -> true; endmodule",
        )
        .unwrap();
        assert_eq!(cp.consts["M"], Value::Int(8));
        assert_eq!(cp.consts["p"], Value::Double(0.25));
        assert_eq!(cp.vars[0].hi, 8);
        assert_eq!(cp.vars[0].init, 4);
    }

    #[test]
    fn forward_reference_in_const_is_undefined() {
        let err = checked(
            "const int A = B; const int B = 1;
             module m x : bool; [] true -> true; endmodule",
        )
        .unwrap_err();
        assert!(matches!(err, LangError::UndefinedName { ref name, .. } if name == "B"));
    }

    #[test]
    fn annotated_const_types_are_enforced() {
        assert!(matches!(
            checked("const int k = 0.5; module m x:bool; [] true->true; endmodule").unwrap_err(),
            LangError::TypeMismatch {
                expected: "int",
                ..
            }
        ));
        // int literal annotated double is promoted.
        let cp = checked("const double k = 2; module m x:bool; [] true->true; endmodule").unwrap();
        assert_eq!(cp.consts["k"], Value::Double(2.0));
    }

    #[test]
    fn bool_vars_default_to_false_and_ranges_to_lo() {
        let cp = checked("module m b : bool; x : [3..5]; [] true -> true; endmodule").unwrap();
        assert_eq!(cp.vars[0].init, 0);
        assert!(cp.vars[0].is_bool);
        assert_eq!(cp.vars[1].init, 3);
    }

    #[test]
    fn init_out_of_range_is_rejected() {
        assert!(matches!(
            checked("module m x : [0..3] init 7; [] true -> true; endmodule").unwrap_err(),
            LangError::OutOfRange { value: 7, .. }
        ));
    }

    #[test]
    fn empty_range_is_rejected() {
        assert!(matches!(
            checked("module m x : [5..2]; [] true -> true; endmodule").unwrap_err(),
            LangError::EmptyRange { .. }
        ));
    }

    #[test]
    fn duplicate_names_across_kinds_are_rejected() {
        assert!(matches!(
            checked("const int x = 1; module m x : bool; [] true->true; endmodule").unwrap_err(),
            LangError::DuplicateName { ref name, .. } if name == "x"
        ));
        assert!(matches!(
            checked(
                "module a x : bool; [] true->true; endmodule
                 module a y : bool; [] true->true; endmodule"
            )
            .unwrap_err(),
            LangError::DuplicateName { ref name, .. } if name == "a"
        ));
        assert!(matches!(
            checked(
                "module m x:bool; [] true->true; endmodule
                 label \"e\" = x; label \"e\" = !x;"
            )
            .unwrap_err(),
            LangError::DuplicateName { ref name, .. } if name == "e"
        ));
    }

    #[test]
    fn foreign_assignment_is_rejected() {
        let err = checked(
            "module a x : bool; [] true -> (y'=true); endmodule
             module b y : bool; [] true -> true; endmodule",
        )
        .unwrap_err();
        assert!(matches!(err, LangError::ForeignAssignment { ref var, .. } if var == "y"));
    }

    #[test]
    fn reading_foreign_variables_is_allowed() {
        assert!(checked(
            "module a x : bool; [] y -> (x'=true); [] !y -> true; endmodule
             module b y : bool; [] true -> (y'=!y); endmodule",
        )
        .is_ok());
    }

    #[test]
    fn typo_in_guard_is_caught_statically() {
        let err = checked("module m x : bool; [] xx -> (x'=true); endmodule").unwrap_err();
        assert!(matches!(err, LangError::UndefinedName { ref name, .. } if name == "xx"));
    }

    #[test]
    fn no_modules_is_an_error() {
        assert!(matches!(
            check(parse("const int k = 1;").unwrap()).unwrap_err(),
            LangError::NoModules
        ));
    }

    #[test]
    fn state_space_bound_multiplies_ranges() {
        let cp = checked("module m x : [0..9]; b : bool; [] true -> true; endmodule").unwrap();
        assert_eq!(cp.state_space_bound(), 20);
    }
}
