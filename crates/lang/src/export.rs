//! Rendering an explicit [`Dtmc`] back into guarded-command source text.
//!
//! [`program_text`] produces a single-module program with one state
//! variable `s` and one command per state. Parsing and compiling the text
//! reproduces a chain isomorphic to the original (same transition
//! probabilities, labels and rewards) — the round-trip is pinned by tests
//! and gives a machine-checkable bridge between natively-built models
//! (e.g. the Viterbi and detector case studies) and the language front
//! end, mirroring how the paper's authors moved their RTL into PRISM's
//! input language.

use smg_dtmc::Dtmc;
use std::fmt::Write as _;

/// Renders `dtmc` as a parseable single-module program.
///
/// States are numbered as in the explicit chain. If the initial
/// distribution is concentrated on one state, that state becomes the
/// module's `init`; otherwise a fresh pre-initial state `n` is added whose
/// single command performs the initial draw (this preserves every
/// time-bounded property's value at the cost of shifting time by one step,
/// which callers must account for — the paper's chains all have a single
/// initial state, so the shift never arises in practice).
pub fn program_text(dtmc: &Dtmc) -> String {
    let n = dtmc.n_states();
    let single_init = dtmc.initial().len() == 1 && (dtmc.initial()[0].1 - 1.0).abs() < 1e-12;
    let (top, init) = if single_init {
        (n - 1, dtmc.initial()[0].0 as usize)
    } else {
        (n, n)
    };

    let mut out = String::new();
    out.push_str("dtmc\n\nmodule chain\n");
    let _ = writeln!(out, "  s : [0..{top}] init {init};");
    if !single_init {
        let _ = write!(out, "  [] s={n} -> ");
        for (i, (target, p)) in dtmc.initial().iter().enumerate() {
            if i > 0 {
                out.push_str(" + ");
            }
            let _ = write!(out, "{p:?}:(s'={target})");
        }
        out.push_str(";\n");
    }
    for s in 0..n {
        let _ = write!(out, "  [] s={s} -> ");
        let mut row = dtmc.matrix().successors(s);
        // Row sums are only stochastic up to f64 summation order; the
        // compiler will re-sum in its own order, so fold the residual into
        // the heaviest entry to make the emitted row robustly stochastic.
        // (When the row already sums to exactly 1.0 this is a no-op and
        // probabilities survive bit-for-bit.)
        let sum: f64 = row.iter().map(|&(_, p)| p).sum();
        if sum != 1.0 {
            if let Some(heaviest) = row
                .iter_mut()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("probabilities are not NaN"))
            {
                heaviest.1 += 1.0 - sum;
            }
        }
        for (i, (target, p)) in row.iter().enumerate() {
            if i > 0 {
                out.push_str(" + ");
            }
            // `{:?}` prints the shortest representation that parses back
            // to the identical f64, keeping the round-trip exact.
            let _ = write!(out, "{p:?}:(s'={target})");
        }
        out.push_str(";\n");
    }
    out.push_str("endmodule\n");

    for name in dtmc.label_names() {
        let bits = dtmc.label(name).expect("label_names is authoritative");
        let mut terms: Vec<String> = bits.iter_ones().map(|i| format!("s={i}")).collect();
        if terms.is_empty() {
            terms.push("false".to_string());
        }
        let _ = writeln!(out, "label \"{name}\" = {};", terms.join(" | "));
    }

    let rewards = dtmc.rewards();
    if rewards.iter().any(|&r| r != 0.0) {
        out.push_str("rewards\n");
        for (i, &r) in rewards.iter().enumerate() {
            if r != 0.0 {
                let _ = writeln!(out, "  s={i} : {r:?};");
            }
        }
        out.push_str("endrewards\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::model::compile;
    use crate::parser::parse;
    use smg_dtmc::bitvec::BitVec;
    use smg_dtmc::matrix::{CsrMatrix, TransitionMatrix};
    use std::collections::BTreeMap;

    fn mk(rows: Vec<Vec<(u32, f64)>>) -> Result<TransitionMatrix, smg_dtmc::DtmcError> {
        Ok(TransitionMatrix::Sparse(CsrMatrix::from_rows(rows)?))
    }

    fn tiny() -> Dtmc {
        let matrix = mk(vec![vec![(0, 0.25), (1, 0.75)], vec![(0, 1.0)]]).unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("flag".to_string(), BitVec::from_fn(2, |i| i == 1));
        Dtmc::new(matrix, vec![(0, 1.0)], labels, vec![0.0, 1.0]).unwrap()
    }

    #[test]
    fn round_trip_preserves_chain_labels_and_rewards() {
        let original = tiny();
        let text = program_text(&original);
        let compiled = compile(check(parse(&text).unwrap()).unwrap()).unwrap();
        assert_eq!(compiled.dtmc.n_states(), 2);
        // compile() numbers states in BFS order from the init, which here
        // coincides with the original numbering.
        for s in 0..2 {
            assert_eq!(
                compiled.dtmc.matrix().successors(s),
                original.matrix().successors(s)
            );
        }
        assert_eq!(
            compiled
                .dtmc
                .label("flag")
                .unwrap()
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![1]
        );
        assert_eq!(compiled.dtmc.rewards(), original.rewards());
    }

    #[test]
    fn exact_f64_probabilities_survive_the_trip() {
        // 1/3 is not exactly representable in decimal; `{:?}` printing must
        // still round-trip the bit pattern.
        let matrix = mk(vec![vec![(0, 1.0 / 3.0), (1, 2.0 / 3.0)], vec![(1, 1.0)]]).unwrap();
        let original = Dtmc::new(matrix, vec![(0, 1.0)], BTreeMap::new(), vec![0.0; 2]).unwrap();
        let compiled = compile(check(parse(&program_text(&original)).unwrap()).unwrap()).unwrap();
        let row = compiled.dtmc.matrix().successors(0);
        assert_eq!(row[0].1, 1.0 / 3.0);
        assert_eq!(row[1].1, 2.0 / 3.0);
    }

    #[test]
    fn distributed_initial_state_gets_a_preinit() {
        let matrix = mk(vec![vec![(0, 1.0)], vec![(1, 1.0)]]).unwrap();
        let original = Dtmc::new(
            matrix,
            vec![(0, 0.5), (1, 0.5)],
            BTreeMap::new(),
            vec![0.0; 2],
        )
        .unwrap();
        let text = program_text(&original);
        assert!(text.contains("init 2"));
        let compiled = compile(check(parse(&text).unwrap()).unwrap()).unwrap();
        assert_eq!(compiled.dtmc.n_states(), 3);
        // One step in, the mass splits 50/50 over the two absorbing states.
        let pi = smg_dtmc::transient::distribution_at(&compiled.dtmc, 1);
        let split: Vec<f64> = pi.iter().copied().filter(|&p| p > 0.0).collect();
        assert_eq!(split, vec![0.5, 0.5]);
    }

    #[test]
    fn empty_label_renders_as_false() {
        let matrix = mk(vec![vec![(0, 1.0)]]).unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("never".to_string(), BitVec::zeros(1));
        let d = Dtmc::new(matrix, vec![(0, 1.0)], labels, vec![0.0]).unwrap();
        let text = program_text(&d);
        assert!(text.contains("label \"never\" = false;"));
        // And it still parses.
        assert!(compile(check(parse(&text).unwrap()).unwrap()).is_ok());
    }
}
