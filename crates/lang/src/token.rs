//! Lexer for the guarded-command language.
//!
//! The surface syntax follows PRISM's module language closely enough that
//! small PRISM models lex unchanged: `//` line comments, `/* */` block
//! comments, `'` primes on update targets, `..` range dots, `->` in
//! commands and the usual operator set.

use crate::error::{LangError, Pos};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser via
    /// [`Tok::is_kw`]; this keeps the lexer trivial and the token type
    /// small).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Double(f64),
    /// Double-quoted string literal (label names).
    Str(String),
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `'`
    Prime,
    /// `..`
    DotDot,
    /// `->`
    Arrow,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `!`
    Not,
    /// `=>`
    Implies,
    /// `?`
    Question,
    /// End of input (simplifies the parser's lookahead).
    Eof,
}

impl Tok {
    /// Whether this token is the keyword `kw`.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == kw)
    }

    /// Short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("{s:?}"),
            Tok::Int(v) => format!("{v}"),
            Tok::Double(v) => format!("{v}"),
            Tok::Str(s) => format!("\"{s}\""),
            Tok::Eof => "end of input".to_string(),
            other => format!("`{other}`"),
        }
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tok::Ident(s) => return write!(f, "{s}"),
            Tok::Int(v) => return write!(f, "{v}"),
            Tok::Double(v) => return write!(f, "{v}"),
            Tok::Str(s) => return write!(f, "\"{s}\""),
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::Semi => ";",
            Tok::Colon => ":",
            Tok::Comma => ",",
            Tok::Prime => "'",
            Tok::DotDot => "..",
            Tok::Arrow => "->",
            Tok::Eq => "=",
            Tok::Neq => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Amp => "&",
            Tok::Pipe => "|",
            Tok::Not => "!",
            Tok::Implies => "=>",
            Tok::Question => "?",
            Tok::Eof => "<eof>",
        };
        write!(f, "{s}")
    }
}

/// A token together with the position where it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Start position.
    pub pos: Pos,
}

struct Cursor<'a> {
    src: &'a [u8],
    i: usize,
    pos: Pos,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.i += 1;
        if b == b'\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(b)
    }
}

/// Tokenizes `src`, producing a vector terminated by [`Tok::Eof`].
///
/// # Errors
///
/// [`LangError::UnexpectedChar`], [`LangError::UnterminatedToken`] or
/// [`LangError::BadNumber`] with the offending source position.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LangError> {
    let mut c = Cursor {
        src: src.as_bytes(),
        i: 0,
        pos: Pos::start(),
    };
    let mut out = Vec::new();
    loop {
        // Skip whitespace and comments.
        loop {
            match c.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    c.bump();
                }
                Some(b'/') if c.peek2() == Some(b'/') => {
                    while let Some(b) = c.peek() {
                        if b == b'\n' {
                            break;
                        }
                        c.bump();
                    }
                }
                Some(b'/') if c.peek2() == Some(b'*') => {
                    let open = c.pos;
                    c.bump();
                    c.bump();
                    let mut closed = false;
                    while let Some(b) = c.bump() {
                        if b == b'*' && c.peek() == Some(b'/') {
                            c.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(LangError::UnterminatedToken {
                            what: "block comment",
                            pos: open,
                        });
                    }
                }
                _ => break,
            }
        }
        let pos = c.pos;
        let Some(b) = c.peek() else {
            out.push(Spanned { tok: Tok::Eof, pos });
            return Ok(out);
        };
        let tok = match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = c.i;
                while matches!(c.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
                    c.bump();
                }
                let text = std::str::from_utf8(&c.src[start..c.i]).expect("ascii ident");
                Tok::Ident(text.to_string())
            }
            b'0'..=b'9' => {
                let start = c.i;
                while matches!(c.peek(), Some(b) if b.is_ascii_digit()) {
                    c.bump();
                }
                let mut is_double = false;
                // A '.' begins a fraction only if not the start of `..`.
                if c.peek() == Some(b'.') && c.peek2() != Some(b'.') {
                    is_double = true;
                    c.bump();
                    while matches!(c.peek(), Some(b) if b.is_ascii_digit()) {
                        c.bump();
                    }
                }
                if matches!(c.peek(), Some(b'e') | Some(b'E')) {
                    is_double = true;
                    c.bump();
                    if matches!(c.peek(), Some(b'+') | Some(b'-')) {
                        c.bump();
                    }
                    while matches!(c.peek(), Some(b) if b.is_ascii_digit()) {
                        c.bump();
                    }
                }
                let text = std::str::from_utf8(&c.src[start..c.i]).expect("ascii number");
                if is_double {
                    match text.parse::<f64>() {
                        Ok(v) => Tok::Double(v),
                        Err(_) => {
                            return Err(LangError::BadNumber {
                                text: text.to_string(),
                                pos,
                            })
                        }
                    }
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => Tok::Int(v),
                        Err(_) => {
                            return Err(LangError::BadNumber {
                                text: text.to_string(),
                                pos,
                            })
                        }
                    }
                }
            }
            b'"' => {
                c.bump();
                let start = c.i;
                loop {
                    match c.peek() {
                        Some(b'"') => break,
                        Some(b'\n') | None => {
                            return Err(LangError::UnterminatedToken {
                                what: "string literal",
                                pos,
                            })
                        }
                        Some(_) => {
                            c.bump();
                        }
                    }
                }
                let text = std::str::from_utf8(&c.src[start..c.i])
                    .expect("utf8 checked at entry")
                    .to_string();
                c.bump(); // closing quote
                Tok::Str(text)
            }
            _ => {
                c.bump();
                match b {
                    b'[' => Tok::LBracket,
                    b']' => Tok::RBracket,
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b';' => Tok::Semi,
                    b':' => Tok::Colon,
                    b',' => Tok::Comma,
                    b'\'' => Tok::Prime,
                    b'?' => Tok::Question,
                    b'+' => Tok::Plus,
                    b'*' => Tok::Star,
                    b'/' => Tok::Slash,
                    b'&' => Tok::Amp,
                    b'|' => Tok::Pipe,
                    b'.' if c.peek() == Some(b'.') => {
                        c.bump();
                        Tok::DotDot
                    }
                    b'-' if c.peek() == Some(b'>') => {
                        c.bump();
                        Tok::Arrow
                    }
                    b'-' => Tok::Minus,
                    b'=' if c.peek() == Some(b'>') => {
                        c.bump();
                        Tok::Implies
                    }
                    b'=' => Tok::Eq,
                    b'!' if c.peek() == Some(b'=') => {
                        c.bump();
                        Tok::Neq
                    }
                    b'!' => Tok::Not,
                    b'<' if c.peek() == Some(b'=') => {
                        c.bump();
                        Tok::Le
                    }
                    b'<' => Tok::Lt,
                    b'>' if c.peek() == Some(b'=') => {
                        c.bump();
                        Tok::Ge
                    }
                    b'>' => Tok::Gt,
                    other => {
                        return Err(LangError::UnexpectedChar {
                            ch: other as char,
                            pos,
                        })
                    }
                }
            }
        };
        out.push(Spanned { tok, pos });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_a_command() {
        let ts = toks("[] x<3 -> 0.5:(x'=x+1) + 0.5:(x'=0);");
        assert_eq!(
            ts,
            vec![
                Tok::LBracket,
                Tok::RBracket,
                Tok::Ident("x".into()),
                Tok::Lt,
                Tok::Int(3),
                Tok::Arrow,
                Tok::Double(0.5),
                Tok::Colon,
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::Prime,
                Tok::Eq,
                Tok::Ident("x".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::RParen,
                Tok::Plus,
                Tok::Double(0.5),
                Tok::Colon,
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::Prime,
                Tok::Eq,
                Tok::Int(0),
                Tok::RParen,
                Tok::Semi,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn range_dots_do_not_eat_into_numbers() {
        assert_eq!(
            toks("[0..15]"),
            vec![
                Tok::LBracket,
                Tok::Int(0),
                Tok::DotDot,
                Tok::Int(15),
                Tok::RBracket,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn scientific_notation_is_a_double() {
        assert_eq!(toks("1e-3"), vec![Tok::Double(1e-3), Tok::Eof]);
        assert_eq!(toks("2.5E2"), vec![Tok::Double(250.0), Tok::Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        let ts = toks("x // trailing\n/* block\n over lines */ y");
        assert_eq!(
            ts,
            vec![Tok::Ident("x".into()), Tok::Ident("y".into()), Tok::Eof]
        );
    }

    #[test]
    fn strings_and_labels() {
        assert_eq!(
            toks("label \"err\" = f;"),
            vec![
                Tok::Ident("label".into()),
                Tok::Str("err".into()),
                Tok::Eq,
                Tok::Ident("f".into()),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unterminated_string_is_reported_at_open_quote() {
        let err = lex("x \"abc").unwrap_err();
        assert!(matches!(
            err,
            LangError::UnterminatedToken {
                what: "string literal",
                pos: Pos { line: 1, col: 3 }
            }
        ));
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        assert!(matches!(
            lex("/* never closed").unwrap_err(),
            LangError::UnterminatedToken { .. }
        ));
    }

    #[test]
    fn stray_characters_are_rejected() {
        assert!(matches!(
            lex("x # y").unwrap_err(),
            LangError::UnexpectedChar { ch: '#', .. }
        ));
    }

    #[test]
    fn implies_vs_assign() {
        assert_eq!(toks("= =>"), vec![Tok::Eq, Tok::Implies, Tok::Eof]);
    }

    #[test]
    fn huge_integer_literal_is_bad_number() {
        assert!(matches!(
            lex("99999999999999999999999").unwrap_err(),
            LangError::BadNumber { .. }
        ));
    }
}
