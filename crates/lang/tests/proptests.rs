//! Property-based tests for the guarded-command language:
//!
//! * pretty-printing any well-typed expression and reparsing it preserves
//!   its value (parser ↔ printer adjunction);
//! * randomly generated programs compile to row-stochastic chains whose
//!   size respects the declared variable ranges;
//! * the program → chain → program-text → chain loop preserves transient
//!   rewards (the paper's P2 read-out) for arbitrary generated models.

use proptest::prelude::*;
use smg_lang::ast::{BinOp, Expr, Func};
use smg_lang::{check, compile, parse, parse_expr, Value};
use std::collections::HashMap;

fn eval_closed(e: &Expr) -> Result<Value, smg_lang::LangError> {
    let consts: HashMap<String, Value> = HashMap::new();
    let formulas: HashMap<String, Expr> = HashMap::new();
    let env = smg_lang::Env {
        vars: HashMap::new(),
        consts: &consts,
        formulas: &formulas,
    };
    smg_lang::eval(e, &env)
}

/// Closed integer-valued expressions (no division: its result is a double
/// and `mod`/`pow` arguments are kept safe by construction).
fn int_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = (-50i64..50).prop_map(Expr::Int).boxed();
    if depth == 0 {
        return leaf;
    }
    let sub = int_expr(depth - 1);
    prop_oneof![
        leaf,
        (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Bin(
            BinOp::Add,
            Box::new(a),
            Box::new(b)
        )),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Bin(
            BinOp::Sub,
            Box::new(a),
            Box::new(b)
        )),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Bin(
            BinOp::Mul,
            Box::new(a),
            Box::new(b)
        )),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Apply(Func::Min, vec![a, b])),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Apply(Func::Max, vec![a, b])),
        (sub.clone(), 1i64..20).prop_map(|(a, m)| Expr::Apply(Func::Mod, vec![a, Expr::Int(m)])),
        sub.clone().prop_map(|a| Expr::Neg(Box::new(a))),
        (bool_expr(depth - 1), sub.clone(), sub).prop_map(|(c, a, b)| Expr::Ite(
            Box::new(c),
            Box::new(a),
            Box::new(b)
        )),
    ]
    .boxed()
}

/// Closed boolean-valued expressions.
fn bool_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = any::<bool>().prop_map(Expr::Bool).boxed();
    if depth == 0 {
        return leaf;
    }
    let sub = bool_expr(depth - 1);
    let num = int_expr(depth - 1);
    prop_oneof![
        leaf,
        (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Bin(
            BinOp::And,
            Box::new(a),
            Box::new(b)
        )),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Bin(
            BinOp::Or,
            Box::new(a),
            Box::new(b)
        )),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Bin(
            BinOp::Implies,
            Box::new(a),
            Box::new(b)
        )),
        sub.prop_map(|a| Expr::Not(Box::new(a))),
        (num.clone(), num).prop_map(|(a, b)| Expr::Bin(BinOp::Le, Box::new(a), Box::new(b))),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn int_expr_print_parse_eval_round_trip(e in int_expr(4)) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed).unwrap_or_else(|err| {
            panic!("printed expression failed to reparse: {printed}: {err}")
        });
        let v1 = eval_closed(&e).expect("generated expressions are total");
        let v2 = eval_closed(&reparsed).expect("reparse preserves totality");
        prop_assert_eq!(v1, v2, "{}", printed);
    }

    #[test]
    fn bool_expr_print_parse_eval_round_trip(e in bool_expr(4)) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed).unwrap();
        prop_assert_eq!(
            eval_closed(&e).unwrap(),
            eval_closed(&reparsed).unwrap(),
            "{}",
            printed
        );
    }

    /// Random single-module programs over one bounded counter with dyadic
    /// branch probabilities: compilation must produce a row-stochastic
    /// chain within the declared range bound, and the program_text round
    /// trip must preserve the paper's P2 read-out exactly.
    #[test]
    fn generated_programs_compile_and_round_trip(
        hi in 1i64..6,
        // Each state's command: (eighths for branch A, target A, target B)
        rows in proptest::collection::vec((1u32..8, 0i64..6, 0i64..6), 6),
        reward_state in 0i64..6,
    ) {
        let hi = hi.max(1);
        let mut src = String::from("dtmc\nmodule m\n");
        src.push_str(&format!("  x : [0..{hi}] init 0;\n"));
        for v in 0..=hi {
            let (eighths, ta, tb) = rows[v as usize % rows.len()];
            let p = f64::from(eighths) / 8.0;
            let (ta, tb) = (ta.min(hi), tb.min(hi));
            src.push_str(&format!(
                "  [] x={v} -> {p}:(x'={ta}) + {:?}:(x'={tb});\n",
                1.0 - p
            ));
        }
        src.push_str("endmodule\n");
        let r = reward_state.min(hi);
        src.push_str(&format!("label \"hit\" = x={r};\n"));
        src.push_str(&format!("rewards x={r} : 1; endrewards\n"));

        let compiled = compile(check(parse(&src).unwrap()).unwrap()).unwrap();
        let n = compiled.dtmc.n_states();
        prop_assert!(n as i64 <= hi + 1, "n={n} exceeds range bound {}", hi + 1);
        // Row-stochastic (the Dtmc constructor enforces it; assert anyway
        // so a tolerance regression cannot hide behind construction).
        for s in 0..n {
            let sum: f64 = compiled.dtmc.matrix().successors(s).iter().map(|&(_, p)| p).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "row {s} sums to {sum}");
        }

        // Round trip through exported text preserves P2 at several horizons.
        let text = smg_lang::program_text(&compiled.dtmc);
        let again = compile(check(parse(&text).unwrap()).unwrap()).unwrap();
        prop_assert_eq!(again.dtmc.n_states(), n);
        for t in [0usize, 1, 3, 10] {
            let a = smg_dtmc::transient::instantaneous_reward(&compiled.dtmc, t);
            let b = smg_dtmc::transient::instantaneous_reward(&again.dtmc, t);
            prop_assert!((a - b).abs() < 1e-12, "t={t}: {a} vs {b}");
        }
    }

    /// Lexer totality: arbitrary input never panics — it lexes or reports
    /// a positioned error.
    #[test]
    fn lexer_never_panics(s in "\\PC*") {
        let _ = smg_lang::token::lex(&s);
    }

    /// Parser totality on arbitrary token-ish strings.
    #[test]
    fn parser_never_panics(s in "[a-z0-9\\[\\]()<>=!&|+*/:;.'\" -]{0,80}") {
        let _ = parse(&s);
    }
}
