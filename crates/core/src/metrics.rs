//! The paper's performance metrics as pCTL properties (§IV-A-2).
//!
//! * **P1 (best case)** — `P=? [ G<=T !flag ]`: "Probability that no error
//!   occurs in any of the T steps."
//! * **P2 (average case)** — `R=? [ I=T ]`: "Probability that an error
//!   occurs at exactly the T-th step"; in steady state, the BER.
//! * **P3 (worst case)** — `P=? [ F<=T count_exceeds ]`: "Probability that
//!   the number of errors occurring in T steps is greater than a
//!   pre-determined value" (the counter lives in
//!   [`smg_dtmc::CountingModel`]).
//! * **C1 (convergence)** — `R=? [ I=T ]` over the convergence model:
//!   the probability that a decoded bit has non-converging traceback
//!   paths.

use smg_pctl::{parse_property, PctlError, Property};
use std::fmt;

/// A BER-like performance metric over a horizon of `T` time steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfMetric {
    /// P1: no error within the horizon.
    BestCase {
        /// The horizon `T`.
        horizon: u64,
    },
    /// P2: expected error flag at exactly the horizon (steady-state BER).
    AverageCase {
        /// The horizon `T`.
        horizon: u64,
    },
    /// P3: more than `threshold` errors within the horizon.
    WorstCase {
        /// The horizon `T`.
        horizon: u64,
        /// The error-count threshold (the paper uses 1).
        threshold: u32,
    },
    /// C1: expected non-convergence flag at exactly the horizon.
    Convergence {
        /// The horizon `T`.
        horizon: u64,
    },
}

impl PerfMetric {
    /// The paper's name for the metric.
    pub fn name(&self) -> &'static str {
        match self {
            PerfMetric::BestCase { .. } => "P1",
            PerfMetric::AverageCase { .. } => "P2",
            PerfMetric::WorstCase { .. } => "P3",
            PerfMetric::Convergence { .. } => "C1",
        }
    }

    /// The horizon `T`.
    pub fn horizon(&self) -> u64 {
        match *self {
            PerfMetric::BestCase { horizon }
            | PerfMetric::AverageCase { horizon }
            | PerfMetric::WorstCase { horizon, .. }
            | PerfMetric::Convergence { horizon } => horizon,
        }
    }

    /// The PRISM-style property text.
    pub fn property_text(&self) -> String {
        match *self {
            PerfMetric::BestCase { horizon } => format!("P=? [ G<={horizon} !flag ]"),
            PerfMetric::AverageCase { horizon } | PerfMetric::Convergence { horizon } => {
                format!("R=? [ I={horizon} ]")
            }
            PerfMetric::WorstCase { horizon, .. } => {
                format!("P=? [ F<={horizon} count_exceeds ]")
            }
        }
    }

    /// The parsed property.
    ///
    /// # Errors
    ///
    /// Never fails for the properties generated here; the `Result` guards
    /// against future formatting drift.
    pub fn property(&self) -> Result<Property, PctlError> {
        parse_property(&self.property_text())
    }
}

impl fmt::Display for PerfMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} := {}", self.name(), self.property_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn texts_match_paper() {
        assert_eq!(
            PerfMetric::BestCase { horizon: 300 }.property_text(),
            "P=? [ G<=300 !flag ]"
        );
        assert_eq!(
            PerfMetric::AverageCase { horizon: 300 }.property_text(),
            "R=? [ I=300 ]"
        );
        assert_eq!(
            PerfMetric::WorstCase {
                horizon: 300,
                threshold: 1
            }
            .property_text(),
            "P=? [ F<=300 count_exceeds ]"
        );
        assert_eq!(
            PerfMetric::Convergence { horizon: 1000 }.property_text(),
            "R=? [ I=1000 ]"
        );
    }

    #[test]
    fn all_parse() {
        for m in [
            PerfMetric::BestCase { horizon: 10 },
            PerfMetric::AverageCase { horizon: 10 },
            PerfMetric::WorstCase {
                horizon: 10,
                threshold: 2,
            },
            PerfMetric::Convergence { horizon: 10 },
        ] {
            assert!(m.property().is_ok(), "{m}");
            assert_eq!(m.horizon(), 10);
        }
    }

    #[test]
    fn names() {
        assert_eq!(PerfMetric::BestCase { horizon: 1 }.name(), "P1");
        assert_eq!(PerfMetric::AverageCase { horizon: 1 }.name(), "P2");
        assert_eq!(
            PerfMetric::WorstCase {
                horizon: 1,
                threshold: 1
            }
            .name(),
            "P3"
        );
        assert_eq!(PerfMetric::Convergence { horizon: 1 }.name(), "C1");
        let d = PerfMetric::BestCase { horizon: 5 }.to_string();
        assert!(d.contains("P1") && d.contains("G<=5"));
    }
}
