//! Plain-text table rendering for the experiment binaries.

use std::fmt;

/// A simple column-aligned text table, used by the `smg-bench` binaries to
/// print paper-style tables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, "  {cell:<w$}")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a probability the way the paper's tables do: scientific for
/// tiny values, fixed-point otherwise, and `≈ 1` for values that round to
/// one.
pub fn fmt_prob(p: f64) -> String {
    if p >= 0.9995 {
        "≈ 1".to_string()
    } else if p != 0.0 && p < 1e-3 {
        format!("{p:.2e}")
    } else {
        format!("{p:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "12345".into()]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("alpha"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn prob_formatting() {
        assert_eq!(fmt_prob(1.0), "≈ 1");
        assert_eq!(fmt_prob(0.9999), "≈ 1");
        assert_eq!(fmt_prob(0.2394), "0.2394");
        assert_eq!(fmt_prob(3e-15), "3.00e-15");
        assert_eq!(fmt_prob(0.0), "0.0000");
    }
}
