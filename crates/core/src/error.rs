//! The unified error type of the analysis pipeline.

use smg_dtmc::DtmcError;
use smg_pctl::PctlError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the end-to-end analyzer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A case-study model rejected its configuration.
    Model(String),
    /// An error from the DTMC engine.
    Dtmc(DtmcError),
    /// An error from the pCTL layer.
    Pctl(PctlError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(msg) => write!(f, "model configuration: {msg}"),
            CoreError::Dtmc(e) => write!(f, "{e}"),
            CoreError::Pctl(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Model(_) => None,
            CoreError::Dtmc(e) => Some(e),
            CoreError::Pctl(e) => Some(e),
        }
    }
}

impl From<DtmcError> for CoreError {
    fn from(e: DtmcError) -> Self {
        CoreError::Dtmc(e)
    }
}

impl From<PctlError> for CoreError {
    fn from(e: PctlError) -> Self {
        CoreError::Pctl(e)
    }
}

impl From<String> for CoreError {
    fn from(msg: String) -> Self {
        CoreError::Model(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = DtmcError::UnknownLabel { name: "x".into() }.into();
        assert!(e.to_string().contains('x'));
        assert!(e.source().is_some());
        let e: CoreError = "bad L".to_string().into();
        assert!(e.to_string().contains("bad L"));
        assert!(e.source().is_none());
        let e: CoreError = PctlError::Parse {
            position: 0,
            message: "m".into(),
        }
        .into();
        assert!(e.source().is_some());
    }
}
