//! The end-to-end analyzers producing the paper's table rows.

use crate::error::CoreError;
use crate::metrics::PerfMetric;
use smg_dtmc::{explore, explore_memoryless, BuildStats, CountingModel, ExploreOptions};
use smg_pctl::CheckSession;
use smg_reduce::ReductionReport;
use smg_viterbi::{FullModel, ReducedModel, ViterbiConfig};
use std::time::Duration;

/// Table I in one struct: P1/P2/P3 for a Viterbi configuration, with the
/// state counts of the original and reduced models and the check times.
#[derive(Debug, Clone)]
pub struct ViterbiReport {
    /// The analyzed configuration.
    pub config: ViterbiConfig,
    /// The horizon `T`.
    pub horizon: u64,
    /// P1 — probability of no error within `T` steps.
    pub p1: f64,
    /// P2 — expected error flag at step `T` (steady-state BER).
    pub p2: f64,
    /// P3 — probability of more than `threshold` errors within `T` steps.
    pub p3: f64,
    /// The P3 error-count threshold.
    pub threshold: u32,
    /// Build statistics of the full model `M` (if requested).
    pub full_stats: Option<BuildStats>,
    /// Build statistics of the counter-extended *full* model (the paper's
    /// Table I "original model" row for P3; only when the full model was
    /// requested).
    pub p3_full_stats: Option<BuildStats>,
    /// Build statistics of the reduced model `M_R` (used for P1/P2).
    pub reduced_stats: BuildStats,
    /// Build statistics of the counter-extended model (used for P3).
    pub p3_stats: BuildStats,
    /// Pure model-checking time (excluding model construction).
    pub check_time: Duration,
}

impl ViterbiReport {
    /// The Table I reduction comparison, available when the full model was
    /// built.
    pub fn reduction(&self) -> Option<ReductionReport> {
        self.full_stats
            .as_ref()
            .map(|f| ReductionReport::new(f.states, self.reduced_stats.states))
    }
}

/// Builder for Viterbi analyses.
#[derive(Debug, Clone)]
pub struct ViterbiAnalyzer {
    config: ViterbiConfig,
    horizon: u64,
    threshold: u32,
    include_full: bool,
    explore: ExploreOptions,
}

impl ViterbiAnalyzer {
    /// Starts an analysis of the given configuration with the paper's
    /// defaults (`T = 300`, threshold 1, reduced model only).
    pub fn new(config: ViterbiConfig) -> Self {
        ViterbiAnalyzer {
            config,
            horizon: 300,
            threshold: 1,
            include_full: false,
            explore: ExploreOptions::default(),
        }
    }

    /// Sets the horizon `T`.
    pub fn horizon(mut self, t: u64) -> Self {
        self.horizon = t;
        self
    }

    /// Sets the P3 error-count threshold.
    pub fn worst_case_threshold(mut self, threshold: u32) -> Self {
        self.threshold = threshold;
        self
    }

    /// Also builds the (much larger) full model `M` so the report can show
    /// the Table I state-count comparison.
    pub fn include_full_model(mut self, yes: bool) -> Self {
        self.include_full = yes;
        self
    }

    /// Overrides exploration options (state limits, pruning).
    pub fn explore_options(mut self, opts: ExploreOptions) -> Self {
        self.explore = opts;
        self
    }

    /// Runs the analysis: explores the models and checks P1, P2 and P3.
    ///
    /// # Errors
    ///
    /// Propagates configuration, exploration and checking errors.
    pub fn analyze(&self) -> Result<ViterbiReport, CoreError> {
        let reduced_model = ReducedModel::new(self.config.clone())?;
        let reduced = explore(&reduced_model, &self.explore)?;

        let (full_stats, p3_full_stats) = if self.include_full {
            let full_model = FullModel::new(self.config.clone())?;
            let full = explore(&full_model, &self.explore)?.stats;
            let counted_full = CountingModel::new(
                FullModel::new(self.config.clone())?,
                smg_viterbi::FLAG,
                self.threshold,
            );
            let p3_full = explore(&counted_full, &self.explore)?.stats;
            (Some(full), Some(p3_full))
        } else {
            (None, None)
        };

        // P3 needs the error counter on top of the reduced model.
        let counting = CountingModel::new(
            ReducedModel::new(self.config.clone())?,
            smg_viterbi::FLAG,
            self.threshold,
        );
        let counted = explore(&counting, &self.explore)?;

        // One checking session per model: P1 and P2 run against the
        // reduced chain and share its precomputation (the `flag` sat-set,
        // cached transposes); P3 runs against the counter-extended chain
        // in its own session.
        let t0 = std::time::Instant::now();
        let reduced_stats = reduced.stats;
        let p3_stats = counted.stats;
        let session = CheckSession::new(reduced.dtmc);
        let p1p2 = session.check_all(&[
            PerfMetric::BestCase {
                horizon: self.horizon,
            }
            .property()?,
            PerfMetric::AverageCase {
                horizon: self.horizon,
            }
            .property()?,
        ])?;
        let (p1, p2) = (p1p2[0].value(), p1p2[1].value());
        let p3_session = CheckSession::new(counted.dtmc);
        let p3 = p3_session
            .check(
                &PerfMetric::WorstCase {
                    horizon: self.horizon,
                    threshold: self.threshold,
                }
                .property()?,
            )?
            .value();
        let check_time = t0.elapsed();

        Ok(ViterbiReport {
            config: self.config.clone(),
            horizon: self.horizon,
            p1,
            p2,
            p3,
            threshold: self.threshold,
            full_stats,
            p3_full_stats,
            reduced_stats,
            p3_stats,
            check_time,
        })
    }
}

/// Table II + Table V in one struct: detector state counts before and after
/// symmetry reduction, the reduction factor, and the BER.
#[derive(Debug, Clone)]
pub struct DetectorReport {
    /// Human-readable system name, e.g. `"1x2"`.
    pub system: String,
    /// Build statistics of the full model `M`.
    pub full_stats: BuildStats,
    /// Build statistics of the symmetry-reduced model `M_R`.
    pub reduced_stats: BuildStats,
    /// The exact BER (= steady-state P2).
    pub ber: f64,
    /// P2 at each requested horizon (the paper's Table V columns).
    pub p2_at: Vec<(u64, f64)>,
}

impl DetectorReport {
    /// The Table II reduction comparison.
    pub fn reduction(&self) -> ReductionReport {
        ReductionReport::new(self.full_stats.states, self.reduced_stats.states)
    }
}

/// Builder for detector analyses.
#[derive(Debug, Clone)]
pub struct DetectorAnalyzer {
    config: smg_detector::DetectorConfig,
    horizons: Vec<u64>,
    explore: ExploreOptions,
}

impl DetectorAnalyzer {
    /// Starts an analysis with the paper's Table V horizons (5, 10, 20).
    pub fn new(config: smg_detector::DetectorConfig) -> Self {
        DetectorAnalyzer {
            config,
            horizons: vec![5, 10, 20],
            explore: ExploreOptions::default(),
        }
    }

    /// Sets the P2 horizons to evaluate.
    pub fn horizons(mut self, horizons: Vec<u64>) -> Self {
        self.horizons = horizons;
        self
    }

    /// Overrides exploration options.
    pub fn explore_options(mut self, opts: ExploreOptions) -> Self {
        self.explore = opts;
        self
    }

    /// Runs the analysis: explores both models, compares sizes, checks P2.
    ///
    /// # Errors
    ///
    /// Propagates configuration, exploration and checking errors.
    pub fn analyze(&self) -> Result<DetectorReport, CoreError> {
        let full = smg_detector::DetectorModel::new(self.config.clone())?;
        let sym = smg_detector::SymmetricDetectorModel::new(self.config.clone())?;
        let ber = sym.ber();
        let full_explored = explore_memoryless(&full, &self.explore)?;
        let sym_explored = explore_memoryless(&sym, &self.explore)?;
        // One session for the whole horizon sweep over the reduced chain.
        let reduced_stats = sym_explored.stats;
        let session = CheckSession::new(sym_explored.dtmc);
        let family = self
            .horizons
            .iter()
            .map(|&t| PerfMetric::AverageCase { horizon: t }.property())
            .collect::<Result<Vec<_>, _>>()?;
        let p2_at = self
            .horizons
            .iter()
            .copied()
            .zip(session.check_all(&family)?.iter().map(|r| r.value()))
            .collect();
        Ok(DetectorReport {
            system: format!("{}x{}", self.config.nt, self.config.nr),
            full_stats: full_explored.stats,
            reduced_stats,
            ber,
            p2_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smg_detector::DetectorConfig;

    #[test]
    fn viterbi_report_fields_are_consistent() {
        let r = ViterbiAnalyzer::new(ViterbiConfig::small())
            .horizon(40)
            .include_full_model(true)
            .analyze()
            .unwrap();
        assert!(r.p1 >= 0.0 && r.p1 <= 1.0);
        assert!(r.p2 > 0.0 && r.p2 < 0.5);
        assert!(r.p3 >= 0.0 && r.p3 <= 1.0);
        // With threshold 1, P(>1 error) ≤ P(≥1 error) = 1 − P1.
        assert!(r.p3 <= 1.0 - r.p1 + 1e-12);
        let red = r.reduction().unwrap();
        assert!(red.factor() > 1.0);
        // The counter at most triples the reduced space (counter ∈ {0,1,2}).
        assert!(r.p3_stats.states <= 3 * r.reduced_stats.states);
    }

    #[test]
    fn viterbi_without_full_model() {
        let r = ViterbiAnalyzer::new(ViterbiConfig::small())
            .horizon(20)
            .analyze()
            .unwrap();
        assert!(r.full_stats.is_none());
        assert!(r.reduction().is_none());
    }

    #[test]
    fn p3_threshold_monotonicity() {
        // Raising the threshold can only lower P3.
        let base = ViterbiAnalyzer::new(ViterbiConfig::small()).horizon(30);
        let p3_1 = base.clone().worst_case_threshold(1).analyze().unwrap().p3;
        let p3_3 = base.clone().worst_case_threshold(3).analyze().unwrap().p3;
        assert!(p3_3 <= p3_1 + 1e-12, "{p3_3} > {p3_1}");
    }

    #[test]
    fn detector_report() {
        let r = DetectorAnalyzer::new(DetectorConfig::small())
            .horizons(vec![1, 5, 20])
            .analyze()
            .unwrap();
        assert_eq!(r.system, "1x2");
        assert!(r.reduction().factor() > 5.0);
        // Memoryless chain: P2 constant across horizons and equal to BER.
        for &(t, v) in &r.p2_at {
            assert!((v - r.ber).abs() < 1e-12, "t={t}");
        }
        assert_eq!(r.full_stats.reachability_iterations, 3);
    }
}
