//! End-to-end statistical performance guarantees for MIMO RTL designs.
//!
//! This crate assembles the paper's methodology (§III) into one pipeline:
//!
//! 1. **DTMC modeling** — the case-study models from `smg-viterbi` /
//!    `smg-detector` (or any user [`smg_dtmc::DtmcModel`]);
//! 2. **Property specification** — the BER-like metrics P1/P2/P3/C1 as
//!    pCTL properties ([`metrics::PerfMetric`]);
//! 3. **Property-preserving reduction** — hand reductions (`M_R`, symmetry)
//!    or automatic lumping via `smg-reduce`;
//! 4. **Probabilistic model checking** — `smg-pctl` over the explored
//!    chain, with PRISM-style run statistics (states, transitions, RI,
//!    time).
//!
//! The result types mirror the paper's tables: [`analyzer::ViterbiReport`]
//! is a Table I row set, [`analyzer::DetectorReport`] a Table II/V row,
//! [`steady::SteadyScan`] the Table III/IV time sweeps.
//!
//! # Example
//!
//! ```
//! use smg_core::analyzer::ViterbiAnalyzer;
//! use smg_viterbi::ViterbiConfig;
//!
//! let report = ViterbiAnalyzer::new(ViterbiConfig::small())
//!     .horizon(50)
//!     .include_full_model(true)
//!     .analyze()?;
//! // P1 (no error in T steps) + P(some error) = 1 at the same horizon.
//! assert!(report.p1 >= 0.0 && report.p1 <= 1.0);
//! assert!(report.reduced_stats.states < report.full_stats.as_ref().unwrap().states);
//! # Ok::<(), smg_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]

pub mod analyzer;
pub mod error;
pub mod metrics;
pub mod report;
pub mod steady;

pub use analyzer::{DetectorAnalyzer, DetectorReport, ViterbiAnalyzer, ViterbiReport};
pub use error::CoreError;
pub use metrics::PerfMetric;
pub use report::Table;
pub use steady::{steady_scan, SteadyScan};
