//! Steady-state scans: the paper's Tables III–V time sweeps.
//!
//! "We observe that for values of T much greater than RI, the computed
//! values do not change significantly. Once steady state is attained, we
//! consider P2 as the BER of the system."

use crate::error::CoreError;
use smg_dtmc::{transient, Dtmc};

/// A scan of the instantaneous reward `R=? [I=T]` over time, with
/// steady-state detection.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyScan {
    /// `(T, value)` samples at the requested horizons.
    pub samples: Vec<(usize, f64)>,
    /// The first step at which successive values changed by less than the
    /// tolerance, if any.
    pub converged_at: Option<usize>,
    /// The value at the largest computed step — the steady-state BER once
    /// converged.
    pub final_value: f64,
}

impl SteadyScan {
    /// The value at a sampled horizon.
    pub fn value_at(&self, t: usize) -> Option<f64> {
        self.samples.iter().find(|&&(s, _)| s == t).map(|&(_, v)| v)
    }
}

/// Computes the reward series up to `max(horizons)`, sampling the requested
/// horizons and detecting convergence of consecutive values to `tol`.
///
/// # Errors
///
/// Returns [`CoreError`] if `horizons` is empty.
pub fn steady_scan(dtmc: &Dtmc, horizons: &[usize], tol: f64) -> Result<SteadyScan, CoreError> {
    let &max_t = horizons
        .iter()
        .max()
        .ok_or_else(|| CoreError::Model("steady_scan needs at least one horizon".to_string()))?;
    let series = transient::instantaneous_reward_series(dtmc, max_t);
    let samples = horizons.iter().map(|&t| (t, series[t])).collect();
    // Converged at the first step after which the value never again moves
    // by tol or more (a transient lull must not count as steady state).
    let last_move = (1..series.len())
        .rev()
        .find(|&t| (series[t] - series[t - 1]).abs() >= tol);
    let converged_at = match last_move {
        None => Some(1),
        Some(t) if t + 1 < series.len() => Some(t + 1),
        Some(_) => None,
    };
    Ok(SteadyScan {
        samples,
        converged_at,
        final_value: *series.last().expect("series nonempty"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smg_dtmc::{explore, ExploreOptions};
    use smg_viterbi::{ReducedModel, ViterbiConfig};

    #[test]
    fn scan_matches_pointwise_rewards() {
        let m = ReducedModel::new(ViterbiConfig::small()).unwrap();
        let e = explore(&m, &ExploreOptions::default()).unwrap();
        let scan = steady_scan(&e.dtmc, &[10, 50, 100], 1e-9).unwrap();
        assert_eq!(scan.samples.len(), 3);
        for &(t, v) in &scan.samples {
            let direct = transient::instantaneous_reward(&e.dtmc, t);
            assert!((v - direct).abs() < 1e-12, "t={t}");
        }
        assert_eq!(scan.value_at(50), Some(scan.samples[1].1));
        assert_eq!(scan.value_at(51), None);
    }

    #[test]
    fn values_settle_like_table_iii() {
        let m = ReducedModel::new(ViterbiConfig::small()).unwrap();
        let e = explore(&m, &ExploreOptions::default()).unwrap();
        let scan = steady_scan(&e.dtmc, &[100, 300, 600, 1000], 0.0).unwrap();
        let v = |t: usize| scan.value_at(t).unwrap();
        // Differences shrink as T grows (monotone approach to steady state
        // in magnitude, as in Table III).
        let d1 = (v(300) - v(100)).abs();
        let d2 = (v(600) - v(300)).abs();
        let d3 = (v(1000) - v(600)).abs();
        assert!(d2 <= d1 + 1e-12);
        assert!(d3 <= d2 + 1e-12);
        assert!((scan.final_value - v(1000)).abs() < 1e-15);
    }

    #[test]
    fn empty_horizons_error() {
        let m = ReducedModel::new(ViterbiConfig::small()).unwrap();
        let e = explore(&m, &ExploreOptions::default()).unwrap();
        assert!(steady_scan(&e.dtmc, &[], 1e-9).is_err());
    }
}
