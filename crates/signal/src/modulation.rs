//! Binary Phase Shift Keying (BPSK) modulation.
//!
//! The paper assumes "an Additive White Gaussian Noise (AWGN) model and a
//! Binary Phase Shift Key (BPSK) signaling scheme" (§II). BPSK maps a data
//! bit to an antipodal amplitude: `0 ↦ −1`, `1 ↦ +1`.

/// A data bit. Newtype over `u8` restricted to `{0, 1}`.
///
/// # Example
///
/// ```
/// use smg_signal::Bit;
///
/// let b = Bit::new(1).unwrap();
/// assert_eq!(b.flip(), Bit::ZERO);
/// assert_eq!(b.value(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bit(u8);

impl Bit {
    /// The bit `0`.
    pub const ZERO: Bit = Bit(0);
    /// The bit `1`.
    pub const ONE: Bit = Bit(1);

    /// Creates a bit, returning `None` unless the value is 0 or 1.
    pub fn new(v: u8) -> Option<Bit> {
        match v {
            0 | 1 => Some(Bit(v)),
            _ => None,
        }
    }

    /// Creates a bit from a boolean (`true ↦ 1`).
    pub fn from_bool(b: bool) -> Bit {
        Bit(b as u8)
    }

    /// The raw value, 0 or 1.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Whether this is the bit `1`.
    pub fn is_one(self) -> bool {
        self.0 == 1
    }

    /// The complemented bit.
    pub fn flip(self) -> Bit {
        Bit(1 - self.0)
    }

    /// XOR of two bits.
    pub fn xor(self, other: Bit) -> Bit {
        Bit(self.0 ^ other.0)
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Bit {
        Bit::from_bool(b)
    }
}

impl std::fmt::Display for Bit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// BPSK-maps a bit to an antipodal amplitude: `0 ↦ −1.0`, `1 ↦ +1.0`.
///
/// # Example
///
/// ```
/// use smg_signal::{bpsk, Bit};
/// assert_eq!(bpsk(Bit::ZERO), -1.0);
/// assert_eq!(bpsk(Bit::ONE), 1.0);
/// ```
pub fn bpsk(bit: Bit) -> f64 {
    if bit.is_one() {
        1.0
    } else {
        -1.0
    }
}

/// BPSK-maps a raw 0/1 value. Convenience for hot loops where the caller has
/// already established the value is a bit.
///
/// # Panics
///
/// Debug-asserts that `bit` is 0 or 1.
pub fn bpsk_bit(bit: u8) -> f64 {
    debug_assert!(bit <= 1, "bpsk_bit expects 0 or 1, got {bit}");
    if bit == 1 {
        1.0
    } else {
        -1.0
    }
}

/// Hard-decision BPSK demapping: non-negative amplitudes decode to 1.
pub fn bpsk_demap(amplitude: f64) -> Bit {
    Bit::from_bool(amplitude >= 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_construction() {
        assert_eq!(Bit::new(0), Some(Bit::ZERO));
        assert_eq!(Bit::new(1), Some(Bit::ONE));
        assert_eq!(Bit::new(2), None);
        assert_eq!(Bit::from_bool(true), Bit::ONE);
        assert_eq!(Bit::from(false), Bit::ZERO);
    }

    #[test]
    fn bit_ops() {
        assert_eq!(Bit::ZERO.flip(), Bit::ONE);
        assert_eq!(Bit::ONE.flip(), Bit::ZERO);
        assert_eq!(Bit::ONE.xor(Bit::ONE), Bit::ZERO);
        assert_eq!(Bit::ONE.xor(Bit::ZERO), Bit::ONE);
        assert!(Bit::ONE.is_one());
        assert!(!Bit::ZERO.is_one());
    }

    #[test]
    fn mapping_is_antipodal() {
        assert_eq!(bpsk(Bit::ZERO), -bpsk(Bit::ONE));
        assert_eq!(bpsk_bit(0), -1.0);
        assert_eq!(bpsk_bit(1), 1.0);
    }

    #[test]
    fn demap_round_trips() {
        assert_eq!(bpsk_demap(bpsk(Bit::ONE)), Bit::ONE);
        assert_eq!(bpsk_demap(bpsk(Bit::ZERO)), Bit::ZERO);
        // Noisy but on the right side.
        assert_eq!(bpsk_demap(0.2), Bit::ONE);
        assert_eq!(bpsk_demap(-0.2), Bit::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Bit::ONE.to_string(), "1");
        assert_eq!(Bit::ZERO.to_string(), "0");
    }
}
