//! Uniform quantizers and the discretization of continuous noise.
//!
//! "The presence of noise can lead to errors in quantization of the received
//! sample" (§II). The paper's DTMC transition probabilities are exactly the
//! probabilities that a Gaussian-corrupted sample lands in each quantization
//! cell; [`Quantizer::discretize`] computes these masses in closed form from
//! the Gaussian CDF.

use crate::error::SignalError;
use crate::gaussian::Gaussian;

/// A uniform quantizer with `levels` cells over `[lo, hi]`.
///
/// Cell `i` covers `[lo + iΔ, lo + (i+1)Δ)` with `Δ = (hi − lo)/levels`; the
/// outermost cells absorb the tails (samples below `lo` map to cell 0,
/// samples at or above `hi` map to the last cell). The reconstruction value
/// of a cell is its midpoint — a mid-rise characteristic.
///
/// # Example
///
/// ```
/// use smg_signal::Quantizer;
///
/// let q = Quantizer::uniform(4, -2.0, 2.0)?;
/// assert_eq!(q.quantize(-3.0), 0);  // clamped into the lowest cell
/// assert_eq!(q.quantize(0.1), 2);
/// assert_eq!(q.quantize(5.0), 3);   // clamped into the highest cell
/// assert!((q.level_value(2) - 0.5).abs() < 1e-12);
/// # Ok::<(), smg_signal::SignalError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Quantizer {
    levels: usize,
    lo: f64,
    hi: f64,
    step: f64,
}

impl Quantizer {
    /// Creates a uniform quantizer with `levels` cells over `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// * [`SignalError::TooFewLevels`] if `levels < 2`.
    /// * [`SignalError::EmptyRange`] if `hi <= lo`.
    /// * [`SignalError::NotFinite`] if either bound is NaN or infinite.
    pub fn uniform(levels: usize, lo: f64, hi: f64) -> Result<Self, SignalError> {
        if levels < 2 {
            return Err(SignalError::TooFewLevels { levels });
        }
        if !lo.is_finite() || !hi.is_finite() {
            return Err(SignalError::NotFinite { name: "range" });
        }
        if hi <= lo {
            return Err(SignalError::EmptyRange { lo, hi });
        }
        Ok(Quantizer {
            levels,
            lo,
            hi,
            step: (hi - lo) / levels as f64,
        })
    }

    /// Creates a quantizer symmetric about zero: `levels` cells over
    /// `[-range, range]`.
    ///
    /// # Errors
    ///
    /// Same as [`Quantizer::uniform`]; additionally requires `range > 0`.
    pub fn symmetric(levels: usize, range: f64) -> Result<Self, SignalError> {
        Quantizer::uniform(levels, -range, range)
    }

    /// The number of quantization levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The cell width Δ.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// The lower edge of the quantizer range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// The upper edge of the quantizer range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Quantizes a sample to a level index in `0..levels` (clamping values
    /// outside the range into the outermost cells).
    pub fn quantize(&self, x: f64) -> usize {
        if x < self.lo {
            return 0;
        }
        let idx = ((x - self.lo) / self.step) as usize;
        idx.min(self.levels - 1)
    }

    /// The reconstruction (midpoint) value of level `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= levels`.
    pub fn level_value(&self, i: usize) -> f64 {
        assert!(i < self.levels, "level {i} out of range 0..{}", self.levels);
        self.lo + (i as f64 + 0.5) * self.step
    }

    /// The decision boundaries of level `i` as used for probability mass:
    /// the lowest cell extends to `−∞` and the highest to `+∞`.
    pub fn cell_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.levels, "level {i} out of range 0..{}", self.levels);
        let lo = if i == 0 {
            f64::NEG_INFINITY
        } else {
            self.lo + i as f64 * self.step
        };
        let hi = if i == self.levels - 1 {
            f64::INFINITY
        } else {
            self.lo + (i + 1) as f64 * self.step
        };
        (lo, hi)
    }

    /// Pushes a Gaussian through the quantizer: returns, for every level, the
    /// probability that a sample of `dist` is quantized to that level. The
    /// masses sum to 1 exactly (up to floating point).
    ///
    /// This is the paper's §III "we use this to calculate the probability of
    /// a received sample being mapped to a particular quantization level
    /// which in turn can be used to label the transitions of the DTMC model".
    pub fn discretize(&self, dist: &Gaussian) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(self.levels);
        for i in 0..self.levels {
            let (lo, hi) = self.cell_bounds(i);
            out.push((i, dist.interval_prob(lo, hi)));
        }
        out
    }

    /// Like [`Quantizer::discretize`] but drops levels whose mass is below
    /// `threshold` and renormalizes the rest. This mirrors PRISM's behaviour
    /// in the paper's 1x4 experiment ("PRISM discards states that are reached
    /// with a probability less than 10⁻¹⁵").
    pub fn discretize_pruned(&self, dist: &Gaussian, threshold: f64) -> Vec<(usize, f64)> {
        let mut masses = self.discretize(dist);
        masses.retain(|&(_, p)| p >= threshold);
        let total: f64 = masses.iter().map(|&(_, p)| p).sum();
        if total > 0.0 {
            for m in &mut masses {
                m.1 /= total;
            }
        }
        masses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Quantizer::uniform(1, -1.0, 1.0).is_err());
        assert!(Quantizer::uniform(4, 1.0, 1.0).is_err());
        assert!(Quantizer::uniform(4, 2.0, 1.0).is_err());
        assert!(Quantizer::uniform(4, f64::NAN, 1.0).is_err());
        assert!(Quantizer::symmetric(8, 3.0).is_ok());
    }

    #[test]
    fn quantize_midpoints_round_trip() {
        let q = Quantizer::symmetric(8, 3.0).unwrap();
        for i in 0..8 {
            assert_eq!(q.quantize(q.level_value(i)), i, "level {i}");
        }
    }

    #[test]
    fn quantize_clamps() {
        let q = Quantizer::symmetric(4, 2.0).unwrap();
        assert_eq!(q.quantize(-100.0), 0);
        assert_eq!(q.quantize(100.0), 3);
        assert_eq!(q.quantize(2.0), 3); // at the upper edge
        assert_eq!(q.quantize(-2.0), 0);
    }

    #[test]
    fn boundaries_partition_the_line() {
        let q = Quantizer::symmetric(6, 3.0).unwrap();
        // Consecutive cells share a boundary; first/last are infinite.
        assert_eq!(q.cell_bounds(0).0, f64::NEG_INFINITY);
        assert_eq!(q.cell_bounds(5).1, f64::INFINITY);
        for i in 0..5 {
            let (_, hi) = q.cell_bounds(i);
            let (lo, _) = q.cell_bounds(i + 1);
            assert!((hi - lo).abs() < 1e-12, "cells {i}/{} must abut", i + 1);
        }
    }

    #[test]
    fn discretize_sums_to_one() {
        let q = Quantizer::symmetric(8, 3.0).unwrap();
        for mean in [-2.0, 0.0, 2.0] {
            let g = Gaussian::new(mean, 0.63).unwrap();
            let pmf = q.discretize(&g);
            let total: f64 = pmf.iter().map(|&(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-12, "mass at mean {mean} = {total}");
            assert_eq!(pmf.len(), 8);
        }
    }

    #[test]
    fn discretize_mass_concentrates_near_mean() {
        let q = Quantizer::symmetric(8, 3.0).unwrap();
        let g = Gaussian::new(2.0, 0.1).unwrap();
        let pmf = q.discretize(&g);
        let best = pmf
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        // Level containing +2.0.
        assert_eq!(best.0, q.quantize(2.0));
        assert!(best.1 > 0.5);
    }

    #[test]
    fn discretize_pruned_renormalizes() {
        let q = Quantizer::symmetric(8, 3.0).unwrap();
        let g = Gaussian::new(2.5, 0.05).unwrap();
        let pruned = q.discretize_pruned(&g, 1e-6);
        assert!(pruned.len() < 8, "tail levels should be pruned");
        let total: f64 = pruned.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn level_value_bounds_checked() {
        let q = Quantizer::symmetric(4, 1.0).unwrap();
        let _ = q.level_value(4);
    }

    #[test]
    fn quantize_matches_cell_bounds() {
        // Every sample quantizes to the unique cell whose bounds contain it.
        let q = Quantizer::uniform(5, -1.0, 4.0).unwrap();
        let mut x = -3.0;
        while x < 6.0 {
            let lvl = q.quantize(x);
            let (lo, hi) = q.cell_bounds(lvl);
            assert!(
                x >= lo && x < hi || (lvl == 4 && x >= hi),
                "x={x} lvl={lvl}"
            );
            x += 0.037;
        }
    }
}
