//! Finite discrete probability distributions.
//!
//! [`DiscreteDist`] is the common currency between the signal substrate and
//! the DTMC models: quantized noise, quantized fading coefficients and data
//! bits are all finite distributions whose products form the probabilistic
//! transition relation `T_p` of the paper's models.

use crate::error::SignalError;
use std::fmt;

/// Tolerance used when checking that masses sum to one.
pub const NORMALIZATION_TOL: f64 = 1e-9;

/// A finite discrete distribution over values of type `V`.
///
/// Invariants: every mass is in `(0, 1]` (zero-mass outcomes are dropped at
/// construction) and the masses sum to 1 within [`NORMALIZATION_TOL`].
///
/// # Example
///
/// ```
/// use smg_signal::DiscreteDist;
///
/// let d = DiscreteDist::new(vec![("a", 0.25), ("b", 0.75)])?;
/// assert_eq!(d.len(), 2);
/// assert!((d.expectation(|&v| if v == "b" { 1.0 } else { 0.0 }) - 0.75).abs() < 1e-12);
/// # Ok::<(), smg_signal::SignalError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteDist<V> {
    outcomes: Vec<(V, f64)>,
}

impl<V> DiscreteDist<V> {
    /// Creates a distribution from `(value, mass)` pairs.
    ///
    /// Outcomes with zero mass are dropped. Values are *not* deduplicated;
    /// use [`DiscreteDist::dedup`] (requires `V: Ord`) if duplicate outcomes
    /// should be merged.
    ///
    /// # Errors
    ///
    /// * [`SignalError::InvalidProbability`] if any mass is negative, NaN, or
    ///   greater than one.
    /// * [`SignalError::NotNormalized`] if the masses do not sum to one.
    pub fn new(outcomes: Vec<(V, f64)>) -> Result<Self, SignalError> {
        let mut sum = 0.0;
        for &(_, p) in &outcomes {
            if !(0.0..=1.0 + NORMALIZATION_TOL).contains(&p) || p.is_nan() {
                return Err(SignalError::InvalidProbability { value: p });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > NORMALIZATION_TOL {
            return Err(SignalError::NotNormalized { sum });
        }
        let outcomes = outcomes.into_iter().filter(|&(_, p)| p > 0.0).collect();
        Ok(DiscreteDist { outcomes })
    }

    /// Creates a distribution without checking normalization, rescaling the
    /// masses so they sum to one.
    ///
    /// # Errors
    ///
    /// * [`SignalError::InvalidProbability`] if any mass is negative or NaN.
    /// * [`SignalError::NotNormalized`] if the total mass is zero.
    pub fn normalized(outcomes: Vec<(V, f64)>) -> Result<Self, SignalError> {
        let mut sum = 0.0;
        for &(_, p) in &outcomes {
            if p < 0.0 || p.is_nan() {
                return Err(SignalError::InvalidProbability { value: p });
            }
            sum += p;
        }
        if sum <= 0.0 {
            return Err(SignalError::NotNormalized { sum });
        }
        let outcomes = outcomes
            .into_iter()
            .filter(|&(_, p)| p > 0.0)
            .map(|(v, p)| (v, p / sum))
            .collect();
        Ok(DiscreteDist { outcomes })
    }

    /// The point distribution concentrated on a single value.
    pub fn point(value: V) -> Self {
        DiscreteDist {
            outcomes: vec![(value, 1.0)],
        }
    }

    /// The number of outcomes with positive mass.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the distribution has no outcomes (only possible for the empty
    /// product of distributions; normal construction never yields this).
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Iterates over `(value, mass)` pairs.
    pub fn iter(&self) -> std::slice::Iter<'_, (V, f64)> {
        self.outcomes.iter()
    }

    /// The outcomes as a slice.
    pub fn as_slice(&self) -> &[(V, f64)] {
        &self.outcomes
    }

    /// Consumes the distribution, returning its outcomes.
    pub fn into_outcomes(self) -> Vec<(V, f64)> {
        self.outcomes
    }

    /// The expectation of `f` under this distribution.
    pub fn expectation<F: Fn(&V) -> f64>(&self, f: F) -> f64 {
        self.outcomes.iter().map(|(v, p)| f(v) * p).sum()
    }

    /// The total probability of outcomes satisfying `pred`.
    pub fn prob<F: Fn(&V) -> bool>(&self, pred: F) -> f64 {
        self.outcomes
            .iter()
            .filter(|(v, _)| pred(v))
            .map(|&(_, p)| p)
            .sum()
    }

    /// Maps outcome values, keeping masses (duplicates are not merged).
    pub fn map<U, F: FnMut(V) -> U>(self, mut f: F) -> DiscreteDist<U> {
        DiscreteDist {
            outcomes: self.outcomes.into_iter().map(|(v, p)| (f(v), p)).collect(),
        }
    }

    /// The product distribution of two independent distributions.
    pub fn product<U: Clone>(&self, other: &DiscreteDist<U>) -> DiscreteDist<(V, U)>
    where
        V: Clone,
    {
        let mut outcomes = Vec::with_capacity(self.len() * other.len());
        for (a, pa) in &self.outcomes {
            for (b, pb) in &other.outcomes {
                outcomes.push(((a.clone(), b.clone()), pa * pb));
            }
        }
        DiscreteDist { outcomes }
    }

    /// Samples an outcome given a uniform draw `u ∈ [0, 1)`.
    ///
    /// Deterministic given `u`, which keeps the Monte-Carlo engine
    /// reproducible and testable.
    pub fn sample_with(&self, u: f64) -> &V {
        let mut acc = 0.0;
        for (v, p) in &self.outcomes {
            acc += p;
            if u < acc {
                return v;
            }
        }
        // Floating-point slack: return the last outcome.
        &self
            .outcomes
            .last()
            .expect("sample_with on empty distribution")
            .0
    }
}

impl<V: Ord> DiscreteDist<V> {
    /// Merges duplicate outcomes, summing their masses, and sorts outcomes.
    pub fn dedup(mut self) -> Self {
        self.outcomes.sort_by(|a, b| a.0.cmp(&b.0));
        let mut merged: Vec<(V, f64)> = Vec::with_capacity(self.outcomes.len());
        for (v, p) in self.outcomes {
            match merged.last_mut() {
                Some((lv, lp)) if *lv == v => *lp += p,
                _ => merged.push((v, p)),
            }
        }
        DiscreteDist { outcomes: merged }
    }
}

impl<V: fmt::Debug> fmt::Display for DiscreteDist<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, p)) in self.outcomes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}: {p:.6}")?;
        }
        write!(f, "}}")
    }
}

/// The fair-coin distribution over data bits used for every transmitted bit
/// in the case studies.
pub fn fair_bit() -> DiscreteDist<crate::modulation::Bit> {
    DiscreteDist {
        outcomes: vec![
            (crate::modulation::Bit::ZERO, 0.5),
            (crate::modulation::Bit::ONE, 0.5),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::Bit;

    #[test]
    fn construction_validates() {
        assert!(DiscreteDist::new(vec![(0, 0.5), (1, 0.5)]).is_ok());
        assert!(DiscreteDist::new(vec![(0, 0.5), (1, 0.4)]).is_err());
        assert!(DiscreteDist::new(vec![(0, -0.1), (1, 1.1)]).is_err());
        assert!(DiscreteDist::new(vec![(0, f64::NAN), (1, 1.0)]).is_err());
    }

    #[test]
    fn zero_mass_outcomes_dropped() {
        let d = DiscreteDist::new(vec![(0, 0.0), (1, 1.0)]).unwrap();
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn normalized_rescales() {
        let d = DiscreteDist::normalized(vec![(0, 2.0), (1, 6.0)]).unwrap();
        assert!((d.prob(|&v| v == 1) - 0.75).abs() < 1e-12);
        assert!(DiscreteDist::<i32>::normalized(vec![]).is_err());
        assert!(DiscreteDist::normalized(vec![(0, 0.0)]).is_err());
    }

    #[test]
    fn point_and_expectation() {
        let d = DiscreteDist::point(7);
        assert_eq!(d.len(), 1);
        assert!((d.expectation(|&v| v as f64) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn product_is_independent() {
        let a = DiscreteDist::new(vec![(0, 0.25), (1, 0.75)]).unwrap();
        let b = DiscreteDist::new(vec![("x", 0.5), ("y", 0.5)]).unwrap();
        let p = a.product(&b);
        assert_eq!(p.len(), 4);
        assert!((p.prob(|&(v, s)| v == 1 && s == "y") - 0.375).abs() < 1e-12);
        let total: f64 = p.iter().map(|&(_, m)| m).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dedup_merges() {
        let d = DiscreteDist::normalized(vec![(1, 0.2), (0, 0.3), (1, 0.5)]).unwrap();
        let d = d.dedup();
        assert_eq!(d.len(), 2);
        assert!((d.prob(|&v| v == 1) - 0.7).abs() < 1e-12);
        // Sorted after dedup.
        assert_eq!(d.as_slice()[0].0, 0);
    }

    #[test]
    fn sampling_quantiles() {
        let d = DiscreteDist::new(vec![("a", 0.25), ("b", 0.75)]).unwrap();
        assert_eq!(*d.sample_with(0.0), "a");
        assert_eq!(*d.sample_with(0.24), "a");
        assert_eq!(*d.sample_with(0.26), "b");
        assert_eq!(*d.sample_with(0.999), "b");
        // Slack beyond accumulated mass returns last outcome.
        assert_eq!(*d.sample_with(1.0), "b");
    }

    #[test]
    fn fair_bit_is_fair() {
        let d = fair_bit();
        assert!((d.prob(|b| b.is_one()) - 0.5).abs() < 1e-12);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn map_preserves_mass() {
        let d = fair_bit().map(|b| b.value() as i32 * 10);
        assert!((d.prob(|&v| v == 10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_contains_masses() {
        let d = DiscreteDist::new(vec![(0u8, 1.0)]).unwrap();
        let s = d.to_string();
        assert!(s.contains("1.000000"), "{s}");
    }

    #[test]
    fn bit_product_distribution() {
        let two_bits = fair_bit().product(&fair_bit());
        assert_eq!(two_bits.len(), 4);
        assert!((two_bits.prob(|&(a, b)| a == Bit::ONE && b == Bit::ZERO) - 0.25).abs() < 1e-12);
    }
}
