//! Error type shared by the signal substrate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or using signal-processing primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum SignalError {
    /// A variance (or other strictly positive parameter) was not positive.
    NonPositiveVariance {
        /// The offending value.
        value: f64,
    },
    /// A quantizer was requested with fewer than two levels.
    TooFewLevels {
        /// The requested number of levels.
        levels: usize,
    },
    /// A quantizer range was empty or inverted.
    EmptyRange {
        /// Lower edge of the requested range.
        lo: f64,
        /// Upper edge of the requested range.
        hi: f64,
    },
    /// A probability was outside `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A discrete distribution did not sum to one.
    NotNormalized {
        /// The actual sum of the provided masses.
        sum: f64,
    },
    /// A parameter was not finite (NaN or infinite).
    NotFinite {
        /// Human-readable name of the parameter.
        name: &'static str,
    },
}

impl fmt::Display for SignalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalError::NonPositiveVariance { value } => {
                write!(f, "variance must be positive, got {value}")
            }
            SignalError::TooFewLevels { levels } => {
                write!(f, "quantizer needs at least 2 levels, got {levels}")
            }
            SignalError::EmptyRange { lo, hi } => {
                write!(f, "quantizer range [{lo}, {hi}] is empty")
            }
            SignalError::InvalidProbability { value } => {
                write!(f, "probability {value} is outside [0, 1]")
            }
            SignalError::NotNormalized { sum } => {
                write!(f, "distribution masses sum to {sum}, expected 1")
            }
            SignalError::NotFinite { name } => {
                write!(f, "parameter `{name}` must be finite")
            }
        }
    }
}

impl Error for SignalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            SignalError::NonPositiveVariance { value: -1.0 },
            SignalError::TooFewLevels { levels: 1 },
            SignalError::EmptyRange { lo: 1.0, hi: 0.0 },
            SignalError::InvalidProbability { value: 2.0 },
            SignalError::NotNormalized { sum: 0.5 },
            SignalError::NotFinite { name: "mean" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(SignalError::TooFewLevels { levels: 0 });
        assert!(e.source().is_none());
    }
}
