//! Signal-to-noise ratio bookkeeping.
//!
//! "Signal-to-Noise Ratio (SNR) represents the level of the uncorrupted
//! signal relative to that of the noise. For high values of SNR, the noise is
//! insignificant compared to the signal, resulting in a low BER." — §II.
//!
//! [`Snr`] is a newtype so that decibel and linear quantities can never be
//! confused, and it owns the single conversion the whole pipeline relies on:
//! *given an SNR and an average signal power, what is the noise variance?*

use crate::error::SignalError;
use crate::gaussian::Gaussian;
use std::fmt;

/// A signal-to-noise ratio.
///
/// Stored internally in decibels; the linear ratio is `10^(dB/10)`.
///
/// # Example
///
/// ```
/// use smg_signal::Snr;
///
/// let snr = Snr::from_db(10.0);
/// assert!((snr.linear() - 10.0).abs() < 1e-12);
/// // At 10 dB with unit signal power the noise variance is 0.1.
/// assert!((snr.noise_variance(1.0) - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Snr {
    db: f64,
}

impl Snr {
    /// Creates an SNR from a value in decibels.
    pub fn from_db(db: f64) -> Self {
        Snr { db }
    }

    /// Creates an SNR from a linear power ratio.
    ///
    /// # Panics
    ///
    /// Panics if `linear` is not strictly positive (an SNR of zero or
    /// negative linear power is meaningless).
    pub fn from_linear(linear: f64) -> Self {
        assert!(
            linear > 0.0 && linear.is_finite(),
            "linear SNR must be positive and finite, got {linear}"
        );
        Snr {
            db: 10.0 * linear.log10(),
        }
    }

    /// The SNR in decibels.
    pub fn db(&self) -> f64 {
        self.db
    }

    /// The linear power ratio `signal power / noise power`.
    pub fn linear(&self) -> f64 {
        10f64.powf(self.db / 10.0)
    }

    /// The total noise variance implied by this SNR for a signal of average
    /// power `signal_power`: `σ² = P_s / SNR_linear`.
    pub fn noise_variance(&self, signal_power: f64) -> f64 {
        signal_power / self.linear()
    }

    /// The zero-mean Gaussian noise distribution implied by this SNR for a
    /// signal of average power `signal_power`.
    ///
    /// # Errors
    ///
    /// Returns an error if the implied variance is not positive and finite
    /// (for example if `signal_power` is zero).
    pub fn noise(&self, signal_power: f64) -> Result<Gaussian, SignalError> {
        Gaussian::new(0.0, self.noise_variance(signal_power))
    }

    /// The per-dimension noise variance for a complex noise vector whose
    /// total variance is `σ²`: each of the real and imaginary parts carries
    /// half the power. This is the variance used for the real/imaginary
    /// component variables of the MIMO detector DTMC.
    pub fn noise_variance_per_dim(&self, signal_power: f64) -> f64 {
        self.noise_variance(signal_power) / 2.0
    }
}

impl fmt::Display for Snr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} dB", self.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_linear_round_trip() {
        for db in [-10.0, 0.0, 3.0, 5.0, 8.0, 12.0, 20.0] {
            let s = Snr::from_db(db);
            let back = Snr::from_linear(s.linear());
            assert!((back.db() - db).abs() < 1e-10, "round trip at {db} dB");
        }
    }

    #[test]
    fn zero_db_is_unity() {
        let s = Snr::from_db(0.0);
        assert!((s.linear() - 1.0).abs() < 1e-12);
        assert!((s.noise_variance(2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn higher_snr_means_less_noise() {
        let lo = Snr::from_db(5.0);
        let hi = Snr::from_db(12.0);
        assert!(hi.noise_variance(1.0) < lo.noise_variance(1.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn from_linear_rejects_zero() {
        let _ = Snr::from_linear(0.0);
    }

    #[test]
    fn noise_distribution() {
        let s = Snr::from_db(5.0);
        let g = s.noise(2.0).unwrap();
        assert_eq!(g.mean(), 0.0);
        // 5 dB → linear ≈ 3.1623; variance = 2 / 3.1623 ≈ 0.6325.
        assert!((g.variance() - 0.632_455_532_033_675_9).abs() < 1e-9);
    }

    #[test]
    fn per_dimension_variance_halves() {
        let s = Snr::from_db(8.0);
        assert!((s.noise_variance_per_dim(1.0) * 2.0 - s.noise_variance(1.0)).abs() < 1e-15);
    }

    #[test]
    fn display() {
        assert_eq!(Snr::from_db(5.0).to_string(), "5 dB");
    }
}
