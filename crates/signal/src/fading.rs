//! Flat Rayleigh fading channel model.
//!
//! "We assume a commonly used flat fading Rayleigh channel model and obtain
//! the probability distribution of the elements of H" (§IV). Each channel
//! coefficient `h` is circularly-symmetric complex Gaussian `CN(0, 1)`, so
//! its real and imaginary parts are independent `N(0, 1/2)`; the magnitude
//! `|h|` is Rayleigh distributed — hence the name.
//!
//! For the DTMC models the real and imaginary parts are pushed through a
//! quantizer ([`RayleighFading::quantized_part_dist`]), matching how the
//! paper uses "the probability distribution of the elements of H … to assign
//! probabilities to the DTMC transitions".

use crate::complex::Complex;
use crate::discrete::DiscreteDist;
use crate::error::SignalError;
use crate::gaussian::Gaussian;
use crate::quantizer::Quantizer;

/// A flat Rayleigh fading channel with `CN(0, gain_power)` coefficients.
///
/// # Example
///
/// ```
/// use smg_signal::{RayleighFading, Quantizer};
///
/// let fading = RayleighFading::unit();
/// let quant = Quantizer::symmetric(5, 2.0)?;
/// let part = fading.quantized_part_dist(&quant);
/// let total: f64 = part.iter().map(|&(_, p)| p).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// # Ok::<(), smg_signal::SignalError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayleighFading {
    gain_power: f64,
}

impl RayleighFading {
    /// A channel with the given average power `E[|h|²]`.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::NonPositiveVariance`] unless
    /// `gain_power > 0` and finite.
    pub fn new(gain_power: f64) -> Result<Self, SignalError> {
        if !gain_power.is_finite() {
            return Err(SignalError::NotFinite { name: "gain_power" });
        }
        if gain_power <= 0.0 {
            return Err(SignalError::NonPositiveVariance { value: gain_power });
        }
        Ok(RayleighFading { gain_power })
    }

    /// The conventional unit-power channel `E[|h|²] = 1`.
    pub fn unit() -> Self {
        RayleighFading { gain_power: 1.0 }
    }

    /// The average coefficient power `E[|h|²]`.
    pub fn gain_power(&self) -> f64 {
        self.gain_power
    }

    /// The Gaussian distribution of each real/imaginary part:
    /// `N(0, gain_power / 2)`.
    pub fn part_dist(&self) -> Gaussian {
        Gaussian::new(0.0, self.gain_power / 2.0).expect("gain_power validated at construction")
    }

    /// The exact finite distribution of one quantized real/imaginary part.
    pub fn quantized_part_dist(&self, quantizer: &Quantizer) -> Vec<(usize, f64)> {
        quantizer.discretize(&self.part_dist())
    }

    /// The quantized part distribution as a [`DiscreteDist`] over level
    /// indices.
    pub fn quantized_part_discrete(&self, quantizer: &Quantizer) -> DiscreteDist<usize> {
        DiscreteDist::normalized(self.quantized_part_dist(quantizer))
            .expect("gaussian discretization always has positive total mass")
    }

    /// Samples one complex coefficient from four independent uniforms in
    /// `(0, 1]` (two Box–Muller transforms).
    pub fn sample(&self, u: [f64; 4]) -> Complex {
        let g = self.part_dist();
        Complex::new(
            g.sample_box_muller(u[0], u[1]),
            g.sample_box_muller(u[2], u[3]),
        )
    }

    /// The Rayleigh CDF of the coefficient magnitude:
    /// `P(|h| ≤ r) = 1 − exp(−r²/gain_power)`.
    pub fn magnitude_cdf(&self, r: f64) -> f64 {
        if r <= 0.0 {
            0.0
        } else {
            1.0 - (-r * r / self.gain_power).exp()
        }
    }
}

impl Default for RayleighFading {
    fn default() -> Self {
        RayleighFading::unit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(RayleighFading::new(0.0).is_err());
        assert!(RayleighFading::new(-1.0).is_err());
        assert!(RayleighFading::new(f64::NAN).is_err());
        assert!(RayleighFading::new(2.0).is_ok());
    }

    #[test]
    fn part_variance_is_half_power() {
        let f = RayleighFading::new(2.0).unwrap();
        assert!((f.part_dist().variance() - 1.0).abs() < 1e-12);
        let unit = RayleighFading::unit();
        assert!((unit.part_dist().variance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantized_parts_sum_to_one_and_are_symmetric() {
        let f = RayleighFading::unit();
        let q = Quantizer::symmetric(5, 2.0).unwrap();
        let d = f.quantized_part_dist(&q);
        let total: f64 = d.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Zero-mean Gaussian through a symmetric quantizer: mirrored levels
        // carry equal mass.
        for i in 0..d.len() {
            let j = d.len() - 1 - i;
            assert!(
                (d[i].1 - d[j].1).abs() < 1e-12,
                "levels {i} and {j} should be symmetric"
            );
        }
    }

    #[test]
    fn magnitude_cdf_properties() {
        let f = RayleighFading::unit();
        assert_eq!(f.magnitude_cdf(0.0), 0.0);
        assert_eq!(f.magnitude_cdf(-1.0), 0.0);
        assert!(f.magnitude_cdf(10.0) > 0.999_999);
        // Median of Rayleigh with E|h|² = 1 is sqrt(ln 2).
        let median = (2f64.ln()).sqrt();
        assert!((f.magnitude_cdf(median) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic_in_uniforms() {
        let f = RayleighFading::unit();
        let a = f.sample([0.3, 0.7, 0.9, 0.1]);
        let b = f.sample([0.3, 0.7, 0.9, 0.1]);
        assert_eq!(a, b);
        assert!(a.is_finite());
    }

    #[test]
    fn discrete_wrapper_matches_raw() {
        let f = RayleighFading::unit();
        let q = Quantizer::symmetric(5, 2.0).unwrap();
        let raw = f.quantized_part_dist(&q);
        let disc = f.quantized_part_discrete(&q);
        for (lvl, p) in raw {
            if p > 0.0 {
                assert!((disc.prob(|&v| v == lvl) - p).abs() < 1e-12);
            }
        }
    }
}
