//! A minimal complex-number type.
//!
//! The MIMO channel model `y = Hx + n` of the paper uses complex channel
//! gains and received samples. Only the operations actually needed by the
//! detector models and the simulator are provided.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use smg_signal::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a + b, Complex::new(4.0, 1.0));
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// The complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// The squared magnitude `re² + im²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude (Euclidean norm).
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// The L1 norm `|re| + |im|` used by the paper's ML detector metric
    /// (Equation 15 splits the distance into separate real and imaginary
    /// absolute values).
    pub fn l1_norm(self) -> f64 {
        self.re.abs() + self.im.abs()
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Whether both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::ONE);
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
    }

    #[test]
    fn conjugate_multiplication_gives_norm() {
        let z = Complex::new(2.0, -3.0);
        let n = z * z.conj();
        assert!((n.re - z.norm_sqr()).abs() < 1e-12);
        assert!(n.im.abs() < 1e-12);
    }

    #[test]
    fn l1_norm_matches_paper_metric() {
        let z = Complex::new(-1.5, 2.0);
        assert!((z.l1_norm() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.25, -0.5);
        let b = Complex::new(-2.0, 0.75);
        assert_eq!(a + b - b, a);
        assert_eq!(-(-a), a);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn scale_and_from() {
        let a = Complex::from(2.0);
        assert_eq!(a.scale(3.0), Complex::new(6.0, 0.0));
        assert_eq!(Complex::from_re(2.0), a);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn finiteness() {
        assert!(Complex::new(1.0, 2.0).is_finite());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex::new(0.0, f64::INFINITY).is_finite());
    }
}
