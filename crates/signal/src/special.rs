//! Special functions: `erf`, `erfc`, the standard normal CDF Φ and its
//! inverse, and the communications Q-function.
//!
//! Implemented from scratch so that the workspace has no external numerics
//! dependency. Accuracy notes:
//!
//! * [`erf`] uses the Maclaurin series for `|x| ≤ 3` (converges to double
//!   precision there) and the Laplace continued fraction for the tail, giving
//!   ~1e-12 absolute accuracy everywhere — far below the probability
//!   granularity any of the case studies can observe.
//! * [`inv_phi`] uses Acklam's rational approximation refined by one Halley
//!   step, accurate to ~1e-13.

use std::f64::consts::PI;

/// `2/sqrt(pi)`, the derivative of `erf` at 0.
const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;
/// `sqrt(2)`.
const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// # Example
///
/// ```
/// let e = smg_signal::special::erf(1.0);
/// assert!((e - 0.8427007929497149).abs() < 1e-10);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let ax = x.abs();
    if ax <= 3.0 {
        sign * erf_series(ax)
    } else {
        sign * (1.0 - erfc_cf(ax))
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`, computed with an
/// asymptotic continued fraction for large `x` so that tiny tail
/// probabilities (down to ~1e-300) keep full relative accuracy.
///
/// # Example
///
/// ```
/// // Large-argument tails stay positive and decreasing.
/// let a = smg_signal::special::erfc(5.0);
/// let b = smg_signal::special::erfc(6.0);
/// assert!(a > b && b > 0.0);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 3.0 {
        erfc_cf(x)
    } else if x <= -3.0 {
        2.0 - erfc_cf(-x)
    } else {
        1.0 - erf(x)
    }
}

/// Maclaurin series for `erf` on `[0, 3]`:
/// `erf(x) = 2/√π Σ_{n≥0} (−1)ⁿ x^{2n+1} / (n! (2n+1))`.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x; // x^{2n+1} / n!
    let mut sum = x; // accumulates term / (2n+1), n = 0 term is x itself
    for n in 1..200 {
        term *= -x2 / n as f64;
        let add = term / (2 * n + 1) as f64;
        sum += add;
        if add.abs() < 1e-17 * sum.abs().max(1e-300) {
            break;
        }
    }
    (TWO_OVER_SQRT_PI * sum).clamp(-1.0, 1.0)
}

/// Laplace continued fraction for `erfc` on `x ≥ 3`:
/// `erfc(x) = e^{−x²}/√π · 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + ...))))`.
fn erfc_cf(x: f64) -> f64 {
    debug_assert!(x >= 3.0);
    let mut frac = 0.0;
    for k in (1..=60).rev() {
        frac = (k as f64 * 0.5) / (x + frac);
    }
    (-x * x).exp() / ((x + frac) * PI.sqrt())
}

/// The standard normal cumulative distribution function
/// `Φ(x) = P(Z ≤ x)` for `Z ~ N(0,1)`.
///
/// # Example
///
/// ```
/// use smg_signal::special::phi;
/// assert!((phi(0.0) - 0.5).abs() < 1e-12);
/// assert!((phi(1.96) - 0.9750021048517795).abs() < 1e-8);
/// ```
pub fn phi(x: f64) -> f64 {
    if x >= 0.0 {
        0.5 * (1.0 + erf(x / SQRT_2))
    } else {
        // Use erfc for accurate small left tails.
        0.5 * erfc(-x / SQRT_2)
    }
}

/// The communications Q-function `Q(x) = 1 − Φ(x) = P(Z > x)`.
///
/// # Example
///
/// ```
/// use smg_signal::special::{phi, q_function};
/// let x = 1.3;
/// assert!((q_function(x) + phi(x) - 1.0).abs() < 1e-12);
/// ```
pub fn q_function(x: f64) -> f64 {
    phi(-x)
}

/// The inverse standard normal CDF `Φ⁻¹(p)` (the probit function).
///
/// Uses Acklam's rational approximation followed by one Halley refinement
/// step. Returns `±∞` at `p ∈ {0, 1}` and `NaN` outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use smg_signal::special::{inv_phi, phi};
/// let p = 0.975;
/// let x = inv_phi(p);
/// assert!((phi(x) - p).abs() < 1e-10);
/// ```
pub fn inv_phi(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step: u = (phi(x) - p) / pdf(x); x -= u / (1 + x*u/2).
    let e = phi(x) - p;
    let pdf = std_normal_pdf(x);
    if pdf > 0.0 {
        let u = e / pdf;
        x - u / (1.0 + x * u / 2.0)
    } else {
        x
    }
}

/// The standard normal probability density function.
///
/// # Example
///
/// ```
/// let d = smg_signal::special::std_normal_pdf(0.0);
/// assert!((d - 0.3989422804014327).abs() < 1e-12);
/// ```
pub fn std_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
        (4.0, 0.9999999845827421),
    ];

    #[test]
    fn erf_matches_reference() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!((got - want).abs() < 1e-11, "erf({x}) = {got}, want {want}");
            assert!((erf(-x) + want).abs() < 1e-11, "odd symmetry at {x}");
        }
    }

    #[test]
    fn erfc_large_tail() {
        // erfc(5) = 1.5374597944280349e-12 (reference).
        let got = erfc(5.0);
        assert!(
            (got / 1.537459794428035e-12 - 1.0).abs() < 1e-9,
            "erfc(5) = {got}"
        );
        // erfc(10) = 2.0884875837625447e-45.
        let got = erfc(10.0);
        assert!(
            (got / 2.0884875837625447e-45 - 1.0).abs() < 1e-9,
            "erfc(10) = {got}"
        );
    }

    #[test]
    fn erfc_agrees_with_erf_in_overlap() {
        for i in -60..=60 {
            let x = i as f64 * 0.1;
            let a = erfc(x);
            let b = 1.0 - erf(x);
            assert!((a - b).abs() < 1e-10, "erfc({x}) = {a} vs 1-erf = {b}");
        }
    }

    #[test]
    fn erfc_negative_side() {
        assert!((erfc(-5.0) - 2.0).abs() < 1e-11);
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-11);
    }

    #[test]
    fn phi_basic_points() {
        assert!((phi(0.0) - 0.5).abs() < 1e-12);
        assert!((phi(1.0) - 0.8413447460685429).abs() < 1e-10);
        assert!((phi(-1.0) - 0.15865525393145705).abs() < 1e-10);
        assert!(phi(40.0) == 1.0 || (1.0 - phi(40.0)).abs() < 1e-300);
        // Deep left tail keeps relative accuracy: phi(-10) = 7.6198530241605e-24.
        assert!((phi(-10.0) / 7.619853024160527e-24 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phi_is_monotone() {
        let mut prev = 0.0;
        let mut x = -8.0;
        while x <= 8.0 {
            let p = phi(x);
            assert!(p >= prev - 1e-15, "phi not monotone at {x}");
            prev = p;
            x += 0.05;
        }
    }

    #[test]
    fn q_function_complements_phi() {
        for i in -30..=30 {
            let x = i as f64 * 0.25;
            assert!((q_function(x) + phi(x) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn inv_phi_round_trips() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let x = inv_phi(p);
            assert!((phi(x) - p).abs() < 1e-10, "round trip at p={p}");
        }
    }

    #[test]
    fn inv_phi_tails_and_edges() {
        assert_eq!(inv_phi(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_phi(1.0), f64::INFINITY);
        assert!(inv_phi(-0.1).is_nan());
        assert!(inv_phi(1.1).is_nan());
        let x = inv_phi(1e-10);
        assert!((phi(x) / 1e-10 - 1.0).abs() < 1e-6, "deep tail round trip");
    }

    #[test]
    fn nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Trapezoid over [-8, 8].
        let n = 4000;
        let h = 16.0 / n as f64;
        let mut s = 0.0;
        for i in 0..=n {
            let x = -8.0 + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            s += w * std_normal_pdf(x);
        }
        assert!((s * h - 1.0).abs() < 1e-9);
    }
}
