//! Univariate Gaussian distributions: exact interval probabilities and
//! sampling.
//!
//! The paper models "a large number of small error sources … lumped together
//! by the Central Limit Theorem … as a single random variable, called noise,
//! with a zero-mean Gaussian distribution". This module is that random
//! variable: it provides the exact CDF used to label DTMC transitions and a
//! Box–Muller sampler used by the Monte-Carlo baseline.

use crate::error::SignalError;
use crate::special::{phi, std_normal_pdf};

/// A Gaussian (normal) distribution `N(mean, variance)`.
///
/// # Example
///
/// ```
/// use smg_signal::Gaussian;
///
/// let g = Gaussian::new(0.0, 4.0)?;
/// assert!((g.cdf(0.0) - 0.5).abs() < 1e-12);
/// // P(-2σ < X ≤ 2σ) ≈ 0.9545
/// assert!((g.interval_prob(-4.0, 4.0) - 0.9544997361036416).abs() < 1e-9);
/// # Ok::<(), smg_signal::SignalError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    variance: f64,
    sigma: f64,
}

impl Gaussian {
    /// Creates a Gaussian with the given mean and variance.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::NonPositiveVariance`] if `variance <= 0`, and
    /// [`SignalError::NotFinite`] if either parameter is NaN or infinite.
    pub fn new(mean: f64, variance: f64) -> Result<Self, SignalError> {
        if !mean.is_finite() {
            return Err(SignalError::NotFinite { name: "mean" });
        }
        if !variance.is_finite() {
            return Err(SignalError::NotFinite { name: "variance" });
        }
        if variance <= 0.0 {
            return Err(SignalError::NonPositiveVariance { value: variance });
        }
        Ok(Gaussian {
            mean,
            variance,
            sigma: variance.sqrt(),
        })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Gaussian {
            mean: 0.0,
            variance: 1.0,
            sigma: 1.0,
        }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The variance.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// The standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Returns a copy shifted so its mean is `mean`.
    pub fn with_mean(&self, mean: f64) -> Self {
        Gaussian { mean, ..*self }
    }

    /// The cumulative distribution function `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x == f64::INFINITY {
            return 1.0;
        }
        if x == f64::NEG_INFINITY {
            return 0.0;
        }
        phi((x - self.mean) / self.sigma)
    }

    /// The probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        std_normal_pdf((x - self.mean) / self.sigma) / self.sigma
    }

    /// The probability `P(lo < X ≤ hi)`. Accepts infinite endpoints.
    ///
    /// Returns `0` when `hi <= lo`.
    pub fn interval_prob(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        (self.cdf(hi) - self.cdf(lo)).max(0.0)
    }

    /// Draws one sample using the Box–Muller transform with the caller's
    /// uniform source. `u1` and `u2` must be independent uniforms in `(0,1]`.
    ///
    /// This is deliberately decoupled from any RNG crate: the Monte-Carlo
    /// engine feeds it from a seeded `rand` generator, and the tests feed it
    /// deterministic sequences.
    pub fn sample_box_muller(&self, u1: f64, u2: f64) -> f64 {
        let u1 = u1.clamp(f64::MIN_POSITIVE, 1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.sigma * r * theta.cos()
    }

    /// Draws a pair of independent samples from one Box–Muller transform.
    pub fn sample_box_muller_pair(&self, u1: f64, u2: f64) -> (f64, f64) {
        let u1 = u1.clamp(f64::MIN_POSITIVE, 1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (
            self.mean + self.sigma * r * theta.cos(),
            self.mean + self.sigma * r * theta.sin(),
        )
    }
}

impl Default for Gaussian {
    fn default() -> Self {
        Gaussian::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(Gaussian::new(0.0, 0.0).is_err());
        assert!(Gaussian::new(0.0, -1.0).is_err());
        assert!(Gaussian::new(f64::NAN, 1.0).is_err());
        assert!(Gaussian::new(0.0, f64::INFINITY).is_err());
        assert!(Gaussian::new(1.5, 2.0).is_ok());
    }

    #[test]
    fn standard_matches_phi() {
        let g = Gaussian::standard();
        for i in -20..=20 {
            let x = i as f64 * 0.3;
            assert!((g.cdf(x) - phi(x)).abs() < 1e-14);
        }
    }

    #[test]
    fn scaling_and_shifting() {
        let g = Gaussian::new(3.0, 4.0).unwrap();
        // P(X <= 3) = 0.5; P(X <= 5) = phi(1).
        assert!((g.cdf(3.0) - 0.5).abs() < 1e-12);
        assert!((g.cdf(5.0) - phi(1.0)).abs() < 1e-12);
        let shifted = g.with_mean(0.0);
        assert_eq!(shifted.variance(), 4.0);
        assert!((shifted.cdf(2.0) - phi(1.0)).abs() < 1e-12);
    }

    #[test]
    fn interval_probabilities() {
        let g = Gaussian::standard();
        assert_eq!(g.interval_prob(1.0, 1.0), 0.0);
        assert_eq!(g.interval_prob(2.0, 1.0), 0.0);
        assert!((g.interval_prob(f64::NEG_INFINITY, f64::INFINITY) - 1.0).abs() < 1e-12);
        let p = g.interval_prob(-1.0, 1.0);
        assert!((p - 0.6826894921370859).abs() < 1e-9);
    }

    #[test]
    fn pdf_peak_at_mean() {
        let g = Gaussian::new(2.0, 0.25).unwrap();
        assert!(g.pdf(2.0) > g.pdf(2.5));
        assert!(g.pdf(2.0) > g.pdf(1.5));
        // Peak value = 1/(σ√(2π)) with σ = 0.5.
        assert!((g.pdf(2.0) - 0.7978845608028654).abs() < 1e-9);
    }

    #[test]
    fn box_muller_deterministic_inputs() {
        let g = Gaussian::standard();
        // u1 = 1 gives r = 0 regardless of u2.
        assert_eq!(g.sample_box_muller(1.0, 0.37), 0.0);
        // Known point: u1 = e^{-1/2} → r = 1; u2 = 0 → cos = 1.
        let s = g.sample_box_muller((-0.5f64).exp(), 0.0);
        assert!((s - 1.0).abs() < 1e-12);
        let (a, b) = g.sample_box_muller_pair((-0.5f64).exp(), 0.25);
        assert!(a.abs() < 1e-9 && (b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn box_muller_sample_moments() {
        // Deterministic low-discrepancy sweep is enough to sanity-check
        // mean/variance of the transform.
        let g = Gaussian::new(1.0, 9.0).unwrap();
        let n = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for i in 0..n {
            let u1 = (i as f64 + 0.5) / n as f64;
            let u2 = ((i as f64 * 0.618_033_988_749_895) % 1.0).abs();
            let s = g.sample_box_muller(u1, u2);
            sum += s;
            sumsq += s * s;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 1.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 9.0).abs() < 0.5, "var = {var}");
    }

    #[test]
    fn infinite_cdf_endpoints() {
        let g = Gaussian::new(0.0, 2.0).unwrap();
        assert_eq!(g.cdf(f64::INFINITY), 1.0);
        assert_eq!(g.cdf(f64::NEG_INFINITY), 0.0);
    }
}
