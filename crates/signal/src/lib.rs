//! Communication-systems signal substrate for `statguard-mimo`.
//!
//! This crate provides the numerical building blocks that the paper's DTMC
//! models are labelled with: complex arithmetic, Gaussian tail probabilities,
//! SNR bookkeeping, BPSK modulation, additive white Gaussian noise (AWGN),
//! flat Rayleigh fading, and — most importantly — **quantizers** together with
//! the machinery to push a continuous Gaussian distribution through a
//! quantizer and obtain an exact finite probability mass function over
//! quantization levels. Those masses become the transition probabilities of
//! the DTMC models in `smg-viterbi` and `smg-detector`.
//!
//! Everything here is implemented from scratch (no external numerics crates):
//! [`special::erf`] uses the Abramowitz–Stegun 7.1.26 rational approximation
//! refined by a Newton step against the exact derivative, which is accurate to
//! well below the probability granularity any of the case studies can observe.
//!
//! # Example
//!
//! ```
//! use smg_signal::{Snr, Gaussian, Quantizer};
//!
//! // BPSK symbol +1 observed in noise at 5 dB SNR with unit signal power.
//! let snr = Snr::from_db(5.0);
//! let sigma2 = snr.noise_variance(1.0);
//! let noise = Gaussian::new(1.0, sigma2).unwrap();
//! let quant = Quantizer::uniform(8, -3.0, 3.0).unwrap();
//! let pmf = quant.discretize(&noise);
//! let total: f64 = pmf.iter().map(|&(_, p)| p).sum();
//! assert!((total - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]

pub mod complex;
pub mod discrete;
pub mod error;
pub mod fading;
pub mod gaussian;
pub mod modulation;
pub mod quantizer;
pub mod snr;
pub mod special;

pub use complex::Complex;
pub use discrete::DiscreteDist;
pub use error::SignalError;
pub use fading::RayleighFading;
pub use gaussian::Gaussian;
pub use modulation::{bpsk, bpsk_bit, Bit};
pub use quantizer::Quantizer;
pub use snr::Snr;
