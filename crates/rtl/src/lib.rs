//! RTL hardware substrate for `statguard-mimo`.
//!
//! The paper analyses designs "at the RT Level": every state variable lives
//! in a register of finite width, every counter saturates or wraps, and path
//! metrics are renormalized so they never overflow. This crate provides those
//! bounded-arithmetic primitives so the DTMC case-study models are honest
//! about finite hardware state — the finiteness of the DTMC state space
//! *derives* from these types rather than being assumed.
//!
//! # Example
//!
//! ```
//! use smg_rtl::{SatCounter, normalize_pair};
//!
//! let mut c = SatCounter::new(0, 7);
//! c.add(5);
//! c.add(5);
//! assert_eq!(c.value(), 7); // saturates at the cap
//!
//! let (a, b) = normalize_pair(9, 4, 7);
//! assert_eq!((a, b), (5, 0)); // min subtracted, then saturated
//! ```

#![forbid(unsafe_code)]

pub mod clocked;
pub mod sat;
pub mod shift;

pub use clocked::Clocked;
pub use sat::{normalize_pair, SatCounter};
pub use shift::ShiftRegister;
