//! Fixed-depth shift registers.
//!
//! The Viterbi decoder "stores the variables corresponding to the previous
//! L−1 trellis stages" (§IV-A); in hardware that is a bank of shift
//! registers clocked once per time step. [`ShiftRegister`] models exactly
//! that: a fixed-depth pipeline where pushing at the front drops the oldest
//! element off the back.

use std::collections::VecDeque;
use std::fmt;

/// A fixed-depth shift register.
///
/// Index 0 is the most recently pushed element (the paper's "stage 0,
/// corresponding to the trellis stage in the current time step"); index
/// `depth-1` is the oldest retained element.
///
/// # Example
///
/// ```
/// use smg_rtl::ShiftRegister;
///
/// let mut sr = ShiftRegister::filled(0u8, 3);
/// sr.push(1);
/// sr.push(2);
/// assert_eq!(sr.get(0), &2);
/// assert_eq!(sr.get(1), &1);
/// assert_eq!(sr.get(2), &0);
/// assert_eq!(sr.push(3), 0); // the dropped oldest element is returned
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShiftRegister<T> {
    // Front = newest.
    slots: VecDeque<T>,
}

impl<T: Clone> ShiftRegister<T> {
    /// Creates a register of the given depth with every slot holding `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn filled(fill: T, depth: usize) -> Self {
        assert!(depth > 0, "shift register depth must be positive");
        ShiftRegister {
            slots: VecDeque::from(vec![fill; depth]),
        }
    }
}

impl<T> ShiftRegister<T> {
    /// Creates a register from newest-first contents.
    ///
    /// # Panics
    ///
    /// Panics if `contents` is empty.
    pub fn from_newest_first(contents: Vec<T>) -> Self {
        assert!(
            !contents.is_empty(),
            "shift register depth must be positive"
        );
        ShiftRegister {
            slots: contents.into(),
        }
    }

    /// The depth of the register.
    pub fn depth(&self) -> usize {
        self.slots.len()
    }

    /// Pushes a new element into stage 0, shifting every stage down by one
    /// and returning the element that fell off the back.
    pub fn push(&mut self, value: T) -> T {
        self.slots.push_front(value);
        self.slots.pop_back().expect("depth is positive")
    }

    /// The element at stage `i` (0 = newest).
    ///
    /// # Panics
    ///
    /// Panics if `i >= depth`.
    pub fn get(&self, i: usize) -> &T {
        &self.slots[i]
    }

    /// The oldest retained element (stage `depth − 1`).
    pub fn oldest(&self) -> &T {
        self.slots.back().expect("depth is positive")
    }

    /// The newest element (stage 0).
    pub fn newest(&self) -> &T {
        self.slots.front().expect("depth is positive")
    }

    /// Iterates newest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter()
    }
}

impl<T: fmt::Display> fmt::Display for ShiftRegister<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_and_drops() {
        let mut sr = ShiftRegister::filled(0, 4);
        for v in 1..=4 {
            sr.push(v);
        }
        // Newest-first: 4 3 2 1.
        let collected: Vec<_> = sr.iter().copied().collect();
        assert_eq!(collected, vec![4, 3, 2, 1]);
        assert_eq!(sr.push(5), 1);
        assert_eq!(*sr.oldest(), 2);
        assert_eq!(*sr.newest(), 5);
    }

    #[test]
    fn depth_is_constant() {
        let mut sr = ShiftRegister::filled('a', 3);
        for c in "bcdefg".chars() {
            sr.push(c);
            assert_eq!(sr.depth(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_rejected() {
        let _ = ShiftRegister::filled(0u8, 0);
    }

    #[test]
    fn from_newest_first() {
        let sr = ShiftRegister::from_newest_first(vec![9, 8, 7]);
        assert_eq!(*sr.get(0), 9);
        assert_eq!(*sr.get(2), 7);
    }

    #[test]
    fn display() {
        let sr = ShiftRegister::from_newest_first(vec![1, 2, 3]);
        assert_eq!(sr.to_string(), "[1 2 3]");
    }
}
