//! The clocked-update abstraction.
//!
//! "We assume that every transition of the DTMC model corresponds to a
//! single time step (modeled by an explicit clock in RTL)" — §III. A
//! [`Clocked`] component consumes one input per clock edge and produces one
//! output; the bit-true simulators in `smg-viterbi` and `smg-sim` are built
//! from these.

/// A synchronous component clocked once per time step.
///
/// # Example
///
/// ```
/// use smg_rtl::Clocked;
///
/// /// An accumulator register.
/// struct Acc(u32);
/// impl Clocked for Acc {
///     type Input = u32;
///     type Output = u32;
///     fn tick(&mut self, input: u32) -> u32 {
///         self.0 += input;
///         self.0
///     }
///     fn reset(&mut self) {
///         self.0 = 0;
///     }
/// }
///
/// let mut acc = Acc(0);
/// assert_eq!(acc.tick(2), 2);
/// assert_eq!(acc.tick(3), 5);
/// acc.reset();
/// assert_eq!(acc.tick(1), 1);
/// ```
pub trait Clocked {
    /// The value consumed on each clock edge.
    type Input;
    /// The value produced on each clock edge.
    type Output;

    /// Advances one clock cycle.
    fn tick(&mut self, input: Self::Input) -> Self::Output;

    /// Returns the component to its power-on state.
    fn reset(&mut self);

    /// Runs a whole input sequence, collecting the outputs.
    fn run<I>(&mut self, inputs: I) -> Vec<Self::Output>
    where
        I: IntoIterator<Item = Self::Input>,
        Self: Sized,
    {
        inputs.into_iter().map(|i| self.tick(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Delay {
        held: u8,
    }

    impl Clocked for Delay {
        type Input = u8;
        type Output = u8;
        fn tick(&mut self, input: u8) -> u8 {
            std::mem::replace(&mut self.held, input)
        }
        fn reset(&mut self) {
            self.held = 0;
        }
    }

    #[test]
    fn delay_element() {
        let mut d = Delay { held: 0 };
        assert_eq!(d.run([1, 2, 3, 4]), vec![0, 1, 2, 3]);
        d.reset();
        assert_eq!(d.tick(9), 0);
    }
}
