//! Saturating bounded counters and path-metric normalization.

/// A saturating counter confined to `0..=cap`.
///
/// Additions clamp at `cap`, subtractions clamp at zero — exactly the
/// behaviour of a hardware accumulator with saturation logic. Used for the
/// Viterbi path metrics (which saturate after normalization) and the error /
/// non-convergence counters of properties P3 and C1.
///
/// # Example
///
/// ```
/// use smg_rtl::SatCounter;
///
/// let mut pm = SatCounter::new(3, 15);
/// pm.add(20);
/// assert_eq!(pm.value(), 15);
/// pm.sub(4);
/// assert_eq!(pm.value(), 11);
/// pm.sub(100);
/// assert_eq!(pm.value(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatCounter {
    value: u32,
    cap: u32,
}

impl SatCounter {
    /// Creates a counter with the given initial value and cap.
    ///
    /// # Panics
    ///
    /// Panics if `value > cap`.
    pub fn new(value: u32, cap: u32) -> Self {
        assert!(value <= cap, "initial value {value} exceeds cap {cap}");
        SatCounter { value, cap }
    }

    /// A zero-initialized counter with the given cap.
    pub fn zeroed(cap: u32) -> Self {
        SatCounter { value: 0, cap }
    }

    /// The current value.
    pub fn value(&self) -> u32 {
        self.value
    }

    /// The saturation cap.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Whether the counter is pegged at its cap.
    pub fn is_saturated(&self) -> bool {
        self.value == self.cap
    }

    /// Adds with saturation at the cap.
    pub fn add(&mut self, amount: u32) {
        self.value = self.value.saturating_add(amount).min(self.cap);
    }

    /// Subtracts with saturation at zero.
    pub fn sub(&mut self, amount: u32) {
        self.value = self.value.saturating_sub(amount);
    }

    /// Increments by one with saturation.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Returns a copy with the given value, saturated into range.
    pub fn with_value(&self, value: u32) -> Self {
        SatCounter {
            value: value.min(self.cap),
            cap: self.cap,
        }
    }
}

/// Normalizes a pair of path metrics the way Viterbi hardware does: subtract
/// the minimum from both (so the smaller becomes zero) and saturate each at
/// `cap`. Returns the normalized pair.
///
/// Normalization keeps the *difference* of the metrics — the only quantity
/// the add-compare-select decisions depend on — while confining both values
/// to a finite register range. This is what makes the Viterbi DTMC finite.
///
/// # Example
///
/// ```
/// use smg_rtl::normalize_pair;
/// assert_eq!(normalize_pair(7, 3, 10), (4, 0));
/// assert_eq!(normalize_pair(3, 30, 10), (0, 10)); // saturated
/// assert_eq!(normalize_pair(5, 5, 10), (0, 0));
/// ```
pub fn normalize_pair(a: u32, b: u32, cap: u32) -> (u32, u32) {
    let m = a.min(b);
    ((a - m).min(cap), (b - m).min(cap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_saturates() {
        let mut c = SatCounter::zeroed(5);
        for _ in 0..10 {
            c.incr();
        }
        assert_eq!(c.value(), 5);
        assert!(c.is_saturated());
        c.add(u32::MAX);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn sub_saturates_at_zero() {
        let mut c = SatCounter::new(2, 5);
        c.sub(10);
        assert_eq!(c.value(), 0);
        assert!(!c.is_saturated());
    }

    #[test]
    fn reset_and_with_value() {
        let mut c = SatCounter::new(4, 5);
        c.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(c.with_value(99).value(), 5);
        assert_eq!(c.with_value(3).value(), 3);
        assert_eq!(c.cap(), 5);
    }

    #[test]
    #[should_panic(expected = "exceeds cap")]
    fn new_validates() {
        let _ = SatCounter::new(6, 5);
    }

    #[test]
    fn normalize_pair_makes_min_zero() {
        for a in 0..20u32 {
            for b in 0..20u32 {
                let (x, y) = normalize_pair(a, b, 12);
                assert_eq!(x.min(y), 0, "one side must be zero for ({a},{b})");
                assert!(x <= 12 && y <= 12);
                if a.abs_diff(b) <= 12 {
                    assert_eq!(x.abs_diff(y), a.abs_diff(b), "difference preserved");
                }
            }
        }
    }

    #[test]
    fn normalize_pair_is_idempotent() {
        for a in 0..15u32 {
            for b in 0..15u32 {
                let first = normalize_pair(a, b, 9);
                let second = normalize_pair(first.0, first.1, 9);
                assert_eq!(first, second);
            }
        }
    }

    #[test]
    fn ordering_derives() {
        assert!(SatCounter::new(1, 5) < SatCounter::new(2, 5));
    }
}
