//! Breadth-first state-space exploration for MDPs.
//!
//! [`explore`] enumerates the states of an [`MdpModel`] reachable from its
//! initial distribution — a state is reachable if *some* action sequence
//! can reach it — interning each distinct state and assembling the explicit
//! [`Mdp`]. The machinery is shared with the DTMC explorer: states intern
//! into the same sharded [`StateIndex`], action distributions are validated
//! by the same [`clean_successors`], rows merge through the same
//! [`merge_row_into`] primitive into [`MdpBuilder`]'s flat pool, and labels
//! and rewards assemble through the same parallel
//! [`assemble_labels_rewards`] scans.
//!
//! # Parallel exploration
//!
//! Levels of at least [`ExploreOptions::par_min_level`] states run as a
//! three-phase pipeline on the persistent worker pool:
//!
//! 1. **Expand** (parallel) — the level is split into contiguous chunks;
//!    each chunk calls the model's action function and validates every
//!    action's distribution.
//! 2. **Intern** (sequential) — one scan over the chunks in level order
//!    resolves every successor to its id, assigning fresh ids in
//!    first-occurrence order — exactly the order sequential BFS would have
//!    used. (The DTMC explorer shards this phase too; MDP expansion is
//!    dominated by the model's action enumeration, so a sequential intern
//!    scan costs a small fraction of phase 1 and keeps the pipeline simple.)
//! 3. **Assemble** (parallel) — each chunk merges its action rows into a
//!    private flat segment, and segments concatenate in chunk order.
//!
//! Ids, rows and statistics are bit-identical to sequential BFS for every
//! thread count (property-tested in `tests/vi_properties.rs`).

use crate::mdp::{Mdp, MdpBuilder};
use crate::model::MdpModel;
use smg_dtmc::explore::{assemble_labels_rewards, clean_successors, ExploreOptions, StateIndex};
use smg_dtmc::matrix::merge_row_into;
use smg_dtmc::{par, pool, BuildStats, DtmcError, StateId};
use std::hash::Hash;
use std::time::Instant;

/// The result of exploring an MDP model: the explicit process plus the
/// mapping between model states and matrix indices.
#[derive(Debug, Clone)]
pub struct ExploredMdp<S> {
    /// The explicit MDP.
    pub mdp: Mdp,
    /// State at each index (`states[id]` is the model state of `id`).
    pub states: Vec<S>,
    /// Index of each state (the DTMC engine's interning table).
    pub index: StateIndex<S>,
    /// Exploration statistics; `transitions` counts stored MDP transitions
    /// (summed over all actions).
    pub stats: BuildStats,
}

impl<S> ExploredMdp<S> {
    /// Looks up the id of a model state.
    pub fn id_of(&self, state: &S) -> Option<StateId>
    where
        S: Hash + Eq,
    {
        self.index.get(state)
    }
}

/// Interns one state, assigning the next id in discovery order.
#[inline]
fn intern<S: Clone + Hash + Eq>(
    s: S,
    states: &mut Vec<S>,
    index: &mut StateIndex<S>,
    max_states: usize,
) -> Result<StateId, DtmcError> {
    if let Some(id) = index.get(&s) {
        return Ok(id);
    }
    if states.len() >= max_states {
        return Err(DtmcError::StateLimitExceeded { limit: max_states });
    }
    let id = states.len() as StateId;
    index.insert(s.clone(), id);
    states.push(s);
    Ok(id)
}

/// Per-worker expansion scratch, reused across levels.
#[derive(Debug)]
struct ChunkScratch<S> {
    /// Flat successor occurrences `(state, probability)` of this chunk.
    succ: Vec<(S, f64)>,
    /// Resolved state ids aligned with `succ` (filled by the intern scan).
    ids: Vec<u32>,
    /// Successor count per action, flat in source order.
    act_len: Vec<u32>,
    /// Action count per source state.
    action_count: Vec<u32>,
    /// First validation/model error hit in this chunk.
    err: Option<DtmcError>,
    /// Assembled segment: merged per-action lengths, columns, values.
    seg_act_len: Vec<u32>,
    seg_cols: Vec<u32>,
    seg_vals: Vec<f64>,
    /// Row sort/merge buffer.
    row_buf: Vec<(u32, f64)>,
}

impl<S> ChunkScratch<S> {
    fn new() -> Self {
        ChunkScratch {
            succ: Vec::new(),
            ids: Vec::new(),
            act_len: Vec::new(),
            action_count: Vec::new(),
            err: None,
            seg_act_len: Vec::new(),
            seg_cols: Vec::new(),
            seg_vals: Vec::new(),
            row_buf: Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.succ.clear();
        self.ids.clear();
        self.act_len.clear();
        self.action_count.clear();
        self.err = None;
    }
}

/// Explores an [`MdpModel`] breadth-first into an explicit [`Mdp`].
///
/// Large frontier levels are expanded in parallel on the engine's worker
/// pool; the result is bit-identical to sequential BFS (see the module
/// docs). The model is shared across workers, hence the `Sync` bounds.
///
/// # Errors
///
/// Propagates invalid-probability/stochasticity errors from the model,
/// [`DtmcError::NoActions`] for deadlocked states, and
/// [`DtmcError::StateLimitExceeded`] if the reachable space is larger than
/// `options.max_states`.
pub fn explore<M>(model: &M, options: &ExploreOptions) -> Result<ExploredMdp<M::State>, DtmcError>
where
    M: MdpModel + Sync,
    M::State: Send + Sync,
{
    let start = Instant::now();
    let workers = options
        .threads
        .unwrap_or_else(par::max_threads)
        .clamp(1, 1 << 16);

    let mut index: StateIndex<M::State> = StateIndex::new();
    let mut states: Vec<M::State> = Vec::new();

    // Initial distribution — level 0 of the BFS.
    let init = model.initial_states();
    let mut init_sum = 0.0;
    let mut initial: Vec<(StateId, f64)> = Vec::with_capacity(init.len());
    for (s, p) in init {
        if p < 0.0 || p.is_nan() {
            return Err(DtmcError::BadInitialDistribution { sum: f64::NAN });
        }
        init_sum += p;
        if p > 0.0 {
            let id = intern(s, &mut states, &mut index, options.max_states)?;
            initial.push((id, p));
        }
    }
    if (init_sum - 1.0).abs() > smg_dtmc::matrix::STOCHASTIC_TOL || initial.is_empty() {
        return Err(DtmcError::BadInitialDistribution { sum: init_sum });
    }

    let mut builder = MdpBuilder::default();
    let mut row: Vec<(u32, f64)> = Vec::new();
    let mut scratch: Vec<ChunkScratch<M::State>> = Vec::new();
    let mut levels = 0usize;
    let mut level_start = 0usize;
    while level_start < states.len() {
        let level_end = states.len();
        levels += 1;
        let level_len = level_end - level_start;
        if workers > 1 && level_len >= options.par_min_level.max(1) {
            let nchunks = workers.min(level_len);
            if scratch.len() < nchunks {
                scratch.resize_with(nchunks, ChunkScratch::new);
            }
            expand_level_parallel(
                model,
                options,
                &mut states,
                &mut index,
                &mut builder,
                level_start..level_end,
                &mut scratch[..nchunks],
            )?;
        } else {
            for cur in level_start..level_end {
                let cur_state = states[cur].clone();
                let actions = model.actions(&cur_state);
                if actions.is_empty() {
                    return Err(DtmcError::NoActions {
                        state: format!("{cur_state:?}"),
                    });
                }
                for mut dist in actions {
                    clean_successors(&cur_state, &mut dist, options.prune_threshold)?;
                    row.clear();
                    for (s, p) in dist {
                        let id = intern(s, &mut states, &mut index, options.max_states)?;
                        row.push((id, p));
                    }
                    builder.push_action(&mut row)?;
                }
                builder.finish_state()?;
            }
        }
        level_start = level_end;
    }

    let (labels, rewards) = assemble_labels_rewards(
        states.len(),
        &model.atomic_propositions(),
        |ap, i| model.holds(ap, &states[i]),
        |i| model.state_reward(&states[i]),
    );
    let mdp = Mdp::new(builder.finish(), initial, labels, rewards)?;
    let stats = BuildStats {
        states: states.len(),
        transitions: mdp.n_transitions(),
        reachability_iterations: levels,
        build_time: start.elapsed(),
    };
    Ok(ExploredMdp {
        mdp,
        states,
        index,
        stats,
    })
}

/// Expands one BFS level through the three-phase pipeline (module docs).
fn expand_level_parallel<M>(
    model: &M,
    options: &ExploreOptions,
    states: &mut Vec<M::State>,
    index: &mut StateIndex<M::State>,
    builder: &mut MdpBuilder,
    level: std::ops::Range<usize>,
    scratch: &mut [ChunkScratch<M::State>],
) -> Result<(), DtmcError>
where
    M: MdpModel + Sync,
    M::State: Send + Sync,
{
    let nchunks = scratch.len();
    let level_len = level.len();
    let per_chunk = level_len.div_ceil(nchunks);
    let pool = pool::global();

    // Phase 1: expand + validate.
    {
        let level_states = &states[level];
        let prune = options.prune_threshold;
        pool.map_chunks(scratch, 1, &|t, sc: &mut [ChunkScratch<M::State>]| {
            let sc = &mut sc[0];
            sc.reset();
            let lo = level_len.min(t * per_chunk);
            let hi = level_len.min(lo + per_chunk);
            for cur in &level_states[lo..hi] {
                let actions = model.actions(cur);
                if actions.is_empty() {
                    sc.err = Some(DtmcError::NoActions {
                        state: format!("{cur:?}"),
                    });
                    return;
                }
                sc.action_count.push(actions.len() as u32);
                for mut dist in actions {
                    if let Err(e) = clean_successors(cur, &mut dist, prune) {
                        sc.err = Some(e);
                        return;
                    }
                    sc.act_len.push(dist.len() as u32);
                    sc.succ.extend(dist);
                }
            }
        });
    }
    // Deterministic error reporting: chunk order is level order, and each
    // chunk stopped at its first failing state.
    for sc in scratch.iter_mut() {
        if let Some(e) = sc.err.take() {
            return Err(e);
        }
    }

    // Phase 2 (sequential): intern every occurrence in level order — ids
    // come out in exactly the first-occurrence order sequential BFS uses.
    for sc in scratch.iter_mut() {
        for (s, _) in &sc.succ {
            let id = intern(s.clone(), states, index, options.max_states)?;
            sc.ids.push(id);
        }
    }

    // Phase 3: per-chunk row assembly, then the flat segment merge.
    pool.map_chunks(scratch, 1, &|_, sc: &mut [ChunkScratch<M::State>]| {
        let ChunkScratch {
            succ,
            ids,
            act_len,
            seg_act_len,
            seg_cols,
            seg_vals,
            row_buf,
            ..
        } = &mut sc[0];
        seg_act_len.clear();
        seg_cols.clear();
        seg_vals.clear();
        let mut occ = 0usize;
        for &len in act_len.iter() {
            row_buf.clear();
            for _ in 0..len {
                row_buf.push((ids[occ], succ[occ].1));
                occ += 1;
            }
            let before = seg_cols.len();
            merge_row_into(seg_cols, seg_vals, row_buf);
            seg_act_len.push((seg_cols.len() - before) as u32);
        }
    });
    for sc in scratch.iter() {
        builder.append_segment(
            &sc.action_count,
            &sc.seg_act_len,
            &sc.seg_cols,
            &sc.seg_vals,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A grid walk where the adversary picks the axis and noise decides
    /// whether the step lands; corners absorb.
    pub(crate) struct Grid {
        pub w: u16,
    }

    impl MdpModel for Grid {
        type State = (u16, u16);
        fn initial_states(&self) -> Vec<(Self::State, f64)> {
            vec![((0, 0), 1.0)]
        }
        fn actions(&self, &(x, y): &Self::State) -> Vec<Vec<(Self::State, f64)>> {
            let mut acts = Vec::new();
            if x + 1 < self.w {
                acts.push(vec![((x + 1, y), 0.75), ((x, y), 0.25)]);
            }
            if y + 1 < self.w {
                acts.push(vec![((x, y + 1), 0.75), ((x, y), 0.25)]);
            }
            if acts.is_empty() {
                acts.push(vec![((x, y), 1.0)]);
            }
            acts
        }
        fn atomic_propositions(&self) -> Vec<&'static str> {
            vec!["corner"]
        }
        fn holds(&self, ap: &str, &(x, y): &Self::State) -> bool {
            ap == "corner" && x + 1 == self.w && y + 1 == self.w
        }
    }

    #[test]
    fn explores_whole_grid() {
        let e = explore(&Grid { w: 8 }, &ExploreOptions::default()).unwrap();
        assert_eq!(e.mdp.n_states(), 64);
        assert_eq!(e.stats.states, 64);
        // Interior states offer 2 actions, edges 1, the far corner 1.
        assert_eq!(e.mdp.n_choices(), 49 * 2 + 14 + 1);
        assert_eq!(e.id_of(&(0, 0)), Some(0));
        let corner = e.id_of(&(7, 7)).unwrap() as usize;
        assert!(e.mdp.label("corner").unwrap().get(corner));
        assert_eq!(e.mdp.rewards()[corner], 1.0);
    }

    #[test]
    fn parallel_exploration_bit_identical_to_sequential() {
        let seq = explore(&Grid { w: 16 }, &ExploreOptions::default().with_threads(1)).unwrap();
        for threads in [2usize, 3, 4, 7] {
            let par = explore(
                &Grid { w: 16 },
                &ExploreOptions::default()
                    .with_threads(threads)
                    .with_par_min_level(1),
            )
            .unwrap();
            assert_eq!(par.states, seq.states, "threads={threads}");
            assert_eq!(par.mdp.n_choices(), seq.mdp.n_choices());
            assert_eq!(par.mdp.n_transitions(), seq.mdp.n_transitions());
            for s in 0..seq.mdp.n_states() {
                assert_eq!(par.mdp.action_count(s), seq.mdp.action_count(s));
                for a in 0..seq.mdp.action_count(s) {
                    assert_eq!(
                        par.mdp.action_row(s, a).collect::<Vec<_>>(),
                        seq.mdp.action_row(s, a).collect::<Vec<_>>(),
                        "threads={threads} state={s} action={a}"
                    );
                }
            }
            assert_eq!(
                par.stats.reachability_iterations,
                seq.stats.reachability_iterations
            );
        }
    }

    #[test]
    fn state_limit_enforced() {
        let err = explore(
            &Grid { w: 100 },
            &ExploreOptions::default().with_max_states(10),
        );
        assert!(matches!(
            err,
            Err(DtmcError::StateLimitExceeded { limit: 10 })
        ));
    }

    struct Deadlocked;
    impl MdpModel for Deadlocked {
        type State = u8;
        fn initial_states(&self) -> Vec<(u8, f64)> {
            vec![(0, 1.0)]
        }
        fn actions(&self, s: &u8) -> Vec<Vec<(u8, f64)>> {
            if *s == 0 {
                vec![vec![(1, 1.0)]]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn deadlock_is_reported() {
        let err = explore(&Deadlocked, &ExploreOptions::default());
        assert!(matches!(err, Err(DtmcError::NoActions { .. })));
    }

    struct BadDist;
    impl MdpModel for BadDist {
        type State = u8;
        fn initial_states(&self) -> Vec<(u8, f64)> {
            vec![(0, 1.0)]
        }
        fn actions(&self, _: &u8) -> Vec<Vec<(u8, f64)>> {
            vec![vec![(0, 0.5)], vec![(0, 1.0)]]
        }
    }

    #[test]
    fn non_stochastic_action_rejected() {
        let err = explore(&BadDist, &ExploreOptions::default());
        assert!(matches!(err, Err(DtmcError::NotStochastic { .. })));
    }

    #[test]
    fn single_action_mdp_matches_dtmc_exploration() {
        use crate::model::DtmcAsMdp;

        struct Walk;
        impl smg_dtmc::DtmcModel for Walk {
            type State = u8;
            fn initial_states(&self) -> Vec<(u8, f64)> {
                vec![(0, 1.0)]
            }
            fn transitions(&self, s: &u8) -> Vec<(u8, f64)> {
                if *s >= 5 {
                    vec![(*s, 1.0)]
                } else {
                    vec![(s + 1, 0.5), (0, 0.5)]
                }
            }
        }

        let d = smg_dtmc::explore(&Walk, &ExploreOptions::default()).unwrap();
        let m = explore(&DtmcAsMdp(Walk), &ExploreOptions::default()).unwrap();
        assert_eq!(m.mdp.n_states(), d.dtmc.n_states());
        assert_eq!(m.mdp.n_choices(), d.dtmc.n_states());
        assert_eq!(m.states, d.states);
        for s in 0..d.dtmc.n_states() {
            assert_eq!(
                m.mdp.action_row(s, 0).collect::<Vec<_>>(),
                d.dtmc.matrix().successors(s)
            );
        }
    }
}
