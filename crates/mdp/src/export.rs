//! Export to PRISM's explicit-state MDP file formats.
//!
//! Same interop story as `smg_dtmc::export`, extended with the action
//! column: an MDP `.tra` file carries a `states choices transitions`
//! header and one `src choice dst prob` row per transition (`prism
//! -importtrans model.tra -mdp ...` reads it back).

use crate::mdp::Mdp;
use std::fmt::Write as _;

/// Renders the `.tra` transitions file with the MDP action column.
pub fn to_tra(mdp: &Mdp) -> String {
    let n = mdp.n_states();
    let mut out = String::new();
    let _ = writeln!(out, "{n} {} {}", mdp.n_choices(), mdp.n_transitions());
    for s in 0..n {
        for a in 0..mdp.action_count(s) {
            for (c, p) in mdp.action_row(s, a) {
                let _ = writeln!(out, "{s} {a} {c} {p}");
            }
        }
    }
    out
}

/// Renders the `.lab` labels file (same format as the DTMC exporter: the
/// initial states carry PRISM's built-in `init` label 0, the model's own
/// labels follow in sorted order).
pub fn to_lab(mdp: &Mdp) -> String {
    let names = mdp.label_names();
    let mut out = String::new();
    let decls: Vec<String> = std::iter::once("0=\"init\"".to_string())
        .chain(
            names
                .iter()
                .enumerate()
                .map(|(i, n)| format!("{}=\"{n}\"", i + 1)),
        )
        .collect();
    let _ = writeln!(out, "{}", decls.join(" "));

    let mut init = vec![false; mdp.n_states()];
    for &(s, p) in mdp.initial() {
        if p > 0.0 {
            init[s as usize] = true;
        }
    }
    for (s, &is_init) in init.iter().enumerate() {
        let mut idxs: Vec<usize> = Vec::new();
        if is_init {
            idxs.push(0);
        }
        for (i, name) in names.iter().enumerate() {
            if mdp.label(name).expect("label exists").get(s) {
                idxs.push(i + 1);
            }
        }
        if !idxs.is_empty() {
            let strs: Vec<String> = idxs.iter().map(|i| i.to_string()).collect();
            let _ = writeln!(out, "{s}: {}", strs.join(" "));
        }
    }
    out
}

/// Renders the `.srew` state-rewards file (non-zero rewards only).
pub fn to_srew(mdp: &Mdp) -> String {
    let nonzero: Vec<(usize, f64)> = mdp
        .rewards()
        .iter()
        .enumerate()
        .filter(|&(_, &r)| r != 0.0)
        .map(|(s, &r)| (s, r))
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", mdp.n_states(), nonzero.len());
    for (s, r) in nonzero {
        let _ = writeln!(out, "{s} {r}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;
    use smg_dtmc::BitVec;
    use std::collections::BTreeMap;

    fn two_action() -> Mdp {
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(0, 0.25), (1, 0.75)]).unwrap();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("done".to_string(), BitVec::from_fn(2, |i| i == 1));
        Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![0.0, 2.5]).unwrap()
    }

    #[test]
    fn tra_has_action_column() {
        let tra = to_tra(&two_action());
        let mut lines = tra.lines();
        assert_eq!(lines.next(), Some("2 3 4"));
        let rest: Vec<&str> = lines.collect();
        assert!(rest.contains(&"0 0 0 0.25"));
        assert!(rest.contains(&"0 0 1 0.75"));
        assert!(rest.contains(&"0 1 1 1"));
        assert!(rest.contains(&"1 0 1 1"));
        // Probabilities per (source, choice) sum to 1.
        let mut sums: std::collections::HashMap<(usize, usize), f64> = Default::default();
        for l in rest {
            let f: Vec<&str> = l.split_whitespace().collect();
            *sums
                .entry((f[0].parse().unwrap(), f[1].parse().unwrap()))
                .or_insert(0.0) += f[3].parse::<f64>().unwrap();
        }
        assert!(sums.values().all(|s| (s - 1.0).abs() < 1e-12));
    }

    #[test]
    fn lab_and_srew_match_dtmc_shapes() {
        let m = two_action();
        let lab = to_lab(&m);
        assert!(lab.starts_with("0=\"init\" 1=\"done\""));
        assert!(lab.contains("0: 0"));
        assert!(lab.contains("1: 1"));
        let srew = to_srew(&m);
        let lines: Vec<&str> = srew.lines().collect();
        assert_eq!(lines[0], "2 1");
        assert_eq!(lines[1], "1 2.5");
    }
}
