//! Explicit-state Markov Decision Process (MDP) substrate.
//!
//! The paper's DTMC pipeline resolves *every* input probabilistically; real
//! RTL verification also needs **worst-case guarantees** when some inputs —
//! stimulus patterns, arbitration, channel regime switches — are unknown
//! rather than random. This crate adds the classic PRISM-style next step:
//! models where each state first offers a *nondeterministic choice of
//! actions* and only then steps probabilistically, checked by quantifying
//! over all resolutions of the nondeterminism (`Pmin`/`Pmax`, `Rmin`/`Rmax`
//! in `smg-pctl`).
//!
//! The crate deliberately mirrors `smg-dtmc`, and reuses its machinery
//! rather than reimplementing it:
//!
//! * [`Mdp`] stores per-state action lists over a shared flat CSR
//!   distribution pool, assembled with the same row-merge primitive as the
//!   DTMC engine ([`smg_dtmc::matrix::merge_row_into`]) — identical inputs
//!   yield byte-identical pool data.
//! * [`explore()`] enumerates an implicit [`MdpModel`] breadth-first,
//!   interning states through [`smg_dtmc::StateIndex`] and expanding large
//!   levels in parallel on the engine's persistent worker pool; the result
//!   is bit-identical to sequential BFS for every thread count.
//! * [`vi`] implements min/max value iteration — bounded/unbounded until,
//!   instantaneous/cumulative/reachability rewards — as masked Bellman
//!   backups that run as dynamically dispatched chunks on the pool above
//!   the engine's [`smg_dtmc::par::min_rows`] threshold, with a
//!   bit-identical sequential fallback below it. The `certified_*`
//!   drivers replace the residual stopping test with interval iteration:
//!   a `[lo, hi]` bracket that provably contains the exact optimum and
//!   terminates only when its width drops below ε.
//! * [`qual`] provides the graph-based qualitative machinery behind the
//!   certificates — `Prob0`/`Prob1` sets, maximal end components, and a
//!   provably proper scheduler — none of which trusts a numerically
//!   converged value.
//! * [`Mdp::induced_dtmc`] projects a memoryless scheduler back onto the
//!   DTMC engine, connecting every existing analysis (exact checking,
//!   simulation, export) to scheduled MDPs — and letting the test suite pin
//!   `Pmin`/`Pmax` against exhaustive scheduler enumeration.
//!
//! # Topological solving
//!
//! The `topo_certified_*` drivers in [`vi`] walk the SCC condensation of
//! the any-action graph ([`qual::Condensation`]) sinks-first, solving each
//! component with its successors' certified bounds as constants — end
//! components never span SCCs, so deflation/inflation stays local:
//!
//! ```
//! use smg_mdp::{vi, Mdp, MdpBuilder, Opt, ViOptions};
//! use smg_dtmc::BitVec;
//! use std::collections::BTreeMap;
//!
//! // 0 chooses a fair or a biased coin; 1 = goal, 2 = sink (absorbing).
//! let mut b = MdpBuilder::default();
//! b.push_action(&mut [(1, 0.5), (2, 0.5)])?;
//! b.push_action(&mut [(1, 0.1), (2, 0.9)])?;
//! b.finish_state()?;
//! b.push_action(&mut [(1, 1.0)])?;
//! b.finish_state()?;
//! b.push_action(&mut [(2, 1.0)])?;
//! b.finish_state()?;
//! let mut labels = BTreeMap::new();
//! labels.insert("goal".to_string(), BitVec::from_fn(3, |i| i == 1));
//! let mdp = Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![0.0; 3])?;
//!
//! let cond = smg_mdp::qual::Condensation::new(&mdp);
//! assert_eq!(cond.largest(), 1); // every SCC trivial → pure backsubstitution
//! let goal = mdp.label("goal")?.clone();
//! let cert =
//!     vi::topo_certified_reach_values(&mdp, &goal, Opt::Max, 1e-9, &ViOptions::default())?;
//! assert!(cert.lo[0] <= 0.5 && 0.5 <= cert.hi[0]);
//! assert!(cert.width() < 1e-9);
//! # Ok::<(), smg_dtmc::DtmcError>(())
//! ```
//!
//! # Example
//!
//! ```
//! use smg_mdp::{explore, vi, MdpModel, Opt, ViOptions};
//! use smg_dtmc::ExploreOptions;
//!
//! /// A job that can be scheduled on a fast-but-flaky or slow-but-safe
//! /// unit; the adversary controls the dispatch.
//! struct Dispatch;
//! impl MdpModel for Dispatch {
//!     type State = u8; // 0 = pending, 1 = done, 2 = failed
//!     fn initial_states(&self) -> Vec<(u8, f64)> {
//!         vec![(0, 1.0)]
//!     }
//!     fn actions(&self, s: &u8) -> Vec<Vec<(u8, f64)>> {
//!         match s {
//!             0 => vec![
//!                 vec![(1, 0.9), (2, 0.1)],  // fast unit
//!                 vec![(1, 0.5), (0, 0.5)],  // slow unit, retries
//!             ],
//!             s => vec![vec![(*s, 1.0)]],
//!         }
//!     }
//!     fn atomic_propositions(&self) -> Vec<&'static str> {
//!         vec!["done"]
//!     }
//!     fn holds(&self, ap: &str, s: &u8) -> bool {
//!         ap == "done" && *s == 1
//!     }
//! }
//!
//! let e = explore(&Dispatch, &ExploreOptions::default())?;
//! let done = e.mdp.label("done")?.clone();
//! let vio = ViOptions::default();
//! let pmax = vi::reach_values(&e.mdp, &done, Opt::Max, &vio)?[0];
//! let pmin = vi::reach_values(&e.mdp, &done, Opt::Min, &vio)?[0];
//! assert!((pmax - 1.0).abs() < 1e-9); // slow unit always completes
//! assert!((pmin - 0.9).abs() < 1e-9); // worst case: fast unit, one shot
//! # Ok::<(), smg_dtmc::DtmcError>(())
//! ```

#![forbid(unsafe_code)]

pub mod explore;
pub mod export;
pub mod mdp;
pub mod model;
pub mod qual;
pub mod vi;

pub use explore::{explore, ExploredMdp};
pub use mdp::{Mdp, MdpBuilder, MdpTransitions};
pub use model::{DtmcAsMdp, MdpModel};
pub use smg_dtmc::solve::CertifiedValues;
pub use vi::{extremal_scheduler, Opt, ViOptions};
