//! Implicit MDP model descriptions.
//!
//! An [`MdpModel`] extends the paper's DTMC tuple `(S, T_p)` with
//! nondeterminism: in each state the *environment* (stimulus patterns,
//! arbitration, channel regime switches — anything unknown rather than
//! random) first picks an **action**, and only then does the design step
//! probabilistically. Worst-case and best-case guarantees quantify over
//! these choices (`Pmin`/`Pmax` in `smg-pctl`).

use std::fmt;
use std::hash::Hash;

/// An implicit description of a finite MDP.
///
/// Implementors define the process by its initial distribution and a
/// function from states to the list of enabled actions, each an
/// independent successor distribution; [`crate::explore()`] turns this into
/// an explicit [`crate::Mdp`]. Every state must enable at least one action
/// (exploration reports [`smg_dtmc::DtmcError::NoActions`] otherwise).
///
/// # Example
///
/// ```
/// use smg_mdp::MdpModel;
///
/// /// A walk where an adversary picks the step direction, then noise
/// /// decides whether the step lands.
/// struct Walk;
/// impl MdpModel for Walk {
///     type State = i8;
///     fn initial_states(&self) -> Vec<(i8, f64)> {
///         vec![(0, 1.0)]
///     }
///     fn actions(&self, s: &i8) -> Vec<Vec<(i8, f64)>> {
///         if s.abs() >= 3 {
///             return vec![vec![(*s, 1.0)]]; // absorbing boundary
///         }
///         vec![
///             vec![(s + 1, 0.9), (*s, 0.1)], // try right
///             vec![(s - 1, 0.9), (*s, 0.1)], // try left
///         ]
///     }
///     fn atomic_propositions(&self) -> Vec<&'static str> {
///         vec!["right_edge"]
///     }
///     fn holds(&self, ap: &str, s: &i8) -> bool {
///         ap == "right_edge" && *s >= 3
///     }
/// }
/// ```
pub trait MdpModel {
    /// A unique assignment of values to the model's state variables.
    type State: Clone + Eq + Hash + fmt::Debug;

    /// The initial probability distribution over states. Masses must sum
    /// to one.
    fn initial_states(&self) -> Vec<(Self::State, f64)>;

    /// The enabled actions of `state`: one successor distribution per
    /// action, each summing to one (duplicate successors within an action
    /// are merged during exploration). Must be non-empty, and pure —
    /// exploration may call it concurrently.
    fn actions(&self, state: &Self::State) -> Vec<Vec<(Self::State, f64)>>;

    /// Names of the atomic propositions this model labels states with.
    fn atomic_propositions(&self) -> Vec<&'static str> {
        Vec::new()
    }

    /// Whether atomic proposition `ap` holds in `state`. Must return
    /// `false` for names not listed by [`MdpModel::atomic_propositions`].
    fn holds(&self, ap: &str, state: &Self::State) -> bool {
        let _ = (ap, state);
        false
    }

    /// The reward assigned to `state` (same default as
    /// [`smg_dtmc::DtmcModel`]: the 0/1 value of the first atomic
    /// proposition, if any).
    fn state_reward(&self, state: &Self::State) -> f64 {
        match self.atomic_propositions().first() {
            Some(ap) if self.holds(ap, state) => 1.0,
            _ => 0.0,
        }
    }
}

/// Adapter viewing a [`smg_dtmc::DtmcModel`] as a single-action MDP — the
/// degenerate embedding under which `Pmin = Pmax = P`. Used by the test
/// suites to pin the MDP checker against the DTMC checker on identical
/// chains.
#[derive(Debug, Clone)]
pub struct DtmcAsMdp<M>(pub M);

impl<M: smg_dtmc::DtmcModel> MdpModel for DtmcAsMdp<M> {
    type State = M::State;

    fn initial_states(&self) -> Vec<(Self::State, f64)> {
        self.0.initial_states()
    }

    fn actions(&self, state: &Self::State) -> Vec<Vec<(Self::State, f64)>> {
        vec![self.0.transitions(state)]
    }

    fn atomic_propositions(&self) -> Vec<&'static str> {
        self.0.atomic_propositions()
    }

    fn holds(&self, ap: &str, state: &Self::State) -> bool {
        self.0.holds(ap, state)
    }

    fn state_reward(&self, state: &Self::State) -> f64 {
        self.0.state_reward(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Coin;
    impl smg_dtmc::DtmcModel for Coin {
        type State = u8;
        fn initial_states(&self) -> Vec<(u8, f64)> {
            vec![(0, 1.0)]
        }
        fn transitions(&self, _: &u8) -> Vec<(u8, f64)> {
            vec![(0, 0.5), (1, 0.5)]
        }
        fn atomic_propositions(&self) -> Vec<&'static str> {
            vec!["one"]
        }
        fn holds(&self, ap: &str, s: &u8) -> bool {
            ap == "one" && *s == 1
        }
    }

    #[test]
    fn dtmc_adapter_has_one_action_everywhere() {
        let m = DtmcAsMdp(Coin);
        assert_eq!(m.initial_states(), vec![(0, 1.0)]);
        assert_eq!(m.actions(&0).len(), 1);
        assert_eq!(m.actions(&0)[0], vec![(0, 0.5), (1, 0.5)]);
        assert!(m.holds("one", &1));
        assert_eq!(m.state_reward(&1), 1.0);
        assert_eq!(m.atomic_propositions(), vec!["one"]);
    }
}
