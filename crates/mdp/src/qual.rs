//! Qualitative (graph-based) analyses of an MDP — the pre-passes that
//! make certified value iteration sound.
//!
//! Interval iteration ([`crate::vi`]'s `certified_*` drivers) needs facts
//! that must *not* come from numerically converged probabilities, because
//! the whole point is to certify those numbers. This module computes them
//! purely from the transition structure:
//!
//! * [`prob0_max`] / [`prob0_min`] — the states where `Pmax = 0`
//!   (no scheduler can reach) and where `Pmin = 0` (some scheduler can
//!   avoid), PRISM's `Prob0A`/`Prob0E`.
//! * [`prob1_min`] / [`prob1_max`] — the states where `Pmin = 1` (every
//!   scheduler reaches almost surely) and where `Pmax = 1` (some scheduler
//!   does), PRISM's `Prob1A`/`Prob1E` — the "certain" regions of the
//!   `Rmax`/`Rmin` reward iterations.
//! * [`max_end_components`] — the maximal end components of a restricted
//!   sub-MDP. End components are exactly the structures that break the
//!   uniqueness of Bellman fixpoints (a scheduler can cycle inside one
//!   forever), so the certified drivers deflate upper bounds / inflate
//!   lower bounds across them.
//! * [`proper_scheduler`] — a memoryless scheduler that reaches the target
//!   almost surely from every `Pmax = 1` state, built by a safe-action
//!   attractor (used to seed the certified `Rmin` descent with a cost that
//!   is provably finite).
//!
//! Every function takes the until-style `(lhs, rhs)` masks the checkers
//! use: states outside `lhs ∪ rhs` are failure states whose actions are
//! ignored (they behave as absorbing sinks), matching the path semantics
//! of `lhs U rhs`.

use crate::mdp::Mdp;
use smg_dtmc::BitVec;
use smg_obs as obs;

/// Whether state `s` may be expanded through: a legal path intermediate
/// (in `lhs`, not already in `rhs`).
#[inline]
fn expandable(lhs: &BitVec, rhs: &BitVec, s: usize) -> bool {
    lhs.get(s) && !rhs.get(s)
}

/// The states that can reach `rhs` with positive probability under *some*
/// scheduler, through `lhs`-states only — the complement of the
/// `Pmax = 0` set.
pub fn pre_star(mdp: &Mdp, lhs: &BitVec, rhs: &BitVec) -> BitVec {
    let n = mdp.n_states();
    // Predecessor adjacency over expandable sources (any action).
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    for s in 0..n {
        if !expandable(lhs, rhs, s) {
            continue;
        }
        for a in 0..mdp.action_count(s) {
            for (c, p) in mdp.action_row(s, a) {
                if p > 0.0 {
                    preds[c as usize].push(s as u32);
                }
            }
        }
    }
    let mut reach = BitVec::zeros(n);
    let mut queue: std::collections::VecDeque<u32> =
        (0..n as u32).filter(|&s| rhs.get(s as usize)).collect();
    for &s in &queue {
        reach.set(s as usize, true);
    }
    while let Some(u) = queue.pop_front() {
        for &s in &preds[u as usize] {
            if !reach.get(s as usize) {
                reach.set(s as usize, true);
                queue.push_back(s);
            }
        }
    }
    reach
}

/// The `Pmax = 0` states of `lhs U rhs`: no scheduler reaches `rhs`
/// through `lhs` with positive probability (PRISM `Prob0A`).
pub fn prob0_max(mdp: &Mdp, lhs: &BitVec, rhs: &BitVec) -> BitVec {
    pre_star(mdp, lhs, rhs).not()
}

/// The `Pmin = 0` states of `lhs U rhs`: *some* scheduler avoids `rhs`
/// almost surely (PRISM `Prob0E`). Computed as the greatest fixpoint of
/// `U = {s ∉ rhs : s is a failure state, or some action keeps all mass
/// in U}`.
pub fn prob0_min(mdp: &Mdp, lhs: &BitVec, rhs: &BitVec) -> BitVec {
    let n = mdp.n_states();
    let mut u = rhs.not();
    loop {
        let mut changed = false;
        for s in 0..n {
            if !u.get(s) || !expandable(lhs, rhs, s) {
                continue; // rhs states stay out; failure states stay in.
            }
            let stays = (0..mdp.action_count(s)).any(|a| {
                mdp.action_row(s, a)
                    .all(|(c, p)| p == 0.0 || u.get(c as usize))
            });
            if !stays {
                u.set(s, false);
                changed = true;
            }
        }
        if !changed {
            return u;
        }
    }
}

/// The `Pmin = 1` states of `lhs U rhs`: every scheduler reaches `rhs`
/// almost surely (PRISM `Prob1A`). A state fails the test exactly when
/// some scheduler reaches the `Pmin = 0` region with positive probability
/// before `rhs`, so this is `¬ pre*(prob0_min)`.
pub fn prob1_min(mdp: &Mdp, lhs: &BitVec, rhs: &BitVec) -> BitVec {
    let zero = prob0_min(mdp, lhs, rhs);
    // Intermediates must avoid rhs (reaching rhs first is a success), so
    // restrict the expansion mask to lhs ∖ rhs — `pre_star` already never
    // expands through its `rhs` argument (`zero` here), and we exclude the
    // real rhs by masking it out of lhs.
    pre_star(mdp, &lhs.and(&rhs.not()), &zero).not()
}

/// The `Pmax = 1` states of `lhs U rhs`: some scheduler reaches `rhs`
/// almost surely (PRISM `Prob1E`, de Alfaro's nested fixpoint).
pub fn prob1_max(mdp: &Mdp, lhs: &BitVec, rhs: &BitVec) -> BitVec {
    let n = mdp.n_states();
    let mut x = BitVec::ones(n);
    loop {
        // Inner least fixpoint: states with an action that stays inside X
        // and makes progress toward rhs through Y.
        let mut y = rhs.clone();
        loop {
            let mut changed = false;
            for s in 0..n {
                if y.get(s) || !x.get(s) || !expandable(lhs, rhs, s) {
                    continue;
                }
                let ok = (0..mdp.action_count(s)).any(|a| {
                    let mut touches = false;
                    for (c, p) in mdp.action_row(s, a) {
                        if p == 0.0 {
                            continue;
                        }
                        if !x.get(c as usize) {
                            return false;
                        }
                        touches |= y.get(c as usize);
                    }
                    touches
                });
                if ok {
                    y.set(s, true);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if y == x {
            return x;
        }
        x = y;
    }
}

/// The maximal end components of the sub-MDP restricted to `restrict`:
/// maximal state sets `M ⊆ restrict` such that every state of `M` has at
/// least one action whose support stays inside `M`, and `M` is strongly
/// connected through those actions. Singleton components qualify only
/// with a self-loop action. Components are returned as sorted state
/// lists.
pub fn max_end_components(mdp: &Mdp, restrict: &BitVec) -> Vec<Vec<u32>> {
    let n = mdp.n_states();
    // Component id per state; refine until stable. Initially one candidate
    // component (id 0) covering `restrict`, everything else isolated.
    let mut comp: Vec<u32> = (0..n)
        .map(|s| if restrict.get(s) { 0 } else { u32::MAX })
        .collect();
    loop {
        // Adjacency through actions fully inside the current candidate
        // component of their source.
        let internal = |s: usize, a: usize, comp: &[u32]| -> bool {
            mdp.action_row(s, a)
                .all(|(c, p)| p == 0.0 || comp[c as usize] == comp[s])
        };
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for s in 0..n {
            if comp[s] == u32::MAX {
                continue;
            }
            for a in 0..mdp.action_count(s) {
                if internal(s, a, &comp) {
                    for (c, p) in mdp.action_row(s, a) {
                        if p > 0.0 && c as usize != s {
                            adj[s].push(c);
                        }
                    }
                }
            }
        }
        let scc_of = sccs(&adj, &comp);
        // Re-map: states sharing (old component, scc) stay together.
        let mut next: Vec<u32> = vec![u32::MAX; n];
        let mut ids: std::collections::BTreeMap<(u32, u32), u32> =
            std::collections::BTreeMap::new();
        for s in 0..n {
            if comp[s] == u32::MAX {
                continue;
            }
            let key = (comp[s], scc_of[s]);
            let fresh = ids.len() as u32;
            next[s] = *ids.entry(key).or_insert(fresh);
        }
        if next == comp {
            break;
        }
        comp = next;
    }
    // Collect stable components that really are end components.
    let mut groups: std::collections::BTreeMap<u32, Vec<u32>> = std::collections::BTreeMap::new();
    for (s, &c) in comp.iter().enumerate() {
        if c != u32::MAX {
            groups.entry(c).or_default().push(s as u32);
        }
    }
    let mecs: Vec<Vec<u32>> = groups
        .into_values()
        .filter(|members| {
            members.iter().all(|&s| {
                let s = s as usize;
                (0..mdp.action_count(s)).any(|a| {
                    mdp.action_row(s, a)
                        .all(|(c, p)| p == 0.0 || comp[c as usize] == comp[s])
                })
            })
        })
        .collect();
    obs::counter_add("smg_mdp_mecs_total", None, mecs.len() as u64);
    mecs
}

/// Strongly-connected component ids over an adjacency list, restricted to
/// states with a component assignment (iterative Tarjan; isolated or
/// unassigned states get singleton ids).
fn sccs(adj: &[Vec<u32>], comp: &[u32]) -> Vec<u32> {
    let n = adj.len();
    const UNVISITED: u32 = u32::MAX;
    let mut index_of = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut scc_of = vec![0u32; n];
    let mut next_index = 0u32;
    let mut next_scc = 0u32;

    enum Frame {
        Enter(u32),
        Resume(u32, usize),
    }

    for root in 0..n as u32 {
        if index_of[root as usize] != UNVISITED || comp[root as usize] == u32::MAX {
            continue;
        }
        let mut frames = vec![Frame::Enter(root)];
        while let Some(frame) = frames.pop() {
            match frame {
                Frame::Enter(v) => {
                    index_of[v as usize] = next_index;
                    lowlink[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    frames.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut i) => {
                    let succ = &adj[v as usize];
                    let mut descended = false;
                    while i < succ.len() {
                        let w = succ[i];
                        i += 1;
                        if index_of[w as usize] == UNVISITED {
                            frames.push(Frame::Resume(v, i));
                            frames.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w as usize] {
                            lowlink[v as usize] = lowlink[v as usize].min(index_of[w as usize]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if lowlink[v as usize] == index_of[v as usize] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            scc_of[w as usize] = next_scc;
                            if w == v {
                                break;
                            }
                        }
                        next_scc += 1;
                    } else if let Some(Frame::Resume(parent, _)) = frames.last() {
                        let p = *parent as usize;
                        lowlink[p] = lowlink[p].min(lowlink[v as usize]);
                    }
                }
            }
        }
    }
    scc_of
}

/// The SCC condensation of an MDP's *any-action* transition graph: states
/// are grouped into strongly-connected components over the union of all
/// action supports, and components are arranged into DAG levels (level 0 =
/// sinks, i.e. components with no outgoing cross-component edge).
///
/// This is the structural backbone of the topological certified drivers
/// ([`crate::vi::topo_certified_until_values`] and friends): components are
/// solved in ascending level order, so every cross-component read hits an
/// already-solved constant. End components are always strongly connected
/// through their internal actions, so **an end component never spans two
/// SCCs** — deflation and inflation stay component-local.
#[derive(Debug, Clone)]
pub struct Condensation {
    comps: Vec<Vec<u32>>,
    comp_of: Vec<u32>,
    by_level: Vec<Vec<u32>>,
}

impl Condensation {
    /// Decomposes `mdp`'s any-action graph (iterative Tarjan, stack-safe at
    /// millions of states). Component ids ascend in reverse topological
    /// order: every cross-component edge points to a smaller id.
    pub fn new(mdp: &Mdp) -> Condensation {
        let n = mdp.n_states();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (s, out) in adj.iter_mut().enumerate() {
            for a in 0..mdp.action_count(s) {
                for (c, p) in mdp.action_row(s, a) {
                    if p > 0.0 && c as usize != s {
                        out.push(c);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
        }
        let assigned = vec![0u32; n];
        let comp_of = sccs(&adj, &assigned);
        // Tarjan pops a component only after everything reachable from it
        // has popped, so ascending id = reverse topological order and the
        // level pass below always reads finalized successor levels.
        let n_comps = comp_of.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        let mut comps: Vec<Vec<u32>> = vec![Vec::new(); n_comps];
        for (s, &c) in comp_of.iter().enumerate() {
            comps[c as usize].push(s as u32);
        }
        let mut level = vec![0u32; n_comps];
        for (ci, comp) in comps.iter().enumerate() {
            let mut l = 0u32;
            for &s in comp {
                for &c in &adj[s as usize] {
                    let tc = comp_of[c as usize] as usize;
                    if tc != ci {
                        l = l.max(level[tc] + 1);
                    }
                }
            }
            level[ci] = l;
        }
        let depth = level.iter().copied().max().map_or(0, |d| d as usize + 1);
        let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); depth];
        for (ci, &l) in level.iter().enumerate() {
            by_level[l as usize].push(ci as u32);
        }
        Condensation {
            comps,
            comp_of,
            by_level,
        }
    }

    /// The components, as sorted state lists, in reverse topological order.
    pub fn comps(&self) -> &[Vec<u32>] {
        &self.comps
    }

    /// The component id of every state.
    pub fn comp_of(&self) -> &[u32] {
        &self.comp_of
    }

    /// The number of components.
    pub fn n_components(&self) -> usize {
        self.comps.len()
    }

    /// The size of the largest component.
    pub fn largest(&self) -> usize {
        self.comps.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The number of DAG levels (the longest component chain).
    pub fn dag_depth(&self) -> usize {
        self.by_level.len()
    }

    /// The component ids at DAG level `l` (level 0 = sinks). All
    /// components of one level are pairwise unreachable from each other.
    pub fn comps_at_level(&self, l: usize) -> &[u32] {
        &self.by_level[l]
    }
}

/// A memoryless scheduler that reaches `rhs` almost surely from every
/// `Pmax = 1` state of `lhs U rhs`, constructed purely from the graph:
/// states are claimed outward from `rhs`, each picking an action that (a)
/// keeps all its mass inside the `Pmax = 1` region and (b) moves to an
/// already-claimed state with positive probability. Such an action always
/// exists for every `Pmax = 1` state (follow the almost-sure scheduler's
/// own choices), and the induced chain provably reaches `rhs` almost
/// surely — no numeric value vector is trusted anywhere.
///
/// Unclaimed states (outside the `Pmax = 1` region) default to action 0;
/// their induced behaviour is irrelevant to the callers, which only
/// evaluate the scheduler on the certain region.
pub fn proper_scheduler(mdp: &Mdp, lhs: &BitVec, rhs: &BitVec) -> Vec<u32> {
    let n = mdp.n_states();
    let certain = prob1_max(mdp, lhs, rhs);
    let mut sched = vec![0u32; n];
    let mut claimed: Vec<bool> = (0..n).map(|s| rhs.get(s)).collect();
    loop {
        let mut changed = false;
        for s in 0..n {
            if claimed[s] || !certain.get(s) || !expandable(lhs, rhs, s) {
                continue;
            }
            for a in 0..mdp.action_count(s) {
                let safe = mdp
                    .action_row(s, a)
                    .all(|(c, p)| p == 0.0 || certain.get(c as usize) || rhs.get(c as usize));
                if !safe {
                    continue;
                }
                if mdp
                    .action_row(s, a)
                    .any(|(c, p)| p > 0.0 && claimed[c as usize])
                {
                    sched[s] = a as u32;
                    claimed[s] = true;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            return sched;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;
    use std::collections::BTreeMap;

    /// 0: action 0 self-loops, action 1 → {goal: ½, sink: ½};
    /// 1 = goal (absorbing), 2 = sink (absorbing).
    fn risky() -> Mdp {
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(0, 1.0)]).unwrap();
        b.push_action(&mut [(1, 0.5), (2, 0.5)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("goal".to_string(), smg_dtmc::BitVec::from_fn(3, |i| i == 1));
        Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![0.0; 3]).unwrap()
    }

    #[test]
    fn qualitative_sets_on_risky() {
        let m = risky();
        let goal = m.label("goal").unwrap().clone();
        let all = BitVec::ones(3);
        // Pmax > 0 everywhere except the sink.
        let p0max = prob0_max(&m, &all, &goal);
        assert_eq!(p0max.iter_ones().collect::<Vec<_>>(), vec![2]);
        // Pmin = 0 at 0 (stall forever) and at the sink.
        let p0min = prob0_min(&m, &all, &goal);
        assert_eq!(p0min.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
        // Pmin = 1 only at the goal itself.
        let p1min = prob1_min(&m, &all, &goal);
        assert_eq!(p1min.iter_ones().collect::<Vec<_>>(), vec![1]);
        // Pmax = 1 at the goal; 0 only reaches with probability ½.
        let p1max = prob1_max(&m, &all, &goal);
        assert_eq!(p1max.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn prob1_max_sees_retry_loops() {
        // 0: action 0 → {goal: ½, 0: ½} — retrying forever succeeds a.s.
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(1, 0.5), (0, 0.5)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("goal".to_string(), smg_dtmc::BitVec::from_fn(2, |i| i == 1));
        let m = Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![0.0; 2]).unwrap();
        let goal = m.label("goal").unwrap().clone();
        let all = BitVec::ones(2);
        assert!(prob1_max(&m, &all, &goal).all());
        assert!(prob1_min(&m, &all, &goal).all());
    }

    #[test]
    fn end_components_found_and_filtered() {
        // {0, 1} cycle via dedicated actions, each with an exit; 2 has no
        // self-loop action → not an EC on its own.
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(0, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let m = Mdp::new(b.finish(), vec![(0, 1.0)], BTreeMap::new(), vec![0.0; 4]).unwrap();
        let restrict = BitVec::from_fn(4, |i| i < 3);
        let mecs = max_end_components(&m, &restrict);
        assert_eq!(mecs, vec![vec![0, 1]]);
        // The absorbing state 3 is a singleton EC when included.
        let mecs = max_end_components(&m, &BitVec::ones(4));
        assert_eq!(mecs, vec![vec![0, 1], vec![3]]);
    }

    #[test]
    fn condensation_groups_cycles_and_levels_sinks_first() {
        // 0 ↔ 1 cycle (via actions), both can exit to 2, 2 → 3 (absorbing).
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(0, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let m = Mdp::new(b.finish(), vec![(0, 1.0)], BTreeMap::new(), vec![0.0; 4]).unwrap();
        let cond = Condensation::new(&m);
        assert_eq!(cond.n_components(), 3);
        assert_eq!(cond.largest(), 2);
        assert_eq!(cond.dag_depth(), 3);
        // {0,1} share a component; every cross edge targets a smaller id.
        assert_eq!(cond.comp_of()[0], cond.comp_of()[1]);
        for comp in cond.comps() {
            assert!(comp.windows(2).all(|w| w[0] < w[1]), "sorted members");
        }
        assert!(cond.comp_of()[2] < cond.comp_of()[0]);
        assert!(cond.comp_of()[3] < cond.comp_of()[2]);
        // Level 0 holds exactly the absorbing sink's component.
        assert_eq!(cond.comps_at_level(0), &[cond.comp_of()[3]]);
        // An end component never spans SCCs: the {0,1} MEC sits inside one.
        let mecs = max_end_components(&m, &BitVec::ones(4));
        for mec in &mecs {
            let c0 = cond.comp_of()[mec[0] as usize];
            assert!(mec.iter().all(|&s| cond.comp_of()[s as usize] == c0));
        }
    }

    #[test]
    fn proper_scheduler_avoids_risky_ties() {
        // 0: action 0 = risky {goal ½, sink ½}; action 1 = safe → 1;
        // 1 → goal surely. Pmax = 1 via the safe route only, so the
        // proper scheduler must not pick action 0 at state 0.
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(2, 0.5), (3, 0.5)]).unwrap();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("goal".to_string(), smg_dtmc::BitVec::from_fn(4, |i| i == 2));
        let m = Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![0.0; 4]).unwrap();
        let goal = m.label("goal").unwrap().clone();
        let all = BitVec::ones(4);
        assert!(prob1_max(&m, &all, &goal).get(0));
        let sched = proper_scheduler(&m, &all, &goal);
        assert_eq!(sched[0], 1, "must take the safe action");
        let d = m.induced_dtmc(&sched).unwrap();
        let v = smg_dtmc::transient::unbounded_reach_values(&d, &goal, 1e-12, 100_000).unwrap();
        assert!((v[0] - 1.0).abs() < 1e-9);
    }
}
