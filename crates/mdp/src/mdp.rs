//! The explicit MDP: per-state action lists over a shared CSR distribution
//! pool, plus initial distribution, labels and rewards.
//!
//! # Representation
//!
//! Where a [`smg_dtmc::Dtmc`] stores one distribution row per state, an
//! [`Mdp`] stores one *or more*: the flat `cols`/`vals` pool holds every
//! action's distribution back to back (assembled with the same
//! [`smg_dtmc::matrix::merge_row_into`] primitive the DTMC engine uses, so
//! identical inputs produce byte-identical pool data), `act_ptr` delimits
//! the actions, and `state_ptr` delimits each state's slice of actions.
//! A state's action indices are *local* (`0..action_count(s)`), matching
//! how schedulers are stored ([`crate::vi::extremal_scheduler`]) and how
//! PRISM's explicit MDP format numbers choices.

use smg_dtmc::bitvec::BitVec;
use smg_dtmc::matrix::{merge_row_into, CsrBuilder, RowIter, STOCHASTIC_TOL};
use smg_dtmc::{Dtmc, DtmcError, StateId, TransitionMatrix};
use std::collections::BTreeMap;

/// An explicit finite MDP with atomic-proposition labels and a state
/// reward structure.
///
/// Invariants, enforced at construction:
/// * every state has at least one action,
/// * every action's distribution is stochastic (validated row by row by
///   [`MdpBuilder::push_action`]),
/// * the initial distribution sums to one,
/// * every label bit vector and the reward vector have length `n`.
#[derive(Debug, Clone)]
pub struct Mdp {
    /// `state_ptr[s]..state_ptr[s+1]` indexes state `s`'s actions.
    state_ptr: Vec<usize>,
    /// `act_ptr[a]..act_ptr[a+1]` indexes action `a`'s transitions.
    act_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
    initial: Vec<(StateId, f64)>,
    labels: BTreeMap<String, BitVec>,
    rewards: Vec<f64>,
}

impl Mdp {
    /// Assembles an MDP from a finished [`MdpBuilder`], validating the
    /// invariants listed on the type.
    ///
    /// # Errors
    ///
    /// * [`DtmcError::BadInitialDistribution`] if the initial masses do not
    ///   sum to one (or reference out-of-range states).
    /// * [`DtmcError::DimensionMismatch`] if a label or reward vector has
    ///   the wrong length.
    pub fn new(
        transitions: MdpTransitions,
        initial: Vec<(StateId, f64)>,
        labels: BTreeMap<String, BitVec>,
        rewards: Vec<f64>,
    ) -> Result<Self, DtmcError> {
        let MdpTransitions {
            state_ptr,
            act_ptr,
            cols,
            vals,
        } = transitions;
        let n = state_ptr.len() - 1;
        let mut sum = 0.0;
        for &(s, p) in &initial {
            if (s as usize) >= n || p < 0.0 || p.is_nan() {
                return Err(DtmcError::BadInitialDistribution { sum: f64::NAN });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > STOCHASTIC_TOL {
            return Err(DtmcError::BadInitialDistribution { sum });
        }
        for bv in labels.values() {
            if bv.len() != n {
                return Err(DtmcError::DimensionMismatch {
                    expected: n,
                    actual: bv.len(),
                });
            }
        }
        if rewards.len() != n {
            return Err(DtmcError::DimensionMismatch {
                expected: n,
                actual: rewards.len(),
            });
        }
        Ok(Mdp {
            state_ptr,
            act_ptr,
            cols,
            vals,
            initial,
            labels,
            rewards,
        })
    }

    /// The number of states.
    pub fn n_states(&self) -> usize {
        self.state_ptr.len() - 1
    }

    /// The total number of choices (actions summed over all states) —
    /// what PRISM's MDP statistics call "choices".
    pub fn n_choices(&self) -> usize {
        self.act_ptr.len() - 1
    }

    /// The total number of stored transitions.
    pub fn n_transitions(&self) -> usize {
        self.cols.len()
    }

    /// The number of actions available in state `s` (always ≥ 1).
    pub fn action_count(&self, s: usize) -> usize {
        self.state_ptr[s + 1] - self.state_ptr[s]
    }

    /// The largest action count over all states (the action fan-out).
    pub fn max_action_count(&self) -> usize {
        (0..self.n_states())
            .map(|s| self.action_count(s))
            .max()
            .unwrap_or(0)
    }

    /// Iterates `(column, probability)` of local action `a` of state `s`,
    /// without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `a` is out of range.
    pub fn action_row(&self, s: usize, a: usize) -> RowIter<'_> {
        let act = self.state_ptr[s] + a;
        assert!(
            act < self.state_ptr[s + 1],
            "action {a} out of range for state {s}"
        );
        let lo = self.act_ptr[act];
        let hi = self.act_ptr[act + 1];
        RowIter::Sparse {
            cols: self.cols[lo..hi].iter(),
            vals: self.vals[lo..hi].iter(),
        }
    }

    /// The initial distribution as `(state, mass)` pairs.
    pub fn initial(&self) -> &[(StateId, f64)] {
        &self.initial
    }

    /// The initial distribution as a dense vector.
    pub fn initial_dense(&self) -> Vec<f64> {
        let mut pi = vec![0.0; self.n_states()];
        for &(s, p) in &self.initial {
            pi[s as usize] += p;
        }
        pi
    }

    /// The states satisfying label `name`.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::UnknownLabel`] if no such label exists.
    pub fn label(&self, name: &str) -> Result<&BitVec, DtmcError> {
        self.labels
            .get(name)
            .ok_or_else(|| DtmcError::UnknownLabel {
                name: name.to_string(),
            })
    }

    /// All label names, sorted.
    pub fn label_names(&self) -> Vec<&str> {
        self.labels.keys().map(String::as_str).collect()
    }

    /// The state reward vector.
    pub fn rewards(&self) -> &[f64] {
        &self.rewards
    }

    /// Replaces the reward vector (used by named-reward-structure queries).
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::DimensionMismatch`] on length mismatch.
    pub fn with_rewards(mut self, rewards: Vec<f64>) -> Result<Self, DtmcError> {
        if rewards.len() != self.n_states() {
            return Err(DtmcError::DimensionMismatch {
                expected: self.n_states(),
                actual: rewards.len(),
            });
        }
        self.rewards = rewards;
        Ok(self)
    }

    /// Adds (or replaces) a label.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::DimensionMismatch`] on length mismatch.
    pub fn insert_label(&mut self, name: &str, bits: BitVec) -> Result<(), DtmcError> {
        if bits.len() != self.n_states() {
            return Err(DtmcError::DimensionMismatch {
                expected: self.n_states(),
                actual: bits.len(),
            });
        }
        self.labels.insert(name.to_string(), bits);
        Ok(())
    }

    /// The DTMC induced by a memoryless deterministic scheduler: state `s`
    /// keeps only its action `scheduler[s]`. Labels, rewards and the
    /// initial distribution carry over unchanged, so every DTMC analysis
    /// (exact checking, simulation, export) applies to the scheduled MDP —
    /// this is also how the test suite pins value iteration against
    /// exhaustive scheduler enumeration.
    ///
    /// # Errors
    ///
    /// [`DtmcError::DimensionMismatch`] if `scheduler.len() != n_states()`
    /// and [`DtmcError::NoActions`] if an entry is out of range for its
    /// state's action count.
    pub fn induced_dtmc(&self, scheduler: &[u32]) -> Result<Dtmc, DtmcError> {
        let n = self.n_states();
        if scheduler.len() != n {
            return Err(DtmcError::DimensionMismatch {
                expected: n,
                actual: scheduler.len(),
            });
        }
        let mut builder = CsrBuilder::with_capacity(n, n * 2);
        let mut row: Vec<(u32, f64)> = Vec::new();
        for (s, &a) in scheduler.iter().enumerate() {
            if a as usize >= self.action_count(s) {
                return Err(DtmcError::NoActions {
                    state: format!("#{s} (scheduler picked action {a})"),
                });
            }
            row.clear();
            row.extend(self.action_row(s, a as usize));
            builder.push_row(&mut row)?;
        }
        Dtmc::new(
            TransitionMatrix::Sparse(builder.finish()),
            self.initial.clone(),
            self.labels.clone(),
            self.rewards.clone(),
        )
    }
}

/// The finished transition structure of an [`MdpBuilder`], consumed by
/// [`Mdp::new`].
#[derive(Debug)]
pub struct MdpTransitions {
    state_ptr: Vec<usize>,
    act_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

/// Incremental [`Mdp`] construction directly into the flat pool arrays —
/// the MDP analogue of [`CsrBuilder`]. Push each state's actions with
/// [`MdpBuilder::push_action`] and close the state with
/// [`MdpBuilder::finish_state`]; exploration appends states in discovery
/// order without materialising per-state `Vec<Vec<_>>` nests.
#[derive(Debug)]
pub struct MdpBuilder {
    state_ptr: Vec<usize>,
    act_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl Default for MdpBuilder {
    fn default() -> Self {
        MdpBuilder::with_capacity(0, 0, 0)
    }
}

impl MdpBuilder {
    /// A builder with preallocated capacity for `states` states, `choices`
    /// total actions and `nnz` stored transitions.
    pub fn with_capacity(states: usize, choices: usize, nnz: usize) -> Self {
        let mut state_ptr = Vec::with_capacity(states + 1);
        state_ptr.push(0);
        let mut act_ptr = Vec::with_capacity(choices + 1);
        act_ptr.push(0);
        MdpBuilder {
            state_ptr,
            act_ptr,
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// The number of *closed* states.
    pub fn states(&self) -> usize {
        self.state_ptr.len() - 1
    }

    /// Validates, sorts, merges and appends one action distribution for
    /// the currently open state. The scratch slice is sorted in place
    /// (entries with duplicate columns are summed).
    ///
    /// # Errors
    ///
    /// * [`DtmcError::InvalidProbability`] for negative or NaN entries.
    /// * [`DtmcError::NotStochastic`] if the action does not sum to one.
    pub fn push_action(&mut self, row: &mut [(u32, f64)]) -> Result<(), DtmcError> {
        let s = self.states();
        let mut sum = 0.0;
        for &(_, v) in row.iter() {
            if v < 0.0 || v.is_nan() || v > 1.0 + STOCHASTIC_TOL {
                return Err(DtmcError::InvalidProbability {
                    state: format!("#{s}"),
                    prob: v,
                });
            }
            sum += v;
        }
        if (sum - 1.0).abs() > STOCHASTIC_TOL {
            return Err(DtmcError::NotStochastic {
                state: format!("#{s}"),
                sum,
            });
        }
        merge_row_into(&mut self.cols, &mut self.vals, row);
        self.act_ptr.push(self.cols.len());
        Ok(())
    }

    /// Closes the current state, which must have at least one action.
    ///
    /// # Errors
    ///
    /// [`DtmcError::NoActions`] if no action was pushed since the last
    /// `finish_state` (an MDP deadlock).
    pub fn finish_state(&mut self) -> Result<(), DtmcError> {
        let actions = self.act_ptr.len() - 1;
        if actions == *self.state_ptr.last().expect("state_ptr non-empty") {
            return Err(DtmcError::NoActions {
                state: format!("#{}", self.states()),
            });
        }
        self.state_ptr.push(actions);
        Ok(())
    }

    /// Appends pre-assembled states: `action_counts[i]` actions for the
    /// `i`-th appended state, each action's merged entry count in
    /// `act_lens` (flat, in order), entries in `cols`/`vals`. This is the
    /// parallel explorer's flat segment merge — each worker builds its
    /// chunk's rows with [`merge_row_into`] and the segments concatenate
    /// here in chunk order, reproducing exactly what sequential
    /// [`MdpBuilder::push_action`]/[`MdpBuilder::finish_state`] calls
    /// would have produced.
    pub fn append_segment(
        &mut self,
        action_counts: &[u32],
        act_lens: &[u32],
        cols: &[u32],
        vals: &[f64],
    ) {
        debug_assert_eq!(
            action_counts.iter().map(|&c| c as usize).sum::<usize>(),
            act_lens.len()
        );
        debug_assert_eq!(
            act_lens.iter().map(|&l| l as usize).sum::<usize>(),
            cols.len()
        );
        debug_assert_eq!(cols.len(), vals.len());
        debug_assert!(action_counts.iter().all(|&c| c > 0), "deadlocked state");
        let mut nnz = self.cols.len();
        for &len in act_lens {
            nnz += len as usize;
            self.act_ptr.push(nnz);
        }
        let mut acts = *self.state_ptr.last().expect("state_ptr non-empty");
        for &count in action_counts {
            acts += count as usize;
            self.state_ptr.push(acts);
        }
        self.cols.extend_from_slice(cols);
        self.vals.extend_from_slice(vals);
    }

    /// Finishes the transition structure; the state count is the number of
    /// closed states.
    pub fn finish(self) -> MdpTransitions {
        let n = self.states();
        debug_assert!(
            self.cols.iter().all(|&c| (c as usize) < n),
            "column index out of range in MDP builder"
        );
        MdpTransitions {
            state_ptr: self.state_ptr,
            act_ptr: self.act_ptr,
            cols: self.cols,
            vals: self.vals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-state MDP: state 0 chooses between a safe self-loop-ish action
    /// and a risky coin flip; 1 ("goal") and 2 ("bad") absorb.
    pub(crate) fn tiny() -> Mdp {
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(0, 0.5), (1, 0.5)]).unwrap();
        b.push_action(&mut [(1, 0.1), (2, 0.9)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("goal".to_string(), BitVec::from_fn(3, |i| i == 1));
        labels.insert("bad".to_string(), BitVec::from_fn(3, |i| i == 2));
        Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![0.0, 1.0, 0.0]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = tiny();
        assert_eq!(m.n_states(), 3);
        assert_eq!(m.n_choices(), 4);
        assert_eq!(m.n_transitions(), 6);
        assert_eq!(m.action_count(0), 2);
        assert_eq!(m.action_count(1), 1);
        assert_eq!(m.max_action_count(), 2);
        assert_eq!(
            m.action_row(0, 1).collect::<Vec<_>>(),
            vec![(1, 0.1), (2, 0.9)]
        );
        assert_eq!(m.initial_dense(), vec![1.0, 0.0, 0.0]);
        assert!(m.label("goal").unwrap().get(1));
        assert_eq!(m.label_names(), vec!["bad", "goal"]);
        assert_eq!(m.rewards(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn builder_validates_actions() {
        let mut b = MdpBuilder::default();
        assert!(b.push_action(&mut [(0, 0.5)]).is_err());
        assert!(b.push_action(&mut [(0, -0.1), (0, 1.1)]).is_err());
        assert!(b.push_action(&mut [(0, f64::NAN), (0, 1.0)]).is_err());
        // A state with no action is a deadlock.
        assert!(matches!(b.finish_state(), Err(DtmcError::NoActions { .. })));
    }

    #[test]
    fn builder_merges_duplicate_columns() {
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(0, 0.25), (0, 0.25), (0, 0.5)])
            .unwrap();
        b.finish_state().unwrap();
        let m = Mdp::new(b.finish(), vec![(0, 1.0)], BTreeMap::new(), vec![0.0]).unwrap();
        let row: Vec<_> = m.action_row(0, 0).collect();
        assert_eq!(row.len(), 1);
        assert!((row[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn append_segment_matches_incremental() {
        // Assemble the tiny MDP's rows through the parallel explorer's
        // primitives and compare the flat arrays against push_action.
        let rows: Vec<Vec<Vec<(u32, f64)>>> = vec![
            vec![vec![(1, 0.5), (0, 0.5)], vec![(2, 0.9), (1, 0.1)]],
            vec![vec![(1, 1.0)]],
            vec![vec![(2, 1.0)]],
        ];
        let mut reference = MdpBuilder::default();
        for state in &rows {
            for action in state {
                reference.push_action(&mut action.clone()).unwrap();
            }
            reference.finish_state().unwrap();
        }
        let (mut counts, mut lens, mut cols, mut vals) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for state in &rows {
            counts.push(state.len() as u32);
            for action in state {
                let before = cols.len();
                merge_row_into(&mut cols, &mut vals, &mut action.clone());
                lens.push((cols.len() - before) as u32);
            }
        }
        let mut seg = MdpBuilder::default();
        seg.append_segment(&counts, &lens, &cols, &vals);
        let a = reference.finish();
        let b = seg.finish();
        assert_eq!(a.state_ptr, b.state_ptr);
        assert_eq!(a.act_ptr, b.act_ptr);
        assert_eq!(a.cols, b.cols);
        assert_eq!(a.vals, b.vals);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(0, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let t = b.finish();
        assert!(Mdp::new(t, vec![(0, 0.5)], BTreeMap::new(), vec![0.0]).is_err());

        let mut b = MdpBuilder::default();
        b.push_action(&mut [(0, 1.0)]).unwrap();
        b.finish_state().unwrap();
        assert!(Mdp::new(b.finish(), vec![(5, 1.0)], BTreeMap::new(), vec![0.0]).is_err());

        let mut b = MdpBuilder::default();
        b.push_action(&mut [(0, 1.0)]).unwrap();
        b.finish_state().unwrap();
        assert!(Mdp::new(b.finish(), vec![(0, 1.0)], BTreeMap::new(), vec![0.0, 0.0]).is_err());

        let mut b = MdpBuilder::default();
        b.push_action(&mut [(0, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("x".to_string(), BitVec::zeros(3));
        assert!(Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![0.0]).is_err());
    }

    #[test]
    fn induced_dtmc_selects_actions() {
        let m = tiny();
        // Scheduler picking the risky action in state 0.
        let d = m.induced_dtmc(&[1, 0, 0]).unwrap();
        assert_eq!(d.n_states(), 3);
        assert_eq!(d.matrix().successors(0), vec![(1, 0.1), (2, 0.9)]);
        assert!(d.label("goal").unwrap().get(1));
        assert_eq!(d.rewards(), m.rewards());
        // Out-of-range action and wrong length are rejected.
        assert!(matches!(
            m.induced_dtmc(&[2, 0, 0]),
            Err(DtmcError::NoActions { .. })
        ));
        assert!(m.induced_dtmc(&[0, 0]).is_err());
    }

    #[test]
    fn with_rewards_and_insert_label() {
        let m = tiny().with_rewards(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.rewards(), &[1.0, 2.0, 3.0]);
        assert!(m.clone().with_rewards(vec![1.0]).is_err());
        let mut m = m;
        m.insert_label("new", BitVec::ones(3)).unwrap();
        assert!(m.label("new").unwrap().all());
        assert!(m.insert_label("bad_len", BitVec::ones(5)).is_err());
        assert!(matches!(
            m.label("nope"),
            Err(DtmcError::UnknownLabel { .. })
        ));
    }
}
