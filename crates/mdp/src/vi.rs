//! Min/max value iteration — Bellman backups over the action pool.
//!
//! All quantitative MDP queries reduce to iterating the optimal backup
//! operator: for a value vector `x`,
//!
//! ```text
//! (T_opt x)[s] = opt_{a ∈ actions(s)} Σ_c P(s, a, c) · x[c]
//! ```
//!
//! with `opt` either `min` (worst case over the adversary, `Pmin`/`Rmin`)
//! or `max` (best case, `Pmax`/`Rmax`). [`optimal_step_into`] implements
//! one masked backup following the DTMC engine's buffer-reuse contract
//! (caller-owned ping-pong buffers, zero per-step allocation); the bounded
//! and unbounded drivers ([`bounded_until_values`],
//! [`unbounded_until_values`], [`reach_reward_values`], ...) loop it.
//!
//! # Parallelism and determinism
//!
//! Above the engine's sequential-fallback threshold
//! ([`smg_dtmc::par::min_rows`], same knobs as the DTMC kernels) the backup
//! runs as fixed-size output chunks **dynamically dispatched** over the
//! persistent worker pool ([`smg_dtmc::pool::Pool::map_chunks_dynamic`]):
//! action fan-out is often heavy-tailed (a few states carry most choices),
//! so lanes claim chunks through an atomic cursor instead of a fixed
//! stride. Each output state is computed by exactly one task from the same
//! action walk the sequential loop performs, so results are **bit-identical
//! to the sequential fallback for every thread count and chunk geometry**
//! (property-tested in `tests/vi_properties.rs`).
//!
//! # Certified convergence
//!
//! The unbounded drivers above stop on a residual test, which cannot bound
//! the distance to the fixpoint. The `certified_*` drivers replace it with
//! **interval iteration**: a lower vector ascending from 0 and an upper
//! vector descending from a qualitative seed ([`crate::qual`]), advanced
//! together by [`interval_step_into`] (one action walk computes both
//! bounds) and terminated only when `upper − lower < ε` pointwise. End
//! components — the structures that let plain upper iterates stall above
//! the true `Pmax`, and lower `Rmin` iterates stall below the true cost —
//! are handled by per-sweep *deflation* (capping a component's upper
//! values at its best exit backup) and *inflation* (raising a zero-reward
//! component's lower values to its cheapest exit backup), over maximal end
//! components computed once per query. The result is a sound bracket for
//! all four `Pmin`/`Pmax`/`Rmin`/`Rmax` forms, cross-checked in the tests
//! against exhaustive memoryless-scheduler enumeration.

use crate::mdp::Mdp;
use crate::qual;
use smg_dtmc::solve::CertifiedValues;
use smg_dtmc::{par, pool, BitVec, DtmcError};
use smg_obs as obs;

/// The optimization direction of a query: worst case (`Min`) or best case
/// (`Max`) over the resolution of all nondeterminism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opt {
    /// Minimize over schedulers (`Pmin`, `Rmin`).
    Min,
    /// Maximize over schedulers (`Pmax`, `Rmax`).
    Max,
}

impl Opt {
    /// Whether `candidate` improves on `incumbent` in this direction.
    #[inline]
    pub fn better(self, candidate: f64, incumbent: f64) -> bool {
        match self {
            Opt::Min => candidate < incumbent,
            Opt::Max => candidate > incumbent,
        }
    }

    /// The opposite direction (used by qualitative pre-passes: `Rmax` is
    /// finite where `Pmin` reaches almost surely, and vice versa).
    pub fn dual(self) -> Opt {
        match self {
            Opt::Min => Opt::Max,
            Opt::Max => Opt::Min,
        }
    }

    /// The lowercase suffix (`"min"` / `"max"`) used in property syntax.
    pub fn suffix(self) -> &'static str {
        match self {
            Opt::Min => "min",
            Opt::Max => "max",
        }
    }
}

impl std::fmt::Display for Opt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

/// Knobs for the value-iteration drivers.
#[derive(Debug, Clone, Copy)]
pub struct ViOptions {
    /// L∞ convergence tolerance for unbounded iterations.
    pub tol: f64,
    /// Iteration budget for unbounded iterations.
    pub max_iter: usize,
    /// State-count threshold above which backups run on the worker pool.
    /// `None` (the default) uses the engine-wide [`par::min_rows`] /
    /// `SMG_PAR_MIN_ROWS` setting; explicit values let tests and benches
    /// force either path. Results are identical either way.
    pub par_min_states: Option<usize>,
    /// States per dynamically dispatched chunk of a parallel backup.
    pub chunk: usize,
    /// Pool to dispatch on. `None` (the default) uses the engine's global
    /// pool; benches pass [`pool::with_lanes`] pools to sweep lane counts.
    pub pool: Option<&'static pool::Pool>,
}

impl Default for ViOptions {
    fn default() -> Self {
        ViOptions {
            tol: 1e-12,
            max_iter: 1_000_000,
            par_min_states: None,
            chunk: 2_048,
            pool: None,
        }
    }
}

impl ViOptions {
    /// Options with an explicit parallel threshold (0 forces the parallel
    /// path, `usize::MAX` forces the sequential one).
    pub fn with_par_min_states(mut self, m: usize) -> Self {
        self.par_min_states = Some(m);
        self
    }

    fn parallelize(&self, n: usize) -> bool {
        match self.par_min_states {
            Some(m) => n >= m,
            None => par::should_parallelize(n),
        }
    }
}

/// One optimal Bellman backup `out = T_opt x`, masked: states outside
/// `active` keep their current value (`out[s] = x[s]`, the absorbing
/// semantics the until/reward iterations rely on). The output buffer is
/// fully overwritten and must not alias `x`.
///
/// # Panics
///
/// Panics if `x.len()`, `out.len()`, or the mask length mismatch the
/// state count.
pub fn optimal_step_into(
    mdp: &Mdp,
    x: &[f64],
    active: Option<&BitVec>,
    opt: Opt,
    out: &mut [f64],
    vio: &ViOptions,
) {
    let n = mdp.n_states();
    assert_eq!(x.len(), n, "value vector length mismatch");
    assert_eq!(out.len(), n, "output buffer length mismatch");
    if let Some(m) = active {
        assert_eq!(m.len(), n, "mask length mismatch");
    }
    let body = |offset: usize, chunk: &mut [f64]| {
        for (j, slot) in chunk.iter_mut().enumerate() {
            let s = offset + j;
            if let Some(mask) = active {
                if !mask.get(s) {
                    *slot = x[s];
                    continue;
                }
            }
            let mut best = 0.0;
            for a in 0..mdp.action_count(s) {
                let mut acc = 0.0;
                for (c, p) in mdp.action_row(s, a) {
                    acc += p * x[c as usize];
                }
                if a == 0 || opt.better(acc, best) {
                    best = acc;
                }
            }
            *slot = best;
        }
    };
    if vio.parallelize(n) {
        let pool = vio.pool.unwrap_or_else(pool::global);
        pool.map_chunks_dynamic(out, vio.chunk.max(1), &|offset, chunk| body(offset, chunk));
    } else {
        body(0, out);
    }
}

/// Tolerance within which an action's backup counts as attaining the
/// optimum during scheduler extraction (the values come from an iteration
/// converged to ~1e-12, so exact float equality would be wrong).
const SCHED_TOL: f64 = 1e-9;

/// The memoryless deterministic scheduler extracted from a converged value
/// vector: `scheduler[s]` attains the optimal one-step backup of `values`
/// at `s`. For unbounded reachability (where memoryless schedulers are
/// optimal) this is an optimal scheduler; simulation uses it for
/// statistical cross-validation (`smg-sim::mdp_smc`).
///
/// **`Pmax` needs the `target` set.** Greedily maximizing is not enough:
/// a value-preserving cycle (e.g. a self-loop) ties with the progressing
/// action and would trap the induced chain at probability 0 — the
/// classic pitfall of max-scheduler extraction. When `opt` is
/// [`Opt::Max`] and `target` is given, ties are broken by the standard
/// attractor construction: states are claimed outward from the target,
/// each picking an optimal action with an already-claimed successor, so
/// the induced chain provably makes progress. For [`Opt::Min`] (any
/// minimizing selection is optimal) and for step-bounded cross-checks,
/// `None` suffices.
pub fn extremal_scheduler(
    mdp: &Mdp,
    values: &[f64],
    opt: Opt,
    target: Option<&BitVec>,
) -> Vec<u32> {
    let n = mdp.n_states();
    assert_eq!(values.len(), n, "value vector length mismatch");
    let backup = |s: usize, a: usize| -> f64 {
        let mut acc = 0.0;
        for (c, p) in mdp.action_row(s, a) {
            acc += p * values[c as usize];
        }
        acc
    };
    // Greedy pass: first action attaining the optimum.
    let mut sched: Vec<u32> = (0..n)
        .map(|s| {
            let mut best = 0.0;
            let mut arg = 0u32;
            for a in 0..mdp.action_count(s) {
                let acc = backup(s, a);
                if a == 0 || opt.better(acc, best) {
                    best = acc;
                    arg = a as u32;
                }
            }
            arg
        })
        .collect();
    // Attractor repair for Pmax: claim states outward from the target
    // through optimal actions, so every positive-value state's choice has
    // a claimed successor (hence positive probability of progress).
    if let (Opt::Max, Some(target)) = (opt, target) {
        let mut claimed: Vec<bool> = (0..n).map(|s| target.get(s)).collect();
        loop {
            let mut changed = false;
            for s in 0..n {
                if claimed[s] || values[s] <= 0.0 {
                    continue;
                }
                // The greedy pass left the optimal backup at sched[s].
                let best = backup(s, sched[s] as usize);
                for a in 0..mdp.action_count(s) {
                    if backup(s, a) < best - SCHED_TOL {
                        continue;
                    }
                    if mdp
                        .action_row(s, a)
                        .any(|(c, p)| p > 0.0 && claimed[c as usize])
                    {
                        sched[s] = a as u32;
                        claimed[s] = true;
                        changed = true;
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
    sched
}

fn check_len(mdp: &Mdp, bits: &BitVec) -> Result<(), DtmcError> {
    if bits.len() != mdp.n_states() {
        return Err(DtmcError::DimensionMismatch {
            expected: mdp.n_states(),
            actual: bits.len(),
        });
    }
    Ok(())
}

/// The optimal probability of `lhs U<=t rhs` from every state: backward
/// value iteration over `t` optimal backups, with `rhs` pinned to 1 and
/// failure states (`¬lhs ∧ ¬rhs`) pinned to 0 — the MDP analogue of
/// [`smg_dtmc::transient::bounded_until_values`].
///
/// # Errors
///
/// [`DtmcError::DimensionMismatch`] for wrong-length bit vectors.
pub fn bounded_until_values(
    mdp: &Mdp,
    lhs: &BitVec,
    rhs: &BitVec,
    t: usize,
    opt: Opt,
    vio: &ViOptions,
) -> Result<Vec<f64>, DtmcError> {
    check_len(mdp, lhs)?;
    check_len(mdp, rhs)?;
    let n = mdp.n_states();
    let active = lhs.and(&rhs.not());
    let mut x: Vec<f64> = (0..n).map(|i| if rhs.get(i) { 1.0 } else { 0.0 }).collect();
    let mut next = vec![0.0; n];
    for _ in 0..t {
        optimal_step_into(mdp, &x, Some(&active), opt, &mut next, vio);
        for (i, v) in next.iter_mut().enumerate() {
            if rhs.get(i) {
                *v = 1.0;
            } else if !lhs.get(i) {
                *v = 0.0;
            }
        }
        std::mem::swap(&mut x, &mut next);
    }
    Ok(x)
}

/// The optimal probability of `lhs U rhs` (unbounded) from every state,
/// iterated to the fixpoint from below. Starting from 0 converges to the
/// *least* fixpoint of the optimal backup, which is the exact `Pmin`/`Pmax`
/// value in both directions.
///
/// # Errors
///
/// [`DtmcError::NoConvergence`] if `vio.max_iter` is exhausted;
/// [`DtmcError::DimensionMismatch`] for wrong-length bit vectors.
pub fn unbounded_until_values(
    mdp: &Mdp,
    lhs: &BitVec,
    rhs: &BitVec,
    opt: Opt,
    vio: &ViOptions,
) -> Result<Vec<f64>, DtmcError> {
    check_len(mdp, lhs)?;
    check_len(mdp, rhs)?;
    let n = mdp.n_states();
    let active = lhs.and(&rhs.not());
    let mut x: Vec<f64> = (0..n).map(|i| if rhs.get(i) { 1.0 } else { 0.0 }).collect();
    let mut next = vec![0.0; n];
    for it in 1..=vio.max_iter {
        optimal_step_into(mdp, &x, Some(&active), opt, &mut next, vio);
        for (i, v) in next.iter_mut().enumerate() {
            if rhs.get(i) {
                *v = 1.0;
            } else if !lhs.get(i) {
                *v = 0.0;
            }
        }
        let diff = x
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        std::mem::swap(&mut x, &mut next);
        if obs::enabled() {
            obs::counter_add("smg_solve_sweeps_total", Some(("driver", "vi")), 1);
            obs::trace(&obs::ConvergenceRecord {
                driver: "vi",
                sweep: it as u64,
                residual: Some(diff),
                width: None,
                component: None,
            });
        }
        if diff < vio.tol {
            return Ok(x);
        }
    }
    Err(DtmcError::NoConvergence {
        iterations: vio.max_iter,
        residual: vio.tol,
    })
}

/// The optimal probability of reaching a `target` state (`Pmin`/`Pmax`
/// `[F target]`) from every state.
///
/// # Errors
///
/// As for [`unbounded_until_values`].
pub fn reach_values(
    mdp: &Mdp,
    target: &BitVec,
    opt: Opt,
    vio: &ViOptions,
) -> Result<Vec<f64>, DtmcError> {
    let all = BitVec::ones(mdp.n_states());
    unbounded_until_values(mdp, &all, target, opt, vio)
}

/// The optimal expected instantaneous reward at exactly step `t` from
/// every state (the MDP form of `R=? [I=t]`): `t` unmasked optimal
/// backups of the reward vector.
pub fn instantaneous_reward_values(mdp: &Mdp, t: usize, opt: Opt, vio: &ViOptions) -> Vec<f64> {
    let mut x = mdp.rewards().to_vec();
    let mut next = vec![0.0; x.len()];
    for _ in 0..t {
        optimal_step_into(mdp, &x, None, opt, &mut next, vio);
        std::mem::swap(&mut x, &mut next);
    }
    x
}

/// The optimal expected reward accumulated over the first `t` steps from
/// every state (the MDP form of `R=? [C<=t]`; the state occupied at each
/// of steps `0..t-1` contributes its reward, matching the DTMC checker's
/// cumulative semantics).
pub fn cumulative_reward_values(mdp: &Mdp, t: usize, opt: Opt, vio: &ViOptions) -> Vec<f64> {
    let n = mdp.n_states();
    let rewards = mdp.rewards();
    let mut x = vec![0.0; n];
    let mut next = vec![0.0; n];
    for _ in 0..t {
        optimal_step_into(mdp, &x, None, opt, &mut next, vio);
        for (v, r) in next.iter_mut().zip(rewards) {
            *v += r;
        }
        std::mem::swap(&mut x, &mut next);
    }
    x
}

/// The optimal expected reward accumulated strictly before first reaching
/// a `target` state, from every state (`Rmin`/`Rmax` `[F target]`, PRISM
/// semantics: the target's own reward is not counted).
///
/// A state's value is `∞` when the *dual* reachability probability is
/// below 1 — `Rmax` is infinite where some scheduler avoids the target
/// (`Pmin < 1`), `Rmin` where even the best scheduler cannot reach it
/// almost surely (`Pmax < 1`). The iteration pins those states to `∞`
/// up front; `min`-backups route around infinite actions (a finite action
/// always exists from a finite state), and `max`-backups never see one.
/// `Rmax` iterates up from 0 (unique fixpoint — every scheduler is proper
/// in its certain region); `Rmin` descends from the expected cost of a
/// known-proper scheduler, which steps over the spurious sub-fixpoints
/// that zero-reward cycles create (a path that stalls forever never
/// reaches the target and semantically costs ∞, but costs the from-zero
/// Bellman iteration nothing). Rewards are assumed non-negative.
///
/// # Errors
///
/// As for [`unbounded_until_values`], for both the qualitative pre-pass
/// and the reward iteration.
pub fn reach_reward_values(
    mdp: &Mdp,
    target: &BitVec,
    opt: Opt,
    vio: &ViOptions,
) -> Result<Vec<f64>, DtmcError> {
    check_len(mdp, target)?;
    let n = mdp.n_states();
    let dual_reach = reach_values(mdp, target, opt.dual(), vio)?;
    let certain = BitVec::from_fn(n, |i| dual_reach[i] > 1.0 - 1e-9);
    let active = certain.and(&target.not());
    let rewards = mdp.rewards();
    // Starting point. For Rmax, 0 works: in the certain region *every*
    // scheduler reaches the target almost surely, the backup operator is a
    // contraction, and the fixpoint is unique. For Rmin it is unsound: the
    // certain region only guarantees *some* scheduler is proper, and a
    // zero-reward cycle lets the minimizing backup stall forever at no
    // Bellman cost even though the stalling path semantically costs ∞
    // (it never reaches the target). The classic SSP remedy: start the
    // descent *from above*, at the expected cost of a known-proper
    // scheduler — the Pmax attractor scheduler, whose induced chain
    // reaches the target almost surely from every certain state. Min
    // backups then decrease monotonically from that super-solution to the
    // optimal proper cost, and can never fall into the spurious
    // sub-fixpoints below it. (Assumes non-negative rewards, as do the
    // paper's 0/1 flag reward structures.)
    let mut x: Vec<f64> = match opt {
        Opt::Max => (0..n)
            .map(|i| if certain.get(i) { 0.0 } else { f64::INFINITY })
            .collect(),
        Opt::Min => {
            let proper = extremal_scheduler(mdp, &dual_reach, Opt::Max, Some(target));
            let chain = mdp.induced_dtmc(&proper)?;
            let mut cost = proper_chain_cost(&chain, &active, rewards, vio)?;
            for (i, c) in cost.iter_mut().enumerate() {
                if !certain.get(i) {
                    *c = f64::INFINITY;
                }
            }
            cost
        }
    };
    let mut next = vec![0.0; n];
    let mut converged = false;
    for _ in 0..vio.max_iter {
        optimal_step_into(mdp, &x, Some(&active), opt, &mut next, vio);
        let mut diff: f64 = 0.0;
        for i in active.iter_ones() {
            next[i] += rewards[i];
            // Finite states always have a finite optimal action (see the
            // doc comment), so this difference is never ∞ − ∞.
            diff = diff.max((next[i] - x[i]).abs());
        }
        std::mem::swap(&mut x, &mut next);
        if diff < vio.tol {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(DtmcError::NoConvergence {
            iterations: vio.max_iter,
            residual: vio.tol,
        });
    }
    Ok(x)
}

/// The expected reward accumulated before absorption for a *proper* chain
/// (every `active` state reaches the complement of `active` almost
/// surely): iterates `x = r + P·x` on the active states. Used to seed the
/// `Rmin` descent in [`reach_reward_values`].
fn proper_chain_cost(
    chain: &smg_dtmc::Dtmc,
    active: &BitVec,
    rewards: &[f64],
    vio: &ViOptions,
) -> Result<Vec<f64>, DtmcError> {
    let n = chain.n_states();
    let mut x = vec![0.0; n];
    let mut next = vec![0.0; n];
    for _ in 0..vio.max_iter {
        chain
            .matrix()
            .backward_masked_into(&x, Some(active), &mut next);
        let mut diff: f64 = 0.0;
        for i in active.iter_ones() {
            next[i] += rewards[i];
            diff = diff.max((next[i] - x[i]).abs());
        }
        std::mem::swap(&mut x, &mut next);
        if diff < vio.tol {
            return Ok(x);
        }
    }
    Err(DtmcError::NoConvergence {
        iterations: vio.max_iter,
        residual: vio.tol,
    })
}

/// One dual optimal backup `out = (T_opt lo, T_opt hi)`, masked: states
/// outside `active` copy their current (pinned) pair. Both bounds ride a
/// single action walk — the per-action accumulators and the running optima
/// are tracked independently, which is exactly `T_opt` applied to each
/// bound (the optimal action may differ between them). With `rewards`,
/// `r[s]` is added to both bounds of every active state.
///
/// Parallel dispatch and determinism follow [`optimal_step_into`]: dynamic
/// chunks on the pool above the threshold, bit-identical sequential
/// fallback below it. Returns the maximum `hi − lo` width over the active
/// states of this sweep.
pub fn interval_step_into(
    mdp: &Mdp,
    cur: &[(f64, f64)],
    active: &BitVec,
    opt: Opt,
    rewards: Option<&[f64]>,
    out: &mut [(f64, f64)],
    vio: &ViOptions,
) -> f64 {
    let n = mdp.n_states();
    assert_eq!(cur.len(), n, "value vector length mismatch");
    assert_eq!(out.len(), n, "output buffer length mismatch");
    assert_eq!(active.len(), n, "mask length mismatch");
    let body = |offset: usize, chunk: &mut [(f64, f64)]| -> f64 {
        let mut width: f64 = 0.0;
        for (j, slot) in chunk.iter_mut().enumerate() {
            let s = offset + j;
            if !active.get(s) {
                *slot = cur[s];
                continue;
            }
            let mut best_lo = 0.0;
            let mut best_hi = 0.0;
            for a in 0..mdp.action_count(s) {
                let mut acc_lo = 0.0;
                let mut acc_hi = 0.0;
                for (c, p) in mdp.action_row(s, a) {
                    let (l, h) = cur[c as usize];
                    acc_lo += p * l;
                    acc_hi += p * h;
                }
                if a == 0 || opt.better(acc_lo, best_lo) {
                    best_lo = acc_lo;
                }
                if a == 0 || opt.better(acc_hi, best_hi) {
                    best_hi = acc_hi;
                }
            }
            if let Some(r) = rewards {
                best_lo += r[s];
                best_hi += r[s];
            }
            width = width.max(best_hi - best_lo);
            *slot = (best_lo, best_hi);
        }
        width
    };
    if vio.parallelize(n) {
        let pool = vio.pool.unwrap_or_else(pool::global);
        pool.map_chunks_dynamic(out, vio.chunk.max(1), &|offset, chunk| body(offset, chunk))
            .into_iter()
            .fold(0.0, f64::max)
    } else {
        body(0, out)
    }
}

/// Per-state end-component membership (`u32::MAX` = none) plus the list,
/// precomputed once per certified query.
struct EcIndex {
    of: Vec<u32>,
    members: Vec<Vec<u32>>,
}

impl EcIndex {
    fn new(mdp: &Mdp, restrict: &BitVec) -> EcIndex {
        let members = qual::max_end_components(mdp, restrict);
        let mut of = vec![u32::MAX; mdp.n_states()];
        for (k, m) in members.iter().enumerate() {
            for &s in m {
                of[s as usize] = k as u32;
            }
        }
        EcIndex { of, members }
    }

    /// The `opt`-best backup over the *exit* actions of component `k` —
    /// actions of member states whose support leaves the component. Every
    /// retained component has at least one (closed components that cannot
    /// reach the target are excluded by the qualitative pre-passes).
    fn best_exit(&self, mdp: &Mdp, k: usize, value: impl Fn(usize) -> f64, opt: Opt) -> f64 {
        let mut best = match opt {
            Opt::Max => f64::NEG_INFINITY,
            Opt::Min => f64::INFINITY,
        };
        for &u in &self.members[k] {
            let u = u as usize;
            for a in 0..mdp.action_count(u) {
                let mut exits = false;
                let mut acc = 0.0;
                for (c, p) in mdp.action_row(u, a) {
                    exits |= self.of[c as usize] != self.of[u];
                    acc += p * value(c as usize);
                }
                if exits && opt.better(acc, best) {
                    best = acc;
                }
            }
        }
        best
    }
}

/// The maximum `hi − lo` over `active` states (all finite there).
fn bracket_width(active: &BitVec, cur: &[(f64, f64)]) -> f64 {
    active
        .iter_ones()
        .map(|i| cur[i].1 - cur[i].0)
        .fold(0.0, f64::max)
}

fn unzip_certificate(cur: Vec<(f64, f64)>, iterations: usize) -> CertifiedValues {
    let (lo, hi) = cur.into_iter().unzip();
    CertifiedValues { lo, hi, iterations }
}

/// Certified optimal probabilities of `lhs U rhs` from every state:
/// interval iteration whose `[lo, hi]` result provably brackets the exact
/// `Pmin`/`Pmax` value with width below `epsilon` at every state.
///
/// The qualitative pre-pass pins the `P = 0` region exactly (for `Pmax`
/// the states no scheduler can steer to `rhs`, for `Pmin` the states some
/// scheduler can keep away — [`qual::prob0_max`]/[`qual::prob0_min`]).
/// For `Pmin` that already makes the fixpoint unique. For `Pmax` the
/// remaining end components can hold the upper iterate above the true
/// value forever, so each sweep *deflates* them: every component's upper
/// values are capped at its best exit backup, which is sound (any
/// scheduler must leave the component to reach `rhs`) and restores
/// convergence.
///
/// # Errors
///
/// [`DtmcError::DimensionMismatch`] for wrong-length bit vectors;
/// [`DtmcError::NoConvergence`] if `vio.max_iter` dual sweeps do not close
/// the width below `epsilon`.
pub fn certified_until_values(
    mdp: &Mdp,
    lhs: &BitVec,
    rhs: &BitVec,
    opt: Opt,
    epsilon: f64,
    vio: &ViOptions,
) -> Result<CertifiedValues, DtmcError> {
    check_len(mdp, lhs)?;
    check_len(mdp, rhs)?;
    let n = mdp.n_states();
    let zero = match opt {
        Opt::Max => qual::prob0_max(mdp, lhs, rhs),
        Opt::Min => qual::prob0_min(mdp, lhs, rhs),
    };
    let active = lhs.and(&rhs.not()).and(&zero.not());
    let ecs = match opt {
        Opt::Max => Some(EcIndex::new(mdp, &active)),
        Opt::Min => None, // every end component has Pmin = 0 → pinned already
    };
    let mut cur: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            if rhs.get(i) {
                (1.0, 1.0)
            } else if active.get(i) {
                (0.0, 1.0)
            } else {
                (0.0, 0.0)
            }
        })
        .collect();
    let mut next = cur.clone();
    for it in 1..=vio.max_iter {
        let mut width = interval_step_into(mdp, &cur, &active, opt, None, &mut next, vio);
        if let Some(ecs) = &ecs {
            let mut deflated = 0u64;
            for k in 0..ecs.members.len() {
                let cap = ecs.best_exit(mdp, k, |c| next[c].1, Opt::Max);
                for &s in &ecs.members[k] {
                    let hi = &mut next[s as usize].1;
                    if cap < *hi {
                        *hi = cap;
                        deflated += 1;
                    }
                }
            }
            if deflated > 0 {
                obs::counter_add("smg_vi_deflations_total", None, deflated);
            }
            width = bracket_width(&active, &next);
        }
        std::mem::swap(&mut cur, &mut next);
        record_certified_sweep("certified_vi", it, width, None);
        if width < epsilon {
            return Ok(unzip_certificate(cur, it));
        }
    }
    Err(DtmcError::NoConvergence {
        iterations: vio.max_iter,
        residual: epsilon,
    })
}

/// Reports one certified dual sweep through the instrumentation seam.
#[inline]
fn record_certified_sweep(driver: &'static str, it: usize, width: f64, component: Option<u32>) {
    if !obs::enabled() {
        return;
    }
    obs::counter_add("smg_solve_sweeps_total", Some(("driver", driver)), 1);
    obs::trace(&obs::ConvergenceRecord {
        driver,
        sweep: it as u64,
        residual: None,
        width: Some(width),
        component,
    });
}

/// Certified optimal reachability `Pmin`/`Pmax` `[F target]` from every
/// state — [`certified_until_values`] with an unrestricted left operand.
///
/// # Errors
///
/// As for [`certified_until_values`].
pub fn certified_reach_values(
    mdp: &Mdp,
    target: &BitVec,
    opt: Opt,
    epsilon: f64,
    vio: &ViOptions,
) -> Result<CertifiedValues, DtmcError> {
    let all = BitVec::ones(mdp.n_states());
    certified_until_values(mdp, &all, target, opt, epsilon, vio)
}

/// Certified optimal expected reward accumulated strictly before first
/// reaching `target` (`Rmin`/`Rmax` `[F target]`, PRISM semantics).
/// States outside the qualitative certain region carry the exact
/// `lo = hi = ∞`; on the certain region the bracket has width below
/// `epsilon`.
///
/// Everything the certificate rests on is graph-based, never a
/// residual-converged number:
///
/// * the certain region is [`qual::prob1_min`] for `Rmax` (every
///   scheduler must be proper there for the supremum to be finite) and
///   [`qual::prob1_max`] for `Rmin`;
/// * the `Rmax` upper seed comes from a finite hitting probe — `k` min-VI
///   sweeps showing every certain state reaches the target within `k`
///   steps with probability ≥ δ under *every* scheduler, giving the bound
///   `k·r_max/δ`;
/// * the `Rmin` upper seed is a certified upper bound
///   ([`smg_dtmc::solve::interval_reach_reward_values`]) on the cost of a
///   graph-constructed proper scheduler ([`qual::proper_scheduler`]);
/// * the `Rmin` *lower* iterate would stall below the true cost wherever
///   a zero-reward end component lets the minimizer wait for free, so
///   each sweep *inflates* those components' lower values to their
///   cheapest exit backup (sound: a proper scheduler must leave, and
///   leaving costs at least the cheapest exit).
///
/// # Errors
///
/// As for [`certified_until_values`] (for the reward iteration, the
/// hitting probe, and the seed computation).
pub fn certified_reach_reward_values(
    mdp: &Mdp,
    target: &BitVec,
    opt: Opt,
    epsilon: f64,
    vio: &ViOptions,
) -> Result<CertifiedValues, DtmcError> {
    check_len(mdp, target)?;
    let n = mdp.n_states();
    let all = BitVec::ones(n);
    let certain = match opt {
        Opt::Max => qual::prob1_min(mdp, &all, target),
        Opt::Min => qual::prob1_max(mdp, &all, target),
    };
    let active = certain.and(&target.not());
    let rewards = mdp.rewards();
    let r_max = active.iter_ones().map(|i| rewards[i]).fold(0.0, f64::max);
    // Upper seed per state.
    let seed: Vec<f64> = match opt {
        Opt::Max => {
            let bound = if r_max == 0.0 {
                0.0
            } else {
                let (k, delta) = min_hitting_probe(mdp, target, &active, vio)?;
                k as f64 * r_max / delta
            };
            vec![bound; n]
        }
        Opt::Min => {
            let sched = qual::proper_scheduler(mdp, &all, target);
            let chain = mdp.induced_dtmc(&sched)?;
            smg_dtmc::solve::interval_reach_reward_values(&chain, target, epsilon, vio.max_iter)?.hi
        }
    };
    let ecs = match opt {
        Opt::Min => {
            let zero_reward = BitVec::from_fn(n, |i| active.get(i) && rewards[i] == 0.0);
            Some(EcIndex::new(mdp, &zero_reward))
        }
        Opt::Max => None, // no end components survive inside a Pmin = 1 region
    };
    let mut cur: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            if active.get(i) {
                (0.0, seed[i])
            } else if certain.get(i) {
                (0.0, 0.0) // target: accumulation stops before its reward
            } else {
                (f64::INFINITY, f64::INFINITY)
            }
        })
        .collect();
    let mut next = cur.clone();
    for it in 1..=vio.max_iter {
        let mut width = interval_step_into(mdp, &cur, &active, opt, Some(rewards), &mut next, vio);
        if let Some(ecs) = &ecs {
            let mut inflated = 0u64;
            for k in 0..ecs.members.len() {
                let floor = ecs.best_exit(mdp, k, |c| next[c].0, Opt::Min);
                for &s in &ecs.members[k] {
                    let lo = &mut next[s as usize].0;
                    if floor > *lo {
                        *lo = floor;
                        inflated += 1;
                    }
                }
            }
            if inflated > 0 {
                obs::counter_add("smg_vi_inflations_total", None, inflated);
            }
            width = bracket_width(&active, &next);
        }
        std::mem::swap(&mut cur, &mut next);
        record_certified_sweep("certified_vi", it, width, None);
        if width < epsilon {
            return Ok(unzip_certificate(cur, it));
        }
    }
    Err(DtmcError::NoConvergence {
        iterations: vio.max_iter,
        residual: epsilon,
    })
}

/// The smallest `k` at which every `active` state reaches the target
/// within `k` steps with positive probability under *every* scheduler,
/// with the minimum such probability `δ` — `k` bounded min-VI sweeps. On a
/// correct `Pmin = 1` region such a `k ≤ n` always exists (a scheduler
/// avoiding the target for `n` steps surely contains an avoiding cycle,
/// contradicting `Pmin = 1`).
fn min_hitting_probe(
    mdp: &Mdp,
    target: &BitVec,
    active: &BitVec,
    vio: &ViOptions,
) -> Result<(usize, f64), DtmcError> {
    let n = mdp.n_states();
    if !active.any() {
        return Ok((1, 1.0));
    }
    let mut w: Vec<f64> = (0..n)
        .map(|i| if target.get(i) { 1.0 } else { 0.0 })
        .collect();
    let mut next = vec![0.0; n];
    for k in 1..=n {
        optimal_step_into(mdp, &w, Some(active), Opt::Min, &mut next, vio);
        std::mem::swap(&mut w, &mut next);
        let delta = active
            .iter_ones()
            .map(|i| w[i])
            .fold(f64::INFINITY, f64::min);
        if delta > 0.0 {
            return Ok((k, delta));
        }
    }
    // Unreachable when `active` really is the Pmin = 1 region; fail loudly
    // rather than certify with an unsound seed.
    Err(DtmcError::NoConvergence {
        iterations: n,
        residual: 0.0,
    })
}

// ---------------------------------------------------------------------------
// Topological (SCC-ordered) certified solving
// ---------------------------------------------------------------------------
//
// The `topo_certified_*` drivers compute the same certificates as the
// global `certified_*` family, but walk the SCC condensation of the
// any-action graph ([`qual::Condensation`]) level by level (sinks first),
// solving each component with its successors' already-certified bounds
// folded in as constants. Because an end component is strongly connected,
// it never spans two SCCs, so deflation (Pmax) and inflation (Rmin) stay
// component-local. Trivial components — a single state, the dominant case
// in layered models — collapse to one closed-form backsubstitution per
// bound; all trivial components of a DAG level are independent and are
// evaluated as one batch dispatched onto the worker pool.

/// Which end-component correction a certified query needs: cap upper
/// bounds at the best exit (`Pmax`) or raise lower bounds to the cheapest
/// exit (`Rmin` over zero-reward components).
#[derive(Clone, Copy)]
enum EcMode {
    DeflateHi,
    InflateLo,
}

/// Closed-form solve of a trivial (single-state) component: the optimal
/// fixpoint of `x = opt_a (r + Σ_c P(s,a,c)·x_c)` with every non-self
/// successor already solved. Per action, the self-loop mass is eliminated
/// algebraically (`x_a = (r + Σ_{c≠s} p_c·x_c) / (1 − p_ss)`); actions
/// keeping all mass on `s` are skipped — staying forever never reaches a
/// target (`P` forms: contributes the already-seeded 0; reward forms:
/// exactly what deflation/inflation would enforce, since the state is then
/// a singleton end component whose exits are the remaining actions).
fn solved_state_pair(mdp: &Mdp, s: usize, reward: f64, opt: Opt, cur: &[(f64, f64)]) -> (f64, f64) {
    let mut best: Option<(f64, f64)> = None;
    for a in 0..mdp.action_count(s) {
        let mut stay = 0.0;
        let mut lo = reward;
        let mut hi = reward;
        for (c, p) in mdp.action_row(s, a) {
            if c as usize == s {
                stay += p;
            } else {
                let (l, h) = cur[c as usize];
                lo += p * l;
                hi += p * h;
            }
        }
        if stay >= 1.0 {
            continue;
        }
        let scale = 1.0 / (1.0 - stay);
        let cand = (lo * scale, hi * scale);
        best = Some(match best {
            None => cand,
            Some((bl, bh)) => (
                if opt.better(cand.0, bl) { cand.0 } else { bl },
                if opt.better(cand.1, bh) { cand.1 } else { bh },
            ),
        });
    }
    // Active states always have at least one mass-moving action (they reach
    // a target outside themselves), so this fallback is never taken.
    best.unwrap_or((0.0, 0.0))
}

/// Solves one non-trivial component in place: dual optimal backups
/// restricted to the component's active states (reading the freshest
/// values, Gauss–Seidel style), then the component-local end-component
/// correction, then a component-local width test. Returns the sweeps used.
///
/// In-place updates are sound for the same reason global sweeps are: the
/// optimal backup is monotone, so any read vector satisfying
/// `lo ≤ x* ≤ hi` pointwise produces an update that still satisfies it.
/// Convergence follows from the global drivers' by domination: a fresher
/// (already tighter) read can only tighten the update, so each in-place
/// sweep is bracketed by the corresponding Jacobi sweep and the truth.
#[allow(clippy::too_many_arguments)]
fn solve_component_certified(
    mdp: &Mdp,
    ci: u32,
    comp: &[u32],
    active: &BitVec,
    opt: Opt,
    rewards: Option<&[f64]>,
    ec: Option<(&EcIndex, &[usize], EcMode)>,
    cur: &mut [(f64, f64)],
    epsilon: f64,
    max_iter: usize,
) -> Result<usize, DtmcError> {
    for it in 1..=max_iter {
        for &s in comp {
            let s = s as usize;
            if !active.get(s) {
                continue;
            }
            let mut best_lo = 0.0;
            let mut best_hi = 0.0;
            for a in 0..mdp.action_count(s) {
                let mut acc_lo = 0.0;
                let mut acc_hi = 0.0;
                for (c, p) in mdp.action_row(s, a) {
                    let (l, h) = cur[c as usize];
                    acc_lo += p * l;
                    acc_hi += p * h;
                }
                if a == 0 || opt.better(acc_lo, best_lo) {
                    best_lo = acc_lo;
                }
                if a == 0 || opt.better(acc_hi, best_hi) {
                    best_hi = acc_hi;
                }
            }
            if let Some(r) = rewards {
                best_lo += r[s];
                best_hi += r[s];
            }
            cur[s] = (best_lo, best_hi);
        }
        if let Some((ecs, ids, mode)) = ec {
            for &k in ids {
                match mode {
                    EcMode::DeflateHi => {
                        let cap = ecs.best_exit(mdp, k, |c| cur[c].1, Opt::Max);
                        for &s in &ecs.members[k] {
                            let hi = &mut cur[s as usize].1;
                            *hi = hi.min(cap);
                        }
                    }
                    EcMode::InflateLo => {
                        let floor = ecs.best_exit(mdp, k, |c| cur[c].0, Opt::Min);
                        for &s in &ecs.members[k] {
                            let lo = &mut cur[s as usize].0;
                            *lo = lo.max(floor);
                        }
                    }
                }
            }
        }
        let width = comp
            .iter()
            .filter(|&&s| active.get(s as usize))
            .map(|&s| cur[s as usize].1 - cur[s as usize].0)
            .fold(0.0, f64::max);
        record_certified_sweep("topo_certified_vi", it, width, Some(ci));
        if width < epsilon {
            return Ok(it);
        }
    }
    Err(DtmcError::NoConvergence {
        iterations: max_iter,
        residual: epsilon,
    })
}

/// The shared level walk of the topological certified drivers: per DAG
/// level, backsubstitute all trivial active components as one pool batch,
/// then solve each non-trivial component to its local width target.
/// `vio.max_iter` bounds the sweeps of each individual component.
#[allow(clippy::too_many_arguments)]
fn topo_certified_driver(
    mdp: &Mdp,
    cond: &qual::Condensation,
    active: &BitVec,
    opt: Opt,
    rewards: Option<&[f64]>,
    ec: Option<(EcIndex, EcMode)>,
    cur: &mut [(f64, f64)],
    epsilon: f64,
    vio: &ViOptions,
) -> Result<usize, DtmcError> {
    // End components per condensation component (an EC never spans SCCs).
    let mut ec_by_comp: std::collections::BTreeMap<u32, Vec<usize>> =
        std::collections::BTreeMap::new();
    if let Some((ecs, _)) = &ec {
        for (k, members) in ecs.members.iter().enumerate() {
            ec_by_comp
                .entry(cond.comp_of()[members[0] as usize])
                .or_default()
                .push(k);
        }
    }
    let r_of = |i: usize| rewards.map_or(0.0, |r| r[i]);
    let mut iterations = 0usize;
    let mut batch: Vec<u32> = Vec::new();
    let mut nontrivial: Vec<u32> = Vec::new();
    let mut scratch: Vec<(f64, f64)> = Vec::new();
    for level in 0..cond.dag_depth() {
        batch.clear();
        nontrivial.clear();
        for &ci in cond.comps_at_level(level) {
            let comp = &cond.comps()[ci as usize];
            if let [s] = comp[..] {
                if active.get(s as usize) {
                    batch.push(s);
                }
            } else if comp.iter().any(|&s| active.get(s as usize)) {
                nontrivial.push(ci);
            }
        }
        if !batch.is_empty() {
            iterations += 1;
            scratch.clear();
            scratch.resize(batch.len(), (0.0, 0.0));
            let cur_ref: &[(f64, f64)] = cur;
            let batch_ref: &[u32] = &batch;
            let fill = |offset: usize, chunk: &mut [(f64, f64)]| {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let s = batch_ref[offset + j] as usize;
                    *slot = solved_state_pair(mdp, s, r_of(s), opt, cur_ref);
                }
            };
            if vio.parallelize(batch.len()) {
                let pool = vio.pool.unwrap_or_else(pool::global);
                pool.map_chunks_dynamic(&mut scratch, vio.chunk.max(1), &|offset, chunk| {
                    fill(offset, chunk);
                });
            } else {
                fill(0, &mut scratch);
            }
            for (&s, &pair) in batch.iter().zip(&scratch) {
                cur[s as usize] = pair;
            }
            record_certified_sweep("topo_certified_vi", iterations, 0.0, None);
        }
        for &ci in &nontrivial {
            let comp = &cond.comps()[ci as usize];
            let local = ec.as_ref().map(|(ecs, mode)| {
                let ids = ec_by_comp.get(&ci).map_or(&[] as &[usize], Vec::as_slice);
                (ecs, ids, *mode)
            });
            iterations += solve_component_certified(
                mdp,
                ci,
                comp,
                active,
                opt,
                rewards,
                local,
                cur,
                epsilon,
                vio.max_iter,
            )?;
        }
    }
    Ok(iterations)
}

/// Certified optimal probabilities of `lhs U rhs` by **topological**
/// interval iteration: the same bracket guarantee as
/// [`certified_until_values`] (`lo ≤ x* ≤ hi` with width below `epsilon`
/// everywhere), but solved one SCC at a time in reverse topological order,
/// so certified cost concentrates on the components that need iteration
/// while layered structure collapses to closed-form backsubstitution.
/// `vio.max_iter` bounds each component's sweeps, not the global total.
///
/// # Errors
///
/// As for [`certified_until_values`].
pub fn topo_certified_until_values(
    mdp: &Mdp,
    lhs: &BitVec,
    rhs: &BitVec,
    opt: Opt,
    epsilon: f64,
    vio: &ViOptions,
) -> Result<CertifiedValues, DtmcError> {
    check_len(mdp, lhs)?;
    check_len(mdp, rhs)?;
    let n = mdp.n_states();
    let zero = match opt {
        Opt::Max => qual::prob0_max(mdp, lhs, rhs),
        Opt::Min => qual::prob0_min(mdp, lhs, rhs),
    };
    let active = lhs.and(&rhs.not()).and(&zero.not());
    let ec = match opt {
        Opt::Max => Some((EcIndex::new(mdp, &active), EcMode::DeflateHi)),
        Opt::Min => None, // every end component has Pmin = 0 → pinned already
    };
    let mut cur: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            if rhs.get(i) {
                (1.0, 1.0)
            } else if active.get(i) {
                (0.0, 1.0)
            } else {
                (0.0, 0.0)
            }
        })
        .collect();
    let cond = qual::Condensation::new(mdp);
    let iterations =
        topo_certified_driver(mdp, &cond, &active, opt, None, ec, &mut cur, epsilon, vio)?;
    Ok(unzip_certificate(cur, iterations))
}

/// Certified optimal reachability `Pmin`/`Pmax` `[F target]` by
/// topological interval iteration — [`topo_certified_until_values`] with
/// an unrestricted left operand.
///
/// # Errors
///
/// As for [`certified_until_values`].
pub fn topo_certified_reach_values(
    mdp: &Mdp,
    target: &BitVec,
    opt: Opt,
    epsilon: f64,
    vio: &ViOptions,
) -> Result<CertifiedValues, DtmcError> {
    let all = BitVec::ones(mdp.n_states());
    topo_certified_until_values(mdp, &all, target, opt, epsilon, vio)
}

/// Certified optimal expected reachability reward by topological interval
/// iteration: the qualitative pre-passes, seeds, and end-component
/// corrections of [`certified_reach_reward_values`], solved one SCC at a
/// time (inflation of zero-reward components stays component-local, since
/// an end component never spans SCCs).
///
/// # Errors
///
/// As for [`certified_reach_reward_values`].
pub fn topo_certified_reach_reward_values(
    mdp: &Mdp,
    target: &BitVec,
    opt: Opt,
    epsilon: f64,
    vio: &ViOptions,
) -> Result<CertifiedValues, DtmcError> {
    check_len(mdp, target)?;
    let n = mdp.n_states();
    let all = BitVec::ones(n);
    let certain = match opt {
        Opt::Max => qual::prob1_min(mdp, &all, target),
        Opt::Min => qual::prob1_max(mdp, &all, target),
    };
    let active = certain.and(&target.not());
    let rewards = mdp.rewards();
    let r_max = active.iter_ones().map(|i| rewards[i]).fold(0.0, f64::max);
    let seed: Vec<f64> = match opt {
        Opt::Max => {
            let bound = if r_max == 0.0 {
                0.0
            } else {
                let (k, delta) = min_hitting_probe(mdp, target, &active, vio)?;
                k as f64 * r_max / delta
            };
            vec![bound; n]
        }
        Opt::Min => {
            let sched = qual::proper_scheduler(mdp, &all, target);
            let chain = mdp.induced_dtmc(&sched)?;
            smg_dtmc::solve::topo_interval_reach_reward_values(
                &chain,
                target,
                epsilon,
                vio.max_iter,
            )?
            .hi
        }
    };
    let ec = match opt {
        Opt::Min => {
            let zero_reward = BitVec::from_fn(n, |i| active.get(i) && rewards[i] == 0.0);
            Some((EcIndex::new(mdp, &zero_reward), EcMode::InflateLo))
        }
        Opt::Max => None, // no end components survive inside a Pmin = 1 region
    };
    let mut cur: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            if active.get(i) {
                (0.0, seed[i])
            } else if certain.get(i) {
                (0.0, 0.0)
            } else {
                (f64::INFINITY, f64::INFINITY)
            }
        })
        .collect();
    let cond = qual::Condensation::new(mdp);
    let iterations = topo_certified_driver(
        mdp,
        &cond,
        &active,
        opt,
        Some(rewards),
        ec,
        &mut cur,
        epsilon,
        vio,
    )?;
    Ok(unzip_certificate(cur, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;
    use std::collections::BTreeMap;

    /// 0 chooses: action 0 = fair coin between goal(1)/bad(2); action 1 =
    /// biased 0.1 goal / 0.9 bad. Goal and bad absorb.
    fn tiny() -> Mdp {
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(1, 0.5), (2, 0.5)]).unwrap();
        b.push_action(&mut [(1, 0.1), (2, 0.9)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("goal".to_string(), BitVec::from_fn(3, |i| i == 1));
        Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![1.0, 0.0, 0.0]).unwrap()
    }

    #[test]
    fn opt_helpers() {
        assert!(Opt::Max.better(1.0, 0.5));
        assert!(!Opt::Max.better(0.5, 0.5));
        assert!(Opt::Min.better(0.4, 0.5));
        assert_eq!(Opt::Min.dual(), Opt::Max);
        assert_eq!(Opt::Max.to_string(), "max");
    }

    #[test]
    fn min_max_reach_on_tiny() {
        let m = tiny();
        let goal = m.label("goal").unwrap().clone();
        let vio = ViOptions::default();
        let max = reach_values(&m, &goal, Opt::Max, &vio).unwrap();
        let min = reach_values(&m, &goal, Opt::Min, &vio).unwrap();
        assert!((max[0] - 0.5).abs() < 1e-9, "Pmax = {}", max[0]);
        assert!((min[0] - 0.1).abs() < 1e-9, "Pmin = {}", min[0]);
        assert_eq!((max[1], min[1]), (1.0, 1.0));
        assert_eq!((max[2], min[2]), (0.0, 0.0));
        // Bounded with a generous horizon agrees.
        let all = BitVec::ones(3);
        let bmax = bounded_until_values(&m, &all, &goal, 50, Opt::Max, &vio).unwrap();
        assert!((bmax[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn extremal_scheduler_picks_the_optimal_action() {
        let m = tiny();
        let goal = m.label("goal").unwrap().clone();
        let vio = ViOptions::default();
        let max_vals = reach_values(&m, &goal, Opt::Max, &vio).unwrap();
        let min_vals = reach_values(&m, &goal, Opt::Min, &vio).unwrap();
        assert_eq!(
            extremal_scheduler(&m, &max_vals, Opt::Max, Some(&goal))[0],
            0
        );
        assert_eq!(extremal_scheduler(&m, &min_vals, Opt::Min, None)[0], 1);
        // The induced chains reproduce the optimal values exactly.
        let d = m
            .induced_dtmc(&extremal_scheduler(&m, &max_vals, Opt::Max, Some(&goal)))
            .unwrap();
        let v = smg_dtmc::transient::unbounded_reach_values(&d, &goal, 1e-12, 100_000).unwrap();
        assert!((v[0] - max_vals[0]).abs() < 1e-9);
    }

    #[test]
    fn max_scheduler_extraction_breaks_value_preserving_cycles() {
        // State 0: action 0 self-loops (backup = own value, a tie), action
        // 1 moves to goal with probability 1. Greedy tie-breaking toward
        // action 0 would induce a chain that never reaches goal; the
        // attractor repair must pick action 1.
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(0, 1.0)]).unwrap();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("goal".to_string(), BitVec::from_fn(2, |i| i == 1));
        let m = Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![0.0, 0.0]).unwrap();
        let goal = m.label("goal").unwrap().clone();
        let vio = ViOptions::default();
        let vals = reach_values(&m, &goal, Opt::Max, &vio).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-9);
        let sched = extremal_scheduler(&m, &vals, Opt::Max, Some(&goal));
        assert_eq!(sched[0], 1, "must escape the value-preserving self-loop");
        let d = m.induced_dtmc(&sched).unwrap();
        let v = smg_dtmc::transient::unbounded_reach_values(&d, &goal, 1e-12, 100_000).unwrap();
        assert!((v[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reward_queries_on_tiny() {
        let m = tiny();
        let vio = ViOptions::default();
        // Reward 1 only in state 0 (transient): instantaneous reward at
        // step 0 is 1, at any later step 0 under both opts.
        let i0 = instantaneous_reward_values(&m, 0, Opt::Max, &vio);
        assert_eq!(i0[0], 1.0);
        let i3 = instantaneous_reward_values(&m, 3, Opt::Max, &vio);
        assert_eq!(i3[0], 0.0);
        // Cumulative over t steps from state 0: exactly one visit to 0.
        let c5 = cumulative_reward_values(&m, 5, Opt::Min, &vio);
        assert!((c5[0] - 1.0).abs() < 1e-12);
        assert_eq!(c5[1], 0.0);
    }

    #[test]
    fn reach_rewards_and_infinity() {
        let m = tiny();
        let goal = m.label("goal").unwrap().clone();
        let vio = ViOptions::default();
        // Rmin/Rmax to reach goal: bad (state 2) never reaches → ∞ from 0
        // too, since every action risks ending in bad.
        let rmax = reach_reward_values(&m, &goal, Opt::Max, &vio).unwrap();
        assert_eq!(rmax[0], f64::INFINITY);
        assert_eq!(rmax[2], f64::INFINITY);
        assert_eq!(rmax[1], 0.0);
        // Reaching goal | bad is certain in one step; reward 1 accrues in
        // state 0 only.
        let either = BitVec::from_fn(3, |i| i > 0);
        let r = reach_reward_values(&m, &either, Opt::Min, &vio).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-9);
        assert_eq!(r[1], 0.0);
    }

    #[test]
    fn rmin_is_not_fooled_by_zero_reward_cycles() {
        // States 0 <-> 1 form a zero-reward cycle; each also has an exit
        // action to state 2 (reward 10), which steps to the target 3.
        // A minimizer stalling on the cycle never reaches the target —
        // semantically an ∞-reward path — so the true Rmin is 10, the cost
        // of the cheapest *proper* scheduler. Value iteration from zero
        // would report 0 (the stall costs nothing per Bellman step); the
        // proper-seeded descent must not.
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(1, 1.0)]).unwrap(); // 0: loop to 1
        b.push_action(&mut [(2, 1.0)]).unwrap(); // 0: exit
        b.finish_state().unwrap();
        b.push_action(&mut [(0, 1.0)]).unwrap(); // 1: loop to 0
        b.push_action(&mut [(2, 1.0)]).unwrap(); // 1: exit
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 1.0)]).unwrap(); // 2: to target
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 1.0)]).unwrap(); // 3: absorbing target
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("t".to_string(), BitVec::from_fn(4, |i| i == 3));
        let m = Mdp::new(
            b.finish(),
            vec![(0, 1.0)],
            labels,
            vec![0.0, 0.0, 10.0, 0.0],
        )
        .unwrap();
        let target = m.label("t").unwrap().clone();
        let vio = ViOptions::default();
        let rmin = reach_reward_values(&m, &target, Opt::Min, &vio).unwrap();
        assert!((rmin[0] - 10.0).abs() < 1e-9, "Rmin[0] = {}", rmin[0]);
        assert!((rmin[1] - 10.0).abs() < 1e-9, "Rmin[1] = {}", rmin[1]);
        assert!((rmin[2] - 10.0).abs() < 1e-9);
        assert_eq!(rmin[3], 0.0);
        // Rmax here: the maximizer could also stall forever — but a
        // stalling path never reaches the target, so Rmax is ∞ exactly
        // when Pmin < 1, which the qualitative pre-pass reports.
        let rmax = reach_reward_values(&m, &target, Opt::Max, &vio).unwrap();
        assert_eq!(rmax[0], f64::INFINITY);
    }

    #[test]
    fn certified_reach_brackets_tiny() {
        let m = tiny();
        let goal = m.label("goal").unwrap().clone();
        let vio = ViOptions::default();
        let eps = 1e-9;
        for (opt, want) in [(Opt::Max, 0.5), (Opt::Min, 0.1)] {
            let cert = certified_reach_values(&m, &goal, opt, eps, &vio).unwrap();
            assert!(cert.width() < eps, "{opt:?}");
            assert!(
                cert.lo[0] <= want && want <= cert.hi[0],
                "{opt:?}: [{}, {}] vs {want}",
                cert.lo[0],
                cert.hi[0]
            );
            // Pinned states are exact.
            assert_eq!((cert.lo[1], cert.hi[1]), (1.0, 1.0));
            assert_eq!((cert.lo[2], cert.hi[2]), (0.0, 0.0));
        }
    }

    #[test]
    fn certified_pmax_deflates_value_preserving_loops() {
        // 0: action 0 self-loops (an end component), action 1 risks
        // {goal: ½, sink: ½}. Pmax = ½, but a plain upper iterate from 1
        // is a fixpoint of the backup (the self-loop preserves it), so
        // only deflation lets the certificate close.
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(0, 1.0)]).unwrap();
        b.push_action(&mut [(1, 0.5), (2, 0.5)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("goal".to_string(), BitVec::from_fn(3, |i| i == 1));
        let m = Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![0.0; 3]).unwrap();
        let goal = m.label("goal").unwrap().clone();
        let vio = ViOptions::default();
        let eps = 1e-9;
        let cert = certified_reach_values(&m, &goal, Opt::Max, eps, &vio).unwrap();
        assert!(cert.width() < eps);
        assert!(
            cert.lo[0] <= 0.5 && 0.5 <= cert.hi[0] && cert.hi[0] < 0.5 + eps,
            "[{}, {}]",
            cert.lo[0],
            cert.hi[0]
        );
        // Pmin = 0 is pinned qualitatively (stall forever).
        let cert = certified_reach_values(&m, &goal, Opt::Min, eps, &vio).unwrap();
        assert_eq!((cert.lo[0], cert.hi[0]), (0.0, 0.0));
    }

    #[test]
    fn certified_until_respects_lhs() {
        let m = tiny();
        let goal = m.label("goal").unwrap().clone();
        // lhs excludes state 0 → goal unreachable from 0 through lhs.
        let lhs = BitVec::from_fn(3, |i| i != 0);
        let vio = ViOptions::default();
        let cert = certified_until_values(&m, &lhs, &goal, Opt::Max, 1e-9, &vio).unwrap();
        assert_eq!((cert.lo[0], cert.hi[0]), (0.0, 0.0));
    }

    #[test]
    fn certified_rewards_bracket_tiny_and_infinity() {
        let m = tiny();
        let goal = m.label("goal").unwrap().clone();
        let vio = ViOptions::default();
        let eps = 1e-9;
        // Reaching goal alone is uncertain from 0 → ∞ under both opts.
        for opt in [Opt::Max, Opt::Min] {
            let cert = certified_reach_reward_values(&m, &goal, opt, eps, &vio).unwrap();
            assert_eq!((cert.lo[0], cert.hi[0]), (f64::INFINITY, f64::INFINITY));
            assert_eq!((cert.lo[1], cert.hi[1]), (0.0, 0.0));
            assert!(cert.width() < eps);
        }
        // goal | bad is reached in one certain step; reward 1 accrues at 0.
        let either = BitVec::from_fn(3, |i| i > 0);
        for opt in [Opt::Max, Opt::Min] {
            let cert = certified_reach_reward_values(&m, &either, opt, eps, &vio).unwrap();
            assert!(cert.width() < eps);
            assert!(
                cert.lo[0] <= 1.0 && 1.0 <= cert.hi[0],
                "{opt:?}: [{}, {}]",
                cert.lo[0],
                cert.hi[0]
            );
        }
    }

    #[test]
    fn certified_rmin_inflates_zero_reward_cycles() {
        // Same model as `rmin_is_not_fooled_by_zero_reward_cycles`: the
        // 0 ↔ 1 zero-reward cycle would hold a plain lower iterate at 0
        // forever; inflation must lift it to the true Rmin = 10 and the
        // certificate must close around it.
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(0, 1.0)]).unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("t".to_string(), BitVec::from_fn(4, |i| i == 3));
        let m = Mdp::new(
            b.finish(),
            vec![(0, 1.0)],
            labels,
            vec![0.0, 0.0, 10.0, 0.0],
        )
        .unwrap();
        let target = m.label("t").unwrap().clone();
        let vio = ViOptions::default();
        let eps = 1e-9;
        let cert = certified_reach_reward_values(&m, &target, Opt::Min, eps, &vio).unwrap();
        assert!(cert.width() < eps);
        for s in [0usize, 1, 2] {
            assert!(
                cert.lo[s] <= 10.0 + 1e-12 && 10.0 <= cert.hi[s] + 1e-12,
                "state {s}: [{}, {}]",
                cert.lo[s],
                cert.hi[s]
            );
        }
        // Rmax is ∞ (the maximizer can stall, so Pmin < 1).
        let cert = certified_reach_reward_values(&m, &target, Opt::Max, eps, &vio).unwrap();
        assert_eq!((cert.lo[0], cert.hi[0]), (f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn topo_certified_matches_global_on_tiny() {
        let m = tiny();
        let goal = m.label("goal").unwrap().clone();
        let vio = ViOptions::default();
        let eps = 1e-9;
        for (opt, want) in [(Opt::Max, 0.5), (Opt::Min, 0.1)] {
            let topo = topo_certified_reach_values(&m, &goal, opt, eps, &vio).unwrap();
            let glob = certified_reach_values(&m, &goal, opt, eps, &vio).unwrap();
            assert!(topo.width() < eps, "{opt:?}");
            assert!(
                topo.lo[0] <= want && want <= topo.hi[0],
                "{opt:?}: [{}, {}] vs {want}",
                topo.lo[0],
                topo.hi[0]
            );
            for i in 0..3 {
                assert!(
                    (topo.midpoints()[i] - glob.midpoints()[i]).abs() < eps,
                    "{opt:?} state {i}"
                );
            }
            // All-trivial SCC structure: the whole query is backsubstitution.
            assert_eq!((topo.lo[1], topo.hi[1]), (1.0, 1.0));
            assert_eq!((topo.lo[2], topo.hi[2]), (0.0, 0.0));
        }
    }

    #[test]
    fn topo_certified_handles_end_components() {
        // The deflation model: 0 self-loops (singleton EC) or risks ½/½.
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(0, 1.0)]).unwrap();
        b.push_action(&mut [(1, 0.5), (2, 0.5)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("goal".to_string(), BitVec::from_fn(3, |i| i == 1));
        let m = Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![0.0; 3]).unwrap();
        let goal = m.label("goal").unwrap().clone();
        let vio = ViOptions::default();
        let eps = 1e-9;
        let cert = topo_certified_reach_values(&m, &goal, Opt::Max, eps, &vio).unwrap();
        assert!(cert.width() < eps);
        assert!(
            cert.lo[0] <= 0.5 && 0.5 <= cert.hi[0] && cert.hi[0] < 0.5 + eps,
            "[{}, {}]",
            cert.lo[0],
            cert.hi[0]
        );
    }

    #[test]
    fn topo_certified_rmin_inflates_zero_reward_cycles() {
        // The 0 ↔ 1 zero-reward cycle is a non-trivial SCC *and* an EC;
        // component-local inflation must lift the bracket to Rmin = 10.
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(1, 1.0)]).unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(0, 1.0)]).unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("t".to_string(), BitVec::from_fn(4, |i| i == 3));
        let m = Mdp::new(
            b.finish(),
            vec![(0, 1.0)],
            labels,
            vec![0.0, 0.0, 10.0, 0.0],
        )
        .unwrap();
        let target = m.label("t").unwrap().clone();
        let vio = ViOptions::default();
        let eps = 1e-9;
        let cert = topo_certified_reach_reward_values(&m, &target, Opt::Min, eps, &vio).unwrap();
        assert!(cert.width() < eps);
        for s in [0usize, 1, 2] {
            assert!(
                cert.lo[s] <= 10.0 + 1e-12 && 10.0 <= cert.hi[s] + 1e-12,
                "state {s}: [{}, {}]",
                cert.lo[s],
                cert.hi[s]
            );
        }
        // Rmax stays exactly ∞ outside the certain region.
        let cert = topo_certified_reach_reward_values(&m, &target, Opt::Max, eps, &vio).unwrap();
        assert_eq!((cert.lo[0], cert.hi[0]), (f64::INFINITY, f64::INFINITY));
        // Rmax of goal|either-style certain queries still brackets.
        let m2 = tiny();
        let either = BitVec::from_fn(3, |i| i > 0);
        for opt in [Opt::Max, Opt::Min] {
            let cert = topo_certified_reach_reward_values(&m2, &either, opt, eps, &vio).unwrap();
            assert!(cert.width() < eps);
            assert!(cert.lo[0] <= 1.0 && 1.0 <= cert.hi[0], "{opt:?}");
        }
    }

    #[test]
    fn topo_certified_deep_chain_is_stack_safe_and_exact() {
        // A 10k-deep single-action chain: forces one trivial SCC per state
        // through the full topological machinery.
        let depth = 10_000u32;
        let mut b = MdpBuilder::default();
        for s in 0..depth {
            b.push_action(&mut [(s + 1, 1.0)]).unwrap();
            b.finish_state().unwrap();
        }
        b.push_action(&mut [(depth, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let n = depth as usize + 1;
        let mut labels = BTreeMap::new();
        labels.insert("end".to_string(), BitVec::from_fn(n, |i| i == n - 1));
        let m = Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![1.0; n]).unwrap();
        let end = m.label("end").unwrap().clone();
        let vio = ViOptions::default();
        for opt in [Opt::Min, Opt::Max] {
            let cert = topo_certified_reach_values(&m, &end, opt, 1e-9, &vio).unwrap();
            assert!(cert.width() < 1e-9);
            assert!((cert.midpoints()[0] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn certified_parallel_path_is_bit_identical() {
        let m = tiny();
        let goal = m.label("goal").unwrap().clone();
        let seq = ViOptions::default().with_par_min_states(usize::MAX);
        let par = ViOptions {
            chunk: 1,
            ..ViOptions::default().with_par_min_states(0)
        };
        for opt in [Opt::Min, Opt::Max] {
            let a = certified_reach_values(&m, &goal, opt, 1e-10, &seq).unwrap();
            let b = certified_reach_values(&m, &goal, opt, 1e-10, &par).unwrap();
            assert_eq!((a.lo, a.hi), (b.lo, b.hi));
        }
    }

    #[test]
    fn forced_parallel_path_is_bit_identical() {
        let m = tiny();
        let goal = m.label("goal").unwrap().clone();
        let seq = ViOptions::default().with_par_min_states(usize::MAX);
        let par = ViOptions {
            chunk: 1,
            ..ViOptions::default().with_par_min_states(0)
        };
        for opt in [Opt::Min, Opt::Max] {
            assert_eq!(
                reach_values(&m, &goal, opt, &seq).unwrap(),
                reach_values(&m, &goal, opt, &par).unwrap()
            );
        }
    }
}
