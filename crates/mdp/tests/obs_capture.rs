//! Capture-recorder coverage of the instrumented MDP value-iteration
//! drivers: plain VI streams residual records, the certified variants
//! stream width records that end below the requested ε (the ISSUE's
//! acceptance bar for certified solves), and sweeps counted through
//! `smg_solve_sweeps_total` always equal the traced record count.

use smg_dtmc::BitVec;
use smg_mdp::{vi, Mdp, MdpBuilder, Opt, ViOptions};
use smg_obs as obs;
use std::collections::BTreeMap;
use std::sync::Arc;

/// State 0 chooses between a lazy coin flip (self/goal) and a risky jump
/// (0.1 goal / 0.9 bad); 1 ("goal") and 2 ("bad") absorb. Pmax(F goal)
/// from 0 is 1, Pmin is 0.1.
fn tiny() -> Mdp {
    let mut b = MdpBuilder::default();
    b.push_action(&mut [(0, 0.5), (1, 0.5)]).unwrap();
    b.push_action(&mut [(1, 0.1), (2, 0.9)]).unwrap();
    b.finish_state().unwrap();
    b.push_action(&mut [(1, 1.0)]).unwrap();
    b.finish_state().unwrap();
    b.push_action(&mut [(2, 1.0)]).unwrap();
    b.finish_state().unwrap();
    let mut labels = BTreeMap::new();
    labels.insert("goal".to_string(), BitVec::from_fn(3, |i| i == 1));
    labels.insert("bad".to_string(), BitVec::from_fn(3, |i| i == 2));
    Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![0.0, 1.0, 0.0]).unwrap()
}

fn captured<R>(f: impl FnOnce() -> R) -> (Arc<obs::Capture>, R) {
    let cap = Arc::new(obs::Capture::new());
    let out = obs::with_recorder(cap.clone(), f);
    (cap, out)
}

#[test]
fn vi_driver_emits_one_record_per_sweep() {
    let m = tiny();
    let goal = m.label("goal").unwrap().clone();
    let vio = ViOptions::default();
    let (cap, values) = captured(|| vi::reach_values(&m, &goal, Opt::Max, &vio).unwrap());
    assert!((values[0] - 1.0).abs() < 1e-9);
    let traces = cap.traces_for("vi");
    assert!(!traces.is_empty());
    assert_eq!(
        cap.counter_with("smg_solve_sweeps_total", "vi"),
        traces.len() as u64
    );
    let last = traces.last().unwrap();
    assert_eq!(last.sweep as usize, traces.len(), "sweeps are 1-based");
    assert!(last.residual.unwrap() <= vio.tol, "{last:?}");
    assert!(last.width.is_none());
}

#[test]
fn certified_vi_emits_records_ending_below_epsilon() {
    let m = tiny();
    let goal = m.label("goal").unwrap().clone();
    let eps = 1e-9;
    let (cap, certified) = captured(|| {
        vi::certified_reach_values(&m, &goal, Opt::Min, eps, &ViOptions::default()).unwrap()
    });
    assert!((certified.lo[0] - 0.1).abs() < 1e-6);
    let traces = cap.traces_for("certified_vi");
    assert!(!traces.is_empty(), "certified solve must stream records");
    assert_eq!(
        cap.counter_with("smg_solve_sweeps_total", "certified_vi"),
        traces.len() as u64
    );
    let last = traces.last().unwrap();
    assert!(last.width.unwrap() < eps, "{last:?}");
    assert!(last.residual.is_none());
    assert!(certified.hi[0] - certified.lo[0] < eps);
}

#[test]
fn topo_certified_vi_emits_records_ending_below_epsilon() {
    let m = tiny();
    let goal = m.label("goal").unwrap().clone();
    let eps = 1e-9;
    let (cap, certified) = captured(|| {
        vi::topo_certified_reach_values(&m, &goal, Opt::Max, eps, &ViOptions::default()).unwrap()
    });
    assert!((certified.hi[0] - 1.0).abs() < 1e-6);
    let traces = cap.traces_for("topo_certified_vi");
    assert!(!traces.is_empty());
    assert_eq!(
        cap.counter_with("smg_solve_sweeps_total", "topo_certified_vi"),
        traces.len() as u64
    );
    assert!(traces.last().unwrap().width.unwrap() < eps);
}

#[test]
fn no_recorder_means_identical_results() {
    let m = tiny();
    let goal = m.label("goal").unwrap().clone();
    let vio = ViOptions::default();
    let plain = vi::certified_reach_values(&m, &goal, Opt::Min, 1e-9, &vio).unwrap();
    let (_cap, recorded) =
        captured(|| vi::certified_reach_values(&m, &goal, Opt::Min, 1e-9, &vio).unwrap());
    assert_eq!(plain.lo, recorded.lo, "recording must not change results");
    assert_eq!(plain.hi, recorded.hi);
    assert_eq!(plain.iterations, recorded.iterations);
}
