//! Pins the min/max value-iteration engine two independent ways:
//!
//! 1. **Against the theory** — on tiny random MDPs, `Pmin`/`Pmax`
//!    unbounded reachability must equal the min/max over *every*
//!    memoryless deterministic scheduler, computed by exhaustively
//!    enumerating the schedulers and solving each induced DTMC with the
//!    (independently tested) DTMC engine. Memoryless schedulers are
//!    optimal for unbounded reachability, so the enumeration is exact.
//! 2. **Against itself** — the parallel Bellman backup (dynamic chunks on
//!    the worker pool) must be **bit-identical** to the sequential
//!    fallback for every pool lane count (1, 2, 4, and the global pool)
//!    and chunk geometry.
//!
//! This file is its own process, so `SMG_THREADS` is pinned before the
//! engine's `OnceLock`s are read and the global pool really runs 4
//! workers; the CI matrix re-runs the whole suite under `SMG_THREADS=1`,
//! covering the degenerate inline path as well.

use proptest::prelude::*;
use smg_dtmc::{pool, BitVec, ExploreOptions};
use smg_mdp::{explore, vi, Mdp, MdpModel, Opt, ViOptions};

/// Sets `SMG_THREADS=4` exactly once, before any engine `OnceLock` is
/// read (same discipline as `smg-dtmc/tests/sharded_explore.rs`).
fn init_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("SMG_THREADS", "4"));
}

/// Dedicated pools with 1, 2 and 4 lanes (created once; pool workers are
/// persistent). Together with the 4-lane global pool these drive the
/// parallel backup at every thread count the acceptance criteria name.
fn lane_pools() -> &'static [&'static pool::Pool; 3] {
    static POOLS: std::sync::OnceLock<[&'static pool::Pool; 3]> = std::sync::OnceLock::new();
    POOLS.get_or_init(|| {
        [
            pool::with_lanes(1),
            pool::with_lanes(2),
            pool::with_lanes(4),
        ]
    })
}

/// A deterministic pseudo-random MDP: `n` states, 1–3 actions each, 1–3
/// successors per action (duplicates and self-loops included), with the
/// last state absorbing and labelled "target".
#[derive(Debug, Clone)]
struct RandomMdp {
    n: u32,
    seed: u64,
}

impl RandomMdp {
    fn mix(&self, a: u64, b: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(b << 24);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

impl MdpModel for RandomMdp {
    type State = u32;

    fn initial_states(&self) -> Vec<(u32, f64)> {
        vec![(0, 1.0)]
    }

    fn actions(&self, &s: &u32) -> Vec<Vec<(u32, f64)>> {
        if s == self.n - 1 {
            return vec![vec![(s, 1.0)]]; // absorbing target
        }
        let n_actions = 1 + (self.mix(s.into(), 0) % 3) as usize;
        (0..n_actions)
            .map(|a| {
                let fan = 1 + (self.mix(s.into(), 1 + a as u64) % 3) as usize;
                let mut succ = Vec::with_capacity(fan);
                let mut weights = Vec::with_capacity(fan);
                for k in 0..fan {
                    let t =
                        (self.mix(s.into(), (10 + a * 7 + k) as u64) % u64::from(self.n)) as u32;
                    succ.push(t);
                    weights.push(1 + self.mix(t.into(), k as u64) % 8);
                }
                let total: u64 = weights.iter().sum();
                succ.into_iter()
                    .zip(weights)
                    .map(|(t, w)| (t, w as f64 / total as f64))
                    .collect()
            })
            .collect()
    }

    fn atomic_propositions(&self) -> Vec<&'static str> {
        vec!["target"]
    }

    fn holds(&self, ap: &str, &s: &u32) -> bool {
        ap == "target" && s == self.n - 1
    }

    fn state_reward(&self, &s: &u32) -> f64 {
        f64::from(s % 4)
    }
}

fn explore_mdp(n: u32, seed: u64) -> Mdp {
    explore(&RandomMdp { n, seed }, &ExploreOptions::default())
        .expect("random MDP explores")
        .mdp
}

/// Enumerates every memoryless deterministic scheduler (odometer over the
/// per-state action counts) and returns the per-state min and max of the
/// induced DTMCs' reachability values.
fn enumerate_schedulers(mdp: &Mdp, target: &BitVec) -> (Vec<f64>, Vec<f64>) {
    let n = mdp.n_states();
    let mut sched = vec![0u32; n];
    let mut min = vec![f64::INFINITY; n];
    let mut max = vec![f64::NEG_INFINITY; n];
    loop {
        let d = mdp.induced_dtmc(&sched).expect("valid scheduler");
        let vals =
            smg_dtmc::transient::unbounded_reach_values(&d, target, 1e-13, 1_000_000).unwrap();
        for i in 0..n {
            min[i] = min[i].min(vals[i]);
            max[i] = max[i].max(vals[i]);
        }
        // Odometer.
        let mut k = n;
        loop {
            if k == 0 {
                return (min, max);
            }
            k -= 1;
            sched[k] += 1;
            if (sched[k] as usize) < mdp.action_count(k) {
                break;
            }
            sched[k] = 0;
        }
    }
}

/// The per-state min and max *expected reachability reward* over every
/// memoryless deterministic scheduler, each induced chain solved by the
/// DTMC engine's own certified interval solver (pinned independently
/// against dense linear-system elimination in `smg-dtmc`'s test suite).
/// Improper schedulers contribute `∞`, matching PRISM's reward semantics.
fn enumerate_scheduler_rewards(mdp: &Mdp, target: &BitVec) -> (Vec<f64>, Vec<f64>) {
    let n = mdp.n_states();
    let mut sched = vec![0u32; n];
    let mut min = vec![f64::INFINITY; n];
    let mut max = vec![f64::NEG_INFINITY; n];
    loop {
        let d = mdp.induced_dtmc(&sched).expect("valid scheduler");
        // ε leaves headroom above the f64 rounding floor: expected rewards
        // on these chains can reach ~1e5, where a 1e-11 width is not
        // representably closable.
        let vals = smg_dtmc::solve::interval_reach_reward_values(&d, target, 1e-9, 10_000_000)
            .unwrap()
            .midpoints();
        for i in 0..n {
            min[i] = min[i].min(vals[i]);
            max[i] = max[i].max(vals[i]);
        }
        let mut k = n;
        loop {
            if k == 0 {
                return (min, max);
            }
            k -= 1;
            sched[k] += 1;
            if (sched[k] as usize) < mdp.action_count(k) {
                break;
            }
            sched[k] = 0;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Pmin/Pmax unbounded reachability equals the exhaustive
    /// memoryless-scheduler envelope (memoryless schedulers are optimal
    /// for unbounded reachability).
    #[test]
    fn value_iteration_matches_scheduler_enumeration(
        n in 2u32..6,
        seed in 0u64..u64::MAX,
    ) {
        init_env();
        let mdp = explore_mdp(n, seed);
        let target = mdp.label("target").unwrap().clone();
        let vio = ViOptions::default();
        let vmin = vi::reach_values(&mdp, &target, Opt::Min, &vio).unwrap();
        let vmax = vi::reach_values(&mdp, &target, Opt::Max, &vio).unwrap();
        let (emin, emax) = enumerate_schedulers(&mdp, &target);
        for s in 0..mdp.n_states() {
            prop_assert!(
                (vmin[s] - emin[s]).abs() < 1e-6,
                "state {s}: Pmin VI {} vs enumeration {} (n={n}, seed={seed:#x})",
                vmin[s], emin[s]
            );
            prop_assert!(
                (vmax[s] - emax[s]).abs() < 1e-6,
                "state {s}: Pmax VI {} vs enumeration {} (n={n}, seed={seed:#x})",
                vmax[s], emax[s]
            );
        }
        // The extracted extremal schedulers attain the optima.
        for (opt, expect) in [(Opt::Min, &vmin), (Opt::Max, &vmax)] {
            let sched = vi::extremal_scheduler(&mdp, expect, opt, Some(&target));
            let d = mdp.induced_dtmc(&sched).unwrap();
            let vals = smg_dtmc::transient::unbounded_reach_values(&d, &target, 1e-13, 1_000_000)
                .unwrap();
            for s in 0..mdp.n_states() {
                prop_assert!(
                    (vals[s] - expect[s]).abs() < 1e-6,
                    "state {s}: induced {} vs optimal {} ({opt:?})",
                    vals[s], expect[s]
                );
            }
        }
    }

    /// The certified intervals bracket the exhaustive memoryless-scheduler
    /// envelope with width below ε, for all four `Pmin`/`Pmax`/`Rmin`/
    /// `Rmax` forms — including exact agreement of the qualitative `∞`
    /// region with the enumeration's improper-scheduler analysis.
    #[test]
    fn certified_intervals_bracket_scheduler_enumeration(
        n in 2u32..6,
        seed in 0u64..u64::MAX,
    ) {
        init_env();
        let mdp = explore_mdp(n, seed);
        let target = mdp.label("target").unwrap().clone();
        let vio = ViOptions::default();
        let eps = 1e-7;
        let (emin, emax) = enumerate_schedulers(&mdp, &target);
        for (opt, envelope) in [(Opt::Min, &emin), (Opt::Max, &emax)] {
            let cert = vi::certified_reach_values(&mdp, &target, opt, eps, &vio).unwrap();
            prop_assert!(cert.width() < eps, "{opt:?} width {}", cert.width());
            for (s, &env) in envelope.iter().enumerate() {
                prop_assert!(
                    cert.lo[s] - 1e-9 <= env && env <= cert.hi[s] + 1e-9,
                    "state {s}: P{opt} {} outside [{}, {}] (n={n}, seed={seed:#x})",
                    env, cert.lo[s], cert.hi[s]
                );
            }
        }
        let (rmin, rmax) = enumerate_scheduler_rewards(&mdp, &target);
        for (opt, envelope) in [(Opt::Min, &rmin), (Opt::Max, &rmax)] {
            let cert = vi::certified_reach_reward_values(&mdp, &target, opt, eps, &vio).unwrap();
            prop_assert!(cert.width() < eps, "{opt:?} width {}", cert.width());
            for (s, &env) in envelope.iter().enumerate() {
                if env.is_infinite() {
                    prop_assert_eq!(cert.lo[s], f64::INFINITY, "state {} (R{:?})", s, opt);
                } else {
                    let slack = 1e-6 * (1.0 + env.abs());
                    prop_assert!(
                        cert.lo[s] - slack <= env && env <= cert.hi[s] + slack,
                        "state {s}: R{opt} {} outside [{}, {}] (n={n}, seed={seed:#x})",
                        env, cert.lo[s], cert.hi[s]
                    );
                }
            }
        }
    }

    /// Topological (SCC-ordered) certified solving agrees with global
    /// certified interval iteration on random MDPs: both brackets are
    /// ε-wide, overlap, and bracket the exhaustive scheduler envelope —
    /// for probabilities and rewards (∞ regions pinned identically), in
    /// both optimization directions.
    #[test]
    fn topological_certified_matches_global_on_random_mdps(
        n in 2u32..6,
        seed in 0u64..u64::MAX,
    ) {
        init_env();
        let mdp = explore_mdp(n, seed);
        let target = mdp.label("target").unwrap().clone();
        let vio = ViOptions::default();
        let eps = 1e-7;
        let (emin, emax) = enumerate_schedulers(&mdp, &target);
        for (opt, envelope) in [(Opt::Min, &emin), (Opt::Max, &emax)] {
            let global = vi::certified_reach_values(&mdp, &target, opt, eps, &vio).unwrap();
            let topo = vi::topo_certified_reach_values(&mdp, &target, opt, eps, &vio).unwrap();
            prop_assert!(topo.width() < eps, "{opt:?} width {}", topo.width());
            for (s, &env) in envelope.iter().enumerate() {
                prop_assert!(
                    topo.lo[s] - 1e-9 <= env && env <= topo.hi[s] + 1e-9,
                    "state {s}: P{opt} {} outside topo [{}, {}] (n={n}, seed={seed:#x})",
                    env, topo.lo[s], topo.hi[s]
                );
                prop_assert!(
                    topo.lo[s] <= global.hi[s] + 1e-12 && global.lo[s] <= topo.hi[s] + 1e-12,
                    "state {s}: disjoint brackets (P{opt})"
                );
            }
        }
        let (rmin, rmax) = enumerate_scheduler_rewards(&mdp, &target);
        for (opt, envelope) in [(Opt::Min, &rmin), (Opt::Max, &rmax)] {
            let topo =
                vi::topo_certified_reach_reward_values(&mdp, &target, opt, eps, &vio).unwrap();
            prop_assert!(topo.width() < eps, "{opt:?} width {}", topo.width());
            for (s, &env) in envelope.iter().enumerate() {
                if env.is_infinite() {
                    prop_assert_eq!(topo.lo[s], f64::INFINITY, "state {} (R{:?})", s, opt);
                } else {
                    let slack = 1e-6 * (1.0 + env.abs());
                    prop_assert!(
                        topo.lo[s] - slack <= env && env <= topo.hi[s] + slack,
                        "state {s}: R{opt} {} outside topo [{}, {}] (n={n}, seed={seed:#x})",
                        env, topo.lo[s], topo.hi[s]
                    );
                }
            }
        }
    }

    /// The parallel Bellman backup is bit-identical to the sequential
    /// fallback — across 1/2/4-lane pools, the (4-lane) global pool, and
    /// randomized chunk geometry, for bounded and unbounded queries in
    /// both directions.
    #[test]
    fn parallel_vi_bit_identical_across_lane_counts(
        n in 2u32..60,
        seed in 0u64..u64::MAX,
        chunk in 1usize..9,
        horizon in 0usize..12,
    ) {
        init_env();
        let mdp = explore_mdp(n, seed);
        let target = mdp.label("target").unwrap().clone();
        let lhs = BitVec::from_fn(mdp.n_states(), |i| i % 3 != 1);
        let seq = ViOptions::default().with_par_min_states(usize::MAX);
        let mut parallel_variants: Vec<ViOptions> = lane_pools()
            .iter()
            .map(|&p| ViOptions {
                chunk,
                pool: Some(p),
                ..ViOptions::default().with_par_min_states(0)
            })
            .collect();
        // The process-global pool (4 lanes here; 1 in the SMG_THREADS=1 CI leg).
        parallel_variants.push(ViOptions {
            chunk,
            ..ViOptions::default().with_par_min_states(0)
        });
        for opt in [Opt::Min, Opt::Max] {
            let reach_seq = vi::reach_values(&mdp, &target, opt, &seq).unwrap();
            let bounded_seq =
                vi::bounded_until_values(&mdp, &lhs, &target, horizon, opt, &seq).unwrap();
            let reward_seq = vi::cumulative_reward_values(&mdp, horizon, opt, &seq);
            for (k, vio) in parallel_variants.iter().enumerate() {
                let reach = vi::reach_values(&mdp, &target, opt, vio).unwrap();
                prop_assert_eq!(&reach, &reach_seq, "reach variant {} ({:?})", k, opt);
                let bounded =
                    vi::bounded_until_values(&mdp, &lhs, &target, horizon, opt, vio).unwrap();
                prop_assert_eq!(&bounded, &bounded_seq, "bounded variant {} ({:?})", k, opt);
                let reward = vi::cumulative_reward_values(&mdp, horizon, opt, vio);
                prop_assert_eq!(&reward, &reward_seq, "reward variant {} ({:?})", k, opt);
            }
        }
    }
}

/// Bounded optimal values must bracket every memoryless scheduler's
/// bounded value (time-dependent schedulers can do better, so this is an
/// inequality, not an equality — the equality case is the unbounded test).
#[test]
fn bounded_values_bracket_memoryless_schedulers() {
    init_env();
    let mdp = explore_mdp(5, 0xABCDEF);
    let target = mdp.label("target").unwrap().clone();
    let all = BitVec::ones(mdp.n_states());
    let vio = ViOptions::default();
    for t in [0usize, 1, 3, 7] {
        let vmin = vi::bounded_until_values(&mdp, &all, &target, t, Opt::Min, &vio).unwrap();
        let vmax = vi::bounded_until_values(&mdp, &all, &target, t, Opt::Max, &vio).unwrap();
        let mut sched = vec![0u32; mdp.n_states()];
        'schedulers: loop {
            let d = mdp.induced_dtmc(&sched).unwrap();
            let vals = smg_dtmc::transient::bounded_until_values(&d, &all, &target, t).unwrap();
            for s in 0..mdp.n_states() {
                assert!(
                    vals[s] >= vmin[s] - 1e-9 && vals[s] <= vmax[s] + 1e-9,
                    "t={t} state {s}: {} outside [{}, {}]",
                    vals[s],
                    vmin[s],
                    vmax[s]
                );
            }
            let mut k = mdp.n_states();
            loop {
                if k == 0 {
                    break 'schedulers;
                }
                k -= 1;
                sched[k] += 1;
                if (sched[k] as usize) < mdp.action_count(k) {
                    break;
                }
                sched[k] = 0;
            }
        }
    }
}
