//! Hand-rolled argument parsing (the workspace's dependency policy admits
//! no CLI framework; the grammar is small enough that explicit code is
//! clearer anyway).

use crate::CliError;
use smg_lang::ExpandOptions;

/// Usage text printed for `help` and argument errors.
pub const USAGE: &str = "\
smg — probabilistic model checking for clocked RTL-style DTMC/MDP models

USAGE:
  smg check  <model.sm> [--prop <pctl>]... [--props FILE]...
             [--certified EPS] [--topo] [--format text|json]
             [--metrics text|json] [--trace-convergence FILE]
             [--max-states N] [--allow-stutter]
  smg info   <model.sm> [--max-states N] [--allow-stutter]
  smg lint   <model.sm> [--format text|json] [--deny warnings]
  smg export <model.sm> --format <tra|lab|srew|pm|dot> [--out FILE]
  smg steady <model.sm> [--tol T] [--max-steps N]
  smg sim    <model.sm> --steps N [--seed S]
  smg serve  [--addr HOST:PORT] [--capacity N] [--ttl SECS]
  smg help

Model files may be guarded-command source (.sm) or PRISM explicit
transitions (.tra; sibling .lab/.srew files are picked up automatically).
A model declaring the `mdp` header keeps overlapping guards as
nondeterministic actions; check it with the min/max query forms, e.g.
`Pmax=? [ F<=100 err ]` (worst case) / `Pmin=? [ ... ]` (best case),
`Rmin=?`/`Rmax=?` for rewards.

COMMANDS:
  check   Parse, compile and model-check pCTL properties; all properties
          of one run share a checking session, so related queries reuse
          satisfaction sets, reachability solves and certified brackets.
          Prints one PRISM-style result block per property (each reports
          which solver ran) plus a summary table when several properties
          are checked; --format json emits machine-readable records
          instead. MDP models take the Pmin/Pmax/Rmin/Rmax query forms.
          With --certified EPS, unbounded queries run interval iteration
          and print a sound [lo, hi] interval of width < EPS instead of
          trusting a residual test; adding --topo solves the SCC
          condensation one component at a time (reverse topological
          order) with the same guarantee — much faster on layered,
          pipeline-shaped models.
  info    Print model statistics: states, transitions, labels; BSCCs and
          irreducibility/aperiodicity for chains, choice counts for MDPs;
          SCC structure (component count, largest component, condensation-
          DAG depth); plus the numerical-engine configuration (worker
          lanes, parallel threshold, available solvers).
  lint    Static analysis over the declared variable ranges (interval
          abstract interpretation, smg-lint): dead or constant guards,
          out-of-range assignments, malformed distributions, certain
          deadlocks, overlapping dtmc guards, unused declarations and
          trivial labels, each with a stable L0xx code and position.
          Exits nonzero when errors are found (--deny warnings raises
          the bar to any finding). `check`/`info` run the same analysis
          on compile and print findings as warnings; --no-lint turns
          that off. See docs/LINT.md for the code table.
  export  Write the explicit model in PRISM explicit formats (tra/lab/
          srew; the MDP tra carries the action column), as guarded-command
          source (pm, chains only), or as Graphviz (dot, chains only).
  steady  Detect steady state of the default reward (the paper's BER
          read-out). Chains only.
  sim     Monte-Carlo baseline: simulate the chain and estimate the mean
          state reward (compare against `check --prop 'R=? [ I=T ]'`).
          Chains only; for MDPs see smg-sim's scheduler sampling.
  serve   Run the resident model-checking daemon (smg-serve): compiled
          models and their warm check sessions stay in memory across
          requests, so repeated property families answer from memoized
          sat-sets, value vectors and certified brackets — bit-identical
          to `smg check`. Prints the bound address on startup; stops
          gracefully (drains in-flight requests) on SIGTERM/ctrl-c. See
          docs/SERVE.md for the HTTP protocol.

OPTIONS:
  --prop <pctl>     Property to check (repeatable), e.g. 'P=? [ G<=300 !err ]'
  --props FILE      Read properties from FILE, one per line (repeatable;
                    blank lines and lines starting with // or # are
                    skipped); checked after any --prop properties
  --certified EPS   Certify unbounded queries by interval iteration: the
                    printed interval provably brackets the exact value with
                    width below EPS
  --topo            With --certified: solve SCC-by-SCC in reverse
                    topological order (trivial components close in one
                    backsubstitution step) instead of iterating globally
  --const N=V       Override or define a constant (repeatable), e.g. --const p=0.02
  --max-states N    Exploration cap (default 4000000)
  --allow-stutter   Deadlocked modules self-loop instead of erroring
  --format F        check: output format, text (default) or json (stable
                    keys: property, value, verdict, interval, solver,
                    time_s; non-finite numbers are encoded as strings).
                    export: tra, lab, srew, pm, dot
                    lint: text (default) or json (byte-stable: the same
                    model always renders the same bytes)
  --metrics F       check: after the results, dump the run's internal
                    instruments (states explored, solver sweeps, pool
                    dispatches, session cache hits, per-property wall time)
                    to stderr; F is text (Prometheus exposition format) or
                    json
  --trace-convergence FILE
                    check: stream one JSON line per solver iteration to
                    FILE (keys: driver, sweep, residual, width, component)
                    — plot it to watch interval iteration converge
  --deny warnings   lint: exit nonzero on warnings too, not just errors
  --no-lint         check/info: skip the compile-time lint pass
  --out FILE        Write export to FILE instead of stdout
  --steps N         Simulation length in time steps
  --seed S          Simulation RNG seed (default 0)
  --tol T           Steady-state tolerance (default 1e-9)
  --max-steps N     Steady-state step budget (default 100000)
  --addr HOST:PORT  serve: bind address (default 127.0.0.1:7177; port 0
                    picks a free port, printed on startup)
  --capacity N      serve: max resident models, LRU beyond it (default 8)
  --ttl SECS        serve: evict models unused for SECS seconds (default:
                    never)
";

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Cmd {
    /// `smg check`
    Check {
        /// Model path.
        model: String,
        /// Properties to check, in order (`--prop`).
        props: Vec<String>,
        /// Property files to read (`--props FILE`), appended after
        /// `props` in file order.
        prop_files: Vec<String>,
        /// Certified-interval width for unbounded queries
        /// (`--certified EPS`), off by default.
        certified: Option<f64>,
        /// Solve certified queries one SCC at a time in reverse
        /// topological order (`--topo`); requires `--certified`.
        topo: bool,
        /// Output format (`--format`): text (default) or json.
        format: OutputFormat,
        /// Dump run metrics to stderr (`--metrics text|json`), off by
        /// default.
        metrics: Option<OutputFormat>,
        /// Stream per-iteration solver convergence records to this file
        /// as JSON lines (`--trace-convergence FILE`).
        trace_convergence: Option<String>,
        /// Exploration options.
        options: Options,
    },
    /// `smg info`
    Info {
        /// Model path.
        model: String,
        /// Exploration options.
        options: Options,
    },
    /// `smg lint`
    Lint {
        /// Model path (guarded-command source only).
        model: String,
        /// Output format (`--format`): text (default) or json.
        format: OutputFormat,
        /// Treat warnings as fatal (`--deny warnings`).
        deny_warnings: bool,
        /// Exploration options (`--allow-stutter` suppresses the
        /// deadlock analysis; `--const` participates as in `check`).
        options: Options,
    },
    /// `smg export`
    Export {
        /// Model path.
        model: String,
        /// One of `tra`, `lab`, `srew`, `pm`, `dot`.
        format: String,
        /// Output path (stdout if absent).
        out: Option<String>,
        /// Exploration options.
        options: Options,
    },
    /// `smg steady`
    Steady {
        /// Model path.
        model: String,
        /// Convergence tolerance.
        tol: f64,
        /// Step budget.
        max_steps: usize,
        /// Exploration options.
        options: Options,
    },
    /// `smg sim`
    Sim {
        /// Model path.
        model: String,
        /// Number of simulated steps.
        steps: u64,
        /// RNG seed.
        seed: u64,
        /// Exploration options.
        options: Options,
    },
    /// `smg serve`
    Serve {
        /// Bind address (`--addr`); port 0 picks a free port.
        addr: String,
        /// Max resident models (`--capacity`).
        capacity: usize,
        /// Idle eviction TTL in seconds (`--ttl`), off by default.
        ttl: Option<f64>,
    },
    /// `smg help` / `--help` / no arguments.
    Help,
}

/// Output format of `smg check` (`--format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// PRISM-style result blocks plus a summary table for multi-property
    /// runs.
    #[default]
    Text,
    /// One stable-keyed JSON document: model statistics plus a
    /// `{property, value, verdict, interval, solver, time_s}` record per
    /// property.
    Json,
}

/// Options shared by all model-loading commands.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// State-space cap.
    pub max_states: usize,
    /// Whether deadlocked modules stutter.
    pub allow_stutter: bool,
    /// Constant overrides (`--const name=expr`), applied before semantic
    /// analysis.
    pub consts: Vec<(String, String)>,
    /// Skip the compile-time lint pass (`--no-lint`).
    pub no_lint: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_states: 4_000_000,
            allow_stutter: false,
            consts: Vec::new(),
            no_lint: false,
        }
    }
}

impl From<Options> for ExpandOptions {
    fn from(o: Options) -> ExpandOptions {
        ExpandOptions {
            max_states: o.max_states,
            allow_stutter: o.allow_stutter,
        }
    }
}

/// Parses command-line arguments (excluding `argv[0]`).
///
/// # Errors
///
/// [`CliError`] with a message suitable for stderr; the caller should also
/// print [`USAGE`].
pub fn parse_args(args: &[String]) -> Result<Cmd, CliError> {
    let mut it = args.iter();
    let cmd = match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Cmd::Help),
        Some(c) => c.to_string(),
    };

    let mut model: Option<String> = None;
    let mut props: Vec<String> = Vec::new();
    let mut prop_files: Vec<String> = Vec::new();
    let mut certified: Option<f64> = None;
    let mut topo = false;
    let mut format: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut trace_convergence: Option<String> = None;
    let mut out: Option<String> = None;
    let mut steps: Option<u64> = None;
    let mut seed: u64 = 0;
    let mut tol: f64 = 1e-9;
    let mut max_steps: usize = 100_000;
    let mut addr: String = "127.0.0.1:7177".to_string();
    let mut capacity: usize = 8;
    let mut ttl: Option<f64> = None;
    let mut deny_warnings = false;
    let mut options = Options::default();

    fn value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a str, CliError> {
        it.next()
            .map(String::as_str)
            .ok_or_else(|| CliError(format!("{flag} requires a value")))
    }

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--prop" => props.push(value(&mut it, "--prop")?.to_string()),
            "--props" => prop_files.push(value(&mut it, "--props")?.to_string()),
            "--certified" => {
                let eps: f64 = value(&mut it, "--certified")?
                    .parse()
                    .map_err(|_| CliError("--certified expects a number".into()))?;
                if !eps.is_finite() || eps <= 0.0 {
                    return Err(CliError("--certified expects a positive width".into()));
                }
                certified = Some(eps);
            }
            "--topo" => topo = true,
            "--format" => format = Some(value(&mut it, "--format")?.to_string()),
            "--metrics" => metrics = Some(value(&mut it, "--metrics")?.to_string()),
            "--trace-convergence" => {
                trace_convergence = Some(value(&mut it, "--trace-convergence")?.to_string());
            }
            "--out" => out = Some(value(&mut it, "--out")?.to_string()),
            "--steps" => {
                steps = Some(
                    value(&mut it, "--steps")?
                        .parse()
                        .map_err(|_| CliError("--steps expects an integer".into()))?,
                );
            }
            "--seed" => {
                seed = value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| CliError("--seed expects an integer".into()))?;
            }
            "--tol" => {
                tol = value(&mut it, "--tol")?
                    .parse()
                    .map_err(|_| CliError("--tol expects a number".into()))?;
            }
            "--max-steps" => {
                max_steps = value(&mut it, "--max-steps")?
                    .parse()
                    .map_err(|_| CliError("--max-steps expects an integer".into()))?;
            }
            "--addr" => addr = value(&mut it, "--addr")?.to_string(),
            "--capacity" => {
                capacity = value(&mut it, "--capacity")?
                    .parse()
                    .map_err(|_| CliError("--capacity expects an integer".into()))?;
                if capacity == 0 {
                    return Err(CliError("--capacity expects a positive integer".into()));
                }
            }
            "--ttl" => {
                let secs: f64 = value(&mut it, "--ttl")?
                    .parse()
                    .map_err(|_| CliError("--ttl expects a number of seconds".into()))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(CliError(
                        "--ttl expects a positive number of seconds".into(),
                    ));
                }
                ttl = Some(secs);
            }
            "--max-states" => {
                options.max_states = value(&mut it, "--max-states")?
                    .parse()
                    .map_err(|_| CliError("--max-states expects an integer".into()))?;
            }
            "--allow-stutter" => options.allow_stutter = true,
            "--no-lint" => options.no_lint = true,
            "--deny" => match value(&mut it, "--deny")? {
                "warnings" => deny_warnings = true,
                other => {
                    return Err(CliError(format!(
                        "--deny expects `warnings`, got {other:?}"
                    )));
                }
            },
            "--const" => {
                let v = value(&mut it, "--const")?;
                let (name, expr) = v
                    .split_once('=')
                    .ok_or_else(|| CliError(format!("--const expects name=value, got {v:?}")))?;
                options
                    .consts
                    .push((name.trim().to_string(), expr.trim().to_string()));
            }
            other if other.starts_with("--") => {
                return Err(CliError(format!("unknown option {other}")));
            }
            other => {
                if model.is_some() {
                    return Err(CliError(format!("unexpected positional argument {other}")));
                }
                model = Some(other.to_string());
            }
        }
    }

    let require_model = |m: Option<String>| m.ok_or_else(|| CliError("missing model path".into()));
    match cmd.as_str() {
        "check" => {
            if props.is_empty() && prop_files.is_empty() {
                return Err(CliError(
                    "check requires at least one --prop or --props".into(),
                ));
            }
            let format = match format.as_deref() {
                None | Some("text") => OutputFormat::Text,
                Some("json") => OutputFormat::Json,
                Some(other) => {
                    return Err(CliError(format!(
                        "unknown check output format {other:?} (expected text or json)"
                    )))
                }
            };
            if topo && certified.is_none() {
                return Err(CliError(
                    "--topo requires --certified (plain unbounded solves keep \
                     the global solvers)"
                        .into(),
                ));
            }
            let metrics = match metrics.as_deref() {
                None => None,
                Some("text") => Some(OutputFormat::Text),
                Some("json") => Some(OutputFormat::Json),
                Some(other) => {
                    return Err(CliError(format!(
                        "unknown metrics format {other:?} (expected text or json)"
                    )))
                }
            };
            Ok(Cmd::Check {
                model: require_model(model)?,
                props,
                prop_files,
                certified,
                topo,
                format,
                metrics,
                trace_convergence,
                options,
            })
        }
        "info" => Ok(Cmd::Info {
            model: require_model(model)?,
            options,
        }),
        "lint" => {
            let format = match format.as_deref() {
                None | Some("text") => OutputFormat::Text,
                Some("json") => OutputFormat::Json,
                Some(other) => {
                    return Err(CliError(format!(
                        "unknown lint output format {other:?} (expected text or json)"
                    )))
                }
            };
            Ok(Cmd::Lint {
                model: require_model(model)?,
                format,
                deny_warnings,
                options,
            })
        }
        "export" => Ok(Cmd::Export {
            model: require_model(model)?,
            format: format.ok_or_else(|| CliError("export requires --format".into()))?,
            out,
            options,
        }),
        "steady" => Ok(Cmd::Steady {
            model: require_model(model)?,
            tol,
            max_steps,
            options,
        }),
        "sim" => Ok(Cmd::Sim {
            model: require_model(model)?,
            steps: steps.ok_or_else(|| CliError("sim requires --steps".into()))?,
            seed,
            options,
        }),
        "serve" => {
            if let Some(stray) = model {
                return Err(CliError(format!(
                    "serve takes no model argument (got {stray:?}); models are \
                     compiled over HTTP via POST /models"
                )));
            }
            Ok(Cmd::Serve {
                addr,
                capacity,
                ttl,
            })
        }
        other => Err(CliError(format!("unknown command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn check_command_with_two_props() {
        // (property strings with spaces arrive as single argv entries from
        // the shell; emulate that directly)
        let parsed = parse_args(&[
            "check".into(),
            "m.sm".into(),
            "--prop".into(),
            "R=? [ I=10 ]".into(),
            "--prop".into(),
            "S=? [ err ]".into(),
        ])
        .unwrap();
        let Cmd::Check { model, props, .. } = parsed else {
            panic!("wrong cmd");
        };
        assert_eq!(model, "m.sm");
        assert_eq!(props.len(), 2);
    }

    #[test]
    fn certified_flag_parses_and_validates() {
        let parsed = parse_args(&[
            "check".into(),
            "m.sm".into(),
            "--prop".into(),
            "P=? [ F err ]".into(),
            "--certified".into(),
            "1e-6".into(),
        ])
        .unwrap();
        let Cmd::Check { certified, .. } = parsed else {
            panic!("wrong cmd");
        };
        assert_eq!(certified, Some(1e-6));
        // --topo rides along with --certified, and is rejected without it.
        let parsed = parse_args(&[
            "check".into(),
            "m.sm".into(),
            "--prop".into(),
            "P=? [ F err ]".into(),
            "--certified".into(),
            "1e-6".into(),
            "--topo".into(),
        ])
        .unwrap();
        let Cmd::Check { topo, .. } = parsed else {
            panic!("wrong cmd");
        };
        assert!(topo);
        let err = parse_args(&args("check m.sm --props a.props --topo")).unwrap_err();
        assert!(err.0.contains("--topo requires --certified"), "{err}");
        for bad in ["banana", "-1e-6", "0", "inf"] {
            let err = parse_args(&[
                "check".into(),
                "m.sm".into(),
                "--prop".into(),
                "x".into(),
                "--certified".into(),
                bad.into(),
            ])
            .unwrap_err();
            assert!(err.0.contains("--certified"), "{bad}: {err}");
        }
    }

    #[test]
    fn props_files_and_format_parse() {
        let parsed = parse_args(&args(
            "check m.sm --props a.props --props b.props --format json",
        ))
        .unwrap();
        let Cmd::Check {
            props,
            prop_files,
            format,
            ..
        } = parsed
        else {
            panic!("wrong cmd");
        };
        assert!(props.is_empty());
        assert_eq!(prop_files, vec!["a.props", "b.props"]);
        assert_eq!(format, OutputFormat::Json);
        // Default and explicit text.
        for extra in ["", " --format text"] {
            let parsed = parse_args(&args(&format!("check m.sm --props a.props{extra}"))).unwrap();
            let Cmd::Check { format, .. } = parsed else {
                panic!("wrong cmd");
            };
            assert_eq!(format, OutputFormat::Text);
        }
        let err = parse_args(&args("check m.sm --props a.props --format yaml")).unwrap_err();
        assert!(err.0.contains("unknown check output format"), "{err}");
    }

    #[test]
    fn metrics_and_trace_flags_parse() {
        let parsed = parse_args(&args(
            "check m.sm --props a.props --metrics text --trace-convergence trace.jsonl",
        ))
        .unwrap();
        let Cmd::Check {
            metrics,
            trace_convergence,
            ..
        } = parsed
        else {
            panic!("wrong cmd");
        };
        assert_eq!(metrics, Some(OutputFormat::Text));
        assert_eq!(trace_convergence.as_deref(), Some("trace.jsonl"));
        // Off by default; json variant; bad value rejected.
        let Cmd::Check {
            metrics,
            trace_convergence,
            ..
        } = parse_args(&args("check m.sm --props a.props")).unwrap()
        else {
            panic!("wrong cmd");
        };
        assert_eq!(metrics, None);
        assert_eq!(trace_convergence, None);
        let Cmd::Check { metrics, .. } =
            parse_args(&args("check m.sm --props a.props --metrics json")).unwrap()
        else {
            panic!("wrong cmd");
        };
        assert_eq!(metrics, Some(OutputFormat::Json));
        let err = parse_args(&args("check m.sm --props a.props --metrics yaml")).unwrap_err();
        assert!(err.0.contains("unknown metrics format"), "{err}");
    }

    #[test]
    fn check_without_props_is_an_error() {
        assert!(parse_args(&args("check m.sm"))
            .unwrap_err()
            .0
            .contains("--prop"));
    }

    #[test]
    fn options_parse_and_default() {
        let Cmd::Info { options, .. } =
            parse_args(&args("info m.sm --max-states 1000 --allow-stutter")).unwrap()
        else {
            panic!("wrong cmd");
        };
        assert_eq!(options.max_states, 1000);
        assert!(options.allow_stutter);
        let Cmd::Info { options, .. } = parse_args(&args("info m.sm")).unwrap() else {
            panic!("wrong cmd");
        };
        assert_eq!(options, Options::default());
    }

    #[test]
    fn lint_flags_parse() {
        let Cmd::Lint {
            model,
            format,
            deny_warnings,
            ..
        } = parse_args(&args("lint m.sm")).unwrap()
        else {
            panic!("wrong cmd");
        };
        assert_eq!(model, "m.sm");
        assert_eq!(format, OutputFormat::Text);
        assert!(!deny_warnings);
        let Cmd::Lint {
            format,
            deny_warnings,
            options,
            ..
        } = parse_args(&args(
            "lint m.sm --format json --deny warnings --allow-stutter --const N=4",
        ))
        .unwrap()
        else {
            panic!("wrong cmd");
        };
        assert_eq!(format, OutputFormat::Json);
        assert!(deny_warnings);
        assert!(options.allow_stutter);
        assert_eq!(options.consts, vec![("N".to_string(), "4".to_string())]);
        // Bad --deny and --format values are rejected with pointed messages.
        let err = parse_args(&args("lint m.sm --deny errors")).unwrap_err();
        assert!(err.0.contains("--deny expects `warnings`"), "{err}");
        let err = parse_args(&args("lint m.sm --format yaml")).unwrap_err();
        assert!(err.0.contains("unknown lint output format"), "{err}");
        assert!(parse_args(&args("lint")).unwrap_err().0.contains("model"));
    }

    #[test]
    fn no_lint_flag_parses() {
        let Cmd::Info { options, .. } = parse_args(&args("info m.sm --no-lint")).unwrap() else {
            panic!("wrong cmd");
        };
        assert!(options.no_lint);
        let Cmd::Check { options, .. } =
            parse_args(&args("check m.sm --props a.props --no-lint")).unwrap()
        else {
            panic!("wrong cmd");
        };
        assert!(options.no_lint);
        assert!(!Options::default().no_lint);
    }

    #[test]
    fn export_requires_format() {
        assert!(parse_args(&args("export m.sm"))
            .unwrap_err()
            .0
            .contains("--format"));
        let Cmd::Export { format, out, .. } =
            parse_args(&args("export m.sm --format tra --out x.tra")).unwrap()
        else {
            panic!("wrong cmd");
        };
        assert_eq!(format, "tra");
        assert_eq!(out.as_deref(), Some("x.tra"));
    }

    #[test]
    fn sim_requires_steps() {
        assert!(parse_args(&args("sim m.sm"))
            .unwrap_err()
            .0
            .contains("--steps"));
        let Cmd::Sim { steps, seed, .. } =
            parse_args(&args("sim m.sm --steps 100 --seed 9")).unwrap()
        else {
            panic!("wrong cmd");
        };
        assert_eq!((steps, seed), (100, 9));
    }

    #[test]
    fn steady_defaults() {
        let Cmd::Steady { tol, max_steps, .. } = parse_args(&args("steady m.sm")).unwrap() else {
            panic!("wrong cmd");
        };
        assert_eq!(tol, 1e-9);
        assert_eq!(max_steps, 100_000);
    }

    #[test]
    fn const_overrides_parse() {
        let Cmd::Info { options, .. } =
            parse_args(&args("info m.sm --const N=4 --const p=0.25")).unwrap()
        else {
            panic!("wrong cmd");
        };
        assert_eq!(
            options.consts,
            vec![
                ("N".to_string(), "4".to_string()),
                ("p".to_string(), "0.25".to_string())
            ]
        );
        assert!(parse_args(&args("info m.sm --const banana")).is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        let Cmd::Serve {
            addr,
            capacity,
            ttl,
        } = parse_args(&args("serve")).unwrap()
        else {
            panic!("wrong cmd");
        };
        assert_eq!(addr, "127.0.0.1:7177");
        assert_eq!(capacity, 8);
        assert_eq!(ttl, None);
        let Cmd::Serve {
            addr,
            capacity,
            ttl,
        } = parse_args(&args("serve --addr 0.0.0.0:9000 --capacity 2 --ttl 30")).unwrap()
        else {
            panic!("wrong cmd");
        };
        assert_eq!(addr, "0.0.0.0:9000");
        assert_eq!(capacity, 2);
        assert_eq!(ttl, Some(30.0));
        // A stray positional, a zero capacity and a non-positive ttl are
        // all rejected with pointed messages.
        let err = parse_args(&args("serve m.sm")).unwrap_err();
        assert!(err.0.contains("no model argument"), "{err}");
        let err = parse_args(&args("serve --capacity 0")).unwrap_err();
        assert!(err.0.contains("--capacity"), "{err}");
        for bad in ["-3", "0", "banana", "inf"] {
            let err = parse_args(&["serve".into(), "--ttl".into(), bad.into()]).unwrap_err();
            assert!(err.0.contains("--ttl"), "{bad}: {err}");
        }
    }

    #[test]
    fn help_paths() {
        assert_eq!(parse_args(&[]).unwrap(), Cmd::Help);
        assert_eq!(parse_args(&args("help")).unwrap(), Cmd::Help);
        assert_eq!(parse_args(&args("--help")).unwrap(), Cmd::Help);
    }

    #[test]
    fn bad_input_is_rejected() {
        assert!(parse_args(&args("frobnicate m.sm")).is_err());
        assert!(parse_args(&args("info m.sm extra.sm")).is_err());
        assert!(parse_args(&args("info m.sm --wat")).is_err());
        assert!(parse_args(&args("sim m.sm --steps banana")).is_err());
        assert!(parse_args(&args("check m.sm --prop")).is_err());
    }
}
