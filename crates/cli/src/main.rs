//! `smg` binary entry point: parse args, run, print.

use smg_cli::{parse_args, run, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match run(&cmd) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
