//! Monte-Carlo simulation of an explicit chain — the CLI's baseline, as
//! simulation is the paper's baseline for model checking.
//!
//! The estimator targets the long-run mean state reward (what the paper
//! calls BER when the reward is the error `flag`), with a Wald 95%
//! confidence interval over per-step rewards. For rewards in {0,1} this is
//! the familiar BER interval; `smg_sim` provides the richer estimators
//! (Wilson intervals, stopping rules) for the case studies, while this
//! module stays dependency-light for the CLI.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smg_dtmc::matrix::sample_distribution;
use smg_dtmc::Dtmc;

/// The outcome of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Number of simulated steps.
    pub steps: u64,
    /// Mean per-step state reward.
    pub mean: f64,
    /// Lower end of the 95% Wald interval.
    pub ci_low: f64,
    /// Upper end of the 95% Wald interval.
    pub ci_high: f64,
    /// Steps whose state had nonzero reward (the paper reports "zero bit
    /// errors in 10^5 time steps" — this is that count).
    pub hits: u64,
}

/// Simulates `steps` transitions of `dtmc` from its initial distribution
/// and estimates the mean state reward.
///
/// The state occupied *after* each transition contributes one sample
/// (matching `R=? [ I=t ]` for t ≥ 1, which is how the paper reads BER
/// out of the chain at steady state).
pub fn simulate_rewards(dtmc: &Dtmc, steps: u64, seed: u64) -> SimResult {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut state = sample_distribution(dtmc.initial().iter().copied(), rng.gen());
    let rewards = dtmc.rewards();
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut hits = 0u64;
    for _ in 0..steps {
        // Walk the row in place — no per-step successor allocation.
        state = dtmc.matrix().sample_row(state as usize, rng.gen());
        let r = rewards[state as usize];
        sum += r;
        sum_sq += r * r;
        if r != 0.0 {
            hits += 1;
        }
    }
    let n = steps.max(1) as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    let half = 1.96 * (var / n).sqrt();
    SimResult {
        steps,
        mean,
        ci_low: mean - half,
        ci_high: mean + half,
        hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smg_dtmc::bitvec::BitVec;
    use smg_dtmc::matrix::{CsrMatrix, TransitionMatrix};
    use std::collections::BTreeMap;

    fn biased_coin(p: f64) -> Dtmc {
        let matrix = TransitionMatrix::Sparse(
            CsrMatrix::from_rows(vec![vec![(0, 1.0 - p), (1, p)], vec![(0, 1.0 - p), (1, p)]])
                .unwrap(),
        );
        let mut labels = BTreeMap::new();
        labels.insert("one".to_string(), BitVec::from_fn(2, |i| i == 1));
        Dtmc::new(matrix, vec![(0, 1.0)], labels, vec![0.0, 1.0]).unwrap()
    }

    #[test]
    fn estimate_converges_to_true_mean() {
        let d = biased_coin(0.3);
        let r = simulate_rewards(&d, 100_000, 42);
        assert!((r.mean - 0.3).abs() < 0.01, "mean = {}", r.mean);
        assert!(r.ci_low < 0.3 && 0.3 < r.ci_high);
        assert_eq!(r.hits, (r.mean * r.steps as f64).round() as u64);
    }

    #[test]
    fn seeds_are_reproducible_and_distinct() {
        let d = biased_coin(0.5);
        let a = simulate_rewards(&d, 10_000, 7);
        let b = simulate_rewards(&d, 10_000, 7);
        let c = simulate_rewards(&d, 10_000, 8);
        assert_eq!(a, b);
        assert_ne!(a.mean, c.mean);
    }

    #[test]
    fn zero_steps_is_defined() {
        let d = biased_coin(0.5);
        let r = simulate_rewards(&d, 0, 0);
        assert_eq!(r.mean, 0.0);
        assert_eq!(r.hits, 0);
    }

    #[test]
    fn deterministic_chain_counts_every_hit() {
        let d = biased_coin(1.0);
        let r = simulate_rewards(&d, 1000, 3);
        assert_eq!(r.mean, 1.0);
        assert_eq!(r.hits, 1000);
        // Zero variance → degenerate interval.
        assert_eq!(r.ci_low, 1.0);
        assert_eq!(r.ci_high, 1.0);
    }
}
