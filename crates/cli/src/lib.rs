//! # smg-cli — a command-line front end for the workspace's model checker
//!
//! `smg` plays the role PRISM's command line plays in the paper's
//! workflow: it takes a guarded-command model file and pCTL property
//! strings, and prints state counts, timings and results in the shape of
//! the paper's tables.
//!
//! ```text
//! smg check model.sm --prop 'P=? [ G<=300 !err ]' --prop 'R=? [ I=300 ]'
//! smg check worst.sm --prop 'Pmax=? [ F<=300 err ]'   # mdp model
//! smg lint model.sm --format json
//! smg info model.sm
//! smg export model.sm --format tra
//! smg steady model.sm
//! smg sim model.sm --steps 100000 --seed 7
//! ```
//!
//! The crate is a thin library ([`run`]) plus a `main` wrapper so that the
//! command logic is unit-testable without spawning processes.

use smg_dtmc::{graph, par, transient, Dtmc};
use smg_lang::{check, compile_any_with, parse};
use smg_obs as obs;
use smg_pctl::{
    parse_property, AnyModel, CacheKind, CacheStats, CheckResult, CheckSession, Property,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

mod args;
mod json;
mod sim;

pub use args::{parse_args, Cmd, Options, OutputFormat, USAGE};
pub use sim::{simulate_rewards, SimResult};

/// Exit-status-bearing error for the CLI: a message for stderr.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<smg_lang::LangError> for CliError {
    fn from(e: smg_lang::LangError) -> Self {
        CliError(format!("model error: {e}"))
    }
}

impl From<smg_pctl::PctlError> for CliError {
    fn from(e: smg_pctl::PctlError) -> Self {
        CliError(format!("property error: {e}"))
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io error: {e}"))
    }
}

impl From<smg_dtmc::DtmcError> for CliError {
    fn from(e: smg_dtmc::DtmcError) -> Self {
        CliError(format!("model error: {e}"))
    }
}

/// A model loaded by the CLI — either compiled from guarded-command
/// source (`dtmc` or `mdp` header) or imported from PRISM explicit files.
/// The model itself is the checker's [`AnyModel`], so every command
/// dispatches on the family through one type.
#[derive(Debug, Clone)]
pub struct Loaded {
    /// The explicit model.
    pub model: AnyModel,
    /// Variable names (guarded-command models only).
    pub var_names: Vec<String>,
}

/// Executes a parsed command against the filesystem and returns what
/// should be printed to stdout.
///
/// # Errors
///
/// [`CliError`] with a user-facing message (unreadable file, model or
/// property errors, unknown export format).
pub fn run(cmd: &Cmd) -> Result<String, CliError> {
    match cmd {
        Cmd::Help => Ok(USAGE.to_string()),
        Cmd::Check {
            model,
            props,
            prop_files,
            certified,
            topo,
            format,
            metrics,
            trace_convergence,
            options,
        } => {
            // `--metrics` / `--trace-convergence` install scoped recorders
            // around the whole load + check run, so exploration, solver,
            // pool and session-cache instruments all land in them. All
            // engine work dispatches from this thread, so a thread-local
            // recorder sees the run without touching process-global state.
            let registry = metrics.map(|_| Arc::new(obs::Registry::new()));
            let trace_sink = trace_convergence
                .as_deref()
                .map(|path| {
                    let file = std::fs::File::create(path)
                        .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
                    Ok::<_, CliError>(Arc::new(obs::JsonLines::new(std::io::BufWriter::new(file))))
                })
                .transpose()?;
            let mut recorders: Vec<Arc<dyn obs::Recorder>> = Vec::new();
            if let Some(r) = &registry {
                recorders.push(r.clone() as Arc<dyn obs::Recorder>);
            }
            if let Some(t) = &trace_sink {
                recorders.push(t.clone() as Arc<dyn obs::Recorder>);
            }
            let body = || run_check(model, props, prop_files, certified, topo, *format, options);
            let out = if recorders.is_empty() {
                body()
            } else {
                obs::with_recorder(Arc::new(obs::Fanout::new(recorders)), body)
            };
            let mut out = out?;
            if let Some(t) = &trace_sink {
                t.flush()?;
            }
            if let (Some(fmt), Some(r)) = (metrics, &registry) {
                out.push('\n');
                out.push_str(&match fmt {
                    OutputFormat::Text => r.render_text(),
                    OutputFormat::Json => r.render_json(),
                });
            }
            Ok(out)
        }
        Cmd::Info { model, options } => {
            let (compiled, build_time) = load(model, options)?;
            let mut out = model_header(&compiled.model, build_time);
            if !compiled.var_names.is_empty() {
                let _ = writeln!(out, "Variables: {}", compiled.var_names.join(", "));
            }
            match &compiled.model {
                AnyModel::Dtmc(d) => {
                    let mut names = d.label_names();
                    names.sort_unstable();
                    for name in names {
                        let _ = writeln!(
                            out,
                            "Label \"{name}\": {} states",
                            d.label(name).expect("listed").count_ones()
                        );
                    }
                    let bsccs = graph::bsccs(d);
                    let _ = writeln!(out, "BSCCs: {}", bsccs.len());
                    let cond = graph::Condensation::new(d);
                    let _ = writeln!(
                        out,
                        "SCCs: {} (largest {} states, condensation depth {})",
                        cond.n_components(),
                        cond.largest(),
                        cond.dag_depth()
                    );
                    let _ = writeln!(out, "Irreducible: {}", graph::is_irreducible(d));
                    match graph::period(d) {
                        Some(p) => {
                            let _ = writeln!(out, "Period: {p}");
                        }
                        None => {
                            let _ = writeln!(out, "Period: undefined (reducible chain)");
                        }
                    }
                    let _ = writeln!(out, "Ergodic: {}", graph::is_ergodic(d));
                }
                AnyModel::Mdp(m) => {
                    let mut names = m.label_names();
                    names.sort_unstable();
                    for name in names {
                        let _ = writeln!(
                            out,
                            "Label \"{name}\": {} states",
                            m.label(name).expect("listed").count_ones()
                        );
                    }
                    let _ = writeln!(out, "Max actions per state: {}", m.max_action_count());
                    let _ = writeln!(
                        out,
                        "Mean actions per state: {:.3}",
                        m.n_choices() as f64 / m.n_states().max(1) as f64
                    );
                    let cond = smg_mdp::qual::Condensation::new(m);
                    let _ = writeln!(
                        out,
                        "SCCs: {} (largest {} states, condensation depth {})",
                        cond.n_components(),
                        cond.largest(),
                        cond.dag_depth()
                    );
                }
            }
            let _ = writeln!(
                out,
                "Engine: {} worker lanes, parallel above {} states",
                par::max_threads(),
                par::min_rows()
            );
            let _ = writeln!(
                out,
                "Solvers: transient (bounded, exact arithmetic); value-iteration \
                 (unbounded, residual test); interval-iteration (unbounded, certified \
                 — `check --certified EPS`); topological-interval-iteration \
                 (certified, SCC-ordered — add `--topo`)"
            );
            Ok(out)
        }
        Cmd::Lint {
            model,
            format,
            deny_warnings,
            options,
        } => {
            if model.ends_with(".tra") {
                return Err(CliError(
                    "lint analyses guarded-command source (.sm), not explicit .tra files".into(),
                ));
            }
            let checked = load_checked(model, options)?;
            let report = smg_lint::lint_with(&checked, &lint_options(options));
            let rendered = match format {
                OutputFormat::Text => report.render_text(model),
                OutputFormat::Json => report.render_json(),
            };
            let failing =
                report.error_count() > 0 || (*deny_warnings && report.warning_count() > 0);
            if failing {
                // Findings land on stderr and the exit status is nonzero,
                // so `smg lint` gates CI the way compilers do.
                Err(CliError(rendered))
            } else {
                Ok(rendered)
            }
        }
        Cmd::Export {
            model,
            format,
            out,
            options,
        } => {
            let (compiled, _) = load(model, options)?;
            let text = match (&compiled.model, format.as_str()) {
                (AnyModel::Dtmc(d), "tra") => smg_dtmc::export::to_tra(d),
                (AnyModel::Dtmc(d), "lab") => smg_dtmc::export::to_lab(d),
                (AnyModel::Dtmc(d), "srew") => smg_dtmc::export::to_srew(d),
                (AnyModel::Dtmc(d), "pm") => smg_lang::program_text(d),
                (AnyModel::Dtmc(d), "dot") => smg_dtmc::export::to_dot(d),
                (AnyModel::Mdp(m), "tra") => smg_mdp::export::to_tra(m),
                (AnyModel::Mdp(m), "lab") => smg_mdp::export::to_lab(m),
                (AnyModel::Mdp(m), "srew") => smg_mdp::export::to_srew(m),
                (AnyModel::Mdp(_), other @ ("pm" | "dot")) => {
                    return Err(CliError(format!(
                        "format {other:?} is not supported for mdp models \
                         (expected tra, lab or srew)"
                    )))
                }
                (_, other) => {
                    return Err(CliError(format!(
                        "unknown export format {other:?} (expected tra, lab, srew, pm or dot)"
                    )))
                }
            };
            match out {
                Some(path) => {
                    std::fs::write(path, &text)?;
                    Ok(format!("wrote {} bytes to {path}\n", text.len()))
                }
                None => Ok(text),
            }
        }
        Cmd::Steady {
            model,
            tol,
            max_steps,
            options,
        } => {
            let (compiled, build_time) = load(model, options)?;
            let d = require_dtmc(
                &compiled,
                "steady",
                "long-run behaviour of an mdp is scheduler-dependent",
            )?;
            let mut out = model_header(&compiled.model, build_time);
            let steady = transient::detect_steady_state(d, *tol, *max_steps);
            match steady.converged_at {
                Some(t) => {
                    let _ = writeln!(out, "Steady state detected at step {t}");
                    let _ = writeln!(
                        out,
                        "Long-run expected reward (BER read-out): {}",
                        fmt_value(steady.expected_reward(d))
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "No steady state within {max_steps} steps at tolerance {tol:e}"
                    );
                }
            }
            Ok(out)
        }
        Cmd::Sim {
            model,
            steps,
            seed,
            options,
        } => {
            let (compiled, build_time) = load(model, options)?;
            let d = require_dtmc(
                &compiled,
                "sim",
                "resolve the nondeterminism first: check Pmin/Pmax, or sample under \
                 a scheduler with smg-sim's estimate_mdp",
            )?;
            let mut out = model_header(&compiled.model, build_time);
            let r = simulate_rewards(d, *steps, *seed);
            let _ = writeln!(out, "Simulated steps: {}", r.steps);
            let _ = writeln!(out, "Mean state reward: {}", fmt_value(r.mean));
            let _ = writeln!(
                out,
                "95% CI: [{}, {}] (Wald)",
                fmt_value(r.ci_low),
                fmt_value(r.ci_high)
            );
            let _ = writeln!(out, "Nonzero-reward steps: {}", r.hits);
            Ok(out)
        }
        Cmd::Serve {
            addr,
            capacity,
            ttl,
        } => {
            // The daemon prints its listening line itself (main only
            // prints after run returns, which for serve is shutdown) and
            // installs a process-global recorder so pool-worker events
            // land in /metrics too.
            let config = smg_serve::ServerConfig {
                addr: addr.clone(),
                capacity: *capacity,
                ttl: ttl.map(std::time::Duration::from_secs_f64),
                install_global: true,
                ..smg_serve::ServerConfig::default()
            };
            let mut stdout = std::io::stdout();
            smg_serve::run_blocking(config, &mut stdout)
                .map_err(|e| CliError(format!("serve: {e}")))?;
            Ok(String::new())
        }
    }
}

/// The `check` command proper: load, parse properties, run one shared
/// session, render. Factored out of [`run`] so the observability wrapper
/// can scope recorders around the whole thing.
#[allow(clippy::too_many_arguments)]
fn run_check(
    model: &str,
    props: &[String],
    prop_files: &[String],
    certified: &Option<f64>,
    topo: &bool,
    format: OutputFormat,
    options: &Options,
) -> Result<String, CliError> {
    let (compiled, build_time) = load(model, options)?;
    let mut prop_texts = props.to_vec();
    for file in prop_files {
        prop_texts.extend(read_props_file(file)?);
    }
    if prop_texts.is_empty() {
        return Err(CliError(
            "no properties to check (the --props files contain none)".into(),
        ));
    }
    let properties = prop_texts
        .iter()
        .map(|p| parse_property(p).map_err(CliError::from))
        .collect::<Result<Vec<_>, _>>()?;
    // One session for the whole batch: related properties share
    // satisfaction sets, reachability solves and certified
    // brackets. The session takes the model (no copy); the
    // header/JSON stats read it back through `session.model()`.
    let mut session = CheckSession::new(compiled.model);
    if let Some(eps) = certified {
        session = session.certified(*eps);
    }
    if *topo {
        session = session.topological();
    }
    let results = session.check_all(&properties)?;
    // Engine-configuration facts every metrics run carries, even when the
    // model stays below the parallel threshold and the pool never fires.
    obs::gauge_set("smg_pool_lanes", None, par::max_threads() as f64);
    obs::counter_add("smg_check_properties_total", None, properties.len() as u64);
    match format {
        OutputFormat::Json => Ok(render_json(
            session.model(),
            build_time,
            session.cache_stats(),
            &properties,
            &results,
        )),
        OutputFormat::Text => {
            let mut out = model_header(session.model(), build_time);
            for (property, result) in properties.iter().zip(&results) {
                let _ = writeln!(out, "\nProperty: {property}");
                let _ = writeln!(
                    out,
                    "Time for model checking: {:.3} s",
                    result.time.as_secs_f64()
                );
                let _ = writeln!(out, "Solver: {}", result.solver());
                match result.verdict() {
                    Some(v) => {
                        let _ = writeln!(out, "Result: {v}");
                    }
                    None => {
                        let _ = writeln!(out, "Result: {}", fmt_value(result.value()));
                        if certified.is_some() {
                            if let Some((lo, hi)) = result.interval() {
                                let width = if lo == hi { 0.0 } else { hi - lo };
                                let _ = writeln!(
                                    out,
                                    "Certified interval: [{}, {}] (width {width:.3e})",
                                    fmt_value(lo),
                                    fmt_value(hi)
                                );
                            }
                        }
                    }
                }
            }
            if properties.len() > 1 {
                out.push('\n');
                out.push_str(&render_table(&properties, &results, certified.is_some()));
            }
            Ok(out)
        }
    }
}

fn require_dtmc<'a>(loaded: &'a Loaded, cmd: &str, hint: &str) -> Result<&'a Dtmc, CliError> {
    loaded.model.as_dtmc().ok_or_else(|| {
        CliError(format!(
            "`{cmd}` needs a dtmc model, but this program declares `mdp` ({hint})"
        ))
    })
}

/// Reads a property file: one property per line; blank lines and lines
/// starting with `//` or `#` are skipped.
fn read_props_file(path: &str) -> Result<Vec<String>, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}

/// The multi-property summary table of `check`'s text mode.
fn render_table(properties: &[Property], results: &[CheckResult], certified: bool) -> String {
    let prop_texts: Vec<String> = properties.iter().map(|p| p.to_string()).collect();
    let value_texts: Vec<String> = results
        .iter()
        .map(|r| match r.verdict() {
            Some(v) => v.to_string(),
            None => fmt_value(r.value()),
        })
        .collect();
    let interval_texts: Vec<String> = results
        .iter()
        .map(|r| match r.interval() {
            Some((lo, hi)) if certified => format!("[{}, {}]", fmt_value(lo), fmt_value(hi)),
            _ => "-".to_string(),
        })
        .collect();
    let solver_texts: Vec<String> = results.iter().map(|r| r.solver().to_string()).collect();
    let widths = |header: &str, col: &[String]| -> usize {
        col.iter()
            .map(String::len)
            .chain(std::iter::once(header.len()))
            .max()
            .unwrap_or(0)
    };
    let wp = widths("Property", &prop_texts);
    let wv = widths("Value", &value_texts);
    let wi = widths("Interval", &interval_texts);
    let ws = widths("Solver", &solver_texts);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:wp$}  {:>wv$}  {:wi$}  {:ws$}  Time (s)",
        "Property", "Value", "Interval", "Solver"
    );
    for (((p, v), i), (s, r)) in prop_texts
        .iter()
        .zip(&value_texts)
        .zip(&interval_texts)
        .zip(solver_texts.iter().zip(results))
    {
        let _ = writeln!(
            out,
            "{p:wp$}  {v:>wv$}  {i:wi$}  {s:ws$}  {:.3}",
            r.time.as_secs_f64()
        );
    }
    out
}

/// The stable-keyed JSON document of `check --format json`: model
/// statistics, the session's per-kind cache telemetry, plus one record
/// per property. Non-finite numbers are encoded as strings (see
/// [`json::number`]); `verdict` and `interval` are `null` where the
/// query carries none.
fn render_json(
    model: &AnyModel,
    build_time: f64,
    cache: CacheStats,
    properties: &[Property],
    results: &[CheckResult],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"smg-check/1\",");
    out.push_str("  \"model\": {\n");
    let _ = writeln!(out, "    \"type\": {},", json::escape(model.kind()));
    let _ = writeln!(out, "    \"states\": {},", model.n_states());
    match model {
        AnyModel::Dtmc(d) => {
            let _ = writeln!(
                out,
                "    \"transitions\": {},",
                d.matrix().logical_transitions()
            );
        }
        AnyModel::Mdp(m) => {
            let _ = writeln!(out, "    \"choices\": {},", m.n_choices());
            let _ = writeln!(out, "    \"transitions\": {},", m.n_transitions());
        }
    }
    let _ = writeln!(out, "    \"build_s\": {}", json::number(build_time));
    out.push_str("  },\n  \"cache\": {\n");
    for (i, &kind) in CacheKind::ALL.iter().enumerate() {
        let ks = cache.kind(kind);
        let _ = writeln!(
            out,
            "    {}: {{\"hits\": {}, \"misses\": {}}}{}",
            json::escape(kind.as_str()),
            ks.hits,
            ks.misses,
            if i + 1 < CacheKind::ALL.len() {
                ","
            } else {
                ""
            }
        );
    }
    out.push_str("  },\n  \"results\": [\n");
    for (i, (property, result)) in properties.iter().zip(results).enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(
            out,
            "      \"property\": {},",
            json::escape(&property.to_string())
        );
        let _ = writeln!(out, "      \"value\": {},", json::number(result.value()));
        let _ = writeln!(
            out,
            "      \"verdict\": {},",
            match result.verdict() {
                Some(v) => v.to_string(),
                None => "null".to_string(),
            }
        );
        match result.interval() {
            Some((lo, hi)) => {
                let _ = writeln!(
                    out,
                    "      \"interval\": [{}, {}],",
                    json::number(lo),
                    json::number(hi)
                );
            }
            None => {
                let _ = writeln!(out, "      \"interval\": null,");
            }
        }
        let _ = writeln!(
            out,
            "      \"solver\": {},",
            json::escape(&result.solver().to_string())
        );
        let _ = writeln!(
            out,
            "      \"time_s\": {}",
            json::number(result.time.as_secs_f64())
        );
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// The lint configuration a command's exploration options imply:
/// `--allow-stutter` turns deadlocks into self-loops, so the deadlock
/// analysis stands down with it.
fn lint_options(options: &Options) -> smg_lint::LintOptions {
    smg_lint::LintOptions {
        allow_stutter: options.allow_stutter,
        ..smg_lint::LintOptions::default()
    }
}

/// Reads, parses and semantically checks guarded-command source,
/// applying `--const` overrides — the shared front half of [`load`] and
/// the `lint` command.
fn load_checked(path: &str, options: &Options) -> Result<smg_lang::CheckedProgram, CliError> {
    let src =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    let mut program = parse(&src)?;
    // `--const name=expr` overrides an existing constant in place (keeping
    // declaration order, so later constants still see it) or prepends a
    // new one.
    for (name, expr_text) in &options.consts {
        let value = smg_lang::parse_expr(expr_text)?;
        match program.consts.iter_mut().find(|c| c.name == *name) {
            Some(c) => c.value = value,
            None => program.consts.insert(
                0,
                smg_lang::ast::ConstDecl {
                    name: name.clone(),
                    ty: None,
                    value,
                    pos: smg_lang::Pos::start(),
                },
            ),
        }
    }
    Ok(check(program)?)
}

fn load(path: &str, options: &Options) -> Result<(Loaded, f64), CliError> {
    let start = Instant::now();
    // PRISM explicit transitions: pick up sibling .lab/.srew files.
    if path.ends_with(".tra") {
        if !options.consts.is_empty() {
            return Err(CliError(
                "--const applies to guarded-command models, not explicit .tra files".into(),
            ));
        }
        let src = std::fs::read_to_string(path)
            .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
        let stem = path.strip_suffix(".tra").expect("checked");
        let lab = std::fs::read_to_string(format!("{stem}.lab")).ok();
        let srew = std::fs::read_to_string(format!("{stem}.srew")).ok();
        let dtmc = smg_dtmc::import::from_explicit(&src, lab.as_deref(), srew.as_deref())?;
        return Ok((
            Loaded {
                model: AnyModel::Dtmc(dtmc),
                var_names: Vec::new(),
            },
            start.elapsed().as_secs_f64(),
        ));
    }
    let checked = load_checked(path, options)?;
    // Lint on compile: findings go to stderr as warnings and never block
    // the run — the expansion itself rejects the errors that matter, and
    // `smg lint` exists for gating. `--no-lint` silences the pass.
    if !options.no_lint {
        let report = smg_lint::lint_with(&checked, &lint_options(options));
        if !report.is_clean() {
            eprint!("{}", report.render_text(path));
        }
    }
    // The model-type header decides the compilation target: `dtmc`
    // programs become chains, `mdp` programs keep their nondeterminism —
    // `compile_any` dispatches, so the CLI never sees `WrongModelType`.
    let compiled = compile_any_with(checked, options.clone().into())?;
    Ok((
        Loaded {
            model: compiled.model,
            var_names: compiled.var_names,
        },
        start.elapsed().as_secs_f64(),
    ))
}

fn model_header(model: &AnyModel, build_time: f64) -> String {
    let mut out = String::new();
    match model {
        AnyModel::Dtmc(d) => {
            let _ = writeln!(out, "States: {}", d.n_states());
            let _ = writeln!(out, "Transitions: {}", d.matrix().logical_transitions());
        }
        AnyModel::Mdp(m) => {
            let _ = writeln!(out, "Model type: mdp");
            let _ = writeln!(out, "States: {}", m.n_states());
            let _ = writeln!(out, "Choices: {}", m.n_choices());
            let _ = writeln!(out, "Transitions: {}", m.n_transitions());
        }
    }
    let _ = writeln!(out, "Time for model construction: {build_time:.3} s");
    out
}

/// Formats a result the way the paper's tables do: plain decimal for
/// moderate values, scientific for very small ones, `≈ 1` style exactness
/// is left to the reader.
fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        "Infinity".to_string()
    } else if v != 0.0 && v.abs() < 1e-3 {
        format!("{v:.6e}")
    } else {
        format!("{v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn write_model(name: &str, text: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("smg-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path
    }

    const CHANNEL: &str = r#"
        dtmc
        const double p_err = 0.125;
        module channel
          err : bool init false;
          [] true -> p_err:(err'=true) + (1-p_err):(err'=false);
        endmodule
        label "err" = err;
        rewards err : 1; endrewards
    "#;

    fn opts() -> Options {
        Options::default()
    }

    #[test]
    fn check_reports_states_and_result() {
        let path = write_model("channel.sm", CHANNEL);
        let out = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec!["R=? [ I=10 ]".into(), "P=? [ G<=3 !err ]".into()],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: opts(),
        })
        .unwrap();
        assert!(out.contains("States: 2"), "{out}");
        assert!(out.contains("Result: 0.125"), "{out}");
        // (1 - 1/8)^3 = 0.669921875
        assert!(out.contains("0.669922"), "{out}");
    }

    #[test]
    fn certified_check_prints_interval_and_solver() {
        let path = write_model("channel_cert.sm", CHANNEL);
        let out = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec!["P=? [ F err ]".into(), "P=? [ G<=3 !err ]".into()],
            certified: Some(1e-9),
            topo: false,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: opts(),
        })
        .unwrap();
        // The unbounded query runs interval iteration and prints a sound
        // bracket around the exact 1.0 (err is reached almost surely).
        assert!(out.contains("Solver: interval-iteration"), "{out}");
        assert!(out.contains("Certified interval: ["), "{out}");
        assert!(out.contains("Result: 1.000000"), "{out}");
        // The bounded query in the same run stays exact arithmetic.
        assert!(out.contains("Solver: transient"), "{out}");
        // MDP queries certify through the same flag.
        let mpath = write_model("regime_cert.sm", REGIME_MDP);
        let out = run(&Cmd::Check {
            model: mpath.to_string_lossy().into_owned(),
            props: vec!["Pmax=? [ G !err ]".into()],
            certified: Some(1e-9),
            topo: false,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: opts(),
        })
        .unwrap();
        assert!(out.contains("Solver: interval-iteration"), "{out}");
        // The exact answer is 0; the certified bracket pins its lower end
        // there and the midpoint lands within ε/2 of it.
        assert!(out.contains("Certified interval: [0.000000,"), "{out}");
        // Without the flag no interval is claimed for unbounded queries.
        let out = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec!["P=? [ F err ]".into()],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: opts(),
        })
        .unwrap();
        assert!(out.contains("Solver: value-iteration"), "{out}");
        assert!(!out.contains("Certified interval"), "{out}");
    }

    #[test]
    fn topological_check_tags_the_solver() {
        let path = write_model("channel_topo.sm", CHANNEL);
        let out = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec!["P=? [ F err ]".into()],
            certified: Some(1e-9),
            topo: true,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: opts(),
        })
        .unwrap();
        assert!(
            out.contains("Solver: topological-interval-iteration"),
            "{out}"
        );
        assert!(out.contains("Certified interval: ["), "{out}");
        assert!(out.contains("Result: 1.000000"), "{out}");
        // The MDP engine routes through the same flag.
        let mpath = write_model("regime_topo.sm", REGIME_MDP);
        let out = run(&Cmd::Check {
            model: mpath.to_string_lossy().into_owned(),
            props: vec!["Pmax=? [ F err ]".into()],
            certified: Some(1e-9),
            topo: true,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: opts(),
        })
        .unwrap();
        assert!(
            out.contains("Solver: topological-interval-iteration"),
            "{out}"
        );
    }

    #[test]
    fn info_reports_structure() {
        let path = write_model("channel_info.sm", CHANNEL);
        let out = run(&Cmd::Info {
            model: path.to_string_lossy().into_owned(),
            options: opts(),
        })
        .unwrap();
        assert!(out.contains("Label \"err\": 1 states"), "{out}");
        assert!(out.contains("Irreducible: true"), "{out}");
        assert!(out.contains("Ergodic: true"), "{out}");
        // The 2-state channel is one SCC of 2 states, condensation depth 1.
        assert!(
            out.contains("SCCs: 1 (largest 2 states, condensation depth 1)"),
            "{out}"
        );
    }

    #[test]
    fn export_formats() {
        let path = write_model("channel_export.sm", CHANNEL);
        for (fmt, needle) in [
            ("tra", "2 "),
            ("lab", "err"),
            ("srew", "1"),
            ("pm", "module chain"),
            ("dot", "digraph"),
        ] {
            let out = run(&Cmd::Export {
                model: path.to_string_lossy().into_owned(),
                format: fmt.to_string(),
                out: None,
                options: opts(),
            })
            .unwrap();
            assert!(out.contains(needle), "format {fmt}: {out}");
        }
        let err = run(&Cmd::Export {
            model: path.to_string_lossy().into_owned(),
            format: "xml".into(),
            out: None,
            options: opts(),
        })
        .unwrap_err();
        assert!(err.0.contains("unknown export format"));
    }

    #[test]
    fn export_to_file_writes_bytes() {
        let path = write_model("channel_file.sm", CHANNEL);
        let out_path = std::env::temp_dir().join("smg-cli-tests/out.tra");
        let msg = run(&Cmd::Export {
            model: path.to_string_lossy().into_owned(),
            format: "tra".into(),
            out: Some(out_path.to_string_lossy().into_owned()),
            options: opts(),
        })
        .unwrap();
        assert!(msg.contains("wrote"));
        assert!(std::fs::read_to_string(&out_path).unwrap().contains('2'));
    }

    #[test]
    fn steady_finds_the_ber() {
        let path = write_model("channel_steady.sm", CHANNEL);
        let out = run(&Cmd::Steady {
            model: path.to_string_lossy().into_owned(),
            tol: 1e-12,
            max_steps: 1000,
            options: opts(),
        })
        .unwrap();
        assert!(out.contains("Steady state detected"), "{out}");
        assert!(out.contains("0.125"), "{out}");
    }

    #[test]
    fn sim_estimates_the_ber() {
        let path = write_model("channel_sim.sm", CHANNEL);
        let out = run(&Cmd::Sim {
            model: path.to_string_lossy().into_owned(),
            steps: 40_000,
            seed: 1,
            options: opts(),
        })
        .unwrap();
        // With 40k steps the estimate is well inside ±0.01 of 0.125.
        let mean_line = out
            .lines()
            .find(|l| l.starts_with("Mean state reward:"))
            .unwrap();
        let mean: f64 = mean_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!((mean - 0.125).abs() < 0.01, "{out}");
    }

    #[test]
    fn const_overrides_change_the_model() {
        let path = write_model("channel_const.sm", CHANNEL);
        // Override p_err = 0.5: BER doubles to 0.5.
        let out = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec!["R=? [ I=10 ]".into()],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: Options {
                consts: vec![("p_err".into(), "0.5".into())],
                ..Options::default()
            },
        })
        .unwrap();
        assert!(out.contains("Result: 0.5"), "{out}");
        // Define a fresh constant referenced nowhere: harmless.
        let out = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec!["R=? [ I=10 ]".into()],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: Options {
                consts: vec![("unused".into(), "1".into())],
                ..Options::default()
            },
        })
        .unwrap();
        assert!(out.contains("Result: 0.125"), "{out}");
        // Malformed expression surfaces as a model error.
        let err = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec!["R=? [ I=10 ]".into()],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: Options {
                consts: vec![("p_err".into(), "0.5 +".into())],
                ..Options::default()
            },
        })
        .unwrap_err();
        assert!(err.0.contains("model error"), "{err}");
    }

    /// A channel whose regime (quiet or bursty) is adversarial each tick.
    const REGIME_MDP: &str = r#"
        mdp
        const double p_quiet = 0.01;
        const double p_burst = 0.25;
        module channel
          err : bool init false;
          [] !err -> p_quiet:(err'=true) + (1-p_quiet):(err'=false);
          [] !err -> p_burst:(err'=true) + (1-p_burst):(err'=false);
          [] err  -> true;
        endmodule
        label "err" = err;
        rewards err : 1; endrewards
    "#;

    #[test]
    fn check_mdp_evaluates_min_max_queries_end_to_end() {
        let path = write_model("regime.sm", REGIME_MDP);
        let out = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec![
                "Pmax=? [ F<=2 err ]".into(),
                "Pmin=? [ F<=2 err ]".into(),
                "Pmin=? [ G<=2 !err ]".into(),
            ],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: opts(),
        })
        .unwrap();
        assert!(out.contains("Model type: mdp"), "{out}");
        assert!(out.contains("States: 2"), "{out}");
        assert!(out.contains("Choices: 3"), "{out}");
        // Worst case over two steps: 1 - 0.75^2 = 0.4375; best: 1 - 0.99^2.
        assert!(out.contains("Result: 0.4375"), "{out}");
        assert!(out.contains("0.019900"), "{out}");
        // Pmin [G !err] = 1 - Pmax [F err] = 0.5625.
        assert!(out.contains("Result: 0.5625"), "{out}");
    }

    #[test]
    fn check_mdp_rejects_ambiguous_plain_queries() {
        let path = write_model("regime_plain.sm", REGIME_MDP);
        let err = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec!["P=? [ F<=2 err ]".into()],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: opts(),
        })
        .unwrap_err();
        assert!(err.0.contains("Pmin"), "{err}");
    }

    #[test]
    fn info_and_export_handle_mdp_models() {
        let path = write_model("regime_info.sm", REGIME_MDP);
        let out = run(&Cmd::Info {
            model: path.to_string_lossy().into_owned(),
            options: opts(),
        })
        .unwrap();
        assert!(out.contains("Label \"err\": 1 states"), "{out}");
        assert!(out.contains("Max actions per state: 2"), "{out}");
        // !err can stay put or move to absorbing err: two singleton SCCs.
        assert!(
            out.contains("SCCs: 2 (largest 1 states, condensation depth 2)"),
            "{out}"
        );
        let tra = run(&Cmd::Export {
            model: path.to_string_lossy().into_owned(),
            format: "tra".into(),
            out: None,
            options: opts(),
        })
        .unwrap();
        // Header: 2 states, 3 choices, 5 transitions; rows carry the
        // action column.
        assert!(tra.starts_with("2 3 5"), "{tra}");
        assert!(tra.contains("0 1 1 0.25"), "{tra}");
        for fmt in ["pm", "dot"] {
            let err = run(&Cmd::Export {
                model: path.to_string_lossy().into_owned(),
                format: fmt.into(),
                out: None,
                options: opts(),
            })
            .unwrap_err();
            assert!(err.0.contains("not supported for mdp"), "{fmt}: {err}");
        }
    }

    #[test]
    fn steady_and_sim_reject_mdp_models() {
        let path = write_model("regime_steady.sm", REGIME_MDP);
        let err = run(&Cmd::Steady {
            model: path.to_string_lossy().into_owned(),
            tol: 1e-9,
            max_steps: 10,
            options: opts(),
        })
        .unwrap_err();
        assert!(err.0.contains("needs a dtmc"), "{err}");
        let err = run(&Cmd::Sim {
            model: path.to_string_lossy().into_owned(),
            steps: 10,
            seed: 0,
            options: opts(),
        })
        .unwrap_err();
        assert!(err.0.contains("needs a dtmc"), "{err}");
    }

    #[test]
    fn single_action_mdp_matches_dtmc_results() {
        // The same channel written as dtmc and as a single-command mdp
        // must agree: Pmin = Pmax = P.
        let dpath = write_model("chan_d.sm", CHANNEL);
        let mpath = write_model("chan_m.sm", &CHANNEL.replacen("dtmc", "mdp", 1));
        let d = run(&Cmd::Check {
            model: dpath.to_string_lossy().into_owned(),
            props: vec!["P=? [ G<=3 !err ]".into()],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: opts(),
        })
        .unwrap();
        let m = run(&Cmd::Check {
            model: mpath.to_string_lossy().into_owned(),
            props: vec!["Pmin=? [ G<=3 !err ]".into(), "Pmax=? [ G<=3 !err ]".into()],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: opts(),
        })
        .unwrap();
        let val = "0.669922"; // (1 - 1/8)^3
        assert!(d.contains(val), "{d}");
        // Two result blocks plus two rows of the multi-property summary
        // table.
        assert_eq!(m.matches(val).count(), 4, "{m}");
    }

    #[test]
    fn props_file_feeds_the_session_and_table() {
        let path = write_model("channel_propsfile.sm", CHANNEL);
        let props_path = write_model(
            "channel.props",
            "// the property family of one table row\n\
             P=? [ F err ]\n\
             \n\
             # shared-target relatives\n\
             P=? [ G !err ]\n\
             R=? [ I=10 ]\n",
        );
        let out = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec!["S=? [ err ]".into()],
            prop_files: vec![props_path.to_string_lossy().into_owned()],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            format: OutputFormat::Text,
            options: opts(),
        })
        .unwrap();
        // --prop properties come first, then the file's (comments and
        // blank lines skipped); four properties → a summary table.
        assert_eq!(out.matches("\nProperty: ").count(), 4, "{out}");
        assert!(out.contains("Property  "), "table header missing: {out}");
        assert!(out.contains("Time (s)"), "{out}");
        // err is reached almost surely; its complement query shows up as
        // a vanishing probability in the same table.
        assert!(out.contains("Result: 1.000000"), "{out}");
        assert!(out.contains("P=? [ G !err ]"), "{out}");
        // Empty property files are a clean error.
        let empty = write_model("empty.props", "// nothing\n");
        let err = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec![],
            prop_files: vec![empty.to_string_lossy().into_owned()],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            format: OutputFormat::Text,
            options: opts(),
        })
        .unwrap_err();
        assert!(err.0.contains("no properties"), "{err}");
    }

    #[test]
    fn json_output_round_trips_with_stable_keys() {
        let path = write_model("channel_json.sm", CHANNEL);
        let out = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec![
                "P=? [ F err ]".into(),
                "R=? [ I=10 ]".into(),
                "P>=0.9 [ F<=30 err ]".into(),
                // Unreachable target → the value is exactly Infinity,
                // which JSON can only carry as the documented string.
                "R=? [ F (err & !err) ]".into(),
            ],
            prop_files: vec![],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            format: OutputFormat::Json,
            options: opts(),
        })
        .unwrap();
        let doc = crate::json::parser::parse(&out).expect("valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("smg-check/1"));
        let model = doc.get("model").unwrap();
        assert_eq!(model.get("type").unwrap().as_str(), Some("dtmc"));
        assert_eq!(model.get("states").unwrap().as_f64(), Some(2.0));
        let results = doc.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 4);
        for r in results {
            // Stable keys, present on every record.
            for key in [
                "property", "value", "verdict", "interval", "solver", "time_s",
            ] {
                assert!(r.get(key).is_some(), "missing {key}: {out}");
            }
        }
        assert_eq!(
            results[0].get("property").unwrap().as_str(),
            Some("P=? [ F err ]")
        );
        assert!((results[0].get("value").unwrap().as_f64().unwrap() - 1.0).abs() < 1e-9);
        assert!((results[1].get("value").unwrap().as_f64().unwrap() - 0.125).abs() < 1e-12);
        // The threshold query carries a boolean verdict; numeric ones null.
        assert_eq!(
            results[2].get("verdict"),
            Some(&crate::json::parser::Value::Bool(true))
        );
        assert_eq!(
            results[0].get("verdict"),
            Some(&crate::json::parser::Value::Null)
        );
        // Non-finite values survive the string encoding.
        assert_eq!(
            results[3].get("value").unwrap().as_f64(),
            Some(f64::INFINITY)
        );
        // Certified runs expose the bracket as a two-element array.
        let out = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec!["P=? [ F err ]".into()],
            prop_files: vec![],
            certified: Some(1e-9),
            topo: false,
            metrics: None,
            trace_convergence: None,
            format: OutputFormat::Json,
            options: opts(),
        })
        .unwrap();
        let doc = crate::json::parser::parse(&out).expect("valid JSON");
        let r = &doc.get("results").unwrap().as_array().unwrap()[0];
        assert_eq!(
            r.get("solver").unwrap().as_str(),
            Some("interval-iteration")
        );
        let interval = r.get("interval").unwrap().as_array().unwrap();
        let (lo, hi) = (interval[0].as_f64().unwrap(), interval[1].as_f64().unwrap());
        assert!(lo <= 1.0 && 1.0 <= hi && hi - lo < 1e-9, "[{lo}, {hi}]");
        // MDP models report their family and choice counts.
        let mpath = write_model("regime_json.sm", REGIME_MDP);
        let out = run(&Cmd::Check {
            model: mpath.to_string_lossy().into_owned(),
            props: vec!["Pmax=? [ F<=2 err ]".into()],
            prop_files: vec![],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            format: OutputFormat::Json,
            options: opts(),
        })
        .unwrap();
        let doc = crate::json::parser::parse(&out).expect("valid JSON");
        assert_eq!(
            doc.get("model").unwrap().get("type").unwrap().as_str(),
            Some("mdp")
        );
        assert_eq!(
            doc.get("model").unwrap().get("choices").unwrap().as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn metrics_text_is_valid_exposition() {
        let path = write_model("channel_metrics.sm", CHANNEL);
        let out = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec![
                "P=? [ F err ]".into(),
                "P=? [ F err ]".into(),
                "R=? [ I=10 ]".into(),
                "S=? [ err ]".into(),
            ],
            certified: Some(1e-9),
            topo: false,
            prop_files: vec![],
            format: OutputFormat::Text,
            metrics: Some(OutputFormat::Text),
            trace_convergence: None,
            options: opts(),
        })
        .unwrap();
        // The appended block is well-formed Prometheus text exposition...
        let summary = obs::validate_exposition(&out).expect("valid exposition");
        assert!(summary.families >= 8, "only {:?}", summary.names);
        // ...and spans exploration, solving, engine config and the
        // session caches even on a model too small for pool dispatch.
        for needle in [
            "smg_explore_states_total",
            "smg_explore_transitions_total",
            "smg_explore_levels_total",
            "smg_explore_seconds",
            "smg_solve_sweeps_total",
            "smg_session_cache_hits_total",
            "smg_session_cache_misses_total",
            "smg_pctl_property_seconds",
            "smg_pool_lanes",
            "smg_check_properties_total",
        ] {
            assert!(
                summary.names.iter().any(|n| n == needle),
                "{needle} missing from {:?}",
                summary.names
            );
        }
        // The result blocks still precede the metrics.
        assert!(out.contains("Result: 1.000000"), "{out}");
    }

    #[test]
    fn metrics_json_and_trace_convergence_stream() {
        let path = write_model("channel_trace.sm", CHANNEL);
        let trace_path = std::env::temp_dir().join("smg-cli-tests/trace.jsonl");
        let out = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec!["P=? [ F err ]".into()],
            certified: Some(1e-9),
            topo: false,
            prop_files: vec![],
            format: OutputFormat::Json,
            metrics: Some(OutputFormat::Json),
            trace_convergence: Some(trace_path.to_string_lossy().into_owned()),
            options: opts(),
        })
        .unwrap();
        // The check document and the appended metrics document are each
        // valid JSON (split at the blank line between them).
        let (check_doc, metrics_doc) = out.split_once("\n\n").expect("two documents");
        let doc = crate::json::parser::parse(check_doc).expect("valid check JSON");
        let cache = doc.get("cache").expect("cache block");
        for kind in ["sat", "values", "certified", "steady"] {
            let k = cache.get(kind).expect(kind);
            assert!(
                k.get("hits").is_some() && k.get("misses").is_some(),
                "{out}"
            );
        }
        let metrics = crate::json::parser::parse(metrics_doc).expect("valid metrics JSON");
        assert!(metrics.get("counters").is_some(), "{metrics_doc}");
        // The trace file carries one record per solver iteration, with
        // stable keys, and the certified run converged below epsilon.
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let records: Vec<_> = trace
            .lines()
            .map(|l| crate::json::parser::parse(l).expect("valid trace line"))
            .collect();
        assert!(!records.is_empty(), "{trace}");
        for r in &records {
            for key in ["driver", "sweep", "residual", "width", "component"] {
                assert!(r.get(key).is_some(), "missing {key}: {trace}");
            }
        }
        let last = records.last().unwrap();
        assert_eq!(last.get("driver").unwrap().as_str(), Some("interval"));
        assert!(
            last.get("width").unwrap().as_f64().unwrap() < 1e-9,
            "{trace}"
        );
    }

    #[test]
    fn metrics_text_is_deterministic_modulo_timing() {
        let path = write_model("channel_det.sm", CHANNEL);
        let emit = || {
            let out = run(&Cmd::Check {
                model: path.to_string_lossy().into_owned(),
                props: vec!["P=? [ F err ]".into(), "R=? [ I=10 ]".into()],
                certified: Some(1e-9),
                topo: false,
                prop_files: vec![],
                format: OutputFormat::Text,
                metrics: Some(OutputFormat::Text),
                trace_convergence: None,
                options: opts(),
            })
            .unwrap();
            // Keep only the exposition block, minus the families that
            // measure wall time (their samples differ run to run).
            let start = out.find("# HELP").expect("exposition present");
            out[start..]
                .lines()
                .filter(|l| !l.contains("_seconds"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let (first, second) = (emit(), emit());
        assert!(!first.is_empty());
        assert_eq!(first, second, "counts and gauges must be byte-stable");
    }

    #[test]
    fn tra_models_load_with_sibling_lab_and_srew() {
        let path = write_model("channel_tra.sm", CHANNEL);
        let dir = std::env::temp_dir().join("smg-cli-tests");
        for fmt in ["tra", "lab", "srew"] {
            run(&Cmd::Export {
                model: path.to_string_lossy().into_owned(),
                format: fmt.into(),
                out: Some(
                    dir.join(format!("chan.{fmt}"))
                        .to_string_lossy()
                        .into_owned(),
                ),
                options: opts(),
            })
            .unwrap();
        }
        let out = run(&Cmd::Check {
            model: dir.join("chan.tra").to_string_lossy().into_owned(),
            props: vec!["R=? [ I=10 ]".into(), "S=? [ err ]".into()],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: opts(),
        })
        .unwrap();
        assert!(out.contains("States: 2"), "{out}");
        // Both queries see the 0.125 BER through labels and rewards that
        // came from the sibling files.
        assert_eq!(out.matches("Result: 0.125").count(), 2, "{out}");
    }

    #[test]
    fn lint_reports_findings_and_gates_on_severity() {
        // The channel model is clean: exit 0, a "clean" line on stdout.
        let path = write_model("channel_lint.sm", CHANNEL);
        let lint = |model: &str, format: OutputFormat, deny: bool| {
            run(&Cmd::Lint {
                model: model.into(),
                format,
                deny_warnings: deny,
                options: opts(),
            })
        };
        let out = lint(&path.to_string_lossy(), OutputFormat::Text, false).unwrap();
        assert!(out.contains("clean, no lint findings"), "{out}");
        // ...even under --deny warnings, and in byte-stable JSON.
        lint(&path.to_string_lossy(), OutputFormat::Text, true).unwrap();
        let json = lint(&path.to_string_lossy(), OutputFormat::Json, false).unwrap();
        assert!(json.contains("\"schema\": \"smg-lint/1\""), "{json}");
        assert_eq!(
            json,
            lint(&path.to_string_lossy(), OutputFormat::Json, false).unwrap()
        );
        // A dead guard is a warning: clean exit by default, fatal under
        // --deny warnings.
        let warn = write_model(
            "lint_warn.sm",
            "dtmc\nmodule m\n  x : [0..3] init 0;\n  [] x < 3 -> (x'=x+1);\n  \
             [] x = 3 -> true;\n  [] x > 3 -> (x'=0);\nendmodule\n",
        );
        let out = lint(&warn.to_string_lossy(), OutputFormat::Text, false).unwrap();
        assert!(out.contains("warning[L001]"), "{out}");
        let err = lint(&warn.to_string_lossy(), OutputFormat::Text, true).unwrap_err();
        assert!(err.0.contains("warning[L001]"), "{err}");
        // An error-severity finding is fatal regardless, in both formats.
        let bad = write_model(
            "lint_err.sm",
            "dtmc\nmodule m\n  x : [0..3] init 0;\n  [] true -> (x'=x+4);\nendmodule\n",
        );
        let err = lint(&bad.to_string_lossy(), OutputFormat::Text, false).unwrap_err();
        assert!(err.0.contains("error[L003]"), "{err}");
        let err = lint(&bad.to_string_lossy(), OutputFormat::Json, false).unwrap_err();
        assert!(err.0.contains("\"errors\": 1"), "{err}");
        // Explicit .tra models have no guarded commands to analyse.
        let err = lint("model.tra", OutputFormat::Text, false).unwrap_err();
        assert!(err.0.contains("not explicit .tra"), "{err}");
        // --const participates before analysis: overriding the probability
        // to an invalid weight turns the clean channel into an L004 error.
        let err = run(&Cmd::Lint {
            model: path.to_string_lossy().into_owned(),
            format: OutputFormat::Text,
            deny_warnings: false,
            options: Options {
                consts: vec![("p_err".into(), "1.5".into())],
                ..Options::default()
            },
        })
        .unwrap_err();
        assert!(err.0.contains("error[L004]"), "{err}");
    }

    #[test]
    fn compile_time_lint_does_not_block_commands() {
        // A model with a dead guard still checks fine (the lint pass only
        // warns on stderr), with or without --no-lint.
        let path = write_model(
            "lint_on_compile.sm",
            "dtmc\nmodule m\n  x : [0..3] init 0;\n  [] x < 3 -> (x'=x+1);\n  \
             [] x = 3 -> true;\n  [] x > 3 -> (x'=0);\nendmodule\nrewards x = 3 : 1; endrewards\n",
        );
        for no_lint in [false, true] {
            let out = run(&Cmd::Check {
                model: path.to_string_lossy().into_owned(),
                props: vec!["R=? [ I=10 ]".into()],
                certified: None,
                topo: false,
                metrics: None,
                trace_convergence: None,
                prop_files: vec![],
                format: OutputFormat::Text,
                options: Options {
                    no_lint,
                    ..Options::default()
                },
            })
            .unwrap();
            assert!(out.contains("States: 4"), "{out}");
        }
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(&Cmd::Info {
            model: "/nonexistent/nope.sm".into(),
            options: opts(),
        })
        .unwrap_err();
        assert!(err.0.contains("cannot read"));
    }

    #[test]
    fn model_errors_surface_with_context() {
        let path = write_model(
            "bad.sm",
            "module m x : bool; [] true -> 0.7:(x'=true); endmodule",
        );
        let err = run(&Cmd::Info {
            model: path.to_string_lossy().into_owned(),
            options: opts(),
        })
        .unwrap_err();
        assert!(err.0.contains("model error"), "{err}");
        assert!(err.0.contains("sum to 0.7"), "{err}");
    }

    #[test]
    fn property_errors_surface_with_context() {
        let path = write_model("channel_prop.sm", CHANNEL);
        let err = run(&Cmd::Check {
            model: path.to_string_lossy().into_owned(),
            props: vec!["P=? [ H err ]".into()],
            certified: None,
            topo: false,
            metrics: None,
            trace_convergence: None,
            prop_files: vec![],
            format: OutputFormat::Text,
            options: opts(),
        })
        .unwrap_err();
        assert!(err.0.contains("property error"), "{err}");
    }

    #[test]
    fn help_is_usage() {
        assert_eq!(run(&Cmd::Help).unwrap(), USAGE);
    }

    #[test]
    fn fmt_value_switches_notation() {
        assert_eq!(fmt_value(0.2394), "0.239400");
        assert_eq!(fmt_value(1.08e-5), "1.080000e-5");
        assert_eq!(fmt_value(0.0), "0.000000");
        assert_eq!(fmt_value(f64::INFINITY), "Infinity");
    }
}
