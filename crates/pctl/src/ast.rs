//! Abstract syntax of pCTL formulas and top-level queries.

use std::fmt;

pub use smg_mdp::Opt;

/// Comparison operators for probability bounds (`P>=0.99 [...]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `>=`
    Geq,
    /// `>`
    Gt,
    /// `<=`
    Leq,
    /// `<`
    Lt,
}

impl Cmp {
    /// Applies the comparison: `value ⋈ threshold`.
    pub fn eval(self, value: f64, threshold: f64) -> bool {
        match self {
            Cmp::Geq => value >= threshold,
            Cmp::Gt => value > threshold,
            Cmp::Leq => value <= threshold,
            Cmp::Lt => value < threshold,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Geq => ">=",
            Cmp::Gt => ">",
            Cmp::Leq => "<=",
            Cmp::Lt => "<",
        };
        write!(f, "{s}")
    }
}

/// A pCTL state formula.
#[derive(Debug, Clone, PartialEq)]
pub enum StateFormula {
    /// `true`.
    True,
    /// `false`.
    False,
    /// An atomic proposition (a DTMC label such as the paper's `flag`).
    Ap(String),
    /// Negation.
    Not(Box<StateFormula>),
    /// Conjunction.
    And(Box<StateFormula>, Box<StateFormula>),
    /// Disjunction.
    Or(Box<StateFormula>, Box<StateFormula>),
    /// Implication.
    Implies(Box<StateFormula>, Box<StateFormula>),
    /// Probability-bounded path quantifier `P ⋈ p [path]`.
    Prob {
        /// The comparison operator.
        cmp: Cmp,
        /// The probability threshold.
        threshold: f64,
        /// The path formula.
        path: Box<PathFormula>,
    },
}

impl StateFormula {
    /// Convenience constructor for an atomic proposition.
    pub fn ap(name: &str) -> Self {
        StateFormula::Ap(name.to_string())
    }

    /// Convenience constructor for negation.
    ///
    /// Deliberately shares its name with [`std::ops::Not::not`]: `f.not()`
    /// reads as the formula `!f`, and implementing the operator trait on a
    /// by-value AST builder would gain nothing.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        StateFormula::Not(Box::new(self))
    }

    /// Convenience constructor for conjunction.
    pub fn and(self, rhs: StateFormula) -> Self {
        StateFormula::And(Box::new(self), Box::new(rhs))
    }

    /// Convenience constructor for disjunction.
    pub fn or(self, rhs: StateFormula) -> Self {
        StateFormula::Or(Box::new(self), Box::new(rhs))
    }
}

impl fmt::Display for StateFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateFormula::True => write!(f, "true"),
            StateFormula::False => write!(f, "false"),
            StateFormula::Ap(name) => write!(f, "{name}"),
            StateFormula::Not(inner) => write!(f, "!{inner}"),
            StateFormula::And(a, b) => write!(f, "({a} & {b})"),
            StateFormula::Or(a, b) => write!(f, "({a} | {b})"),
            StateFormula::Implies(a, b) => write!(f, "({a} => {b})"),
            StateFormula::Prob {
                cmp,
                threshold,
                path,
            } => write!(f, "P{cmp}{threshold} [ {path} ]"),
        }
    }
}

/// A step bound on a temporal operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeBound {
    /// Unbounded.
    #[default]
    None,
    /// `<=t` — within the first `t` steps.
    Upper(u64),
    /// `[a,b]` — at a step in the inclusive window `a..=b` (PRISM's
    /// interval bound). `a <= b` is enforced by the parser.
    Interval(u64, u64),
}

impl TimeBound {
    /// The canonical `<=t` bound.
    pub fn upper(t: u64) -> TimeBound {
        TimeBound::Upper(t)
    }
}

impl fmt::Display for TimeBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeBound::None => Ok(()),
            TimeBound::Upper(t) => write!(f, "<={t}"),
            TimeBound::Interval(a, b) => write!(f, "[{a},{b}]"),
        }
    }
}

/// A pCTL path formula, optionally time-bounded.
#[derive(Debug, Clone, PartialEq)]
pub enum PathFormula {
    /// `X φ` — φ holds in the next state.
    Next(StateFormula),
    /// `φ U[<=t] ψ` — ψ is reached (within `t` steps if bounded), with φ
    /// holding until then.
    Until {
        /// Left operand (must hold until `rhs`).
        lhs: StateFormula,
        /// Right operand (the target).
        rhs: StateFormula,
        /// Step bound.
        bound: TimeBound,
    },
    /// `F[<=t] φ` — φ is eventually reached. Sugar for `true U φ`.
    Finally {
        /// The target formula.
        inner: StateFormula,
        /// Step bound.
        bound: TimeBound,
    },
    /// `G[<=t] φ` — φ holds at every step (up to `t` if bounded). The
    /// paper's best-case property P1 is `G<=T !flag`.
    Globally {
        /// The invariant formula.
        inner: StateFormula,
        /// Step bound.
        bound: TimeBound,
    },
}

impl fmt::Display for PathFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathFormula::Next(inner) => write!(f, "X {inner}"),
            PathFormula::Until { lhs, rhs, bound } => {
                write!(f, "{lhs} U{bound} {rhs}")
            }
            PathFormula::Finally { inner, bound } => {
                write!(f, "F{bound} {inner}")
            }
            PathFormula::Globally { inner, bound } => {
                write!(f, "G{bound} {inner}")
            }
        }
    }
}

/// A reward query (`R=? [...]`).
#[derive(Debug, Clone, PartialEq)]
pub enum RewardQuery {
    /// `I=t` — expected instantaneous reward at exactly step `t`. This is
    /// the paper's average-case property P2 (and C1): "Probability that an
    /// error occurs at exactly the T-th step".
    Instantaneous(u64),
    /// `C<=t` — expected reward accumulated over the first `t` steps.
    Cumulative(u64),
    /// `F φ` — expected reward accumulated strictly before the first
    /// φ-state is reached (PRISM's reachability reward; the target state's
    /// own reward is not counted). Infinite when the target is reached
    /// with probability < 1.
    Reach(StateFormula),
}

impl fmt::Display for RewardQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewardQuery::Instantaneous(t) => write!(f, "I={t}"),
            RewardQuery::Cumulative(t) => write!(f, "C<={t}"),
            RewardQuery::Reach(phi) => write!(f, "F {phi}"),
        }
    }
}

/// A top-level query evaluated against a DTMC's initial distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum Property {
    /// `P=? [path]` — the probability of the path formula from the initial
    /// distribution.
    ProbQuery(PathFormula),
    /// `P ⋈ p [path]` or any boolean state formula — does the initial
    /// distribution satisfy it? (A distribution satisfies a state formula
    /// iff every initial state with positive mass does.)
    Bool(StateFormula),
    /// `R=? [...]` — an expected-reward query.
    RewardQuery(RewardQuery),
    /// `S=? [φ]` — the long-run probability of being in a φ-state.
    SteadyQuery(StateFormula),
    /// `Pmin=? [path]` / `Pmax=? [path]` — the optimal path probability
    /// over all resolutions of nondeterminism. The natural query forms for
    /// MDPs (checked by [`crate::check_mdp_query`]); on a DTMC every
    /// scheduler sees the same chain, so both collapse to `P=?`.
    OptProbQuery(Opt, PathFormula),
    /// `Rmin=? [...]` / `Rmax=? [...]` — the optimal expected reward over
    /// all resolutions of nondeterminism (collapses to `R=?` on a DTMC).
    OptRewardQuery(Opt, RewardQuery),
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Property::ProbQuery(p) => write!(f, "P=? [ {p} ]"),
            Property::Bool(s) => write!(f, "{s}"),
            Property::RewardQuery(r) => write!(f, "R=? [ {r} ]"),
            Property::SteadyQuery(s) => write!(f, "S=? [ {s} ]"),
            Property::OptProbQuery(opt, p) => write!(f, "P{opt}=? [ {p} ]"),
            Property::OptRewardQuery(opt, r) => write!(f, "R{opt}=? [ {r} ]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval() {
        assert!(Cmp::Geq.eval(0.5, 0.5));
        assert!(!Cmp::Gt.eval(0.5, 0.5));
        assert!(Cmp::Leq.eval(0.5, 0.5));
        assert!(!Cmp::Lt.eval(0.5, 0.5));
        assert!(Cmp::Gt.eval(0.6, 0.5));
        assert!(Cmp::Lt.eval(0.4, 0.5));
    }

    #[test]
    fn builders_compose() {
        let f = StateFormula::ap("a").and(StateFormula::ap("b").not());
        assert_eq!(f.to_string(), "(a & !b)");
        let g = StateFormula::ap("x").or(StateFormula::True);
        assert_eq!(g.to_string(), "(x | true)");
    }

    #[test]
    fn display_round_trippable_forms() {
        let p1 = Property::ProbQuery(PathFormula::Globally {
            inner: StateFormula::ap("flag").not(),
            bound: TimeBound::Upper(300),
        });
        assert_eq!(p1.to_string(), "P=? [ G<=300 !flag ]");
        let p2 = Property::RewardQuery(RewardQuery::Instantaneous(300));
        assert_eq!(p2.to_string(), "R=? [ I=300 ]");
        let p3 = Property::ProbQuery(PathFormula::Finally {
            inner: StateFormula::ap("count_exceeds"),
            bound: TimeBound::Upper(300),
        });
        assert_eq!(p3.to_string(), "P=? [ F<=300 count_exceeds ]");
        let u = Property::ProbQuery(PathFormula::Until {
            lhs: StateFormula::ap("a"),
            rhs: StateFormula::ap("b"),
            bound: TimeBound::None,
        });
        assert_eq!(u.to_string(), "P=? [ a U b ]");
        let s = Property::SteadyQuery(StateFormula::ap("flag"));
        assert_eq!(s.to_string(), "S=? [ flag ]");
        let x = Property::ProbQuery(PathFormula::Next(StateFormula::ap("y")));
        assert_eq!(x.to_string(), "P=? [ X y ]");
    }

    #[test]
    fn min_max_query_display() {
        let p = Property::OptProbQuery(
            Opt::Max,
            PathFormula::Finally {
                inner: StateFormula::ap("err"),
                bound: TimeBound::Upper(300),
            },
        );
        assert_eq!(p.to_string(), "Pmax=? [ F<=300 err ]");
        let p = Property::OptProbQuery(
            Opt::Min,
            PathFormula::Globally {
                inner: StateFormula::ap("flag").not(),
                bound: TimeBound::None,
            },
        );
        assert_eq!(p.to_string(), "Pmin=? [ G !flag ]");
        let r = Property::OptRewardQuery(Opt::Min, RewardQuery::Reach(StateFormula::ap("done")));
        assert_eq!(r.to_string(), "Rmin=? [ F done ]");
        let r = Property::OptRewardQuery(Opt::Max, RewardQuery::Cumulative(50));
        assert_eq!(r.to_string(), "Rmax=? [ C<=50 ]");
    }

    #[test]
    fn nested_prob_display() {
        let f = StateFormula::Prob {
            cmp: Cmp::Geq,
            threshold: 0.9,
            path: Box::new(PathFormula::Finally {
                inner: StateFormula::ap("ok"),
                bound: TimeBound::Upper(5),
            }),
        };
        assert_eq!(f.to_string(), "P>=0.9 [ F<=5 ok ]");
    }
}
