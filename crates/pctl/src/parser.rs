//! A PRISM-flavoured concrete syntax for pCTL properties.
//!
//! The grammar (whitespace-insensitive):
//!
//! ```text
//! property := 'P' '=?' '[' path ']'
//!           | ('Pmin' | 'Pmax') '=?' '[' path ']'
//!           | 'R' '=?' '[' reward ']'
//!           | ('Rmin' | 'Rmax') '=?' '[' reward ']'
//!           | 'S' '=?' '[' state ']'
//!           | state                      (boolean query)
//! reward   := 'I' '=' INT | 'C' '<=' INT | 'F' state
//! path     := 'X' state
//!           | ('F' | 'G') bound? state
//!           | state 'U' bound? state
//! bound    := '<=' INT | '[' INT ',' INT ']'
//! state    := or ( '=>' or )?
//! or       := and ( '|' and )*
//! and      := unary ( '&' unary )*
//! unary    := '!' unary | atom
//! atom     := 'true' | 'false' | IDENT | '(' state ')'
//!           | 'P' cmp NUMBER '[' path ']'
//! cmp      := '>=' | '>' | '<=' | '<'
//! ```
//!
//! The paper's properties parse verbatim:
//! `P=? [ G<=300 !flag ]`, `R=? [ I=300 ]`, `P=? [ F<=300 count_exceeds ]`.

use crate::ast::{Cmp, Opt, PathFormula, Property, RewardQuery, StateFormula, TimeBound};
use crate::error::PctlError;

/// Parses a property string.
///
/// # Errors
///
/// Returns [`PctlError::Parse`] with a byte position and message when the
/// input does not match the grammar.
///
/// # Example
///
/// ```
/// use smg_pctl::parse_property;
/// let p = parse_property("P=? [ G<=300 !flag ]")?;
/// assert_eq!(p.to_string(), "P=? [ G<=300 !flag ]");
/// # Ok::<(), smg_pctl::PctlError>(())
/// ```
pub fn parse_property(input: &str) -> Result<Property, PctlError> {
    let mut p = Parser::new(input);
    let prop = p.property()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(prop)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn err(&self, message: &str) -> PctlError {
        PctlError::Parse {
            position: self.pos,
            message: message.to_string(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), PctlError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{token}`")))
        }
    }

    /// Eats a keyword only if it is not a prefix of a longer identifier
    /// (so `F` is a temporal operator but `Flag` is an AP).
    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(kw) {
            let after = &self.rest()[kw.len()..];
            let next = after.chars().next();
            if next.is_none_or(|c| !c.is_alphanumeric() && c != '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn peek_keyword(&mut self, kw: &str) -> bool {
        let save = self.pos;
        let hit = self.eat_keyword(kw);
        self.pos = save;
        hit
    }

    fn integer(&mut self) -> Result<u64, PctlError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .rest()
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit())
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected an integer"));
        }
        self.input[start..self.pos]
            .parse()
            .map_err(|_| self.err("integer out of range"))
    }

    fn number(&mut self) -> Result<f64, PctlError> {
        self.skip_ws();
        let start = self.pos;
        while self.rest().chars().next().is_some_and(|c| {
            c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+'
        }) {
            // Only allow sign right after 'e'/'E' or at the start.
            let c = self.rest().chars().next().unwrap();
            if (c == '-' || c == '+') && self.pos != start {
                let prev = self.input[start..self.pos].chars().last().unwrap();
                if prev != 'e' && prev != 'E' {
                    break;
                }
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        self.input[start..self.pos]
            .parse()
            .map_err(|_| self.err("malformed number"))
    }

    fn identifier(&mut self) -> Result<String, PctlError> {
        self.skip_ws();
        let start = self.pos;
        let mut first = true;
        while let Some(c) = self.rest().chars().next() {
            // Dots are allowed mid-identifier: composed models namespace
            // their atomic propositions as `l.<ap>` / `r.<ap>`
            // (see `smg_dtmc::SyncProduct`).
            let ok = if first {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || c == '_' || c == '.'
            };
            if !ok {
                break;
            }
            first = false;
            self.pos += c.len_utf8();
        }
        if self.pos == start {
            return Err(self.err("expected an identifier"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn property(&mut self) -> Result<Property, PctlError> {
        self.skip_ws();
        // Min/max query forms first: `Pmin`/`Pmax` would otherwise lex as
        // plain identifiers (the bare `P`/`R` keyword checks stop at the
        // word boundary and cannot eat them).
        for (kw, opt) in [("Pmin", Opt::Min), ("Pmax", Opt::Max)] {
            if self.peek_keyword(kw) {
                let save = self.pos;
                assert!(self.eat_keyword(kw));
                if self.eat("=?") {
                    self.expect("[")?;
                    let path = self.path()?;
                    self.expect("]")?;
                    return Ok(Property::OptProbQuery(opt, path));
                }
                // An AP that happens to be called Pmin/Pmax.
                self.pos = save;
                return Ok(Property::Bool(self.state()?));
            }
        }
        for (kw, opt) in [("Rmin", Opt::Min), ("Rmax", Opt::Max)] {
            if self.peek_keyword(kw) {
                let save = self.pos;
                assert!(self.eat_keyword(kw));
                if self.eat("=?") {
                    let q = self.reward_body()?;
                    return Ok(Property::OptRewardQuery(opt, q));
                }
                // An AP that happens to be called Rmin/Rmax.
                self.pos = save;
                return Ok(Property::Bool(self.state()?));
            }
        }
        if self.peek_keyword("P") {
            let save = self.pos;
            assert!(self.eat_keyword("P"));
            if self.eat("=?") {
                self.expect("[")?;
                let path = self.path()?;
                self.expect("]")?;
                return Ok(Property::ProbQuery(path));
            }
            // Bounded P operator as a boolean query.
            self.pos = save;
            return Ok(Property::Bool(self.state()?));
        }
        if self.eat_keyword("R") {
            self.expect("=?")?;
            let q = self.reward_body()?;
            return Ok(Property::RewardQuery(q));
        }
        if self.eat_keyword("S") {
            self.expect("=?")?;
            self.expect("[")?;
            let f = self.state()?;
            self.expect("]")?;
            return Ok(Property::SteadyQuery(f));
        }
        Ok(Property::Bool(self.state()?))
    }

    /// The `[ I=t | C<=t | F φ ]` tail shared by `R`, `Rmin` and `Rmax`
    /// (the caller has already consumed `=?`).
    fn reward_body(&mut self) -> Result<RewardQuery, PctlError> {
        self.expect("[")?;
        let q = if self.eat_keyword("I") {
            self.expect("=")?;
            RewardQuery::Instantaneous(self.integer()?)
        } else if self.eat_keyword("C") {
            self.expect("<=")?;
            RewardQuery::Cumulative(self.integer()?)
        } else if self.eat_keyword("F") {
            RewardQuery::Reach(self.state()?)
        } else {
            return Err(self.err("expected `I=`, `C<=` or `F` in reward query"));
        };
        self.expect("]")?;
        Ok(q)
    }

    fn bound(&mut self) -> Result<TimeBound, PctlError> {
        if self.eat("<=") {
            return Ok(TimeBound::Upper(self.integer()?));
        }
        if self.eat("[") {
            let a = self.integer()?;
            self.expect(",")?;
            let b = self.integer()?;
            self.expect("]")?;
            if a > b {
                return Err(self.err("empty time interval (lower bound exceeds upper)"));
            }
            return Ok(TimeBound::Interval(a, b));
        }
        Ok(TimeBound::None)
    }

    fn path(&mut self) -> Result<PathFormula, PctlError> {
        if self.eat_keyword("X") {
            return Ok(PathFormula::Next(self.state()?));
        }
        if self.eat_keyword("F") {
            let bound = self.bound()?;
            return Ok(PathFormula::Finally {
                inner: self.state()?,
                bound,
            });
        }
        if self.eat_keyword("G") {
            let bound = self.bound()?;
            return Ok(PathFormula::Globally {
                inner: self.state()?,
                bound,
            });
        }
        let lhs = self.state()?;
        if self.eat_keyword("U") {
            let bound = self.bound()?;
            let rhs = self.state()?;
            return Ok(PathFormula::Until { lhs, rhs, bound });
        }
        Err(self.err("expected a path formula (X, F, G, or U)"))
    }

    fn state(&mut self) -> Result<StateFormula, PctlError> {
        let lhs = self.or()?;
        if self.eat("=>") {
            let rhs = self.or()?;
            return Ok(StateFormula::Implies(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn or(&mut self) -> Result<StateFormula, PctlError> {
        let mut lhs = self.and()?;
        while {
            // `|` but not `||` ambiguity: single | only in this grammar.
            self.skip_ws();
            self.rest().starts_with('|')
        } {
            self.pos += 1;
            let rhs = self.and()?;
            lhs = StateFormula::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<StateFormula, PctlError> {
        let mut lhs = self.unary()?;
        while {
            self.skip_ws();
            self.rest().starts_with('&')
        } {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = StateFormula::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<StateFormula, PctlError> {
        if self.eat("!") {
            return Ok(StateFormula::Not(Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<StateFormula, PctlError> {
        if self.eat("(") {
            let f = self.state()?;
            self.expect(")")?;
            return Ok(f);
        }
        if self.eat_keyword("true") {
            return Ok(StateFormula::True);
        }
        if self.eat_keyword("false") {
            return Ok(StateFormula::False);
        }
        // Bounded probability operator `P cmp p [ path ]`.
        if self.peek_keyword("P") {
            let save = self.pos;
            assert!(self.eat_keyword("P"));
            let cmp = if self.eat(">=") {
                Some(Cmp::Geq)
            } else if self.eat("<=") {
                Some(Cmp::Leq)
            } else if self.eat(">") {
                Some(Cmp::Gt)
            } else if self.eat("<") {
                Some(Cmp::Lt)
            } else {
                None
            };
            match cmp {
                Some(cmp) => {
                    let threshold = self.number()?;
                    self.expect("[")?;
                    let path = self.path()?;
                    self.expect("]")?;
                    return Ok(StateFormula::Prob {
                        cmp,
                        threshold,
                        path: Box::new(path),
                    });
                }
                None => {
                    // Plain identifier starting with P.
                    self.pos = save;
                }
            }
        }
        let name = self.identifier()?;
        Ok(StateFormula::Ap(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(s: &str) {
        let p = parse_property(s).unwrap_or_else(|e| panic!("parsing `{s}`: {e}"));
        let printed = p.to_string();
        let p2 = parse_property(&printed).unwrap_or_else(|e| panic!("reparsing `{printed}`: {e}"));
        assert_eq!(p, p2, "round trip of `{s}` via `{printed}`");
    }

    #[test]
    fn paper_properties_parse() {
        // P1, P2, P3, C1 exactly as in the paper (modulo the counter AP).
        round_trip("P=? [ G<=300 !flag ]");
        round_trip("R=? [ I=300 ]");
        round_trip("P=? [ F<=300 count_exceeds ]");
        round_trip("R=? [ I=1000 ]");
    }

    #[test]
    fn structured_forms() {
        round_trip("P=? [ a U<=10 b ]");
        round_trip("P=? [ a U b ]");
        round_trip("P=? [ X done ]");
        round_trip("S=? [ flag ]");
        round_trip("R=? [ C<=50 ]");
        round_trip("R=? [ F done ]");
        round_trip("R=? [ F (converged & !flag) ]");
        // Namespaced APs from composed models (SyncProduct).
        round_trip("P=? [ F<=8 (l.err & r.err) ]");
        round_trip("S=? [ l.flag ]");
        // Interval bounds.
        round_trip("P=? [ F[3,7] flag ]");
        round_trip("P=? [ G[0,4] !flag ]");
        round_trip("P=? [ a U[2,2] b ]");
        round_trip("P=? [ F (a & !b | c) ]");
        round_trip("(a => b)");
        round_trip("P>=0.99 [ F<=5 ok ]");
        round_trip("P<0.001 [ G bad ]");
    }

    #[test]
    fn min_max_queries_parse() {
        round_trip("Pmax=? [ F<=300 err ]");
        round_trip("Pmin=? [ G<=300 !flag ]");
        round_trip("Pmin=? [ a U<=10 b ]");
        round_trip("Pmax=? [ X done ]");
        round_trip("Rmax=? [ I=300 ]");
        round_trip("Rmin=? [ C<=50 ]");
        round_trip("Rmin=? [ F done ]");
        let p = parse_property("Pmax=? [ F err ]").unwrap();
        assert!(matches!(p, Property::OptProbQuery(Opt::Max, _)));
        let p = parse_property("Rmin=? [ F done ]").unwrap();
        assert!(matches!(p, Property::OptRewardQuery(Opt::Min, _)));
        // An atomic proposition that merely *starts* like the keywords.
        let p = parse_property("Pminish").unwrap();
        assert_eq!(p, Property::Bool(StateFormula::ap("Pminish")));
        // A bare AP exactly named Pmin/Rmax still works as a boolean query.
        let p = parse_property("Pmin & flag").unwrap();
        assert_eq!(
            p,
            Property::Bool(StateFormula::ap("Pmin").and(StateFormula::ap("flag")))
        );
        let p = parse_property("Rmax | Rmin").unwrap();
        assert_eq!(
            p,
            Property::Bool(StateFormula::ap("Rmax").or(StateFormula::ap("Rmin")))
        );
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_property("P=?[G<=300 !flag]").unwrap();
        let b = parse_property("  P=?  [  G<=300   ! flag ]  ").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn keywords_vs_identifiers() {
        // `Flag` starts with F but is an AP, not `F lag`.
        let p = parse_property("P=? [ F<=3 Flag ]").unwrap();
        match p {
            Property::ProbQuery(PathFormula::Finally { inner, .. }) => {
                assert_eq!(inner, StateFormula::ap("Flag"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // An AP named `trueish` is not the literal `true`.
        let p = parse_property("trueish").unwrap();
        assert_eq!(p, Property::Bool(StateFormula::ap("trueish")));
    }

    #[test]
    fn precedence() {
        // & binds tighter than |.
        let p = parse_property("a | b & c").unwrap();
        assert_eq!(p.to_string(), "(a | (b & c))");
        // ! binds tightest.
        let p = parse_property("!a & b").unwrap();
        assert_eq!(p.to_string(), "(!a & b)");
        // Parentheses override.
        let p = parse_property("(a | b) & c").unwrap();
        assert_eq!(p.to_string(), "((a | b) & c)");
    }

    #[test]
    fn nested_prob_operator() {
        let p = parse_property("P=? [ F<=10 P>=0.5 [ X ok ] ]").unwrap();
        match p {
            Property::ProbQuery(PathFormula::Finally { inner, bound }) => {
                assert_eq!(bound, TimeBound::Upper(10));
                assert!(matches!(inner, StateFormula::Prob { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_are_located() {
        for bad in [
            "P=? [",
            "P=? [ H flag ]",
            "R=? [ I 300 ]",
            "R=? [ Z=3 ]",
            "P=? [ F<=x flag ]",
            "P=? [ G flag ] trailing",
            "",
            "P>= [ F a ]",
            "()",
            "P=? [ F[5,2] flag ]",
            "P=? [ F[3 7] flag ]",
        ] {
            let e = parse_property(bad);
            assert!(e.is_err(), "`{bad}` should not parse");
            let msg = e.unwrap_err().to_string();
            assert!(msg.contains("parse error"), "{msg}");
        }
    }

    #[test]
    fn scientific_threshold() {
        let p = parse_property("P<1e-6 [ F bad ]").unwrap();
        match p {
            Property::Bool(StateFormula::Prob { threshold, .. }) => {
                assert!((threshold - 1e-6).abs() < 1e-18);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
