//! Checking sessions: one entry point over DTMCs and MDPs with shared
//! precomputation across a whole property family.
//!
//! The paper's workload is never "one property, once" — every table checks
//! a family of properties (P1/P2/P3, BER-style metrics) against the same
//! model. [`CheckSession`] packages that batch shape: it owns an
//! [`AnyModel`] (chain or MDP), dispatches each [`Property`] to the right
//! checker, and memoizes the work that related properties share —
//! satisfaction sets of common subformulas, unbounded
//! reachability/until/reward value vectors, and certified interval
//! brackets (whose qualitative `Prob0`/`Prob1`/MEC pre-passes dominate
//! the per-query cost on MDPs). Transposes are cached inside the model
//! itself ([`smg_dtmc::CsrMatrix`] builds them lazily, once), so they are
//! shared simply because the session keeps one model alive across calls.
//!
//! Because the session *owns* the model and models are immutable, cache
//! invalidation is by construction: an entry, once computed, is valid for
//! the session's lifetime. Cache keys are the exact solver inputs (operand
//! bit-sets, optimization direction, ε bit pattern), and the cached and
//! uncached paths execute the same code, so batching never changes an
//! answer — `tests/session_identity.rs` in the workspace pins
//! `check_all` ≡ one-by-one `check_query`/`check_mdp_query` over
//! randomized models and batches, in both plain and certified modes.

use crate::ast::{Property, StateFormula};
use crate::check::{CheckOptions, CheckResult, DtmcCache, Evaluator};
use crate::error::PctlError;
use crate::mdp::{MdpCache, MdpEvaluator};
use smg_dtmc::{pool, BitVec, Dtmc, DtmcError};
use smg_mdp::{Mdp, ViOptions};
use smg_obs as obs;
use std::cell::RefCell;

/// An explicit model of either family — the common currency between the
/// language front end ([`smg-lang`'s] `compile_any`), the CLI, and
/// [`CheckSession`]. Callers that don't care whether a program declared
/// `dtmc` or `mdp` can hold an `AnyModel` and let the session dispatch.
///
/// [`smg-lang`'s]: https://docs.rs/smg-lang
#[derive(Debug, Clone)]
pub enum AnyModel {
    /// A discrete-time Markov chain.
    Dtmc(Dtmc),
    /// A Markov decision process.
    Mdp(Mdp),
}

impl AnyModel {
    /// The model family as a lowercase tag (`"dtmc"` / `"mdp"`), the same
    /// words the modeling language uses as headers.
    pub fn kind(&self) -> &'static str {
        match self {
            AnyModel::Dtmc(_) => "dtmc",
            AnyModel::Mdp(_) => "mdp",
        }
    }

    /// Whether the model carries nondeterminism (quantitative queries then
    /// need the `Pmin`/`Pmax`/`Rmin`/`Rmax` forms).
    pub fn is_mdp(&self) -> bool {
        matches!(self, AnyModel::Mdp(_))
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        match self {
            AnyModel::Dtmc(d) => d.n_states(),
            AnyModel::Mdp(m) => m.n_states(),
        }
    }

    /// The state set of a label.
    ///
    /// # Errors
    ///
    /// [`DtmcError::UnknownLabel`] when the label does not exist.
    pub fn label(&self, name: &str) -> Result<&BitVec, DtmcError> {
        match self {
            AnyModel::Dtmc(d) => d.label(name),
            AnyModel::Mdp(m) => m.label(name),
        }
    }

    /// Label names, in the model's storage order.
    pub fn label_names(&self) -> Vec<&str> {
        match self {
            AnyModel::Dtmc(d) => d.label_names(),
            AnyModel::Mdp(m) => m.label_names(),
        }
    }

    /// The chain, when this is one.
    pub fn as_dtmc(&self) -> Option<&Dtmc> {
        match self {
            AnyModel::Dtmc(d) => Some(d),
            AnyModel::Mdp(_) => None,
        }
    }

    /// The MDP, when this is one.
    pub fn as_mdp(&self) -> Option<&Mdp> {
        match self {
            AnyModel::Dtmc(_) => None,
            AnyModel::Mdp(m) => Some(m),
        }
    }
}

impl From<Dtmc> for AnyModel {
    fn from(d: Dtmc) -> AnyModel {
        AnyModel::Dtmc(d)
    }
}

impl From<Mdp> for AnyModel {
    fn from(m: Mdp) -> AnyModel {
        AnyModel::Mdp(m)
    }
}

/// The dedicated pool for a lane count, created once per count per
/// process — [`pool::shared`]'s memoized registry, so a session-per-model
/// parameter sweep never accumulates parked OS threads without bound.
fn shared_pool(lanes: usize) -> &'static pool::Pool {
    pool::shared(lanes)
}

/// The kinds of memoized work a session's caches distinguish. Each memo
/// lookup in the DTMC and MDP evaluators is tagged with one of these, so
/// telemetry can attribute hits to the family of precomputation they
/// saved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// Satisfaction bit-sets of (sub)formulas.
    Sat,
    /// Numeric value vectors (reachability, until, reachability rewards).
    Values,
    /// Certified `[lo, hi]` brackets from interval iteration.
    Certified,
    /// Long-run (steady-state) probabilities.
    Steady,
}

impl CacheKind {
    /// Every kind, in reporting order.
    pub const ALL: [CacheKind; 4] = [
        CacheKind::Sat,
        CacheKind::Values,
        CacheKind::Certified,
        CacheKind::Steady,
    ];

    /// The stable label used in JSON output and metric labels.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheKind::Sat => "sat",
            CacheKind::Values => "values",
            CacheKind::Certified => "certified",
            CacheKind::Steady => "steady",
        }
    }
}

/// Hit/miss counters for one [`CacheKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that computed (and stored) a fresh entry.
    pub misses: u64,
}

/// Cache telemetry of a session: how many memoized lookups were answered
/// from the cache versus computed, broken down by [`CacheKind`].
/// `hits() > 0` across a `check_all` batch is the signature of shared
/// precomputation actually paying off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Satisfaction-set lookups.
    pub sat: KindStats,
    /// Value-vector lookups (reach, until, reachability rewards).
    pub values: KindStats,
    /// Certified-bracket lookups.
    pub certified: KindStats,
    /// Steady-state lookups.
    pub steady: KindStats,
}

impl CacheStats {
    /// The counters for one kind.
    pub fn kind(&self, kind: CacheKind) -> KindStats {
        match kind {
            CacheKind::Sat => self.sat,
            CacheKind::Values => self.values,
            CacheKind::Certified => self.certified,
            CacheKind::Steady => self.steady,
        }
    }

    /// Total lookups answered from the cache, across all kinds.
    pub fn hits(&self) -> u64 {
        CacheKind::ALL.iter().map(|&k| self.kind(k).hits).sum()
    }

    /// Total lookups that had to compute, across all kinds.
    pub fn misses(&self) -> u64 {
        CacheKind::ALL.iter().map(|&k| self.kind(k).misses).sum()
    }

    fn slot(&mut self, kind: CacheKind) -> &mut KindStats {
        match kind {
            CacheKind::Sat => &mut self.sat,
            CacheKind::Values => &mut self.values,
            CacheKind::Certified => &mut self.certified,
            CacheKind::Steady => &mut self.steady,
        }
    }

    /// Counts one cache hit (and reports it through the instrumentation
    /// seam).
    pub(crate) fn record_hit(&mut self, kind: CacheKind) {
        self.slot(kind).hits += 1;
        obs::counter_add(
            "smg_session_cache_hits_total",
            Some(("kind", kind.as_str())),
            1,
        );
    }

    /// Counts one cache miss (and reports it through the instrumentation
    /// seam).
    pub(crate) fn record_miss(&mut self, kind: CacheKind) {
        self.slot(kind).misses += 1;
        obs::counter_add(
            "smg_session_cache_misses_total",
            Some(("kind", kind.as_str())),
            1,
        );
    }

    /// The element-wise sum of two stats (the session merges its DTMC and
    /// MDP cache telemetry; exactly one side is ever non-zero).
    pub(crate) fn merged(self, other: CacheStats) -> CacheStats {
        let mut out = self;
        for kind in CacheKind::ALL {
            let add = other.kind(kind);
            let slot = out.slot(kind);
            slot.hits += add.hits;
            slot.misses += add.misses;
        }
        out
    }
}

/// A batch-oriented checking session over one immutable model.
///
/// Built with [`CheckSession::new`] and the builder methods
/// ([`certified`](CheckSession::certified),
/// [`threads`](CheckSession::threads)); queried with
/// [`check`](CheckSession::check), [`check_all`](CheckSession::check_all)
/// and [`sat`](CheckSession::sat). Results are exactly what the
/// corresponding free functions ([`crate::check_query_with`] /
/// [`crate::check_mdp_query_with`]) return — the session only adds
/// dispatch over the model family and the shared precomputation cache.
///
/// # Example
///
/// ```
/// use smg_dtmc::{explore, DtmcModel, ExploreOptions};
/// use smg_pctl::{parse_property, CheckSession};
///
/// struct Coin;
/// impl DtmcModel for Coin {
///     type State = bool;
///     fn initial_states(&self) -> Vec<(bool, f64)> { vec![(false, 1.0)] }
///     fn transitions(&self, _: &bool) -> Vec<(bool, f64)> {
///         vec![(false, 0.5), (true, 0.5)]
///     }
///     fn atomic_propositions(&self) -> Vec<&'static str> { vec!["heads"] }
///     fn holds(&self, ap: &str, s: &bool) -> bool { ap == "heads" && *s }
///     fn state_reward(&self, s: &bool) -> f64 { if *s { 1.0 } else { 0.0 } }
/// }
///
/// let e = explore(&Coin, &ExploreOptions::default())?;
/// let session = CheckSession::new(e.dtmc);
/// let family = [
///     parse_property("P=? [ F heads ]")?,
///     parse_property("P=? [ G !heads ]")?, // shares the reachability solve
///     parse_property("R=? [ F heads ]")?,  // shares the qualitative pre-pass
/// ];
/// let results = session.check_all(&family)?;
/// assert!((results[0].value() - 1.0).abs() < 1e-9);
/// assert!(results[1].value().abs() < 1e-9);
/// assert!(session.cache_stats().hits() > 0); // the batch shared real work
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CheckSession {
    model: AnyModel,
    opts: CheckOptions,
    vio: ViOptions,
    /// Explicit worker-lane pin from [`CheckSession::threads`]; queries run
    /// inside [`smg_dtmc::par::with_lane_scope`] when set, so the chain
    /// kernels follow the same pin as the MDP value-iteration pool.
    lanes: Option<usize>,
    dtmc_cache: RefCell<DtmcCache>,
    mdp_cache: RefCell<MdpCache>,
}

impl CheckSession {
    /// Opens a session over a model (anything convertible into an
    /// [`AnyModel`]: a [`Dtmc`], an [`Mdp`], or an `AnyModel` itself).
    pub fn new(model: impl Into<AnyModel>) -> CheckSession {
        CheckSession {
            model: model.into(),
            opts: CheckOptions::default(),
            vio: ViOptions::default(),
            lanes: None,
            dtmc_cache: RefCell::new(DtmcCache::default()),
            mdp_cache: RefCell::new(MdpCache::default()),
        }
    }

    /// Requests certified interval iteration with width below `epsilon`
    /// for every unbounded query of this session (see
    /// [`CheckOptions::certified`]).
    #[must_use]
    pub fn certified(mut self, epsilon: f64) -> CheckSession {
        self.opts = CheckOptions::certified(epsilon);
        self
    }

    /// Requests topological (SCC-ordered) certified solving for this
    /// session's queries: the condensation DAG is solved one component at
    /// a time in reverse topological order and results are tagged
    /// `Solver::TopologicalII`. Takes effect for certified queries (pair
    /// with [`certified`](CheckSession::certified)); see
    /// [`CheckOptions::topo`].
    #[must_use]
    pub fn topological(mut self) -> CheckSession {
        self.opts = self.opts.topological();
        self
    }

    /// Replaces the session's checking options wholesale.
    #[must_use]
    pub fn with_options(mut self, opts: CheckOptions) -> CheckSession {
        self.opts = opts;
        self
    }

    /// Dispatches this session's solver kernels on a dedicated persistent
    /// pool of `n` worker lanes (a lane count of 1 is the sequential
    /// fallback; results are bit-identical for every lane count). The pin
    /// covers **both** engines: MDP value-iteration backups take the pool
    /// through their options, and the DTMC chain kernels (interval sweeps,
    /// backward products) are pinned through a thread-local lane scope
    /// ([`smg_dtmc::par::with_lane_scope`]) wrapped around every query, so
    /// `SMG_THREADS` no longer leaks through for chains. Pools are
    /// process-wide resources shared by every session requesting the same
    /// lane count, so building sessions in a loop does not accumulate
    /// threads.
    #[must_use]
    pub fn threads(mut self, n: usize) -> CheckSession {
        let n = n.max(1);
        self.vio.pool = Some(shared_pool(n));
        self.lanes = Some(n);
        self
    }

    /// Replaces the session's checking options **in place** — the
    /// non-consuming form of [`with_options`](CheckSession::with_options),
    /// for sessions shared behind a lock (a resident daemon serves many
    /// requests, each with its own `certified`/`topo` choice, through one
    /// long-lived session). Changing options never invalidates the caches:
    /// cache keys embed the exact solver inputs (operand bit-sets,
    /// optimization direction, ε bit pattern), so entries computed under
    /// other options simply stop matching — memoization can only skip
    /// recomputation, never change an answer.
    pub fn set_options(&mut self, opts: CheckOptions) {
        self.opts = opts;
    }

    /// Sets or clears the worker-lane pin in place — the non-consuming
    /// form of [`threads`](CheckSession::threads). `Some(n)` pins both
    /// engines to a dedicated `n`-lane pool (clamped to at least one);
    /// `None` restores the default dispatch (`SMG_THREADS` / core count).
    /// Like [`set_options`](CheckSession::set_options), this is safe on a
    /// session whose caches are already warm: lane count never changes
    /// results, only where the sweeps run.
    pub fn set_threads(&mut self, n: Option<usize>) {
        match n {
            Some(n) => {
                let n = n.max(1);
                self.vio.pool = Some(shared_pool(n));
                self.lanes = Some(n);
            }
            None => {
                self.vio.pool = None;
                self.lanes = None;
            }
        }
    }

    /// Runs `f` under this session's lane pin, if one was requested.
    fn with_lanes<R>(&self, f: impl FnOnce() -> R) -> R {
        match self.lanes {
            Some(n) => smg_dtmc::par::with_lane_scope(n, f),
            None => f(),
        }
    }

    /// The model this session checks.
    pub fn model(&self) -> &AnyModel {
        &self.model
    }

    /// The options every query of this session runs with.
    pub fn options(&self) -> &CheckOptions {
        &self.opts
    }

    /// Consumes the session, returning the model.
    pub fn into_model(self) -> AnyModel {
        self.model
    }

    /// Checks one property, dispatching on the model family.
    ///
    /// # Errors
    ///
    /// As for [`crate::check_query_with`] (chains) and
    /// [`crate::check_mdp_query_with`] (MDPs) — unknown labels,
    /// non-convergence, scheduler-ambiguous query forms on MDPs,
    /// uncertifiable formulas in certified mode.
    pub fn check(&self, property: &Property) -> Result<CheckResult, PctlError> {
        self.with_lanes(|| match &self.model {
            AnyModel::Dtmc(d) => {
                Evaluator::cached(d, &self.dtmc_cache).check_query_with(property, &self.opts)
            }
            AnyModel::Mdp(m) => MdpEvaluator::cached(m, self.vio, &self.mdp_cache)
                .check_mdp_query_with(property, &self.opts),
        })
    }

    /// Checks a property family in order, sharing precomputation across
    /// the batch; fails fast on the first erroring property.
    ///
    /// # Errors
    ///
    /// As for [`CheckSession::check`].
    pub fn check_all(&self, properties: &[Property]) -> Result<Vec<CheckResult>, PctlError> {
        properties.iter().map(|p| self.check(p)).collect()
    }

    /// The satisfaction set of a state formula (memoized like everything
    /// else in the session).
    ///
    /// # Errors
    ///
    /// As for [`crate::sat_states`] (chains) and [`crate::sat_states_mdp`]
    /// (MDPs; nested `P⋈p` operators are rejected there).
    pub fn sat(&self, formula: &StateFormula) -> Result<BitVec, PctlError> {
        self.with_lanes(|| match &self.model {
            AnyModel::Dtmc(d) => Evaluator::cached(d, &self.dtmc_cache).sat_states(formula),
            AnyModel::Mdp(m) => {
                MdpEvaluator::cached(m, self.vio, &self.mdp_cache).sat_states_mdp(formula)
            }
        })
    }

    /// Cache telemetry accumulated so far, per cache kind.
    pub fn cache_stats(&self) -> CacheStats {
        let (d, m) = (self.dtmc_cache.borrow(), self.mdp_cache.borrow());
        d.stats.merged(m.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_query, check_query_with, Solver};
    use crate::mdp::{check_mdp_query, check_mdp_query_with};
    use crate::parser::parse_property;
    use smg_mdp::MdpBuilder;
    use std::collections::BTreeMap;

    /// The DTMC checker's test gadget: 0 →(.5) 1 | 2; 1 →(.5) goal | 0;
    /// 2 absorbing "bad"; 3 absorbing "goal" with reward 1.
    fn gadget() -> Dtmc {
        use smg_dtmc::{matrix::CsrMatrix, TransitionMatrix};
        let rows = vec![
            vec![(1u32, 0.5), (2, 0.5)],
            vec![(0, 0.5), (3, 0.5)],
            vec![(2, 1.0)],
            vec![(3, 1.0)],
        ];
        let matrix = TransitionMatrix::Sparse(CsrMatrix::from_rows(rows).unwrap());
        let mut labels = BTreeMap::new();
        labels.insert("goal".to_string(), BitVec::from_fn(4, |i| i == 3));
        labels.insert("bad".to_string(), BitVec::from_fn(4, |i| i == 2));
        Dtmc::new(matrix, vec![(0, 1.0)], labels, vec![0.0, 0.0, 0.0, 1.0]).unwrap()
    }

    fn gadget_mdp() -> Mdp {
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(1, 0.5), (2, 0.5)]).unwrap();
        b.push_action(&mut [(0, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 0.5), (0, 0.5)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("goal".to_string(), BitVec::from_fn(4, |i| i == 3));
        labels.insert("bad".to_string(), BitVec::from_fn(4, |i| i == 2));
        Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![0.0, 0.0, 0.0, 1.0]).unwrap()
    }

    const DTMC_FAMILY: &[&str] = &[
        "P=? [ F goal ]",
        "P=? [ G !goal ]",
        "R=? [ F goal ]",
        "P>=0.5 [ F goal ]",
        "P=? [ F<=4 goal ]",
        "S=? [ bad ]",
    ];

    #[test]
    fn dtmc_batch_matches_one_by_one_and_hits_cache() {
        let d = gadget();
        let session = CheckSession::new(d.clone());
        let props: Vec<_> = DTMC_FAMILY
            .iter()
            .map(|p| parse_property(p).unwrap())
            .collect();
        let batch = session.check_all(&props).unwrap();
        for (p, r) in props.iter().zip(&batch) {
            let solo = check_query(&d, p).unwrap();
            assert_eq!(solo.value().to_bits(), r.value().to_bits(), "{p}");
            assert_eq!(solo.interval(), r.interval(), "{p}");
            assert_eq!(solo.solver(), r.solver(), "{p}");
            assert_eq!(solo.verdict(), r.verdict(), "{p}");
        }
        // `F goal`, `G !goal`, `R [F goal]` and the threshold operator all
        // share the one unbounded reachability solve.
        let stats = session.cache_stats();
        assert!(stats.hits() >= 3, "stats = {stats:?}");
        assert!(stats.misses() > 0);
    }

    #[test]
    fn certified_batch_matches_one_by_one() {
        let d = gadget();
        let session = CheckSession::new(d.clone()).certified(1e-9);
        let props: Vec<_> = [
            "P=? [ F goal ]",
            "P=? [ G !goal ]",
            "R=? [ F (goal | bad) ]",
        ]
        .iter()
        .map(|p| parse_property(p).unwrap())
        .collect();
        let opts = CheckOptions::certified(1e-9);
        let batch = session.check_all(&props).unwrap();
        for (p, r) in props.iter().zip(&batch) {
            let solo = check_query_with(&d, p, &opts).unwrap();
            assert_eq!(solo.value().to_bits(), r.value().to_bits(), "{p}");
            assert_eq!(solo.interval(), r.interval(), "{p}");
            assert_eq!(solo.solver(), r.solver(), "{p}");
        }
        assert_eq!(batch[0].solver(), Solver::IntervalIteration);
        // F goal and G !goal share a certified bracket: the G query's
        // target set ¬(¬goal) is bit-identical to goal.
        assert!(session.cache_stats().hits() > 0);
    }

    #[test]
    fn mdp_batch_matches_one_by_one() {
        let m = gadget_mdp();
        let props: Vec<_> = [
            "Pmax=? [ F goal ]",
            "Pmin=? [ G !goal ]",
            "Rmax=? [ F goal ]",
            "Pmax=? [ F<=4 goal ]",
            "!goal",
        ]
        .iter()
        .map(|p| parse_property(p).unwrap())
        .collect();
        for certified in [false, true] {
            let opts = if certified {
                CheckOptions::certified(1e-9)
            } else {
                CheckOptions::default()
            };
            let session = CheckSession::new(m.clone()).with_options(opts);
            let batch = session.check_all(&props).unwrap();
            for (p, r) in props.iter().zip(&batch) {
                let solo = check_mdp_query_with(&m, p, &opts).unwrap();
                assert_eq!(solo.value().to_bits(), r.value().to_bits(), "{p}");
                assert_eq!(solo.interval(), r.interval(), "{p}");
                assert_eq!(solo.solver(), r.solver(), "{p}");
            }
            // Pmax [F goal] and Pmin [G !goal] share work (the G query
            // duals to a Pmax reachability of the complement-complement
            // set); goal's sat-set is shared everywhere.
            assert!(session.cache_stats().hits() > 0, "certified={certified}");
        }
    }

    #[test]
    fn topological_sessions_match_global_certified() {
        let props: Vec<_> = [
            "P=? [ F goal ]",
            "P=? [ G !goal ]",
            "R=? [ F (goal | bad) ]",
        ]
        .iter()
        .map(|p| parse_property(p).unwrap())
        .collect();
        let global = CheckSession::new(gadget()).certified(1e-9);
        let topo = CheckSession::new(gadget()).certified(1e-9).topological();
        for (g, t) in global
            .check_all(&props)
            .unwrap()
            .iter()
            .zip(&topo.check_all(&props).unwrap())
        {
            assert_eq!(t.solver(), Solver::TopologicalII);
            assert!((g.value() - t.value()).abs() < 2e-9);
        }
        let mprops: Vec<_> = ["Pmax=? [ F goal ]", "Rmax=? [ F goal ]"]
            .iter()
            .map(|p| parse_property(p).unwrap())
            .collect();
        let global = CheckSession::new(gadget_mdp()).certified(1e-9);
        let topo = CheckSession::new(gadget_mdp())
            .certified(1e-9)
            .topological();
        for (g, t) in global
            .check_all(&mprops)
            .unwrap()
            .iter()
            .zip(&topo.check_all(&mprops).unwrap())
        {
            assert_eq!(t.solver(), Solver::TopologicalII);
            if g.value().is_finite() {
                assert!((g.value() - t.value()).abs() < 2e-9);
            } else {
                assert_eq!(g.value(), t.value());
            }
        }
    }

    #[test]
    fn session_dispatches_errors_like_the_free_functions() {
        let m = gadget_mdp();
        let session = CheckSession::new(m.clone());
        let plain = parse_property("P=? [ F goal ]").unwrap();
        let e = session.check(&plain).unwrap_err();
        assert!(matches!(e, PctlError::Unsupported { .. }));
        assert!(check_mdp_query(&m, &plain).is_err());
        // check_all fails fast but leaves the session usable.
        let props = vec![parse_property("Pmax=? [ F goal ]").unwrap(), plain];
        assert!(session.check_all(&props).is_err());
        assert!(session.check(&props[0]).is_ok());
    }

    #[test]
    fn any_model_accessors() {
        let am: AnyModel = gadget().into();
        assert_eq!(am.kind(), "dtmc");
        assert!(!am.is_mdp());
        assert_eq!(am.n_states(), 4);
        assert!(am.as_dtmc().is_some() && am.as_mdp().is_none());
        assert_eq!(am.label("goal").unwrap().count_ones(), 1);
        assert!(am.label("nope").is_err());
        let mut names = am.label_names();
        names.sort_unstable();
        assert_eq!(names, vec!["bad", "goal"]);
        let am: AnyModel = gadget_mdp().into();
        assert_eq!(am.kind(), "mdp");
        assert!(am.is_mdp() && am.as_mdp().is_some());
    }

    #[test]
    fn sat_cache_does_not_alias_tricky_label_names() {
        use smg_dtmc::{matrix::CsrMatrix, TransitionMatrix};
        // A label literally named "!x": under Display both Ap("!x") and
        // Not(Ap("x")) render as `!x`, so a Display-keyed cache would
        // alias them. Both label sets are {0}, so the two formulas have
        // *different* satisfaction sets ({0} vs {1}).
        let matrix = TransitionMatrix::Sparse(
            CsrMatrix::from_rows(vec![vec![(1u32, 1.0)], vec![(1, 1.0)]]).unwrap(),
        );
        let mut labels = BTreeMap::new();
        labels.insert("x".to_string(), BitVec::from_fn(2, |i| i == 0));
        labels.insert("!x".to_string(), BitVec::from_fn(2, |i| i == 0));
        let d = Dtmc::new(matrix, vec![(0, 1.0)], labels, vec![0.0, 0.0]).unwrap();
        use crate::ast::StateFormula;
        for first_not in [false, true] {
            let session = CheckSession::new(d.clone());
            let not_x = StateFormula::ap("x").not();
            let ap_bang_x = StateFormula::ap("!x");
            let (a, b) = if first_not {
                (
                    session.sat(&not_x).unwrap(),
                    session.sat(&ap_bang_x).unwrap(),
                )
            } else {
                let b = session.sat(&ap_bang_x).unwrap();
                (session.sat(&not_x).unwrap(), b)
            };
            assert_eq!(a, BitVec::from_fn(2, |i| i == 1), "!x as negation");
            assert_eq!(b, BitVec::from_fn(2, |i| i == 0), "\"!x\" as atom");
        }
    }

    #[test]
    fn shared_pools_are_reused_per_lane_count() {
        let a = super::shared_pool(3);
        let b = super::shared_pool(3);
        assert!(std::ptr::eq(a, b), "same lane count must share one pool");
    }

    #[test]
    fn threads_pins_dtmc_kernels_and_answers_match() {
        // Large enough to clear the 4k-row parallel threshold, so the lane
        // scope actually routes the chain kernels; every lane count must
        // produce a sound (and here bit-identical) certified answer.
        let chain = smg_dtmc::synthetic::layered_chain(50, 120);
        let props: Vec<_> = ["P=? [ F target ]", "R=? [ F absorbing ]"]
            .iter()
            .map(|p| parse_property(p).unwrap())
            .collect();
        let base = CheckSession::new(chain.clone()).certified(1e-9);
        let baseline = base.check_all(&props).unwrap();
        for lanes in [1usize, 2, 3] {
            let pinned = CheckSession::new(chain.clone())
                .certified(1e-9)
                .threads(lanes);
            for (b, r) in baseline.iter().zip(&pinned.check_all(&props).unwrap()) {
                let (blo, bhi) = b.interval().unwrap();
                let (rlo, rhi) = r.interval().unwrap();
                assert!(rhi - rlo < 1e-9, "lanes={lanes}");
                assert!(rlo <= bhi + 1e-12 && blo <= rhi + 1e-12, "lanes={lanes}");
            }
        }
    }

    /// The daemon shares one session per resident model behind a
    /// `Mutex<CheckSession>`, so the session must be `Send` (moved into
    /// handler threads) even though its caches are single-owner
    /// `RefCell`s. This is a compile-time contract: losing `Send` (say
    /// by caching an `Rc`) breaks resident serving.
    #[test]
    fn sessions_are_send_for_locked_sharing() {
        fn assert_send<T: Send>() {}
        assert_send::<CheckSession>();
        assert_send::<std::sync::Mutex<CheckSession>>();
    }

    /// In-place option/thread mutation answers identically to a fresh
    /// session built with the consuming builders, and flipping options
    /// back and forth over a warm cache never changes an answer.
    #[test]
    fn set_options_and_set_threads_match_builders_on_warm_caches() {
        let props: Vec<_> = ["P=? [ F goal ]", "R=? [ F goal ]", "P=? [ G !bad ]"]
            .iter()
            .map(|p| parse_property(p).unwrap())
            .collect();
        let plain = CheckSession::new(gadget()).check_all(&props).unwrap();
        let certified = CheckSession::new(gadget())
            .certified(1e-8)
            .check_all(&props)
            .unwrap();

        let mut session = CheckSession::new(gadget());
        for _round in 0..2 {
            session.set_options(CheckOptions::default());
            session.set_threads(None);
            for (a, b) in plain.iter().zip(&session.check_all(&props).unwrap()) {
                assert_eq!(a.value().to_bits(), b.value().to_bits());
                assert_eq!(a.solver(), b.solver());
                assert_eq!(a.interval(), b.interval());
            }
            session.set_options(CheckOptions::certified(1e-8));
            session.set_threads(Some(2));
            for (a, b) in certified.iter().zip(&session.check_all(&props).unwrap()) {
                assert_eq!(a.value().to_bits(), b.value().to_bits());
                assert_eq!(a.solver(), b.solver());
                assert_eq!(a.interval(), b.interval());
            }
        }
        // `Some(n)` pins a shared pool, `None` clears the pin again.
        session.set_threads(Some(3));
        assert!(session.options().certify.is_some());
        session.set_threads(None);
    }

    #[test]
    fn sat_is_memoized_and_threads_builder_works() {
        let session = CheckSession::new(gadget()).threads(2);
        let f = parse_property("goal | bad").unwrap();
        let crate::ast::Property::Bool(f) = f else {
            unreachable!()
        };
        let a = session.sat(&f).unwrap();
        let before = session.cache_stats();
        let b = session.sat(&f).unwrap();
        assert_eq!(a, b);
        assert!(session.cache_stats().hits() > before.hits());
    }
}
