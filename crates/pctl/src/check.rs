//! The pCTL model checker.
//!
//! Two evaluation styles are provided, mirroring how PRISM separates
//! satisfaction sets from numerical queries:
//!
//! * [`sat_states`] computes, for any state formula, the set of satisfying
//!   states (bounded `P⋈p` operators are resolved by backward value
//!   iteration so the operator can be nested).
//! * [`check_query`] evaluates a top-level [`Property`] against the chain's
//!   initial distribution. For `P=? [...]` it uses the *forward* transient
//!   engine (one pass, no per-state vectors), which is how the paper's
//!   single-initial-state experiments are computed.
//!
//! The two styles agree; `forward_backward_agree` in the tests pins this.
//!
//! Internally every algorithm is a method on an evaluator (`Evaluator`):
//! the public free functions run an *uncached* evaluator, while a
//! [`crate::session::CheckSession`] runs a *cached* one whose cache
//! (`DtmcCache`) memoizes satisfaction sets and the expensive iterative
//! solves across a whole property family. Both run the identical code
//! path, so the cache can never change an answer — only skip recomputing
//! it.

use crate::ast::{PathFormula, Property, RewardQuery, StateFormula, TimeBound};
use crate::error::PctlError;
use crate::session::{CacheKind, CacheStats};
use smg_dtmc::{solve, transient, BitVec, Dtmc};
use smg_obs as obs;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tolerance for unbounded-until value iteration.
const UNBOUNDED_TOL: f64 = 1e-12;
/// Iteration budget for unbounded queries.
const UNBOUNDED_MAX_ITER: usize = 1_000_000;
/// Iteration budget for certified interval iteration (dual sweeps close a
/// width, not a residual, so slow-mixing models legitimately need more
/// sweeps than the heuristic test would have taken). Shared with the MDP
/// checker.
pub(crate) const CERTIFIED_MAX_ITER: usize = 50_000_000;
/// Tolerance for steady-state detection.
const STEADY_TOL: f64 = 1e-13;
/// Step budget for steady-state detection.
const STEADY_MAX_STEPS: usize = 1_000_000;

/// Options shared by [`check_query_with`] and
/// [`crate::mdp::check_mdp_query_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CheckOptions {
    /// When set, unbounded reachability/until/globally probabilities and
    /// reachability rewards are solved by **certified interval iteration**
    /// with this ε: the result carries a sound `[lo, hi]` bracket of width
    /// below ε ([`CheckResult::interval`]) instead of trusting a residual
    /// test. Finite-horizon queries are exact arithmetic either way and
    /// report the degenerate `[v, v]`; steady-state detection is not
    /// certified and reports no interval. Formulas nesting an *unbounded*
    /// `P⋈p` operator are rejected in this mode — their satisfaction sets
    /// could only come from residual iteration, which would silently void
    /// the certificate.
    pub certify: Option<f64>,
    /// When set alongside [`certify`](CheckOptions::certify), certified
    /// solves run **topologically**: the state graph is condensed to its
    /// SCC DAG and components are solved one at a time in reverse
    /// topological order, with already-certified successor values folded
    /// in as constants ([`solve::topo_interval_reach_values`] and friends
    /// on chains, `smg_mdp::vi::topo_certified_*` on MDPs). Answers carry
    /// the same sound `[lo, hi]` guarantee — the certificate is closed per
    /// component instead of globally — and the result is tagged
    /// [`Solver::TopologicalII`]. Without `certify` this flag has no
    /// effect.
    pub topo: bool,
}

impl CheckOptions {
    /// Options requesting a certified interval of width below `epsilon`.
    pub fn certified(epsilon: f64) -> CheckOptions {
        CheckOptions {
            certify: Some(epsilon),
            topo: false,
        }
    }

    /// Requests topological (SCC-ordered) solving for certified queries;
    /// see [`CheckOptions::topo`].
    #[must_use]
    pub fn topological(mut self) -> CheckOptions {
        self.topo = true;
        self
    }
}

/// The numerical engine that produced a [`CheckResult`] — reported so a
/// user can tell a certified answer from a heuristically converged one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Exact finite-horizon arithmetic (forward transient propagation or
    /// bounded backward iteration) — no convergence test involved.
    Transient,
    /// Unbounded value/power iteration stopped on a heuristic residual
    /// test (`delta < tol`), which bounds nothing.
    Iterative,
    /// Certified interval iteration: dual bounds with a qualitative
    /// pre-pass, terminated on `upper − lower < ε` pointwise.
    IntervalIteration,
    /// Certified interval iteration run **topologically**: the SCC
    /// condensation is solved one component at a time in reverse
    /// topological order, trivial components by closed-form
    /// backsubstitution, with the `upper − lower < ε` test closed per
    /// component. Same soundness guarantee as
    /// [`IntervalIteration`](Solver::IntervalIteration).
    TopologicalII,
}

impl Solver {
    /// The stable tag used in JSON output and metric labels (also the
    /// `Display` text).
    pub fn as_str(self) -> &'static str {
        match self {
            Solver::Transient => "transient",
            Solver::Iterative => "value-iteration",
            Solver::IntervalIteration => "interval-iteration",
            Solver::TopologicalII => "topological-interval-iteration",
        }
    }
}

impl std::fmt::Display for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A query engine's verdict: the point value, the engine that produced
/// it, and the value bracket where one exists (shared between the DTMC
/// and MDP checkers).
pub(crate) type EngineValue = (f64, Solver, Option<(f64, f64)>);

/// The outcome of checking a property, together with the wall-clock time
/// spent (the paper's tables report "time (seconds), accounting for both
/// model construction and model checking"; model-construction time is
/// reported separately by [`smg_dtmc::BuildStats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    value: f64,
    boolean: Option<bool>,
    interval: Option<(f64, f64)>,
    solver: Solver,
    /// Time spent checking.
    pub time: Duration,
}

impl CheckResult {
    /// Assembles a result (shared with the MDP checker in [`crate::mdp`]).
    pub(crate) fn assemble(value: f64, boolean: Option<bool>, time: Duration) -> CheckResult {
        CheckResult {
            value,
            boolean,
            interval: None,
            solver: Solver::Transient,
            time,
        }
    }

    /// Attaches the engine report (shared with the MDP checker).
    pub(crate) fn with_engine(
        mut self,
        solver: Solver,
        interval: Option<(f64, f64)>,
    ) -> CheckResult {
        self.solver = solver;
        self.interval = interval;
        self
    }

    /// The numeric value of the query (for boolean queries, 1.0 or 0.0;
    /// for certified queries, the interval midpoint).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The boolean verdict, if the query was boolean.
    pub fn verdict(&self) -> Option<bool> {
        self.boolean
    }

    /// The sound `[lo, hi]` bracket of the value, when one was computed:
    /// a certificate for certified runs, the degenerate `[v, v]` for exact
    /// finite-horizon arithmetic, `None` where no bound is claimed
    /// (residual-converged iteration, steady-state detection, booleans).
    pub fn interval(&self) -> Option<(f64, f64)> {
        self.interval
    }

    /// Which numerical engine produced the value.
    pub fn solver(&self) -> Solver {
        self.solver
    }
}

/// Evaluates a top-level property against the DTMC's initial distribution
/// with default options (residual-converged unbounded iteration).
///
/// # Errors
///
/// * [`PctlError::Dtmc`] for unknown labels or non-convergence.
///
/// # Example
///
/// See the crate-level example.
pub fn check_query(dtmc: &Dtmc, property: &Property) -> Result<CheckResult, PctlError> {
    check_query_with(dtmc, property, &CheckOptions::default())
}

/// Evaluates a top-level property against the DTMC's initial distribution.
/// With [`CheckOptions::certified`], unbounded probability and
/// reachability-reward queries run certified interval iteration and the
/// result carries a sound `[lo, hi]` bracket
/// ([`CheckResult::interval`]).
///
/// To check a *family* of properties against one chain, prefer a
/// [`crate::session::CheckSession`], which runs this exact code path with
/// a precomputation cache shared across the batch.
///
/// # Errors
///
/// As for [`check_query`].
pub fn check_query_with(
    dtmc: &Dtmc,
    property: &Property,
    opts: &CheckOptions,
) -> Result<CheckResult, PctlError> {
    Evaluator::uncached(dtmc).check_query_with(property, opts)
}

/// Memoized precomputation shared by every query of a
/// [`crate::session::CheckSession`] over one immutable chain.
///
/// Cache keys are chosen so a hit can only return exactly what
/// recomputation would have produced: satisfaction sets are keyed by a
/// collision-free formula serialization ([`sat_key`] — *not* `Display`,
/// which is readable but not injective over arbitrary label names),
/// numeric solves by the **exact operand bit-sets** (plus the
/// certification width's bit pattern where one applies), and every solver
/// is deterministic. The chain itself is owned by the session and
/// immutable, so entries never need invalidation.
#[derive(Debug, Default)]
pub(crate) struct DtmcCache {
    /// Satisfaction sets, one entry per distinct (sub)formula
    /// ([`sat_key`]-keyed).
    sat: HashMap<String, BitVec>,
    /// Unbounded reachability value vectors keyed by the target set. Also
    /// the pre-pass of reachability rewards, so `P=? [ F φ ]` and
    /// `R=? [ F φ ]` share one solve.
    reach: HashMap<BitVec, Arc<Vec<f64>>>,
    /// Unbounded until value vectors keyed by `(lhs, rhs)`.
    until: HashMap<(BitVec, BitVec), Arc<Vec<f64>>>,
    /// Reachability-reward value vectors keyed by the target set.
    reach_reward: HashMap<BitVec, Arc<Vec<f64>>>,
    /// Certified reachability brackets keyed by `(target, ε bits, topo)`.
    /// The `topo` flag is part of the key even though both solvers honour
    /// the same bracket guarantee: the global and SCC-ordered sweeps land
    /// on *different sound bits*, and long-lived sessions (the smg-serve
    /// daemon) promise answers that depend only on (model, property,
    /// options) — never on which request happened to run first.
    cert_reach: HashMap<(BitVec, u64, bool), Arc<solve::CertifiedValues>>,
    /// Certified until brackets keyed by `(lhs, rhs, ε bits, topo)`.
    cert_until: HashMap<(BitVec, BitVec, u64, bool), Arc<solve::CertifiedValues>>,
    /// Certified reachability-reward brackets, keyed as [`Self::cert_reach`].
    cert_reach_reward: HashMap<(BitVec, u64, bool), Arc<solve::CertifiedValues>>,
    /// Long-run probabilities keyed by the satisfaction set.
    steady: HashMap<BitVec, f64>,
    /// Hit/miss telemetry, per cache kind.
    pub(crate) stats: CacheStats,
}

/// The DTMC query engine: every checking algorithm as a method over a
/// chain plus an optional session cache. The public free functions run an
/// uncached evaluator; [`crate::session::CheckSession`] runs a cached one.
pub(crate) struct Evaluator<'a> {
    dtmc: &'a Dtmc,
    cache: Option<&'a RefCell<DtmcCache>>,
}

impl<'a> Evaluator<'a> {
    /// An evaluator that recomputes everything (the free-function path).
    pub(crate) fn uncached(dtmc: &'a Dtmc) -> Self {
        Evaluator { dtmc, cache: None }
    }

    /// An evaluator sharing a session's cache.
    pub(crate) fn cached(dtmc: &'a Dtmc, cache: &'a RefCell<DtmcCache>) -> Self {
        Evaluator {
            dtmc,
            cache: Some(cache),
        }
    }

    /// Memoizes one computation: in uncached mode this is a plain call; in
    /// cached mode a hit returns the stored value (which, keys being exact
    /// inputs and solvers deterministic, equals what `compute` would
    /// return) and a miss computes then stores. The borrow is never held
    /// across `compute`, which may recursively re-enter the cache for
    /// nested formulas.
    fn memo<V: Clone>(
        &self,
        kind: CacheKind,
        lookup: impl Fn(&DtmcCache) -> Option<V>,
        store: impl FnOnce(&mut DtmcCache, V),
        compute: impl FnOnce(&Self) -> Result<V, PctlError>,
    ) -> Result<V, PctlError> {
        let Some(cell) = self.cache else {
            return compute(self);
        };
        let found = lookup(&cell.borrow());
        if let Some(v) = found {
            cell.borrow_mut().stats.record_hit(kind);
            return Ok(v);
        }
        let v = compute(self)?;
        let mut c = cell.borrow_mut();
        c.stats.record_miss(kind);
        store(&mut c, v.clone());
        Ok(v)
    }

    /// See [`check_query_with`].
    pub(crate) fn check_query_with(
        &self,
        property: &Property,
        opts: &CheckOptions,
    ) -> Result<CheckResult, PctlError> {
        let start = Instant::now();
        let (value, boolean, solver, interval) = match property {
            // On a DTMC there is no nondeterminism to optimize over: every
            // scheduler sees the same chain, so Pmin = Pmax = P and
            // Rmin = Rmax = R. Accepting the min/max forms here lets
            // property files be shared between a design's DTMC and MDP
            // variants (and lets tests pin the MDP checker against this
            // one on single-action models).
            Property::ProbQuery(path) | Property::OptProbQuery(_, path) => {
                let (v, solver, interval) = self.path_prob_query(path, opts)?;
                (v, None, solver, interval)
            }
            Property::Bool(f) => {
                // A certified run must not return a verdict that hinges on
                // residual-converged iteration (e.g. `P>=0.5 [ F goal ]`).
                if opts.certify.is_some() {
                    certify_operands(&[f])?;
                }
                let sat = self.sat_states(f)?;
                // A chain satisfies a state formula iff all initial states
                // with positive mass satisfy it.
                let ok = self
                    .dtmc
                    .initial()
                    .iter()
                    .all(|&(s, p)| p == 0.0 || sat.get(s as usize));
                (
                    if ok { 1.0 } else { 0.0 },
                    Some(ok),
                    Solver::Transient,
                    None,
                )
            }
            Property::RewardQuery(q) | Property::OptRewardQuery(_, q) => {
                let (v, solver, interval) = self.reward_query(q, opts)?;
                (v, None, solver, interval)
            }
            Property::SteadyQuery(f) => {
                let sat = self.sat_states(f)?;
                (self.steady_prob(&sat)?, None, Solver::Iterative, None)
            }
        };
        let elapsed = start.elapsed();
        obs::observe(
            "smg_pctl_property_seconds",
            Some(("solver", solver.as_str())),
            elapsed.as_secs_f64(),
        );
        Ok(CheckResult::assemble(value, boolean, elapsed).with_engine(solver, interval))
    }

    /// Evaluates a probability path query from the initial distribution,
    /// reporting which engine ran and the value bracket where one exists.
    fn path_prob_query(
        &self,
        path: &PathFormula,
        opts: &CheckOptions,
    ) -> Result<EngineValue, PctlError> {
        if opts.certify.is_some() {
            // Guard every operand formula, whatever the outer bound: a
            // bounded outer query is exact arithmetic only if its
            // satisfaction sets are, too.
            match path {
                PathFormula::Next(f) => certify_operands(&[f])?,
                PathFormula::Until { lhs, rhs, .. } => certify_operands(&[lhs, rhs])?,
                PathFormula::Finally { inner, .. } | PathFormula::Globally { inner, .. } => {
                    certify_operands(&[inner])?
                }
            }
        }
        if let Some(eps) = opts.certify {
            match path {
                PathFormula::Until {
                    lhs,
                    rhs,
                    bound: TimeBound::None,
                } => {
                    let l = self.sat_states(lhs)?;
                    let r = self.sat_states(rhs)?;
                    let cert = self.cert_until(&l, &r, eps, opts.topo)?;
                    return Ok(fold_certificate(
                        self.dtmc.initial(),
                        &cert,
                        false,
                        cert_solver(opts),
                    ));
                }
                PathFormula::Finally {
                    inner,
                    bound: TimeBound::None,
                } => {
                    let f = self.sat_states(inner)?;
                    let cert = self.cert_reach(&f, eps, opts.topo)?;
                    return Ok(fold_certificate(
                        self.dtmc.initial(),
                        &cert,
                        false,
                        cert_solver(opts),
                    ));
                }
                PathFormula::Globally {
                    inner,
                    bound: TimeBound::None,
                } => {
                    // G φ = ¬F ¬φ; the bracket complements with its ends
                    // swapped.
                    let bad = self.sat_states(inner)?.not();
                    let cert = self.cert_reach(&bad, eps, opts.topo)?;
                    return Ok(fold_certificate(
                        self.dtmc.initial(),
                        &cert,
                        true,
                        cert_solver(opts),
                    ));
                }
                _ => {} // finite-horizon forms are exact arithmetic below
            }
        }
        let v = self.path_prob_from_initial(path)?;
        if is_unbounded_path(path) {
            Ok((v, Solver::Iterative, None))
        } else {
            Ok((v, Solver::Transient, Some((v, v))))
        }
    }

    /// See [`path_prob_from_initial`].
    pub(crate) fn path_prob_from_initial(&self, path: &PathFormula) -> Result<f64, PctlError> {
        let dtmc = self.dtmc;
        match path {
            PathFormula::Next(f) => {
                let sat = self.sat_states(f)?;
                let pi1 = transient::distribution_at(dtmc, 1);
                Ok(sat.iter_ones().map(|i| pi1[i]).sum())
            }
            PathFormula::Until { lhs, rhs, bound } => {
                let l = self.sat_states(lhs)?;
                let r = self.sat_states(rhs)?;
                match bound {
                    TimeBound::Upper(t) => {
                        Ok(transient::bounded_until_prob(dtmc, &l, &r, *t as usize)?)
                    }
                    TimeBound::Interval(a, b) => {
                        let vals = interval_until_values(dtmc, &l, &r, *a, *b)?;
                        Ok(initial_expectation(dtmc, &vals))
                    }
                    TimeBound::None => {
                        let vals = self.unbounded_until(&l, &r)?;
                        Ok(initial_expectation(dtmc, &vals))
                    }
                }
            }
            PathFormula::Finally { inner, bound } => {
                let f = self.sat_states(inner)?;
                match bound {
                    TimeBound::Upper(t) => {
                        Ok(transient::bounded_reach_prob(dtmc, &f, *t as usize)?)
                    }
                    TimeBound::Interval(a, b) => {
                        let all = BitVec::ones(dtmc.n_states());
                        let vals = interval_until_values(dtmc, &all, &f, *a, *b)?;
                        Ok(initial_expectation(dtmc, &vals))
                    }
                    TimeBound::None => {
                        let vals = self.unbounded_reach(&f)?;
                        Ok(initial_expectation(dtmc, &vals))
                    }
                }
            }
            PathFormula::Globally { inner, bound } => {
                let f = self.sat_states(inner)?;
                match bound {
                    TimeBound::Upper(t) => {
                        Ok(transient::bounded_globally_prob(dtmc, &f, *t as usize)?)
                    }
                    TimeBound::Interval(a, b) => {
                        // G[a,b] φ = ¬ F[a,b] ¬φ.
                        let all = BitVec::ones(dtmc.n_states());
                        let vals = interval_until_values(dtmc, &all, &f.not(), *a, *b)?;
                        Ok(1.0 - initial_expectation(dtmc, &vals))
                    }
                    TimeBound::None => {
                        // G φ = ¬F ¬φ.
                        let bad = f.not();
                        let vals = self.unbounded_reach(&bad)?;
                        Ok(1.0 - initial_expectation(dtmc, &vals))
                    }
                }
            }
        }
    }

    /// See [`sat_states`]. Every node of the formula is memoized (keyed
    /// by [`sat_key`]), so subformulas shared across a session's property
    /// family resolve once.
    pub(crate) fn sat_states(&self, formula: &StateFormula) -> Result<BitVec, PctlError> {
        self.memo(
            CacheKind::Sat,
            |c| c.sat.get(&sat_key(formula)).cloned(),
            |c, v| {
                c.sat.insert(sat_key(formula), v);
            },
            |ev| ev.sat_states_raw(formula),
        )
    }

    fn sat_states_raw(&self, formula: &StateFormula) -> Result<BitVec, PctlError> {
        let n = self.dtmc.n_states();
        match formula {
            StateFormula::True => Ok(BitVec::ones(n)),
            StateFormula::False => Ok(BitVec::zeros(n)),
            StateFormula::Ap(name) => Ok(self.dtmc.label(name)?.clone()),
            StateFormula::Not(f) => Ok(self.sat_states(f)?.not()),
            StateFormula::And(a, b) => Ok(self.sat_states(a)?.and(&self.sat_states(b)?)),
            StateFormula::Or(a, b) => Ok(self.sat_states(a)?.or(&self.sat_states(b)?)),
            StateFormula::Implies(a, b) => Ok(self.sat_states(a)?.not().or(&self.sat_states(b)?)),
            StateFormula::Prob {
                cmp,
                threshold,
                path,
            } => {
                let vals = self.path_values(path)?;
                Ok(BitVec::from_fn(n, |i| cmp.eval(vals[i], *threshold)))
            }
        }
    }

    /// See [`path_values`].
    pub(crate) fn path_values(&self, path: &PathFormula) -> Result<Vec<f64>, PctlError> {
        let dtmc = self.dtmc;
        let n = dtmc.n_states();
        match path {
            PathFormula::Next(f) => {
                let sat = self.sat_states(f)?;
                let x: Vec<f64> = (0..n).map(|i| if sat.get(i) { 1.0 } else { 0.0 }).collect();
                Ok(dtmc.matrix().backward(&x))
            }
            PathFormula::Until { lhs, rhs, bound } => {
                let l = self.sat_states(lhs)?;
                let r = self.sat_states(rhs)?;
                match bound {
                    TimeBound::Upper(t) => {
                        Ok(transient::bounded_until_values(dtmc, &l, &r, *t as usize)?)
                    }
                    TimeBound::Interval(a, b) => interval_until_values(dtmc, &l, &r, *a, *b),
                    TimeBound::None => self.unbounded_until(&l, &r).map(arc_to_vec),
                }
            }
            PathFormula::Finally { inner, bound } => {
                let f = self.sat_states(inner)?;
                let all = BitVec::ones(n);
                match bound {
                    TimeBound::Upper(t) => Ok(transient::bounded_until_values(
                        dtmc,
                        &all,
                        &f,
                        *t as usize,
                    )?),
                    TimeBound::Interval(a, b) => interval_until_values(dtmc, &all, &f, *a, *b),
                    TimeBound::None => self.unbounded_reach(&f).map(arc_to_vec),
                }
            }
            PathFormula::Globally { inner, bound } => {
                // G φ = ¬F ¬φ (also for the bounded cases).
                let f = self.sat_states(inner)?;
                let bad = f.not();
                let all = BitVec::ones(n);
                let reach = match bound {
                    TimeBound::Upper(t) => {
                        transient::bounded_until_values(dtmc, &all, &bad, *t as usize)?
                    }
                    TimeBound::Interval(a, b) => interval_until_values(dtmc, &all, &bad, *a, *b)?,
                    TimeBound::None => arc_to_vec(self.unbounded_reach(&bad)?),
                };
                Ok(reach.into_iter().map(|p| 1.0 - p).collect())
            }
        }
    }

    /// Per-state unbounded reachability probabilities of the target set,
    /// memoized on the exact set. Shared by `F φ`, `G φ` (via the
    /// complement set) and the reachability-reward pre-pass.
    fn unbounded_reach(&self, target: &BitVec) -> Result<Arc<Vec<f64>>, PctlError> {
        self.memo(
            CacheKind::Values,
            |c| c.reach.get(target).cloned(),
            |c, v| {
                c.reach.insert(target.clone(), v);
            },
            |ev| {
                Ok(Arc::new(transient::unbounded_reach_values(
                    ev.dtmc,
                    target,
                    UNBOUNDED_TOL,
                    UNBOUNDED_MAX_ITER,
                )?))
            },
        )
    }

    /// Per-state unbounded until probabilities, memoized on the operand
    /// sets.
    fn unbounded_until(&self, lhs: &BitVec, rhs: &BitVec) -> Result<Arc<Vec<f64>>, PctlError> {
        self.memo(
            CacheKind::Values,
            |c| c.until.get(&(lhs.clone(), rhs.clone())).cloned(),
            |c, v| {
                c.until.insert((lhs.clone(), rhs.clone()), v);
            },
            |ev| ev.unbounded_until_raw(lhs, rhs).map(Arc::new),
        )
    }

    fn unbounded_until_raw(&self, lhs: &BitVec, rhs: &BitVec) -> Result<Vec<f64>, PctlError> {
        // φ U ψ = reachability of ψ through φ-only states: make ¬φ∧¬ψ
        // states absorbing failures by restricting the until iteration.
        // Reuse the bounded iteration until the values converge.
        let dtmc = self.dtmc;
        let n = dtmc.n_states();
        let mut x: Vec<f64> = (0..n).map(|i| if rhs.get(i) { 1.0 } else { 0.0 }).collect();
        let mut next = vec![0.0; n];
        let active = lhs.and(&rhs.not());
        for _ in 0..UNBOUNDED_MAX_ITER {
            dtmc.matrix()
                .backward_masked_into(&x, Some(&active), &mut next);
            for (i, v) in next.iter_mut().enumerate() {
                if rhs.get(i) {
                    *v = 1.0;
                } else if !lhs.get(i) {
                    *v = 0.0;
                }
            }
            let diff = x
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            std::mem::swap(&mut x, &mut next);
            if diff < UNBOUNDED_TOL {
                return Ok(x);
            }
        }
        Err(PctlError::Dtmc(smg_dtmc::DtmcError::NoConvergence {
            iterations: UNBOUNDED_MAX_ITER,
            residual: UNBOUNDED_TOL,
        }))
    }

    fn reward_query(&self, q: &RewardQuery, opts: &CheckOptions) -> Result<EngineValue, PctlError> {
        let dtmc = self.dtmc;
        match q {
            RewardQuery::Instantaneous(t) => {
                let v = transient::instantaneous_reward(dtmc, *t as usize);
                Ok((v, Solver::Transient, Some((v, v))))
            }
            RewardQuery::Cumulative(t) => {
                // Σ_{k=0}^{t-1} expected reward at step k (reward of the
                // state occupied at each of the first t steps).
                let v =
                    transient::instantaneous_reward_series(dtmc, (*t as usize).saturating_sub(1))
                        .iter()
                        .sum();
                Ok((v, Solver::Transient, Some((v, v))))
            }
            RewardQuery::Reach(phi) => {
                if opts.certify.is_some() {
                    certify_operands(&[phi])?;
                }
                let target = self.sat_states(phi)?;
                if let Some(eps) = opts.certify {
                    let cert = self.cert_reach_reward(&target, eps, opts.topo)?;
                    return Ok(fold_certificate(
                        dtmc.initial(),
                        &cert,
                        false,
                        cert_solver(opts),
                    ));
                }
                let vals = self.reach_reward_values(&target)?;
                // Skip zero-mass initial states so `0 × ∞` cannot poison
                // the expectation with NaN.
                let v = dtmc
                    .initial()
                    .iter()
                    .filter(|&&(_, p)| p > 0.0)
                    .map(|&(s, p)| p * vals[s as usize])
                    .sum();
                Ok((v, Solver::Iterative, None))
            }
        }
    }

    /// See [`reach_reward_values`]; memoized on the target set, with the
    /// reachability pre-pass routed through the shared [`DtmcCache::reach`]
    /// entry.
    pub(crate) fn reach_reward_values(&self, target: &BitVec) -> Result<Arc<Vec<f64>>, PctlError> {
        self.memo(
            CacheKind::Values,
            |c| c.reach_reward.get(target).cloned(),
            |c, v| {
                c.reach_reward.insert(target.clone(), v);
            },
            |ev| ev.reach_reward_values_raw(target).map(Arc::new),
        )
    }

    fn reach_reward_values_raw(&self, target: &BitVec) -> Result<Vec<f64>, PctlError> {
        let dtmc = self.dtmc;
        let n = dtmc.n_states();
        let reach = self.unbounded_reach(target)?;
        let certain = BitVec::from_fn(n, |i| reach[i] > 1.0 - 1e-9);
        // Iterate only over certain non-target states; everything else is
        // pinned (0 on targets, ∞ elsewhere, applied after convergence).
        let active = certain.and(&target.not());
        let rewards = dtmc.rewards();
        let mut x = vec![0.0; n];
        let mut next = vec![0.0; n];
        let mut converged = false;
        for _ in 0..UNBOUNDED_MAX_ITER {
            dtmc.matrix()
                .backward_masked_into(&x, Some(&active), &mut next);
            let mut diff: f64 = 0.0;
            for i in active.iter_ones() {
                next[i] += rewards[i];
                diff = diff.max((next[i] - x[i]).abs());
            }
            std::mem::swap(&mut x, &mut next);
            if diff < UNBOUNDED_TOL {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(PctlError::Dtmc(smg_dtmc::DtmcError::NoConvergence {
                iterations: UNBOUNDED_MAX_ITER,
                residual: UNBOUNDED_TOL,
            }));
        }
        for (i, v) in x.iter_mut().enumerate() {
            if !certain.get(i) {
                *v = f64::INFINITY;
            } else if target.get(i) {
                *v = 0.0;
            }
        }
        Ok(x)
    }

    /// Certified unbounded reachability, memoized on `(target, ε, topo)`.
    /// With `topo`, the solve walks the SCC condensation component-by-
    /// component; its (equally sound) bracket differs at the bit level
    /// from the global sweep's, so the two never share a cache slot.
    fn cert_reach(
        &self,
        target: &BitVec,
        eps: f64,
        topo: bool,
    ) -> Result<Arc<solve::CertifiedValues>, PctlError> {
        self.memo(
            CacheKind::Certified,
            |c| {
                c.cert_reach
                    .get(&(target.clone(), eps.to_bits(), topo))
                    .cloned()
            },
            |c, v| {
                c.cert_reach
                    .insert((target.clone(), eps.to_bits(), topo), v);
            },
            |ev| {
                let cert = if topo {
                    solve::topo_interval_reach_values(ev.dtmc, target, eps, CERTIFIED_MAX_ITER)?
                } else {
                    solve::interval_reach_values(ev.dtmc, target, eps, CERTIFIED_MAX_ITER)?
                };
                Ok(Arc::new(cert))
            },
        )
    }

    /// Certified unbounded until, memoized on `(lhs, rhs, ε, topo)`.
    fn cert_until(
        &self,
        lhs: &BitVec,
        rhs: &BitVec,
        eps: f64,
        topo: bool,
    ) -> Result<Arc<solve::CertifiedValues>, PctlError> {
        self.memo(
            CacheKind::Certified,
            |c| {
                c.cert_until
                    .get(&(lhs.clone(), rhs.clone(), eps.to_bits(), topo))
                    .cloned()
            },
            |c, v| {
                c.cert_until
                    .insert((lhs.clone(), rhs.clone(), eps.to_bits(), topo), v);
            },
            |ev| {
                let cert = if topo {
                    solve::topo_interval_until_values(ev.dtmc, lhs, rhs, eps, CERTIFIED_MAX_ITER)?
                } else {
                    solve::interval_until_values(ev.dtmc, lhs, rhs, eps, CERTIFIED_MAX_ITER)?
                };
                Ok(Arc::new(cert))
            },
        )
    }

    /// Certified reachability reward, memoized on `(target, ε, topo)`.
    fn cert_reach_reward(
        &self,
        target: &BitVec,
        eps: f64,
        topo: bool,
    ) -> Result<Arc<solve::CertifiedValues>, PctlError> {
        self.memo(
            CacheKind::Certified,
            |c| {
                c.cert_reach_reward
                    .get(&(target.clone(), eps.to_bits(), topo))
                    .cloned()
            },
            |c, v| {
                c.cert_reach_reward
                    .insert((target.clone(), eps.to_bits(), topo), v);
            },
            |ev| {
                let cert = if topo {
                    solve::topo_interval_reach_reward_values(
                        ev.dtmc,
                        target,
                        eps,
                        CERTIFIED_MAX_ITER,
                    )?
                } else {
                    solve::interval_reach_reward_values(ev.dtmc, target, eps, CERTIFIED_MAX_ITER)?
                };
                Ok(Arc::new(cert))
            },
        )
    }

    /// The long-run probability of being in a `sat`-state, memoized on the
    /// set, computed by damped ("lazy-chain") power iteration which
    /// converges even for periodic chains and equals the Cesàro limit.
    fn steady_prob(&self, sat: &BitVec) -> Result<f64, PctlError> {
        self.memo(
            CacheKind::Steady,
            |c| c.steady.get(sat).copied(),
            |c, v| {
                c.steady.insert(sat.clone(), v);
            },
            |ev| ev.steady_prob_raw(sat),
        )
    }

    fn steady_prob_raw(&self, sat: &BitVec) -> Result<f64, PctlError> {
        let dtmc = self.dtmc;
        let mut pi = dtmc.initial_dense();
        let mut stepped = vec![0.0; pi.len()];
        for it in 1..=STEADY_MAX_STEPS {
            dtmc.matrix().forward_into(&pi, &mut stepped);
            let mut delta: f64 = 0.0;
            for (p, s) in pi.iter_mut().zip(&stepped) {
                let lazy = 0.5 * *p + 0.5 * s;
                delta = delta.max((lazy - *p).abs());
                *p = lazy;
            }
            if obs::enabled() {
                obs::counter_add("smg_solve_sweeps_total", Some(("driver", "steady")), 1);
                obs::trace(&obs::ConvergenceRecord {
                    driver: "steady",
                    sweep: it as u64,
                    residual: Some(delta),
                    width: None,
                    component: None,
                });
            }
            if delta < STEADY_TOL {
                return Ok(sat.iter_ones().map(|i| pi[i]).sum());
            }
        }
        Err(PctlError::Dtmc(smg_dtmc::DtmcError::NoConvergence {
            iterations: STEADY_MAX_STEPS,
            residual: STEADY_TOL,
        }))
    }
}

/// Unwraps a cache handle into an owned vector. Uncached evaluators hold
/// the only reference, so this is free; in a cached session the cache
/// retains its `Arc` and the vector is copied — but callers reach this
/// only through [`Evaluator::sat_states`]' memoization, so the copy
/// happens at most once per *distinct* formula per session, which is
/// noise next to the iterative solve it fronts.
fn arc_to_vec(rc: Arc<Vec<f64>>) -> Vec<f64> {
    Arc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone())
}

/// A collision-free serialization of a state formula, used as the
/// satisfaction-set cache key (shared with the MDP evaluator).
///
/// `Display` would be the obvious key but is **not injective**: label
/// names are arbitrary strings (`Dtmc::new` accepts any map key and
/// [`StateFormula::ap`] any name), so `Not(Ap("x"))` and `Ap("!x")` both
/// render as `!x` and would alias one cache slot. Here every operator
/// carries a distinct tag with explicit delimiters, atom names are quoted
/// with `\`-escaping, and probability thresholds are serialized by bit
/// pattern (two textual spellings of one float cannot diverge, and two
/// different floats cannot collide).
pub(crate) fn sat_key(formula: &StateFormula) -> String {
    use std::fmt::Write as _;

    fn push_state(f: &StateFormula, out: &mut String) {
        match f {
            StateFormula::True => out.push('T'),
            StateFormula::False => out.push('F'),
            StateFormula::Ap(name) => {
                out.push_str("a\"");
                for c in name.chars() {
                    if c == '"' || c == '\\' {
                        out.push('\\');
                    }
                    out.push(c);
                }
                out.push('"');
            }
            StateFormula::Not(x) => {
                out.push_str("!(");
                push_state(x, out);
                out.push(')');
            }
            StateFormula::And(a, b) => push_binary("&", a, b, out),
            StateFormula::Or(a, b) => push_binary("|", a, b, out),
            StateFormula::Implies(a, b) => push_binary("=>", a, b, out),
            StateFormula::Prob {
                cmp,
                threshold,
                path,
            } => {
                let _ = write!(out, "P{cmp:?}#{:016x}[", threshold.to_bits());
                push_path(path, out);
                out.push(']');
            }
        }
    }

    fn push_binary(tag: &str, a: &StateFormula, b: &StateFormula, out: &mut String) {
        out.push_str(tag);
        out.push('(');
        push_state(a, out);
        out.push(',');
        push_state(b, out);
        out.push(')');
    }

    fn push_path(p: &PathFormula, out: &mut String) {
        match p {
            PathFormula::Next(f) => {
                out.push_str("X(");
                push_state(f, out);
                out.push(')');
            }
            PathFormula::Until { lhs, rhs, bound } => {
                out.push('U');
                push_bound(bound, out);
                out.push('(');
                push_state(lhs, out);
                out.push(',');
                push_state(rhs, out);
                out.push(')');
            }
            PathFormula::Finally { inner, bound } => {
                out.push('F');
                push_bound(bound, out);
                out.push('(');
                push_state(inner, out);
                out.push(')');
            }
            PathFormula::Globally { inner, bound } => {
                out.push('G');
                push_bound(bound, out);
                out.push('(');
                push_state(inner, out);
                out.push(')');
            }
        }
    }

    fn push_bound(b: &TimeBound, out: &mut String) {
        let _ = match b {
            TimeBound::None => write!(out, "<*>"),
            TimeBound::Upper(t) => write!(out, "<={t}>"),
            TimeBound::Interval(a, b) => write!(out, "<{a},{b}>"),
        };
    }

    let mut out = String::new();
    push_state(formula, &mut out);
    out
}

/// The solver tag a certified query reports under the given options
/// (shared by the DTMC and MDP checkers).
pub(crate) fn cert_solver(opts: &CheckOptions) -> Solver {
    if opts.topo {
        Solver::TopologicalII
    } else {
        Solver::IntervalIteration
    }
}

/// Folds a per-state certificate over an initial distribution (shared by
/// the DTMC and MDP checkers): both bounds fold linearly (the expectation
/// of a bracketed value stays inside the folded bracket), zero-mass states
/// are skipped so `0 × ∞` cannot poison reward expectations, and the
/// reported point value is the interval midpoint. `complement` maps a
/// bracket of `F ¬φ` to one of `G φ`, swapping the ends. `solver` is the
/// engine tag to report (see [`cert_solver`]).
pub(crate) fn fold_certificate(
    initial: &[(smg_dtmc::StateId, f64)],
    cert: &solve::CertifiedValues,
    complement: bool,
    solver: Solver,
) -> EngineValue {
    let fold = |vals: &[f64]| -> f64 {
        initial
            .iter()
            .filter(|&&(_, p)| p > 0.0)
            .map(|&(s, p)| p * vals[s as usize])
            .sum()
    };
    let (mut lo, mut hi) = (fold(&cert.lo), fold(&cert.hi));
    if complement {
        (lo, hi) = (1.0 - hi, 1.0 - lo);
    }
    let mid = if lo == hi { lo } else { 0.5 * (lo + hi) };
    (mid, solver, Some((lo, hi)))
}

/// Whether a path formula is an unbounded until-family operator — the
/// forms that need an iterative (residual or certified) solver. Everything
/// else is exact finite-horizon arithmetic.
pub(crate) fn is_unbounded_path(path: &PathFormula) -> bool {
    matches!(
        path,
        PathFormula::Until {
            bound: TimeBound::None,
            ..
        } | PathFormula::Finally {
            bound: TimeBound::None,
            ..
        } | PathFormula::Globally {
            bound: TimeBound::None,
            ..
        }
    )
}

/// Whether a state formula nests a `P⋈p [...]` operator over an
/// *unbounded* path formula. Such a satisfaction set can only be computed
/// by residual-test value iteration, so a certified run must reject it —
/// otherwise the outer "sound" interval would be built on an uncertified
/// target set. Bounded nested operators are exact arithmetic and fine.
fn nests_unbounded_prob(formula: &StateFormula) -> bool {
    match formula {
        StateFormula::True | StateFormula::False | StateFormula::Ap(_) => false,
        StateFormula::Not(f) => nests_unbounded_prob(f),
        StateFormula::And(a, b) | StateFormula::Or(a, b) | StateFormula::Implies(a, b) => {
            nests_unbounded_prob(a) || nests_unbounded_prob(b)
        }
        StateFormula::Prob { path, .. } => {
            if is_unbounded_path(path) {
                return true;
            }
            match &**path {
                PathFormula::Next(f) => nests_unbounded_prob(f),
                PathFormula::Until { lhs, rhs, .. } => {
                    nests_unbounded_prob(lhs) || nests_unbounded_prob(rhs)
                }
                PathFormula::Finally { inner, .. } | PathFormula::Globally { inner, .. } => {
                    nests_unbounded_prob(inner)
                }
            }
        }
    }
}

/// Guards a certified query's operand formulas: rejects any that nest an
/// unbounded probability operator (see [`nests_unbounded_prob`]).
pub(crate) fn certify_operands(formulas: &[&StateFormula]) -> Result<(), PctlError> {
    if formulas.iter().any(|f| nests_unbounded_prob(f)) {
        return Err(PctlError::Unsupported {
            construct: "a nested unbounded P operator inside a certified query (its \
                        satisfaction set comes from residual-test iteration, which would \
                        void the certificate; drop --certified or bound the nested \
                        operator)"
                .into(),
        });
    }
    Ok(())
}

/// The probability, from the initial distribution, of the path formula —
/// computed with the forward transient engine.
///
/// # Errors
///
/// [`PctlError::Dtmc`] for unknown labels or non-convergence of unbounded
/// operators.
pub fn path_prob_from_initial(dtmc: &Dtmc, path: &PathFormula) -> Result<f64, PctlError> {
    Evaluator::uncached(dtmc).path_prob_from_initial(path)
}

/// Per-state probabilities of `lhs U[a,b] rhs`: `rhs` is reached at some
/// step in the inclusive window `[a,b]`, with `lhs` holding at every
/// earlier step (including the pre-window prefix — PRISM's interval-until
/// semantics).
///
/// Computed backwards: first the plain bounded until over the window
/// (`b - a` steps), then `a` prefix steps in which only `lhs`-states
/// survive and reaching `rhs` does not yet count.
///
/// # Errors
///
/// [`PctlError::Dtmc`] on dimension mismatches from the matrix layer.
pub fn interval_until_values(
    dtmc: &Dtmc,
    lhs: &BitVec,
    rhs: &BitVec,
    a: u64,
    b: u64,
) -> Result<Vec<f64>, PctlError> {
    debug_assert!(a <= b, "parser enforces non-empty intervals");
    let mut x = transient::bounded_until_values(dtmc, lhs, rhs, (b - a) as usize)?;
    let mut next = vec![0.0; x.len()];
    for _ in 0..a {
        dtmc.matrix().backward_masked_into(&x, Some(lhs), &mut next);
        // Non-lhs states die during the prefix (rhs does not absorb yet).
        for (i, v) in next.iter_mut().enumerate() {
            if !lhs.get(i) {
                *v = 0.0;
            }
        }
        std::mem::swap(&mut x, &mut next);
    }
    Ok(x)
}

/// The set of states satisfying a state formula. Nested `P⋈p` operators are
/// resolved by backward value iteration.
///
/// # Errors
///
/// [`PctlError::Dtmc`] for unknown labels or non-convergence.
pub fn sat_states(dtmc: &Dtmc, formula: &StateFormula) -> Result<BitVec, PctlError> {
    Evaluator::uncached(dtmc).sat_states(formula)
}

/// The probability of the path formula *from every state* (backward
/// algorithms).
///
/// # Errors
///
/// [`PctlError::Dtmc`] for unknown labels or non-convergence.
pub fn path_values(dtmc: &Dtmc, path: &PathFormula) -> Result<Vec<f64>, PctlError> {
    Evaluator::uncached(dtmc).path_values(path)
}

/// The expected reward accumulated strictly before first reaching a
/// `target`-state, *from every state* (PRISM's `R=? [ F φ ]` semantics:
/// the target state's own reward is not counted, and states from which the
/// target is reached with probability < 1 get `f64::INFINITY`).
///
/// Computed by value iteration on `x = r + P·x` restricted to non-target
/// states whose reachability probability is 1; from such states every
/// successor is again certain (or the target), so infinities never enter
/// the iteration.
///
/// # Errors
///
/// [`PctlError::Dtmc`] if the reachability pre-pass or the reward
/// iteration fails to converge.
pub fn reach_reward_values(dtmc: &Dtmc, target: &BitVec) -> Result<Vec<f64>, PctlError> {
    Evaluator::uncached(dtmc)
        .reach_reward_values(target)
        .map(arc_to_vec)
}

fn initial_expectation(dtmc: &Dtmc, vals: &[f64]) -> f64 {
    dtmc.initial()
        .iter()
        .map(|&(s, p)| p * vals[s as usize])
        .sum()
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_property;
    use smg_dtmc::{explore, DtmcModel, ExploreOptions};

    /// The classic Knuth–Yao-ish chain: 0 →(.5) 1 | 2; 1 →(.5) goal | 0;
    /// 2 absorbing "bad"; goal absorbing "goal".
    struct Gadget;
    impl DtmcModel for Gadget {
        type State = u8;
        fn initial_states(&self) -> Vec<(u8, f64)> {
            vec![(0, 1.0)]
        }
        fn transitions(&self, s: &u8) -> Vec<(u8, f64)> {
            match s {
                0 => vec![(1, 0.5), (2, 0.5)],
                1 => vec![(3, 0.5), (0, 0.5)],
                2 => vec![(2, 1.0)],
                _ => vec![(3, 1.0)],
            }
        }
        fn atomic_propositions(&self) -> Vec<&'static str> {
            vec!["goal", "bad"]
        }
        fn holds(&self, ap: &str, s: &u8) -> bool {
            (ap == "goal" && *s == 3) || (ap == "bad" && *s == 2)
        }
        fn state_reward(&self, s: &u8) -> f64 {
            if *s == 3 {
                1.0
            } else {
                0.0
            }
        }
    }

    fn gadget() -> Dtmc {
        explore(&Gadget, &ExploreOptions::default()).unwrap().dtmc
    }

    fn q(dtmc: &Dtmc, prop: &str) -> f64 {
        check_query(dtmc, &parse_property(prop).unwrap())
            .unwrap()
            .value()
    }

    #[test]
    fn unbounded_reach_is_one_third() {
        // P(reach goal) satisfies p = 1/2 * (1/2 + 1/2 p) → p = 1/3.
        let d = gadget();
        let p = q(&d, "P=? [ F goal ]");
        assert!((p - 1.0 / 3.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn bounded_reach_steps() {
        let d = gadget();
        assert_eq!(q(&d, "P=? [ F<=1 goal ]"), 0.0);
        assert!((q(&d, "P=? [ F<=2 goal ]") - 0.25).abs() < 1e-12);
        // After 4 steps: 0.25 + (1/4 of the restart mass) * 0.25 = 0.3125.
        assert!((q(&d, "P=? [ F<=4 goal ]") - 0.3125).abs() < 1e-12);
    }

    #[test]
    fn globally_avoids_bad() {
        let d = gadget();
        // G !bad ⇔ never absorb at 2 ⇔ eventually reach goal = 1/3.
        let p = q(&d, "P=? [ G !bad ]");
        assert!((p - 1.0 / 3.0).abs() < 1e-9);
        // Bounded version is larger (paths still alive count).
        let pb = q(&d, "P=? [ G<=2 !bad ]");
        assert!((pb - 0.5).abs() < 1e-12);
    }

    #[test]
    fn next_operator() {
        let d = gadget();
        assert!((q(&d, "P=? [ X bad ]") - 0.5).abs() < 1e-12);
        assert!((q(&d, "P=? [ X (bad | goal) ]") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn until_respects_lhs() {
        let d = gadget();
        // Reach goal while avoiding state 0 after start... lhs = !bad is the
        // same as F goal here.
        let p = q(&d, "P=? [ !bad U goal ]");
        assert!((p - 1.0 / 3.0).abs() < 1e-9);
        // lhs = goal | bad forbids passing through 0 and 1 → 0.
        assert_eq!(q(&d, "P=? [ (goal | bad) U goal ]"), 0.0);
    }

    #[test]
    fn reward_queries() {
        let d = gadget();
        // Instantaneous reward at t equals P(in goal at t) = P(F<=t goal)
        // since goal is absorbing.
        for t in [0u64, 1, 2, 5, 10] {
            let r = q(&d, &format!("R=? [ I={t} ]"));
            let f = q(&d, &format!("P=? [ F<={t} goal ]"));
            assert!((r - f).abs() < 1e-12, "t={t}");
        }
        // Cumulative reward over first steps is the sum of the series.
        let c = q(&d, "R=? [ C<=3 ]");
        let series: f64 = (0..=2).map(|t| q(&d, &format!("R=? [ I={t} ]"))).sum();
        assert!((c - series).abs() < 1e-12);
    }

    #[test]
    fn interval_bounds_follow_prism_semantics() {
        let d = gadget();
        // F[0,t] coincides with F<=t.
        for t in [0u64, 1, 2, 5, 9] {
            let a = q(&d, &format!("P=? [ F[0,{t}] goal ]"));
            let b = q(&d, &format!("P=? [ F<={t} goal ]"));
            assert!((a - b).abs() < 1e-12, "t={t}: {a} vs {b}");
        }
        // F[t,t] φ is exactly "φ at step t" (lhs = true): the transient
        // distribution mass on φ.
        for t in [1usize, 2, 4, 7] {
            let a = q(&d, &format!("P=? [ F[{t},{t}] goal ]"));
            let pi = transient::distribution_at(&d, t);
            let mass: f64 = d.label("goal").unwrap().iter_ones().map(|i| pi[i]).sum();
            assert!((a - mass).abs() < 1e-12, "t={t}: {a} vs {mass}");
        }
        // G[a,b] φ = 1 - F[a,b] ¬φ.
        let g = q(&d, "P=? [ G[2,5] !bad ]");
        let f = q(&d, "P=? [ F[2,5] bad ]");
        assert!((g - (1.0 - f)).abs() < 1e-12);
        // The until prefix constraint really binds: reaching goal in the
        // window while avoiding state 0 after the start is impossible
        // beyond the direct 0→1→goal path once the window opens late.
        let constrained = q(
            &d,
            "P=? [ (goal | bad | P>=0.5 [ X (goal|bad) ]) U[2,2] goal ]",
        );
        // lhs above = {1, 2(bad), 3(goal)}: paths 0→1→goal only.
        assert!(
            (constrained - 0.25).abs() < 1e-12,
            "constrained = {constrained}"
        );
        // Degenerate window at 0: F[0,0] φ is the initial indicator.
        assert_eq!(q(&d, "P=? [ F[0,0] goal ]"), 0.0);
        assert_eq!(q(&d, "P=? [ F[0,0] !goal ]"), 1.0);
    }

    #[test]
    fn interval_bounds_forward_backward_agree() {
        let d = gadget();
        for (a, b) in [(0u64, 3u64), (1, 4), (3, 3), (2, 8)] {
            let prop = format!("P=? [ !bad U[{a},{b}] goal ]");
            let fwd = q(&d, &prop);
            let Property::ProbQuery(path) = parse_property(&prop).unwrap() else {
                unreachable!()
            };
            let vals = path_values(&d, &path).unwrap();
            let bwd = initial_expectation(&d, &vals);
            assert!((fwd - bwd).abs() < 1e-12, "{prop}: {fwd} vs {bwd}");
        }
    }

    #[test]
    fn reach_reward_is_infinite_when_target_not_almost_sure() {
        // The gadget reaches `goal` with probability 1/3 < 1.
        let d = gadget();
        assert_eq!(q(&d, "R=? [ F goal ]"), f64::INFINITY);
        // `goal | bad` is reached almost surely; rewards are 0 outside
        // goal, so the expected pre-target accumulation is 0.
        assert_eq!(q(&d, "R=? [ F (goal | bad) ]"), 0.0);
    }

    #[test]
    fn reach_reward_matches_geometric_expectation() {
        // One transient state with reward 1 that reaches the target with
        // probability p each step: expected visits = 1/p.
        struct Geo(f64);
        impl DtmcModel for Geo {
            type State = u8;
            fn initial_states(&self) -> Vec<(u8, f64)> {
                vec![(0, 1.0)]
            }
            fn transitions(&self, s: &u8) -> Vec<(u8, f64)> {
                match s {
                    0 => vec![(1, self.0), (0, 1.0 - self.0)],
                    _ => vec![(1, 1.0)],
                }
            }
            fn atomic_propositions(&self) -> Vec<&'static str> {
                vec!["t"]
            }
            fn holds(&self, ap: &str, s: &u8) -> bool {
                ap == "t" && *s == 1
            }
            fn state_reward(&self, s: &u8) -> f64 {
                // Target reward must NOT be counted; make it huge so a
                // semantics bug is loud.
                if *s == 0 {
                    1.0
                } else {
                    1e9
                }
            }
        }
        for p in [0.5, 0.25, 0.01] {
            let d = explore(&Geo(p), &ExploreOptions::default()).unwrap().dtmc;
            let r = q(&d, "R=? [ F t ]");
            assert!((r - 1.0 / p).abs() < 1e-6, "p={p}: r={r}");
        }
    }

    #[test]
    fn reach_reward_values_per_state() {
        // Deterministic line 0→1→2(target), reward 1 everywhere: values
        // are the distances 2, 1, 0.
        struct Line;
        impl DtmcModel for Line {
            type State = u8;
            fn initial_states(&self) -> Vec<(u8, f64)> {
                vec![(0, 1.0)]
            }
            fn transitions(&self, s: &u8) -> Vec<(u8, f64)> {
                vec![((*s + 1).min(2), 1.0)]
            }
            fn atomic_propositions(&self) -> Vec<&'static str> {
                vec!["end"]
            }
            fn holds(&self, ap: &str, s: &u8) -> bool {
                ap == "end" && *s == 2
            }
            fn state_reward(&self, _: &u8) -> f64 {
                1.0
            }
        }
        let d = explore(&Line, &ExploreOptions::default()).unwrap().dtmc;
        let target = d.label("end").unwrap().clone();
        let vals = reach_reward_values(&d, &target).unwrap();
        assert!((vals[0] - 2.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        assert_eq!(vals[2], 0.0);
    }

    #[test]
    fn certified_queries_bracket_and_report_solver() {
        let d = gadget();
        let opts = CheckOptions::certified(1e-9);
        // Unbounded reachability: exact value 1/3.
        let r = check_query_with(&d, &parse_property("P=? [ F goal ]").unwrap(), &opts).unwrap();
        assert_eq!(r.solver(), Solver::IntervalIteration);
        let (lo, hi) = r.interval().unwrap();
        assert!(hi - lo < 1e-9);
        assert!(
            lo <= 1.0 / 3.0 + 1e-12 && 1.0 / 3.0 <= hi + 1e-12,
            "[{lo}, {hi}]"
        );
        assert!((r.value() - 1.0 / 3.0).abs() < 1e-9);
        // Globally complements the bracket.
        let g = check_query_with(&d, &parse_property("P=? [ G !bad ]").unwrap(), &opts).unwrap();
        let (glo, ghi) = g.interval().unwrap();
        assert!(
            glo <= 1.0 / 3.0 + 1e-12 && 1.0 / 3.0 <= ghi + 1e-12,
            "[{glo}, {ghi}]"
        );
        // Until through a constraint: still certified.
        let u =
            check_query_with(&d, &parse_property("P=? [ !bad U goal ]").unwrap(), &opts).unwrap();
        assert_eq!(u.solver(), Solver::IntervalIteration);
        // The min/max forms collapse to the same certified engine on a
        // chain.
        let m = check_query_with(&d, &parse_property("Pmax=? [ F goal ]").unwrap(), &opts).unwrap();
        assert_eq!(m.solver(), Solver::IntervalIteration);
        assert!((m.value() - r.value()).abs() < 1e-9);
    }

    #[test]
    fn topological_certified_matches_and_tags() {
        let d = gadget();
        let global = CheckOptions::certified(1e-9);
        let topo = CheckOptions::certified(1e-9).topological();
        for prop in [
            "P=? [ F goal ]",
            "P=? [ G !bad ]",
            "P=? [ !bad U goal ]",
            "R=? [ F (goal | bad) ]",
            "R=? [ F goal ]", // ∞ pinning must agree too
        ] {
            let p = parse_property(prop).unwrap();
            let g = check_query_with(&d, &p, &global).unwrap();
            let t = check_query_with(&d, &p, &topo).unwrap();
            assert_eq!(t.solver(), Solver::TopologicalII, "{prop}");
            assert_eq!(format!("{}", t.solver()), "topological-interval-iteration");
            let (glo, ghi) = g.interval().unwrap();
            let (tlo, thi) = t.interval().unwrap();
            // Both brackets are sound and below ε wide, so they overlap
            // around the same truth.
            assert!(tlo <= ghi + 1e-12 && glo <= thi + 1e-12, "{prop}");
            if t.value().is_finite() {
                assert!((t.value() - g.value()).abs() < 2e-9, "{prop}");
                assert!(thi - tlo < 1e-9, "{prop}");
            } else {
                assert_eq!(t.value(), g.value(), "{prop}");
            }
        }
        // Without certify the flag is inert: plain iteration still runs.
        let plain = CheckOptions::default().topological();
        let r = check_query_with(&d, &parse_property("P=? [ F goal ]").unwrap(), &plain).unwrap();
        assert_eq!(r.solver(), Solver::Iterative);
    }

    #[test]
    fn certified_rewards_and_exact_interval_reporting() {
        let d = gadget();
        let opts = CheckOptions::certified(1e-9);
        // Certified reachability reward: goal missed with probability 2/3
        // → exactly ∞ on both ends.
        let r = check_query_with(&d, &parse_property("R=? [ F goal ]").unwrap(), &opts).unwrap();
        assert_eq!(r.interval(), Some((f64::INFINITY, f64::INFINITY)));
        assert_eq!(r.value(), f64::INFINITY);
        // goal | bad is certain, no reward accrues before absorption.
        let r = check_query_with(
            &d,
            &parse_property("R=? [ F (goal | bad) ]").unwrap(),
            &opts,
        )
        .unwrap();
        let (lo, hi) = r.interval().unwrap();
        assert!(lo <= 0.0 && 0.0 <= hi && hi - lo < 1e-9);
        // Finite-horizon queries are exact arithmetic: degenerate [v, v]
        // and the transient engine, certified mode or not.
        for prop in ["P=? [ F<=4 goal ]", "R=? [ I=3 ]", "P=? [ X bad ]"] {
            let r = check_query_with(&d, &parse_property(prop).unwrap(), &opts).unwrap();
            assert_eq!(r.solver(), Solver::Transient, "{prop}");
            assert_eq!(r.interval(), Some((r.value(), r.value())), "{prop}");
        }
        // Plain unbounded iteration reports itself and claims no bound.
        let r = check_query(&d, &parse_property("P=? [ F goal ]").unwrap()).unwrap();
        assert_eq!(r.solver(), Solver::Iterative);
        assert_eq!(r.interval(), None);
        // Steady-state detection is never certified.
        let r = check_query_with(&d, &parse_property("S=? [ bad ]").unwrap(), &opts).unwrap();
        assert_eq!(r.solver(), Solver::Iterative);
        assert_eq!(r.interval(), None);
    }

    #[test]
    fn certified_rejects_nested_unbounded_prob() {
        let d = gadget();
        let opts = CheckOptions::certified(1e-9);
        // A nested unbounded P operator would feed a residual-converged
        // satisfaction set into the "sound" interval — refuse to certify.
        for prop in [
            "P=? [ F P>=0.5 [ F goal ] ]",
            "P=? [ P>=0.1 [ F goal ] U goal ]",
            "P=? [ G !(P<0.5 [ F goal ]) ]",
            "R=? [ F P>=0.5 [ F goal ] ]",
            // Bounded *outer* forms must be guarded too: an exact-looking
            // [v, v] interval would otherwise rest on residual iteration.
            "P=? [ X P>=0.5 [ F goal ] ]",
            "P=? [ F<=3 P>=0.5 [ F goal ] ]",
            // Top-level threshold verdicts likewise.
            "P>=0.3 [ F goal ]",
        ] {
            let e = check_query_with(&d, &parse_property(prop).unwrap(), &opts).unwrap_err();
            assert!(matches!(e, PctlError::Unsupported { .. }), "{prop}");
        }
        // Bounded nested operators are exact arithmetic: still certified.
        let r = check_query_with(
            &d,
            &parse_property("P=? [ F P>=0.4 [ F<=2 goal ] ]").unwrap(),
            &opts,
        )
        .unwrap();
        assert_eq!(r.solver(), Solver::IntervalIteration);
        // Uncertified mode keeps accepting the nested unbounded form.
        let r = check_query(&d, &parse_property("P=? [ F P>=0.5 [ F goal ] ]").unwrap()).unwrap();
        assert_eq!(r.solver(), Solver::Iterative);
    }

    #[test]
    fn steady_state_query() {
        let d = gadget();
        let s_goal = q(&d, "S=? [ goal ]");
        let s_bad = q(&d, "S=? [ bad ]");
        assert!((s_goal - 1.0 / 3.0).abs() < 1e-6, "s_goal = {s_goal}");
        assert!((s_bad - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn boolean_queries() {
        let d = gadget();
        let r = check_query(&d, &parse_property("P>=0.3 [ F goal ]").unwrap()).unwrap();
        assert_eq!(r.verdict(), Some(true));
        assert_eq!(r.value(), 1.0);
        let r = check_query(&d, &parse_property("P>=0.5 [ F goal ]").unwrap()).unwrap();
        assert_eq!(r.verdict(), Some(false));
        let r = check_query(&d, &parse_property("!goal").unwrap()).unwrap();
        assert_eq!(r.verdict(), Some(true), "initial state is not the goal");
    }

    #[test]
    fn forward_backward_agree() {
        let d = gadget();
        for (lhs, rhs) in [("true", "goal"), ("!bad", "goal"), ("true", "bad")] {
            for t in [0u64, 1, 3, 7, 20] {
                let fwd = q(&d, &format!("P=? [ {lhs} U<={t} {rhs} ]"));
                let path = match parse_property(&format!("P=? [ {lhs} U<={t} {rhs} ]")).unwrap() {
                    Property::ProbQuery(p) => p,
                    _ => unreachable!(),
                };
                let vals = path_values(&d, &path).unwrap();
                let bwd = initial_expectation(&d, &vals);
                assert!(
                    (fwd - bwd).abs() < 1e-12,
                    "{lhs} U<={t} {rhs}: fwd={fwd} bwd={bwd}"
                );
            }
        }
    }

    #[test]
    fn nested_probability_operator() {
        let d = gadget();
        // States from which goal is reached with ≥ 1/2 probability: state 1
        // (p=1/2+1/2·1/3=2/3) and goal itself (p=1). Initial state 0 has
        // p=1/3 < 1/2, bad has 0.
        let sat = sat_states(
            &d,
            &parse_property("P>=0.5 [ F goal ]")
                .map(|p| match p {
                    Property::Bool(f) => f,
                    _ => unreachable!(),
                })
                .unwrap(),
        )
        .unwrap();
        assert_eq!(sat.count_ones(), 2);
        // Probability of reaching such a state within 1 step = P(0→1) = 1/2.
        let p = q(&d, "P=? [ F<=1 P>=0.5 [ F goal ] ]");
        assert!((p - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unknown_label_is_reported() {
        let d = gadget();
        let e = check_query(&d, &parse_property("P=? [ F nope ]").unwrap());
        assert!(matches!(
            e,
            Err(PctlError::Dtmc(smg_dtmc::DtmcError::UnknownLabel { .. }))
        ));
    }

    #[test]
    fn globally_unbounded_on_safe_chain() {
        // A chain that never leaves good states: G good = 1.
        struct Safe;
        impl DtmcModel for Safe {
            type State = u8;
            fn initial_states(&self) -> Vec<(u8, f64)> {
                vec![(0, 1.0)]
            }
            fn transitions(&self, s: &u8) -> Vec<(u8, f64)> {
                vec![((s + 1) % 3, 1.0)]
            }
            fn atomic_propositions(&self) -> Vec<&'static str> {
                vec!["good"]
            }
            fn holds(&self, ap: &str, _: &u8) -> bool {
                ap == "good"
            }
        }
        let d = explore(&Safe, &ExploreOptions::default()).unwrap().dtmc;
        assert!((q(&d, "P=? [ G good ]") - 1.0).abs() < 1e-9);
        // Steady state of a period-3 cycle: S=? of one state = 1/3 via the
        // Cesàro (lazy-chain) limit.
        let mut d2 = d.clone();
        d2.insert_label("zero", smg_dtmc::BitVec::from_fn(3, |i| i == 0))
            .unwrap();
        let s = q(&d2, "S=? [ zero ]");
        assert!((s - 1.0 / 3.0).abs() < 1e-5, "s = {s}");
    }
}
