//! Probabilistic Computation Tree Logic (pCTL) over DTMCs.
//!
//! The paper specifies its performance metrics "as properties in a
//! probabilistic temporal logic" (Hansson & Jonsson's pCTL) and verifies
//! them with PRISM. This crate is the corresponding layer of our stack:
//!
//! * [`ast`] — formulas: state formulas with a probability operator
//!   `P⋈p [path]`, path formulas `X φ`, `φ U[<=t] ψ`, `F[<=t] φ`,
//!   `G[<=t] φ`, plus top-level queries `P=? [...]`, `R=? [I=t]`,
//!   `R=? [C<=t]` and `S=? [φ]`.
//! * [`parser`] — a PRISM-flavoured concrete syntax, so the paper's
//!   properties can be written verbatim: `P=? [ G<=300 !flag ]`,
//!   `R=? [ I=300 ]`, `P=? [ F<=300 count_exceeds ]`.
//! * [`check`] — the model-checking algorithms over [`smg_dtmc::Dtmc`]:
//!   forward transient propagation for initial-state queries and backward
//!   value iteration for per-state satisfaction (both provided; they agree,
//!   and the tests enforce it).
//! * [`mdp`] — the checker for nondeterministic models
//!   ([`smg_mdp::Mdp`]): the `Pmin=?`/`Pmax=?`/`Rmin=?`/`Rmax=?` query
//!   forms quantify over all resolutions of the nondeterminism via
//!   `smg-mdp`'s min/max value iteration, giving worst-case design
//!   guarantees where the DTMC forms give probabilistic ones.
//! * [`session`] — the batch-oriented [`CheckSession`]: one entry point
//!   over both model families ([`AnyModel`]), with precomputation shared
//!   across a whole property family.
//!
//! # Example
//!
//! ```
//! use smg_dtmc::{explore, DtmcModel, ExploreOptions};
//! use smg_pctl::{check_query, parse_property};
//!
//! struct Coin;
//! impl DtmcModel for Coin {
//!     type State = bool;
//!     fn initial_states(&self) -> Vec<(bool, f64)> { vec![(false, 1.0)] }
//!     fn transitions(&self, _: &bool) -> Vec<(bool, f64)> {
//!         vec![(false, 0.5), (true, 0.5)]
//!     }
//!     fn atomic_propositions(&self) -> Vec<&'static str> { vec!["heads"] }
//!     fn holds(&self, ap: &str, s: &bool) -> bool { ap == "heads" && *s }
//! }
//!
//! let e = explore(&Coin, &ExploreOptions::default())?;
//! let prop = parse_property("P=? [ F<=3 heads ]")?;
//! let result = check_query(&e.dtmc, &prop)?;
//! assert!((result.value() - 0.875).abs() < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Certified answers
//!
//! Unbounded queries are normally solved by value iteration with a
//! residual stopping test, which can declare convergence arbitrarily far
//! from the true probability. [`CheckOptions::certified`] switches those
//! queries to interval iteration: the result then carries a sound
//! `[lo, hi]` bracket of width below ε ([`CheckResult::interval`]), and
//! [`CheckResult::solver`] reports which engine ran.
//!
//! ```
//! use smg_dtmc::{explore, DtmcModel, ExploreOptions};
//! use smg_pctl::{check_query_with, parse_property, CheckOptions, Solver};
//! # struct Coin;
//! # impl DtmcModel for Coin {
//! #     type State = bool;
//! #     fn initial_states(&self) -> Vec<(bool, f64)> { vec![(false, 1.0)] }
//! #     fn transitions(&self, _: &bool) -> Vec<(bool, f64)> {
//! #         vec![(false, 0.5), (true, 0.5)]
//! #     }
//! #     fn atomic_propositions(&self) -> Vec<&'static str> { vec!["heads"] }
//! #     fn holds(&self, ap: &str, s: &bool) -> bool { ap == "heads" && *s }
//! # }
//! let e = explore(&Coin, &ExploreOptions::default())?;
//! let prop = parse_property("P=? [ F heads ]")?;
//! let result = check_query_with(&e.dtmc, &prop, &CheckOptions::certified(1e-9))?;
//! assert_eq!(result.solver(), Solver::IntervalIteration);
//! let (lo, hi) = result.interval().expect("certified runs carry a bracket");
//! assert!(hi - lo < 1e-9);
//! assert!(lo <= 1.0 && 1.0 <= hi); // the exact answer is 1
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Checking sessions
//!
//! Real workloads check a *family* of properties against one model. A
//! [`CheckSession`] owns the model (chain or MDP — an [`AnyModel`]),
//! dispatches each query to the right checker, and memoizes shared
//! precomputation — satisfaction sets, unbounded solves, certified
//! brackets — so a batch pays the graph work once. The cache is keyed on
//! exact solver inputs and both paths run the same code, so batch results
//! are identical to one-by-one calls.
//!
//! ```
//! use smg_dtmc::{explore, DtmcModel, ExploreOptions};
//! use smg_pctl::{parse_property, CheckSession};
//! # struct Coin;
//! # impl DtmcModel for Coin {
//! #     type State = bool;
//! #     fn initial_states(&self) -> Vec<(bool, f64)> { vec![(false, 1.0)] }
//! #     fn transitions(&self, _: &bool) -> Vec<(bool, f64)> {
//! #         vec![(false, 0.5), (true, 0.5)]
//! #     }
//! #     fn atomic_propositions(&self) -> Vec<&'static str> { vec!["heads"] }
//! #     fn holds(&self, ap: &str, s: &bool) -> bool { ap == "heads" && *s }
//! # }
//! let e = explore(&Coin, &ExploreOptions::default())?;
//! let session = CheckSession::new(e.dtmc).certified(1e-9);
//! let family = [
//!     parse_property("P=? [ F heads ]")?,
//!     parse_property("P=? [ G !heads ]")?, // shares the certified solve
//! ];
//! let results = session.check_all(&family)?;
//! assert!((results[0].value() + results[1].value() - 1.0).abs() < 1e-9);
//! assert!(session.cache_stats().hits() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod check;
pub mod error;
pub mod mdp;
pub mod parser;
pub mod session;

pub use ast::{Cmp, Opt, PathFormula, Property, RewardQuery, StateFormula};
pub use check::{
    check_query, check_query_with, path_prob_from_initial, sat_states, CheckOptions, CheckResult,
    Solver,
};
pub use error::PctlError;
pub use mdp::{check_mdp_query, check_mdp_query_with, opt_path_values, sat_states_mdp};
pub use parser::parse_property;
pub use session::{AnyModel, CacheKind, CacheStats, CheckSession, KindStats};
