//! The pCTL model checker for MDPs.
//!
//! Quantitative queries over an MDP must say *which* resolution of the
//! nondeterminism they mean: [`check_mdp_query`] accepts the `Pmin=?` /
//! `Pmax=?` / `Rmin=?` / `Rmax=?` forms (worst case / best case over all
//! schedulers) and rejects the scheduler-ambiguous plain `P=?` / `R=?` /
//! `S=?` forms with a pointed [`PctlError::Unsupported`]. Boolean state
//! formulas over labels work unchanged.
//!
//! All numeric evaluation happens *backwards* — per-state optimal value
//! vectors from `smg-mdp`'s value iteration, folded over the initial
//! distribution at the end. (A scheduler observes the state, including the
//! initial draw, so the optimal value of a distribution is the expectation
//! of the per-state optima; there is no MDP analogue of the DTMC checker's
//! forward transient pass.)
//!
//! Like the DTMC checker, the algorithms are methods on an evaluator with
//! an optional session cache (`MdpCache`); the free functions run it
//! uncached, [`crate::session::CheckSession`] runs it cached.

use crate::ast::{Opt, PathFormula, Property, RewardQuery, StateFormula, TimeBound};
use crate::check::{
    cert_solver, fold_certificate, is_unbounded_path, sat_key, CheckOptions, CheckResult,
    EngineValue, Solver, CERTIFIED_MAX_ITER,
};
use crate::error::PctlError;
use crate::session::{CacheKind, CacheStats};
use smg_dtmc::solve::CertifiedValues;
use smg_dtmc::BitVec;
use smg_mdp::{vi, Mdp, ViOptions};
use smg_obs as obs;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Evaluates a top-level property against the MDP's initial distribution.
///
/// # Errors
///
/// * [`PctlError::Unsupported`] for query forms that are ambiguous on an
///   MDP (`P=?`, `R=?`, `S=?`, and threshold operators `P⋈p [...]`).
/// * [`PctlError::Dtmc`] for unknown labels or non-convergence.
///
/// # Example
///
/// ```
/// use smg_mdp::{Mdp, MdpBuilder};
/// use smg_pctl::{check_mdp_query, parse_property};
/// use std::collections::BTreeMap;
///
/// // One state choosing between a safe loop and a risky exit to "err".
/// let mut b = MdpBuilder::default();
/// b.push_action(&mut [(0, 1.0)]).unwrap();
/// b.push_action(&mut [(0, 0.2), (1, 0.8)]).unwrap();
/// b.finish_state().unwrap();
/// b.push_action(&mut [(1, 1.0)]).unwrap();
/// b.finish_state().unwrap();
/// let mut labels = BTreeMap::new();
/// labels.insert("err".into(), smg_dtmc::BitVec::from_fn(2, |i| i == 1));
/// let mdp = Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![0.0, 0.0]).unwrap();
///
/// let worst = check_mdp_query(&mdp, &parse_property("Pmax=? [ F err ]")?)?;
/// let best = check_mdp_query(&mdp, &parse_property("Pmin=? [ F err ]")?)?;
/// assert!((worst.value() - 1.0).abs() < 1e-9); // adversary keeps trying
/// assert_eq!(best.value(), 0.0);               // or never tries at all
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_mdp_query(mdp: &Mdp, property: &Property) -> Result<CheckResult, PctlError> {
    check_mdp_query_with(mdp, property, &CheckOptions::default())
}

/// Evaluates a top-level property against the MDP's initial distribution.
/// With [`CheckOptions::certified`], unbounded `Pmin`/`Pmax` and
/// reachability `Rmin`/`Rmax` queries run certified interval iteration
/// (`smg-mdp`'s `certified_*` drivers) and the result carries a sound
/// `[lo, hi]` bracket.
///
/// To check a *family* of properties against one MDP, prefer a
/// [`crate::session::CheckSession`], which runs this exact code path with
/// a precomputation cache shared across the batch.
///
/// # Errors
///
/// As for [`check_mdp_query`].
pub fn check_mdp_query_with(
    mdp: &Mdp,
    property: &Property,
    opts: &CheckOptions,
) -> Result<CheckResult, PctlError> {
    MdpEvaluator::uncached(mdp, ViOptions::default()).check_mdp_query_with(property, opts)
}

/// Memoized precomputation shared by every MDP query of a
/// [`crate::session::CheckSession`]. Same keying discipline as
/// [`crate::check::DtmcCache`]: satisfaction sets by the collision-free
/// `sat_key` serialization, optimal
/// value vectors and certified brackets by the exact operand bit-sets plus
/// the optimization direction (and ε bits), so a hit always equals
/// recomputation. The qualitative work inside the certified drivers
/// (`Prob0`/`Prob1` sets, MEC decompositions, proper schedulers) is
/// amortized through these entries: it runs once per distinct
/// `(operands, direction, ε)` triple per session instead of once per
/// query.
#[derive(Debug, Default)]
pub(crate) struct MdpCache {
    /// Satisfaction sets, one entry per distinct (sub)formula text.
    sat: HashMap<String, BitVec>,
    /// Unbounded optimal until values keyed by `(lhs, rhs, opt)`.
    /// (`F φ` routes through this with an all-ones `lhs`.)
    until: HashMap<(BitVec, BitVec, Opt), Arc<Vec<f64>>>,
    /// Optimal reachability-reward values keyed by `(target, opt)`.
    reach_reward: HashMap<(BitVec, Opt), Arc<Vec<f64>>>,
    /// Certified until brackets keyed by `(lhs, rhs, opt, ε bits, topo)`.
    /// `topo` is in the key because the global and SCC-ordered sweeps
    /// produce different (equally sound) bits, and session answers must
    /// depend only on (model, property, options) — not request history.
    cert_until: HashMap<(BitVec, BitVec, Opt, u64, bool), Arc<CertifiedValues>>,
    /// Certified reachability brackets keyed by `(target, opt, ε bits,
    /// topo)`.
    cert_reach: HashMap<(BitVec, Opt, u64, bool), Arc<CertifiedValues>>,
    /// Certified reachability-reward brackets, same key as `cert_reach`.
    cert_reach_reward: HashMap<(BitVec, Opt, u64, bool), Arc<CertifiedValues>>,
    /// Hit/miss telemetry, per cache kind.
    pub(crate) stats: CacheStats,
}

/// The MDP query engine: checking algorithms as methods over an MDP, the
/// value-iteration options to dispatch with, and an optional session
/// cache.
pub(crate) struct MdpEvaluator<'a> {
    mdp: &'a Mdp,
    vio: ViOptions,
    cache: Option<&'a RefCell<MdpCache>>,
}

impl<'a> MdpEvaluator<'a> {
    /// An evaluator that recomputes everything (the free-function path).
    pub(crate) fn uncached(mdp: &'a Mdp, vio: ViOptions) -> Self {
        MdpEvaluator {
            mdp,
            vio,
            cache: None,
        }
    }

    /// An evaluator sharing a session's cache.
    pub(crate) fn cached(mdp: &'a Mdp, vio: ViOptions, cache: &'a RefCell<MdpCache>) -> Self {
        MdpEvaluator {
            mdp,
            vio,
            cache: Some(cache),
        }
    }

    /// Memoizes one computation; see `Evaluator::memo` in
    /// [`crate::check`] for the borrow discipline.
    fn memo<V: Clone>(
        &self,
        kind: CacheKind,
        lookup: impl Fn(&MdpCache) -> Option<V>,
        store: impl FnOnce(&mut MdpCache, V),
        compute: impl FnOnce(&Self) -> Result<V, PctlError>,
    ) -> Result<V, PctlError> {
        let Some(cell) = self.cache else {
            return compute(self);
        };
        let found = lookup(&cell.borrow());
        if let Some(v) = found {
            cell.borrow_mut().stats.record_hit(kind);
            return Ok(v);
        }
        let v = compute(self)?;
        let mut c = cell.borrow_mut();
        c.stats.record_miss(kind);
        store(&mut c, v.clone());
        Ok(v)
    }

    /// A copy of the value-iteration options with the checker's wider
    /// certified iteration budget (interval iteration closes a width, not
    /// a residual).
    fn certified_vio(&self) -> ViOptions {
        ViOptions {
            max_iter: CERTIFIED_MAX_ITER,
            ..self.vio
        }
    }

    /// See [`check_mdp_query_with`].
    pub(crate) fn check_mdp_query_with(
        &self,
        property: &Property,
        opts: &CheckOptions,
    ) -> Result<CheckResult, PctlError> {
        let start = Instant::now();
        let (value, boolean, solver, interval) = match property {
            Property::OptProbQuery(opt, path) => {
                let (v, solver, interval) = self.opt_path_query(path, *opt, opts)?;
                (v, None, solver, interval)
            }
            Property::OptRewardQuery(opt, q) => {
                let (v, solver, interval) = self.opt_reward_query(q, *opt, opts)?;
                (v, None, solver, interval)
            }
            Property::Bool(f) => {
                let sat = self.sat_states_mdp(f)?;
                let ok = self
                    .mdp
                    .initial()
                    .iter()
                    .all(|&(s, p)| p == 0.0 || sat.get(s as usize));
                (
                    if ok { 1.0 } else { 0.0 },
                    Some(ok),
                    Solver::Transient,
                    None,
                )
            }
            Property::ProbQuery(_) => {
                return Err(PctlError::Unsupported {
                    construct: "P=? on an MDP (use Pmin=? / Pmax=? to fix the scheduler \
                                quantification)"
                        .into(),
                })
            }
            Property::RewardQuery(_) => {
                return Err(PctlError::Unsupported {
                    construct: "R=? on an MDP (use Rmin=? / Rmax=?)".into(),
                })
            }
            Property::SteadyQuery(_) => {
                return Err(PctlError::Unsupported {
                    construct: "S=? on an MDP (long-run averages are scheduler-dependent)".into(),
                })
            }
        };
        let elapsed = start.elapsed();
        obs::observe(
            "smg_pctl_property_seconds",
            Some(("solver", solver.as_str())),
            elapsed.as_secs_f64(),
        );
        Ok(CheckResult::assemble(value, boolean, elapsed).with_engine(solver, interval))
    }

    /// Evaluates an optimal path-probability query from the initial
    /// distribution, reporting which engine ran and the value bracket
    /// where one exists.
    fn opt_path_query(
        &self,
        path: &PathFormula,
        opt: Opt,
        opts: &CheckOptions,
    ) -> Result<EngineValue, PctlError> {
        if let Some(eps) = opts.certify {
            match path {
                PathFormula::Until {
                    lhs,
                    rhs,
                    bound: TimeBound::None,
                } => {
                    let l = self.sat_states_mdp(lhs)?;
                    let r = self.sat_states_mdp(rhs)?;
                    let cert = self.cert_until(&l, &r, opt, eps, opts.topo)?;
                    return Ok(fold_certificate(
                        self.mdp.initial(),
                        &cert,
                        false,
                        cert_solver(opts),
                    ));
                }
                PathFormula::Finally {
                    inner,
                    bound: TimeBound::None,
                } => {
                    let f = self.sat_states_mdp(inner)?;
                    let cert = self.cert_reach(&f, opt, eps, opts.topo)?;
                    return Ok(fold_certificate(
                        self.mdp.initial(),
                        &cert,
                        false,
                        cert_solver(opts),
                    ));
                }
                PathFormula::Globally {
                    inner,
                    bound: TimeBound::None,
                } => {
                    // G φ = ¬F ¬φ with the dual optimum; the bracket
                    // complements with its ends swapped.
                    let bad = self.sat_states_mdp(inner)?.not();
                    let cert = self.cert_reach(&bad, opt.dual(), eps, opts.topo)?;
                    return Ok(fold_certificate(
                        self.mdp.initial(),
                        &cert,
                        true,
                        cert_solver(opts),
                    ));
                }
                _ => {} // finite-horizon forms are exact arithmetic below
            }
        }
        let vals = self.opt_path_values(path, opt)?;
        let v = initial_expectation(self.mdp, &vals);
        if is_unbounded_path(path) {
            Ok((v, Solver::Iterative, None))
        } else {
            Ok((v, Solver::Transient, Some((v, v))))
        }
    }

    /// See [`sat_states_mdp`]. Keyed by the collision-free
    /// [`crate::check::sat_key`] serialization, like the DTMC evaluator.
    pub(crate) fn sat_states_mdp(&self, formula: &StateFormula) -> Result<BitVec, PctlError> {
        self.memo(
            CacheKind::Sat,
            |c| c.sat.get(&sat_key(formula)).cloned(),
            |c, v| {
                c.sat.insert(sat_key(formula), v);
            },
            |ev| ev.sat_states_mdp_raw(formula),
        )
    }

    fn sat_states_mdp_raw(&self, formula: &StateFormula) -> Result<BitVec, PctlError> {
        let n = self.mdp.n_states();
        match formula {
            StateFormula::True => Ok(BitVec::ones(n)),
            StateFormula::False => Ok(BitVec::zeros(n)),
            StateFormula::Ap(name) => Ok(self.mdp.label(name)?.clone()),
            StateFormula::Not(f) => Ok(self.sat_states_mdp(f)?.not()),
            StateFormula::And(a, b) => Ok(self.sat_states_mdp(a)?.and(&self.sat_states_mdp(b)?)),
            StateFormula::Or(a, b) => Ok(self.sat_states_mdp(a)?.or(&self.sat_states_mdp(b)?)),
            StateFormula::Implies(a, b) => {
                Ok(self.sat_states_mdp(a)?.not().or(&self.sat_states_mdp(b)?))
            }
            StateFormula::Prob { .. } => Err(PctlError::Unsupported {
                construct: "nested P⋈p operator inside an MDP formula (its satisfaction set \
                            depends on the scheduler quantifier)"
                    .into(),
            }),
        }
    }

    /// See [`opt_path_values`].
    pub(crate) fn opt_path_values(
        &self,
        path: &PathFormula,
        opt: Opt,
    ) -> Result<Vec<f64>, PctlError> {
        let n = self.mdp.n_states();
        match path {
            PathFormula::Next(f) => {
                let sat = self.sat_states_mdp(f)?;
                let x: Vec<f64> = (0..n).map(|i| if sat.get(i) { 1.0 } else { 0.0 }).collect();
                let mut out = vec![0.0; n];
                vi::optimal_step_into(self.mdp, &x, None, opt, &mut out, &self.vio);
                Ok(out)
            }
            PathFormula::Until { lhs, rhs, bound } => {
                let l = self.sat_states_mdp(lhs)?;
                let r = self.sat_states_mdp(rhs)?;
                self.opt_until_values(&l, &r, *bound, opt)
            }
            PathFormula::Finally { inner, bound } => {
                let f = self.sat_states_mdp(inner)?;
                let all = BitVec::ones(n);
                self.opt_until_values(&all, &f, *bound, opt)
            }
            PathFormula::Globally { inner, bound } => {
                // G φ = ¬F ¬φ, with the *dual* optimum: the scheduler
                // maximizing the invariant minimizes the violation.
                let f = self.sat_states_mdp(inner)?;
                let bad = f.not();
                let all = BitVec::ones(n);
                let reach = self.opt_until_values(&all, &bad, *bound, opt.dual())?;
                Ok(reach.into_iter().map(|p| 1.0 - p).collect())
            }
        }
    }

    /// Optimal until values for every [`TimeBound`] variant. Interval
    /// bounds follow PRISM's semantics (the prefix must stay in `lhs`;
    /// reaching `rhs` before the window opens does not count), mirrored
    /// from the DTMC checker's `interval_until_values` with optimal
    /// backups.
    fn opt_until_values(
        &self,
        lhs: &BitVec,
        rhs: &BitVec,
        bound: TimeBound,
        opt: Opt,
    ) -> Result<Vec<f64>, PctlError> {
        match bound {
            TimeBound::Upper(t) => Ok(vi::bounded_until_values(
                self.mdp, lhs, rhs, t as usize, opt, &self.vio,
            )?),
            TimeBound::None => self.unbounded_until(lhs, rhs, opt).map(arc_to_vec),
            TimeBound::Interval(a, b) => {
                let mut x =
                    vi::bounded_until_values(self.mdp, lhs, rhs, (b - a) as usize, opt, &self.vio)?;
                let mut next = vec![0.0; x.len()];
                for _ in 0..a {
                    vi::optimal_step_into(self.mdp, &x, Some(lhs), opt, &mut next, &self.vio);
                    // Non-lhs states die during the prefix (rhs does not
                    // absorb yet).
                    for (i, v) in next.iter_mut().enumerate() {
                        if !lhs.get(i) {
                            *v = 0.0;
                        }
                    }
                    std::mem::swap(&mut x, &mut next);
                }
                Ok(x)
            }
        }
    }

    /// Unbounded optimal until values, memoized on the operand sets and
    /// the direction.
    fn unbounded_until(
        &self,
        lhs: &BitVec,
        rhs: &BitVec,
        opt: Opt,
    ) -> Result<Arc<Vec<f64>>, PctlError> {
        self.memo(
            CacheKind::Values,
            |c| c.until.get(&(lhs.clone(), rhs.clone(), opt)).cloned(),
            |c, v| {
                c.until.insert((lhs.clone(), rhs.clone(), opt), v);
            },
            |ev| {
                Ok(Arc::new(vi::unbounded_until_values(
                    ev.mdp, lhs, rhs, opt, &ev.vio,
                )?))
            },
        )
    }

    fn opt_reward_query(
        &self,
        q: &RewardQuery,
        opt: Opt,
        opts: &CheckOptions,
    ) -> Result<EngineValue, PctlError> {
        match q {
            RewardQuery::Instantaneous(t) => {
                let vals = vi::instantaneous_reward_values(self.mdp, *t as usize, opt, &self.vio);
                let v = initial_expectation(self.mdp, &vals);
                Ok((v, Solver::Transient, Some((v, v))))
            }
            RewardQuery::Cumulative(t) => {
                let vals = vi::cumulative_reward_values(self.mdp, *t as usize, opt, &self.vio);
                let v = initial_expectation(self.mdp, &vals);
                Ok((v, Solver::Transient, Some((v, v))))
            }
            RewardQuery::Reach(phi) => {
                let target = self.sat_states_mdp(phi)?;
                if let Some(eps) = opts.certify {
                    let cert = self.cert_reach_reward(&target, opt, eps, opts.topo)?;
                    return Ok(fold_certificate(
                        self.mdp.initial(),
                        &cert,
                        false,
                        cert_solver(opts),
                    ));
                }
                let vals = self.reach_reward(&target, opt)?;
                // Skip zero-mass initial states so `0 × ∞` cannot poison
                // the expectation with NaN (same guard as the DTMC
                // checker).
                let v = self
                    .mdp
                    .initial()
                    .iter()
                    .filter(|&&(_, p)| p > 0.0)
                    .map(|&(s, p)| p * vals[s as usize])
                    .sum();
                Ok((v, Solver::Iterative, None))
            }
        }
    }

    /// Optimal reachability-reward values, memoized on the target set and
    /// the direction.
    fn reach_reward(&self, target: &BitVec, opt: Opt) -> Result<Arc<Vec<f64>>, PctlError> {
        self.memo(
            CacheKind::Values,
            |c| c.reach_reward.get(&(target.clone(), opt)).cloned(),
            |c, v| {
                c.reach_reward.insert((target.clone(), opt), v);
            },
            |ev| {
                Ok(Arc::new(vi::reach_reward_values(
                    ev.mdp, target, opt, &ev.vio,
                )?))
            },
        )
    }

    /// Certified unbounded until, memoized on `(lhs, rhs, opt, ε, topo)`.
    /// With `topo`, the solve walks the SCC condensation
    /// (`vi::topo_certified_*`), landing on different sound bits than the
    /// global sweep — hence the separate cache slot.
    fn cert_until(
        &self,
        lhs: &BitVec,
        rhs: &BitVec,
        opt: Opt,
        eps: f64,
        topo: bool,
    ) -> Result<Arc<CertifiedValues>, PctlError> {
        self.memo(
            CacheKind::Certified,
            |c| {
                c.cert_until
                    .get(&(lhs.clone(), rhs.clone(), opt, eps.to_bits(), topo))
                    .cloned()
            },
            |c, v| {
                c.cert_until
                    .insert((lhs.clone(), rhs.clone(), opt, eps.to_bits(), topo), v);
            },
            |ev| {
                let vio = ev.certified_vio();
                let cert = if topo {
                    vi::topo_certified_until_values(ev.mdp, lhs, rhs, opt, eps, &vio)?
                } else {
                    vi::certified_until_values(ev.mdp, lhs, rhs, opt, eps, &vio)?
                };
                Ok(Arc::new(cert))
            },
        )
    }

    /// Certified unbounded reachability, memoized on `(target, opt, ε,
    /// topo)`.
    fn cert_reach(
        &self,
        target: &BitVec,
        opt: Opt,
        eps: f64,
        topo: bool,
    ) -> Result<Arc<CertifiedValues>, PctlError> {
        self.memo(
            CacheKind::Certified,
            |c| {
                c.cert_reach
                    .get(&(target.clone(), opt, eps.to_bits(), topo))
                    .cloned()
            },
            |c, v| {
                c.cert_reach
                    .insert((target.clone(), opt, eps.to_bits(), topo), v);
            },
            |ev| {
                let vio = ev.certified_vio();
                let cert = if topo {
                    vi::topo_certified_reach_values(ev.mdp, target, opt, eps, &vio)?
                } else {
                    vi::certified_reach_values(ev.mdp, target, opt, eps, &vio)?
                };
                Ok(Arc::new(cert))
            },
        )
    }

    /// Certified reachability reward, memoized on `(target, opt, ε, topo)`.
    fn cert_reach_reward(
        &self,
        target: &BitVec,
        opt: Opt,
        eps: f64,
        topo: bool,
    ) -> Result<Arc<CertifiedValues>, PctlError> {
        self.memo(
            CacheKind::Certified,
            |c| {
                c.cert_reach_reward
                    .get(&(target.clone(), opt, eps.to_bits(), topo))
                    .cloned()
            },
            |c, v| {
                c.cert_reach_reward
                    .insert((target.clone(), opt, eps.to_bits(), topo), v);
            },
            |ev| {
                let vio = ev.certified_vio();
                let cert = if topo {
                    vi::topo_certified_reach_reward_values(ev.mdp, target, opt, eps, &vio)?
                } else {
                    vi::certified_reach_reward_values(ev.mdp, target, opt, eps, &vio)?
                };
                Ok(Arc::new(cert))
            },
        )
    }
}

/// Unwraps a cache handle into an owned vector (no copy when the evaluator
/// was uncached and the handle is unique).
fn arc_to_vec(rc: Arc<Vec<f64>>) -> Vec<f64> {
    Arc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone())
}

/// The set of states satisfying a (boolean) state formula over an MDP's
/// labels. Threshold operators `P⋈p [...]` are rejected: their satisfaction
/// set on an MDP depends on the scheduler quantifier, which this syntax
/// does not carry.
///
/// # Errors
///
/// [`PctlError::Dtmc`] for unknown labels; [`PctlError::Unsupported`] for
/// nested probability operators.
pub fn sat_states_mdp(mdp: &Mdp, formula: &StateFormula) -> Result<BitVec, PctlError> {
    MdpEvaluator::uncached(mdp, ViOptions::default()).sat_states_mdp(formula)
}

/// The optimal probability of the path formula *from every state*.
///
/// # Errors
///
/// As for [`check_mdp_query`].
pub fn opt_path_values(
    mdp: &Mdp,
    path: &PathFormula,
    opt: Opt,
    vio: &ViOptions,
) -> Result<Vec<f64>, PctlError> {
    MdpEvaluator::uncached(mdp, *vio).opt_path_values(path, opt)
}

fn initial_expectation(mdp: &Mdp, vals: &[f64]) -> f64 {
    mdp.initial()
        .iter()
        .map(|&(s, p)| p * vals[s as usize])
        .sum()
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_property;
    use smg_mdp::MdpBuilder;
    use std::collections::BTreeMap;

    /// The DTMC checker's gadget with an added adversary choice in state 0:
    /// action 0 behaves like the original chain (0 → {1: ½, 2: ½}), action
    /// 1 restarts (0 → 0). States: 0 start, 1 middle, 2 "bad" absorbing,
    /// 3 "goal" absorbing; 1 → {3: ½, 0: ½}.
    fn gadget_mdp() -> Mdp {
        let mut b = MdpBuilder::default();
        b.push_action(&mut [(1, 0.5), (2, 0.5)]).unwrap();
        b.push_action(&mut [(0, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 0.5), (0, 0.5)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(2, 1.0)]).unwrap();
        b.finish_state().unwrap();
        b.push_action(&mut [(3, 1.0)]).unwrap();
        b.finish_state().unwrap();
        let mut labels = BTreeMap::new();
        labels.insert("goal".to_string(), BitVec::from_fn(4, |i| i == 3));
        labels.insert("bad".to_string(), BitVec::from_fn(4, |i| i == 2));
        Mdp::new(b.finish(), vec![(0, 1.0)], labels, vec![0.0, 0.0, 0.0, 1.0]).unwrap()
    }

    fn q(mdp: &Mdp, prop: &str) -> f64 {
        check_mdp_query(mdp, &parse_property(prop).unwrap())
            .unwrap()
            .value()
    }

    #[test]
    fn unbounded_min_max_reach() {
        let m = gadget_mdp();
        // Max: restarting is useless (same 1/3 as the DTMC); the optimum
        // solves p = ½(½ + ½p) → p = 1/3.
        let pmax = q(&m, "Pmax=? [ F goal ]");
        assert!((pmax - 1.0 / 3.0).abs() < 1e-9, "pmax = {pmax}");
        // Min: the adversary restarts forever and never reaches goal.
        assert_eq!(q(&m, "Pmin=? [ F goal ]"), 0.0);
        // Dually for bad.
        assert_eq!(q(&m, "Pmin=? [ F bad ]"), 0.0);
        let pmax_bad = q(&m, "Pmax=? [ F bad ]");
        assert!((pmax_bad - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn globally_duality() {
        let m = gadget_mdp();
        // Pmax[G !bad] = 1 - Pmin[F bad] = 1 (restart forever).
        assert_eq!(q(&m, "Pmax=? [ G !bad ]"), 1.0);
        // Pmin[G !bad] = 1 - Pmax[F bad] = 1/3.
        let pmin_g = q(&m, "Pmin=? [ G !bad ]");
        assert!((pmin_g - 1.0 / 3.0).abs() < 1e-9);
        // Bounded variant.
        let g2 = q(&m, "Pmin=? [ G<=2 !bad ]");
        assert!((g2 - 0.5).abs() < 1e-12, "g2 = {g2}");
    }

    #[test]
    fn bounded_and_interval_untils() {
        let m = gadget_mdp();
        assert_eq!(q(&m, "Pmax=? [ F<=1 goal ]"), 0.0);
        assert!((q(&m, "Pmax=? [ F<=2 goal ]") - 0.25).abs() < 1e-12);
        assert!((q(&m, "Pmax=? [ F<=4 goal ]") - 0.3125).abs() < 1e-12);
        // F[0,t] coincides with F<=t.
        for t in [0u64, 1, 2, 5] {
            let a = q(&m, &format!("Pmax=? [ F[0,{t}] goal ]"));
            let b = q(&m, &format!("Pmax=? [ F<={t} goal ]"));
            assert!((a - b).abs() < 1e-12, "t={t}: {a} vs {b}");
        }
        // Next: one optimal step.
        assert!((q(&m, "Pmax=? [ X bad ]") - 0.5).abs() < 1e-12);
        assert_eq!(q(&m, "Pmin=? [ X bad ]"), 0.0);
        // Until with a constraining lhs: forbidden middle state kills the
        // only path to goal.
        assert_eq!(q(&m, "Pmax=? [ (goal | bad) U goal ]"), 0.0);
    }

    #[test]
    fn reward_queries() {
        let m = gadget_mdp();
        // Instantaneous reward = P(in goal at exactly t) optimized; the
        // restart action lets the adversary pin it to 0.
        assert_eq!(q(&m, "Rmin=? [ I=5 ]"), 0.0);
        let rmax = q(&m, "Rmax=? [ I=4 ]");
        assert!((rmax - 0.3125).abs() < 1e-12, "rmax = {rmax}");
        // Cumulative: goal is absorbing with reward 1, so Rmax grows with
        // the horizon while Rmin stays 0.
        assert_eq!(q(&m, "Rmin=? [ C<=10 ]"), 0.0);
        assert!(q(&m, "Rmax=? [ C<=10 ]") > 1.0);
        // Reach rewards: reaching (goal|bad) is possible but not certain
        // under the worst scheduler (restart forever) → Rmax = ∞; the best
        // scheduler reaches it with certainty without collecting reward.
        assert_eq!(q(&m, "Rmax=? [ F (goal | bad) ]"), f64::INFINITY);
        assert_eq!(q(&m, "Rmin=? [ F (goal | bad) ]"), 0.0);
    }

    #[test]
    fn boolean_queries_work_and_ambiguous_forms_error() {
        let m = gadget_mdp();
        let r = check_mdp_query(&m, &parse_property("!goal").unwrap()).unwrap();
        assert_eq!(r.verdict(), Some(true));
        let r = check_mdp_query(&m, &parse_property("goal | !bad").unwrap()).unwrap();
        assert_eq!(r.verdict(), Some(true));
        for bad in ["P=? [ F goal ]", "R=? [ I=3 ]", "S=? [ goal ]"] {
            let e = check_mdp_query(&m, &parse_property(bad).unwrap()).unwrap_err();
            assert!(matches!(e, PctlError::Unsupported { .. }), "{bad}: {e}");
        }
        let e = check_mdp_query(&m, &parse_property("P>=0.5 [ F goal ]").unwrap()).unwrap_err();
        assert!(matches!(e, PctlError::Unsupported { .. }));
        let e = check_mdp_query(&m, &parse_property("Pmax=? [ F nope ]").unwrap()).unwrap_err();
        assert!(matches!(e, PctlError::Dtmc(_)));
    }

    #[test]
    fn certified_mdp_queries_bracket_and_report_solver() {
        use crate::check::{CheckOptions, Solver};
        let m = gadget_mdp();
        let opts = CheckOptions::certified(1e-9);
        let cases = [
            ("Pmax=? [ F goal ]", 1.0 / 3.0),
            ("Pmin=? [ F goal ]", 0.0),
            ("Pmax=? [ G !bad ]", 1.0),
            ("Pmin=? [ G !bad ]", 1.0 / 3.0),
            ("Rmin=? [ F (goal | bad) ]", 0.0),
        ];
        for (prop, want) in cases {
            let r = check_mdp_query_with(&m, &parse_property(prop).unwrap(), &opts).unwrap();
            assert_eq!(r.solver(), Solver::IntervalIteration, "{prop}");
            let (lo, hi) = r.interval().unwrap();
            assert!(hi - lo < 1e-9, "{prop}: width {}", hi - lo);
            assert!(
                lo <= want + 1e-12 && want <= hi + 1e-12,
                "{prop}: [{lo}, {hi}] vs {want}"
            );
        }
        // Rmax [F goal|bad]: the adversary can restart forever → ∞.
        let r = check_mdp_query_with(
            &m,
            &parse_property("Rmax=? [ F (goal | bad) ]").unwrap(),
            &opts,
        )
        .unwrap();
        assert_eq!(r.interval(), Some((f64::INFINITY, f64::INFINITY)));
        // Bounded forms stay exact arithmetic with a degenerate interval.
        let r = check_mdp_query_with(&m, &parse_property("Pmax=? [ F<=4 goal ]").unwrap(), &opts)
            .unwrap();
        assert_eq!(r.solver(), Solver::Transient);
        assert_eq!(r.interval(), Some((r.value(), r.value())));
        // Uncertified unbounded queries claim no bound.
        let r = check_mdp_query(&m, &parse_property("Pmax=? [ F goal ]").unwrap()).unwrap();
        assert_eq!(r.solver(), Solver::Iterative);
        assert_eq!(r.interval(), None);
    }

    #[test]
    fn topological_certified_mdp_matches_and_tags() {
        use crate::check::{CheckOptions, Solver};
        let m = gadget_mdp();
        let global = CheckOptions::certified(1e-9);
        let topo = CheckOptions::certified(1e-9).topological();
        for prop in [
            "Pmax=? [ F goal ]",
            "Pmin=? [ F goal ]",
            "Pmax=? [ G !bad ]",
            "Pmin=? [ G !bad ]",
            "Rmin=? [ F (goal | bad) ]",
            "Rmax=? [ F (goal | bad) ]", // ∞ pinning must agree too
        ] {
            let p = parse_property(prop).unwrap();
            let g = check_mdp_query_with(&m, &p, &global).unwrap();
            let t = check_mdp_query_with(&m, &p, &topo).unwrap();
            assert_eq!(t.solver(), Solver::TopologicalII, "{prop}");
            let (glo, ghi) = g.interval().unwrap();
            let (tlo, thi) = t.interval().unwrap();
            assert!(tlo <= ghi + 1e-12 && glo <= thi + 1e-12, "{prop}");
            if t.value().is_finite() {
                assert!((t.value() - g.value()).abs() < 2e-9, "{prop}");
                assert!(thi - tlo < 1e-9, "{prop}");
            } else {
                assert_eq!(t.value(), g.value(), "{prop}");
            }
        }
    }

    #[test]
    fn min_max_bracket_every_memoryless_scheduler() {
        let m = gadget_mdp();
        let goal = m.label("goal").unwrap().clone();
        let pmin = q(&m, "Pmin=? [ F goal ]");
        let pmax = q(&m, "Pmax=? [ F goal ]");
        // Enumerate both memoryless schedulers of state 0 (other states
        // have one action); their DTMC values must lie in [pmin, pmax],
        // with the extremes attained.
        let mut vals = Vec::new();
        for a0 in 0..2u32 {
            let d = m.induced_dtmc(&[a0, 0, 0, 0]).unwrap();
            let v =
                smg_dtmc::transient::unbounded_reach_values(&d, &goal, 1e-12, 1_000_000).unwrap();
            let p: f64 = d.initial().iter().map(|&(s, w)| w * v[s as usize]).sum();
            vals.push(p);
            assert!(p >= pmin - 1e-9 && p <= pmax + 1e-9, "a0={a0}: {p}");
        }
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(0.0, f64::max);
        assert!((lo - pmin).abs() < 1e-9 && (hi - pmax).abs() < 1e-9);
    }
}
