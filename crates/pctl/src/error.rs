//! Errors produced while parsing or checking pCTL.

use smg_dtmc::DtmcError;
use std::error::Error;
use std::fmt;

/// Errors produced by the pCTL layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PctlError {
    /// The property text could not be parsed.
    Parse {
        /// Byte offset of the failure.
        position: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// An error from the underlying DTMC engine (unknown label, dimension
    /// mismatch, non-convergence, ...).
    Dtmc(DtmcError),
    /// The combination of formula and algorithm is not supported.
    Unsupported {
        /// Description of the unsupported construct.
        construct: String,
    },
}

impl fmt::Display for PctlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PctlError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            PctlError::Dtmc(e) => write!(f, "{e}"),
            PctlError::Unsupported { construct } => {
                write!(f, "unsupported construct: {construct}")
            }
        }
    }
}

impl Error for PctlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PctlError::Dtmc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DtmcError> for PctlError {
    fn from(e: DtmcError) -> Self {
        PctlError::Dtmc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PctlError::Parse {
            position: 3,
            message: "expected `[`".into(),
        };
        assert!(e.to_string().contains("byte 3"));
        assert!(e.source().is_none());

        let e = PctlError::from(DtmcError::UnknownLabel { name: "x".into() });
        assert!(e.to_string().contains('x'));
        assert!(e.source().is_some());

        let e = PctlError::Unsupported {
            construct: "nested S".into(),
        };
        assert!(e.to_string().contains("nested S"));
    }
}
