//! A single-action MDP *is* a DTMC: embedding a chain through
//! `smg_mdp::DtmcAsMdp` and checking it with the MDP engine's
//! `Pmin`/`Pmax`/`Rmin`/`Rmax` queries must reproduce the DTMC checker's
//! `P=?`/`R=?` answers — min, max and plain all coincide when there is
//! nothing to optimize over. This pins the two checkers (forward transient
//! vs backward optimal value iteration) against each other across the
//! whole query surface.

use proptest::prelude::*;
use smg_dtmc::{DtmcModel, ExploreOptions};
use smg_mdp::DtmcAsMdp;
use smg_pctl::{check_mdp_query, check_query, parse_property};

/// A deterministic pseudo-random chain with an absorbing "target" state
/// and an "odd" labelling, rich in self-loops and duplicate successors.
#[derive(Debug, Clone)]
struct Scramble {
    n: u32,
    seed: u64,
}

impl Scramble {
    fn mix(&self, a: u64, b: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(b << 24);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

impl DtmcModel for Scramble {
    type State = u32;

    fn initial_states(&self) -> Vec<(u32, f64)> {
        vec![(0, 1.0)]
    }

    fn transitions(&self, &s: &u32) -> Vec<(u32, f64)> {
        if s == self.n - 1 {
            return vec![(s, 1.0)];
        }
        let fan = 1 + (self.mix(s.into(), 0) % 3) as usize;
        let mut succ = Vec::with_capacity(fan);
        let mut weights = Vec::with_capacity(fan);
        for k in 0..fan {
            let t = (self.mix(s.into(), 1 + k as u64) % u64::from(self.n)) as u32;
            succ.push(t);
            weights.push(1 + self.mix(t.into(), k as u64) % 8);
        }
        let total: u64 = weights.iter().sum();
        succ.into_iter()
            .zip(weights)
            .map(|(t, w)| (t, w as f64 / total as f64))
            .collect()
    }

    fn atomic_propositions(&self) -> Vec<&'static str> {
        vec!["target", "odd"]
    }

    fn holds(&self, ap: &str, &s: &u32) -> bool {
        (ap == "target" && s == self.n - 1) || (ap == "odd" && s % 2 == 1)
    }
}

/// Probability path bodies: checked as `P=?` on the chain and as both
/// `Pmin=?` and `Pmax=?` on the embedded MDP.
const PATHS: &[&str] = &[
    "X odd",
    "F<=4 target",
    "F target",
    "G<=3 !target",
    "G !target",
    "odd U<=5 target",
    "odd U target",
    "F[2,4] target",
];

/// Reward query bodies: `R=?` vs `Rmin=?`/`Rmax=?`.
const REWARDS: &[&str] = &["I=0", "I=3", "C<=4", "F target", "F (target | odd)"];

fn close(a: f64, b: f64) -> bool {
    (a.is_infinite() && b.is_infinite() && a.signum() == b.signum()) || (a - b).abs() < 1e-6
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn single_action_mdp_reproduces_dtmc_answers(
        n in 2u32..40,
        seed in 0u64..u64::MAX,
    ) {
        let model = Scramble { n, seed };
        let d = smg_dtmc::explore(&model, &ExploreOptions::default()).unwrap();
        let m = smg_mdp::explore(&DtmcAsMdp(model), &ExploreOptions::default()).unwrap();
        prop_assert_eq!(m.mdp.n_states(), d.dtmc.n_states());

        for body in PATHS {
            let plain = check_query(&d.dtmc, &parse_property(&format!("P=? [ {body} ]")).unwrap())
                .unwrap()
                .value();
            for form in ["Pmin", "Pmax"] {
                let prop = parse_property(&format!("{form}=? [ {body} ]")).unwrap();
                let opt = check_mdp_query(&m.mdp, &prop).unwrap().value();
                prop_assert!(
                    close(opt, plain),
                    "{form}=? [ {body} ]: mdp {opt} vs dtmc {plain} (n={n}, seed={seed:#x})"
                );
                // The DTMC checker itself accepts the min/max forms and
                // collapses them to the plain value.
                let collapsed = check_query(&d.dtmc, &prop).unwrap().value();
                prop_assert!(close(collapsed, plain), "{form} collapse on dtmc");
            }
        }
        for body in REWARDS {
            let plain = check_query(&d.dtmc, &parse_property(&format!("R=? [ {body} ]")).unwrap())
                .unwrap()
                .value();
            for form in ["Rmin", "Rmax"] {
                let prop = parse_property(&format!("{form}=? [ {body} ]")).unwrap();
                let opt = check_mdp_query(&m.mdp, &prop).unwrap().value();
                prop_assert!(
                    close(opt, plain),
                    "{form}=? [ {body} ]: mdp {opt} vs dtmc {plain} (n={n}, seed={seed:#x})"
                );
            }
        }
        // Boolean queries agree too.
        for formula in ["!target", "odd | !odd", "target => odd"] {
            let p = parse_property(formula).unwrap();
            let a = check_query(&d.dtmc, &p).unwrap().verdict();
            let b = check_mdp_query(&m.mdp, &p).unwrap().verdict();
            prop_assert_eq!(a, b, "boolean {}", formula);
        }
    }
}
