//! Add-compare-select and traceback — the decoder datapath shared by the
//! DTMC models and the bit-true decoder.
//!
//! Keeping these in one place is what makes the cross-validation between
//! model checking and Monte-Carlo simulation exact: both drive the *same*
//! combinational functions, only the source of randomness differs.

use crate::tables::TrellisTables;
use smg_rtl::normalize_pair;

/// The outcome of one add-compare-select step: updated (normalized,
/// saturated) path metrics and the survivor pointers of the new trellis
/// stage.
///
/// `prev0`/`prev1` are the paper's trellis-stage variables: the
/// most-probable previous internal state when the current internal state is
/// 0 resp. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcsOutcome {
    /// New path metric of internal state 0.
    pub pm0: u32,
    /// New path metric of internal state 1.
    pub pm1: u32,
    /// Survivor pointer of internal state 0 (`true` = previous state 1).
    pub prev0: bool,
    /// Survivor pointer of internal state 1 (`true` = previous state 1).
    pub prev1: bool,
}

/// One add-compare-select step: extends both internal states with the
/// branch metrics of quantized sample `level`, picks survivors (ties resolve
/// to previous state 0, as a deterministic RTL mux would), then normalizes
/// and saturates the metrics.
pub fn acs(tables: &TrellisTables, pm0: u32, pm1: u32, level: usize) -> AcsOutcome {
    let cap = tables.config().pm_cap;
    let mut new_pm = [0u32; 2];
    let mut prev = [false; 2];
    for cur in 0..2u8 {
        let from0 = pm0 + tables.metric(level, cur, 0);
        let from1 = pm1 + tables.metric(level, cur, 1);
        // Strict comparison: tie selects previous state 0.
        let take1 = from1 < from0;
        prev[cur as usize] = take1;
        new_pm[cur as usize] = if take1 { from1 } else { from0 };
    }
    let (pm0n, pm1n) = normalize_pair(new_pm[0], new_pm[1], cap);
    AcsOutcome {
        pm0: pm0n,
        pm1: pm1n,
        prev0: prev[0],
        prev1: prev[1],
    }
}

/// The traceback starting state: the internal state with the smaller path
/// metric ("the decoder chooses the internal state with the least
/// corresponding path metric, as the starting point for traceback"); ties
/// resolve to state 0.
pub fn traceback_start(pm0: u32, pm1: u32) -> bool {
    pm1 < pm0
}

/// Follows survivor pointers through `hops` trellis stages and returns the
/// internal state reached — the decoded bit for the oldest stage.
///
/// `prev0`/`prev1` are packed pointer registers: bit `i` is the pointer of
/// stage `i` (stage 0 = newest).
pub fn traceback(prev0: u16, prev1: u16, start: bool, hops: usize) -> bool {
    let mut state = start;
    for i in 0..hops {
        let bit = if state { prev1 } else { prev0 };
        state = (bit >> i) & 1 == 1;
    }
    state
}

/// Traceback in the reduced model's correctness coordinates: starting from
/// the correctness of the initial traceback state, chains through the
/// `(cᵢ, wᵢ)` bits — if the current traceback state matches the true bit,
/// the next matches iff `cᵢ`; otherwise iff `wᵢ`. Returns whether the
/// decoded bit is correct.
pub fn traceback_correct(c: u16, w: u16, start_correct: bool, hops: usize) -> bool {
    let mut correct = start_correct;
    for i in 0..hops {
        let bits = if correct { c } else { w };
        correct = (bits >> i) & 1 == 1;
    }
    correct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ViterbiConfig;

    fn tables() -> TrellisTables {
        TrellisTables::new(ViterbiConfig::paper()).unwrap()
    }

    #[test]
    fn acs_normalizes_to_zero_min() {
        let t = tables();
        for level in 0..t.levels() {
            for pm0 in 0..8u32 {
                for pm1 in 0..8u32 {
                    let out = acs(&t, pm0, pm1, level);
                    assert_eq!(out.pm0.min(out.pm1), 0, "min must be zero");
                    assert!(out.pm0 <= t.config().pm_cap);
                    assert!(out.pm1 <= t.config().pm_cap);
                }
            }
        }
    }

    #[test]
    fn acs_prefers_matching_branch() {
        let t = tables();
        // A sample at the top level strongly suggests (1,1): state 1 should
        // win and its survivor should point to state 1.
        let top = t.levels() - 1;
        let out = acs(&t, 0, 0, top);
        assert!(out.pm1 <= out.pm0);
        assert!(out.prev1, "survivor of state 1 should be state 1");
        // Bottom level suggests (0,0).
        let out = acs(&t, 0, 0, 0);
        assert!(out.pm0 <= out.pm1);
        assert!(!out.prev0, "survivor of state 0 should be state 0");
    }

    #[test]
    fn tie_breaks_to_state_zero() {
        let t = tables();
        // Equal path metrics and the mid-level sample make branches from 0
        // and 1 symmetric for the `cur` whose metrics tie; the pointer must
        // then be `false` (state 0).
        // Find a level where metric(level, 0, 0) == metric(level, 0, 1).
        for level in 0..t.levels() {
            if t.metric(level, 0, 0) == t.metric(level, 0, 1) {
                let out = acs(&t, 3, 3, level);
                assert!(!out.prev0, "tie at level {level} must resolve to 0");
            }
        }
    }

    #[test]
    fn traceback_follows_pointers() {
        // Stage 0 pointers: prev0 = 1 (bit set), prev1 = 0.
        // Stage 1 pointers: prev0 = 0, prev1 = 1.
        let prev0 = 0b01u16; // stage0: 1, stage1: 0
        let prev1 = 0b10u16; // stage0: 0, stage1: 1
                             // Start at state 0: stage0 pointer of state 0 = 1 → state 1;
                             // stage1 pointer of state 1 = 1 → state 1.
        assert!(traceback(prev0, prev1, false, 2));
        // Start at state 1: stage0 pointer of state 1 = 0 → state 0;
        // stage1 pointer of state 0 = 0 → state 0.
        assert!(!traceback(prev0, prev1, true, 2));
        // Zero hops returns the start.
        assert!(traceback(prev0, prev1, true, 0));
    }

    #[test]
    fn traceback_start_tie_to_zero() {
        assert!(!traceback_start(3, 3));
        assert!(!traceback_start(2, 3));
        assert!(traceback_start(3, 2));
    }

    #[test]
    fn correctness_traceback_chains() {
        // c = all ones, w = all zeros: once correct, stays correct; once
        // wrong, stays wrong.
        assert!(traceback_correct(0b1111, 0, true, 4));
        assert!(!traceback_correct(0b1111, 0, false, 4));
        // w bit set at stage 0 recovers a wrong start.
        assert!(traceback_correct(0b1110, 0b0001, false, 4));
        // c bit clear at stage 2 loses a correct start for good (w=0).
        assert!(!traceback_correct(0b1011, 0, true, 4));
    }

    #[test]
    fn exhaustive_equivalence_of_tracebacks() {
        // For every pointer configuration over 3 stages, every bit history
        // and every start: the correctness traceback computed from
        // (c, w) bits equals the direct traceback compared against truth.
        let hops = 3usize;
        for prev0 in 0..(1u16 << hops) {
            for prev1 in 0..(1u16 << hops) {
                for bits in 0..(1u16 << (hops + 1)) {
                    // bits[i] = true bit at stage i.
                    let bit_at = |i: usize| (bits >> i) & 1 == 1;
                    let mut c = 0u16;
                    let mut w = 0u16;
                    for i in 0..hops {
                        let ptr_true = if bit_at(i) { prev1 } else { prev0 };
                        let ptr_false = if bit_at(i) { prev0 } else { prev1 };
                        if ((ptr_true >> i) & 1 == 1) == bit_at(i + 1) {
                            c |= 1 << i;
                        }
                        if ((ptr_false >> i) & 1 == 1) == bit_at(i + 1) {
                            w |= 1 << i;
                        }
                    }
                    for start in [false, true] {
                        let direct = traceback(prev0, prev1, start, hops);
                        let direct_correct = direct == bit_at(hops);
                        let reduced = traceback_correct(c, w, start == bit_at(0), hops);
                        assert_eq!(
                            direct_correct, reduced,
                            "prev0={prev0:b} prev1={prev1:b} bits={bits:b} start={start}"
                        );
                    }
                }
            }
        }
    }
}
