//! The abstraction function `F_abs` from the full model `M` to the reduced
//! model `M_R` (paper Equation 6), plus the machinery to certify the
//! reduction.
//!
//! "Multiple states in M (p₁, p₂, …) are mapped to the same state p_R in
//! M_R by the function F_abs. This illustrates how we achieve a reduction in
//! the state-space." The tests in this module (and the integration tests at
//! the workspace root) use `smg-reduce` to check exhaustively that the
//! partition induced by [`f_abs`] satisfies the Strong Lumping Theorem — the
//! machine-checked version of the paper's §IV-A-4 proof.

use crate::full::FullState;
use crate::reduced::ReducedState;

/// Maps a full-model state to its reduced-model equivalent (Equation 6).
///
/// For each stage `i`:
/// * `cᵢ` is set iff the survivor pointer out of the internal state that
///   matches the true bit `xᵢ` points at the true bit `x_{i+1}`;
/// * `wᵢ` is set iff the pointer out of the *other* internal state points
///   at `x_{i+1}`.
///
/// `pm0`, `pm1`, `x₀` and `flag` are carried over unchanged ("values of
/// these variables are same in states p₁, p₂ and p_R").
pub fn f_abs(s: &FullState, l: usize) -> ReducedState {
    let bit = |i: usize| (s.bits >> i) & 1 == 1;
    let mut c = 0u16;
    let mut w = 0u16;
    for i in 0..l - 1 {
        let (ptr_true, ptr_wrong) = if bit(i) {
            (s.prev1, s.prev0)
        } else {
            (s.prev0, s.prev1)
        };
        if ((ptr_true >> i) & 1 == 1) == bit(i + 1) {
            c |= 1 << i;
        }
        if ((ptr_wrong >> i) & 1 == 1) == bit(i + 1) {
            w |= 1 << i;
        }
    }
    ReducedState {
        pm0: s.pm0,
        pm1: s.pm1,
        x0: bit(0),
        c,
        w,
        flag: s.flag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ViterbiConfig;
    use crate::full::FullModel;
    use crate::reduced::ReducedModel;
    use smg_dtmc::{explore, ExploreOptions};
    use smg_reduce::{check_lumping, lump, Partition};
    use std::collections::HashSet;

    #[test]
    fn reset_states_correspond() {
        let l = 4;
        assert_eq!(f_abs(&FullState::reset(), l), ReducedState::reset(l));
    }

    #[test]
    fn f_abs_commutes_with_step() {
        // F_abs(step_M(s, r)) = step_{M_R}(F_abs(s), r) for every state
        // reachable in a few steps and every randomness r — the functional
        // core of the paper's Part A/Part B argument.
        let cfg = ViterbiConfig::small();
        let l = cfg.traceback_len;
        let full = FullModel::new(cfg.clone()).unwrap();
        let reduced = ReducedModel::new(cfg).unwrap();
        let mut frontier = vec![FullState::reset()];
        let mut seen: HashSet<FullState> = frontier.iter().copied().collect();
        for _depth in 0..4 {
            let mut next = Vec::new();
            for s in &frontier {
                for xn in [false, true] {
                    for level in 0..full.tables().levels() {
                        let s2 = full.step(s, xn, level);
                        let abs_then_step = reduced.step(&f_abs(s, l), xn, level);
                        let step_then_abs = f_abs(&s2, l);
                        assert_eq!(
                            abs_then_step, step_then_abs,
                            "commutation fails at {s:?} xn={xn} level={level}"
                        );
                        if seen.insert(s2) {
                            next.push(s2);
                        }
                    }
                }
            }
            frontier = next;
        }
        assert!(seen.len() > 50, "explored too little: {}", seen.len());
    }

    #[test]
    fn induced_partition_is_certified_lumping() {
        // The full §IV-A-4 proof, mechanized: the partition of M's state
        // space induced by F_abs satisfies the Strong Lumping condition.
        let cfg = ViterbiConfig::small();
        let l = cfg.traceback_len;
        let full = explore(&FullModel::new(cfg).unwrap(), &ExploreOptions::default()).unwrap();
        let partition = Partition::from_key_fn(full.dtmc.n_states(), |i| f_abs(&full.states[i], l));
        assert!(
            partition.block_count() < full.dtmc.n_states(),
            "abstraction must actually merge states"
        );
        check_lumping(&full.dtmc, &partition).expect("F_abs must induce a valid lumping");
    }

    #[test]
    fn quotient_size_matches_reduced_model() {
        // The reachable quotient of M under F_abs has exactly the states of
        // the (reachable) reduced model M_R.
        let cfg = ViterbiConfig::small();
        let l = cfg.traceback_len;
        let full = explore(
            &FullModel::new(cfg.clone()).unwrap(),
            &ExploreOptions::default(),
        )
        .unwrap();
        let reduced =
            explore(&ReducedModel::new(cfg).unwrap(), &ExploreOptions::default()).unwrap();
        let images: HashSet<ReducedState> = full.states.iter().map(|s| f_abs(s, l)).collect();
        let reduced_states: HashSet<ReducedState> = reduced.states.iter().copied().collect();
        assert_eq!(images, reduced_states);
    }

    #[test]
    fn coarsest_lumping_is_at_least_as_small_as_f_abs() {
        // Automatic lumping can only do better (or equal) than the paper's
        // hand abstraction.
        let cfg = ViterbiConfig::small();
        let l = cfg.traceback_len;
        let full = explore(&FullModel::new(cfg).unwrap(), &ExploreOptions::default()).unwrap();
        let hand = Partition::from_key_fn(full.dtmc.n_states(), |i| f_abs(&full.states[i], l));
        let auto = lump::coarsest_lumping(&full.dtmc);
        assert!(
            auto.block_count() <= hand.block_count(),
            "auto {} > hand {}",
            auto.block_count(),
            hand.block_count()
        );
    }
}
