//! The bit-true Viterbi decoder used by the Monte-Carlo baseline.
//!
//! This is the same datapath as [`crate::FullModel`] — literally the same
//! [`crate::full::FullModel::step`] state update — driven by sampled rather
//! than enumerated randomness. Because model and decoder share every
//! combinational function, the simulated per-step error probability equals
//! the model-checked P2 exactly in distribution; `smg-sim`'s integration
//! tests exploit this for cross-validation.

use crate::config::ViterbiConfig;
use crate::full::{FullModel, FullState};
use smg_rtl::Clocked;

/// A clocked, bit-true Viterbi decoder with built-in reference checking.
///
/// Each [`Clocked::tick`] consumes the pair (transmitted data bit, quantized
/// received sample) and returns whether the bit decoded this cycle — which
/// corresponds to the data bit from `L−1` cycles ago — is in error. The
/// true-bit delay line lives inside the decoder state exactly as in the
/// DTMC model ("to verify the correctness of the decoded bit in each time
/// step, we need to keep track of the actual data bits corresponding to the
/// previous L−1 time steps").
///
/// # Example
///
/// ```
/// use smg_viterbi::{ViterbiConfig, ViterbiDecoder};
/// use smg_rtl::Clocked;
///
/// let mut dec = ViterbiDecoder::new(ViterbiConfig::small())?;
/// // A clean run of zeros decodes without errors.
/// let level = dec.quantize(-2.0);
/// for _ in 0..20 {
///     assert!(!dec.tick((false, level)));
/// }
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct ViterbiDecoder {
    model: FullModel,
    state: FullState,
}

impl ViterbiDecoder {
    /// Builds a decoder for the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid configurations.
    pub fn new(config: ViterbiConfig) -> Result<Self, String> {
        let model = FullModel::new(config)?;
        Ok(ViterbiDecoder {
            model,
            state: FullState::reset(),
        })
    }

    /// Quantizes a received analog sample to a level index.
    pub fn quantize(&self, sample: f64) -> usize {
        self.model.tables().quantizer().quantize(sample)
    }

    /// The decoder's current register state (for inspection/tests).
    pub fn state(&self) -> &FullState {
        &self.state
    }

    /// The traceback length.
    pub fn traceback_len(&self) -> usize {
        self.model.traceback_len()
    }

    /// The underlying model (shared datapath).
    pub fn model(&self) -> &FullModel {
        &self.model
    }
}

impl Clocked for ViterbiDecoder {
    /// (new data bit, quantized received sample level).
    type Input = (bool, usize);
    /// Whether the bit decoded this cycle is in error.
    type Output = bool;

    fn tick(&mut self, (bit, level): (bool, usize)) -> bool {
        self.state = self.model.step(&self.state, bit, level);
        self.state.flag
    }

    fn reset(&mut self) {
        self.state = FullState::reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::expected_amplitude;

    #[test]
    fn clean_run_stream_decodes() {
        // Runs of three equal bits: the ±2 amplitudes anchor the paths.
        // (A *pure* alternating stream is genuinely ambiguous in this
        // memory-1 system — its amplitude sequence is all zeros, identical
        // to its complement's — so it is exercised separately below.)
        let mut dec = ViterbiDecoder::new(ViterbiConfig::small()).unwrap();
        let mut prev = false;
        for i in 0..60 {
            let bit = (i / 3) % 2 == 0;
            let amp = expected_amplitude(bit as u8, prev as u8);
            let level = dec.quantize(amp);
            let err = dec.tick((bit, level));
            assert!(!err, "clean run stream errored at step {i}");
            prev = bit;
        }
    }

    #[test]
    fn pure_alternation_is_ambiguous_but_consistent() {
        // An alternating stream produces the all-zero amplitude sequence —
        // exactly the observation its complement produces. The decoder must
        // settle on *one* of the two hypotheses: either every decision is
        // correct or every decision is inverted; it must not flip-flop.
        let mut dec = ViterbiDecoder::new(ViterbiConfig::small()).unwrap();
        let warmup = dec.traceback_len() + 2;
        let mut verdicts = Vec::new();
        let mut prev = false;
        for i in 0..60 {
            let bit = i % 2 == 0;
            let amp = expected_amplitude(bit as u8, prev as u8);
            let err = dec.tick((bit, dec.quantize(amp)));
            if i >= warmup {
                verdicts.push(err);
            }
            prev = bit;
        }
        // The tie-breaking mux pins the traceback to a fixed hypothesis, so
        // against the alternating truth the verdict sequence has period 2
        // (half the decisions wrong — the ambiguity is real, not noise).
        let period_two = verdicts.windows(2).all(|w| w[0] != w[1]);
        assert!(
            period_two,
            "verdicts must alternate deterministically: {verdicts:?}"
        );
    }

    #[test]
    fn clean_random_like_stream_decodes() {
        // A fixed pseudo-random pattern without noise: the decoder must be
        // error-free once warmed up (and with the all-zero preamble even
        // from the start).
        let mut dec = ViterbiDecoder::new(ViterbiConfig::small()).unwrap();
        let pattern = [
            false, true, true, false, true, false, false, true, true, true, false, false, true,
            false, true, true,
        ];
        let mut prev = false;
        for (i, &bit) in pattern.iter().cycle().take(200).enumerate() {
            let amp = expected_amplitude(bit as u8, prev as u8);
            let err = dec.tick((bit, dec.quantize(amp)));
            assert!(!err, "clean stream errored at step {i}");
            prev = bit;
        }
    }

    #[test]
    fn heavy_noise_eventually_errors() {
        // Feed samples that always look like (1,1) while transmitting
        // zeros: the decoder must flag errors.
        let mut dec = ViterbiDecoder::new(ViterbiConfig::small()).unwrap();
        let lie = dec.quantize(2.0);
        let mut any_err = false;
        for _ in 0..30 {
            any_err |= dec.tick((false, lie));
        }
        assert!(any_err);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut dec = ViterbiDecoder::new(ViterbiConfig::small()).unwrap();
        for _ in 0..10 {
            dec.tick((true, 0));
        }
        dec.reset();
        assert_eq!(*dec.state(), FullState::reset());
    }

    #[test]
    fn decoder_matches_model_trajectory() {
        // Ticking the decoder equals folding FullModel::step — the exact
        // property the sim/model cross-validation relies on.
        let cfg = ViterbiConfig::small();
        let model = FullModel::new(cfg.clone()).unwrap();
        let mut dec = ViterbiDecoder::new(cfg).unwrap();
        let mut s = FullState::reset();
        let inputs = [(true, 1usize), (false, 3), (true, 0), (true, 2), (false, 1)];
        for &(b, l) in inputs.iter().cycle().take(50) {
            s = model.step(&s, b, l);
            let err = dec.tick((b, l));
            assert_eq!(s, *dec.state());
            assert_eq!(err, s.flag);
        }
    }
}
