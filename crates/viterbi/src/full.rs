//! The full Viterbi DTMC model `M` (paper §IV-A-1).
//!
//! State variables, exactly as the paper lists them:
//! * `pm0`, `pm1` — normalized, saturated path metrics;
//! * `prev0ᵢ`, `prev1ᵢ` — survivor pointers of trellis stage `i`
//!   (`0 ≤ i ≤ L−2`; the paper's stage `L−1` pointers are never read by the
//!   traceback, so carrying them would only pad the state space);
//! * `xᵢ` — the transmitted data bit of stage `i` (`0 ≤ i ≤ L−1`);
//! * `flag` — set when the decoded bit differs from the corresponding
//!   actual data bit `x_{L−1}`.
//!
//! Each DTMC transition is one clock cycle: draw the new data bit
//! (fair coin) and the quantized received sample (from the SNR-derived
//! Gaussian), run add-compare-select, advance the trellis shift registers
//! (the paper's "writeback"), and run traceback to set `flag`.

use crate::acs::{acs, traceback, traceback_start};
use crate::config::ViterbiConfig;
use crate::tables::TrellisTables;
use crate::FLAG;
use smg_dtmc::DtmcModel;
use smg_signal::SignalError;

/// A state of the full model: packed registers of the decoder plus the
/// transmitted-bit history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FullState {
    /// Path metric of internal state 0.
    pub pm0: u8,
    /// Path metric of internal state 1.
    pub pm1: u8,
    /// Transmitted bits: bit `i` is `xᵢ` (stage 0 = current), `i < L`.
    pub bits: u16,
    /// Survivor pointers of internal state 0: bit `i` is `prev0ᵢ`, `i < L−1`.
    pub prev0: u16,
    /// Survivor pointers of internal state 1: bit `i` is `prev1ᵢ`, `i < L−1`.
    pub prev1: u16,
    /// Decoded-bit-in-error flag.
    pub flag: bool,
}

impl FullState {
    /// The power-on state: zero metrics, all-zero history, no error.
    pub fn reset() -> Self {
        FullState {
            pm0: 0,
            pm1: 0,
            bits: 0,
            prev0: 0,
            prev1: 0,
            flag: false,
        }
    }

    /// The transmitted bit of stage `i`.
    pub fn bit(&self, i: usize) -> bool {
        (self.bits >> i) & 1 == 1
    }
}

/// The full Viterbi DTMC model `M`.
#[derive(Debug, Clone)]
pub struct FullModel {
    tables: TrellisTables,
    l: usize,
}

impl FullModel {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid configurations (see
    /// [`ViterbiConfig::validate`]) or propagated [`SignalError`]s.
    pub fn new(config: ViterbiConfig) -> Result<Self, String> {
        config.validate()?;
        let l = config.traceback_len;
        let tables = TrellisTables::new(config).map_err(|e: SignalError| e.to_string())?;
        Ok(FullModel { tables, l })
    }

    /// The traceback length `L`.
    pub fn traceback_len(&self) -> usize {
        self.l
    }

    /// The precomputed trellis tables.
    pub fn tables(&self) -> &TrellisTables {
        &self.tables
    }

    /// One clocked update given the randomness of the step: new data bit
    /// `xn` and quantized sample `level`. Exposed so the abstraction tests
    /// can drive the datapath deterministically.
    pub fn step(&self, s: &FullState, xn: bool, level: usize) -> FullState {
        let l = self.l;
        let out = acs(&self.tables, s.pm0 as u32, s.pm1 as u32, level);
        let bits_mask = (1u32 << l) - 1;
        let ptr_mask = (1u32 << (l - 1)) - 1;
        let bits = (((s.bits as u32) << 1) | xn as u32) & bits_mask;
        let prev0 = (((s.prev0 as u32) << 1) | out.prev0 as u32) & ptr_mask;
        let prev1 = (((s.prev1 as u32) << 1) | out.prev1 as u32) & ptr_mask;
        let start = traceback_start(out.pm0, out.pm1);
        let decoded = traceback(prev0 as u16, prev1 as u16, start, l - 1);
        let truth = (bits >> (l - 1)) & 1 == 1;
        FullState {
            pm0: out.pm0 as u8,
            pm1: out.pm1 as u8,
            bits: bits as u16,
            prev0: prev0 as u16,
            prev1: prev1 as u16,
            flag: decoded != truth,
        }
    }
}

impl DtmcModel for FullModel {
    type State = FullState;

    fn initial_states(&self) -> Vec<(FullState, f64)> {
        vec![(FullState::reset(), 1.0)]
    }

    fn transitions(&self, s: &FullState) -> Vec<(FullState, f64)> {
        let x_prev = s.bit(0) as u8;
        let mut out = Vec::with_capacity(2 * self.tables.levels());
        for xn in 0..2u8 {
            for &(level, pq) in self.tables.q_dist(xn, x_prev) {
                if pq == 0.0 {
                    continue;
                }
                out.push((self.step(s, xn == 1, level), 0.5 * pq));
            }
        }
        out
    }

    fn atomic_propositions(&self) -> Vec<&'static str> {
        vec![FLAG]
    }

    fn holds(&self, ap: &str, s: &FullState) -> bool {
        ap == FLAG && s.flag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smg_dtmc::{explore, transient, ExploreOptions};

    fn small_model() -> FullModel {
        FullModel::new(ViterbiConfig::small()).unwrap()
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(FullModel::new(ViterbiConfig::small().with_traceback_len(1)).is_err());
    }

    #[test]
    fn transitions_are_stochastic() {
        let m = small_model();
        let succ = m.transitions(&FullState::reset());
        let total: f64 = succ.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(succ.len() <= 2 * m.tables().levels());
    }

    #[test]
    fn explores_to_finite_space() {
        let m = small_model();
        let e = explore(&m, &ExploreOptions::default().with_max_states(2_000_000)).unwrap();
        assert!(
            e.dtmc.n_states() > 100,
            "space too small: {}",
            e.dtmc.n_states()
        );
        // Upper bound: pm pairs × bit history × pointers × flag.
        let cap = m.tables().config().pm_cap as usize;
        let l = m.traceback_len();
        let bound = (2 * cap + 1) * (1 << l) * (1 << (2 * (l - 1))) * 2;
        assert!(
            e.dtmc.n_states() <= bound,
            "{} > {}",
            e.dtmc.n_states(),
            bound
        );
    }

    #[test]
    fn error_rate_is_nontrivial_at_5db() {
        let m = small_model();
        let e = explore(&m, &ExploreOptions::default()).unwrap();
        let ber = transient::instantaneous_reward(&e.dtmc, 40);
        // The paper reports P2 ≈ 0.24 for its configuration at 5 dB — the
        // system performs poorly; ours must as well (shape, not value).
        assert!(ber > 0.01, "ber = {ber}");
        assert!(ber < 0.5, "ber = {ber}");
    }

    #[test]
    fn higher_snr_reduces_ber() {
        let lo = explore(
            &FullModel::new(ViterbiConfig::small().with_snr_db(3.0)).unwrap(),
            &ExploreOptions::default(),
        )
        .unwrap();
        let hi = explore(
            &FullModel::new(ViterbiConfig::small().with_snr_db(10.0)).unwrap(),
            &ExploreOptions::default(),
        )
        .unwrap();
        let ber_lo = transient::instantaneous_reward(&lo.dtmc, 40);
        let ber_hi = transient::instantaneous_reward(&hi.dtmc, 40);
        assert!(ber_hi < ber_lo, "{ber_hi} !< {ber_lo}");
    }

    #[test]
    fn step_is_deterministic_given_randomness() {
        let m = small_model();
        let s = FullState::reset();
        let a = m.step(&s, true, 2);
        let b = m.step(&s, true, 2);
        assert_eq!(a, b);
        // Shifted registers: new bit lands in stage 0.
        assert!(a.bit(0));
    }

    #[test]
    fn flag_requires_history() {
        // From reset with an all-zero history and a clean (0,0)-looking
        // sample, the decoder should not flag an error.
        let m = small_model();
        let clean_level = m.tables().quantizer().quantize(-2.0);
        let mut s = FullState::reset();
        for _ in 0..10 {
            s = m.step(&s, false, clean_level);
            assert!(!s.flag, "clean all-zero stream must decode correctly");
        }
    }
}
