//! Precomputed trellis tables: quantized-sample distributions and branch
//! metrics.
//!
//! "For a given SNR, we obtain the variance of the Gaussian distribution of
//! noise. We use this to calculate the probability of a received sample
//! being mapped to a particular quantization level which in turn can be
//! used to label the transitions of the DTMC model." — §III.

use crate::config::ViterbiConfig;
use smg_signal::{bpsk_bit, Gaussian, Quantizer, SignalError};

/// Precomputed probability and metric tables shared by the DTMC models and
/// the bit-true decoder.
#[derive(Debug, Clone)]
pub struct TrellisTables {
    config: ViterbiConfig,
    quantizer: Quantizer,
    /// `q_dist[prev][cur][k] = (level, P(q = level | x[n]=cur, x[n−1]=prev))`.
    q_dist: [[Vec<(usize, f64)>; 2]; 2],
    /// `metric[level][cur][prev]` — quantized branch metric.
    metric: Vec<[[u32; 2]; 2]>,
}

impl TrellisTables {
    /// Builds the tables for a configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`SignalError`] from quantizer or noise construction.
    // Indexing 2x2 arrays by `prev`/`cur` mirrors the trellis equations;
    // iterator rewrites obscure which transition each entry is.
    #[allow(clippy::needless_range_loop)]
    pub fn new(config: ViterbiConfig) -> Result<Self, SignalError> {
        let quantizer = config.quantizer()?;
        let sigma2 = config.noise_variance();

        let mut q_dist: [[Vec<(usize, f64)>; 2]; 2] = Default::default();
        for prev in 0..2usize {
            for cur in 0..2usize {
                let s = expected_amplitude(cur as u8, prev as u8);
                let noise = Gaussian::new(s, sigma2)?;
                q_dist[prev][cur] = quantizer.discretize(&noise);
            }
        }

        let mut metric = Vec::with_capacity(quantizer.levels());
        for level in 0..quantizer.levels() {
            let v = quantizer.level_value(level);
            let mut m = [[0u32; 2]; 2];
            for cur in 0..2usize {
                for prev in 0..2usize {
                    let e = expected_amplitude(cur as u8, prev as u8);
                    m[cur][prev] = (config.metric_scale * (v - e).abs()).round() as u32;
                }
            }
            metric.push(m);
        }

        Ok(TrellisTables {
            config,
            quantizer,
            q_dist,
            metric,
        })
    }

    /// The configuration these tables were built for.
    pub fn config(&self) -> &ViterbiConfig {
        &self.config
    }

    /// The receiver quantizer.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// The number of quantization levels.
    pub fn levels(&self) -> usize {
        self.quantizer.levels()
    }

    /// The distribution of the quantized received sample given the current
    /// and previous data bits.
    pub fn q_dist(&self, cur: u8, prev: u8) -> &[(usize, f64)] {
        &self.q_dist[prev as usize][cur as usize]
    }

    /// The branch metric of the transition hypothesising current bit `cur`
    /// and previous bit `prev`, given quantized sample `level`.
    pub fn metric(&self, level: usize, cur: u8, prev: u8) -> u32 {
        self.metric[level][cur as usize][prev as usize]
    }
}

/// The noiseless transmitted amplitude for a (current, previous) bit pair:
/// `a(cur) + a(prev)` with BPSK amplitudes `a(0) = −1`, `a(1) = +1`.
pub fn expected_amplitude(cur: u8, prev: u8) -> f64 {
    bpsk_bit(cur) + bpsk_bit(prev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitudes() {
        assert_eq!(expected_amplitude(0, 0), -2.0);
        assert_eq!(expected_amplitude(1, 1), 2.0);
        assert_eq!(expected_amplitude(0, 1), 0.0);
        assert_eq!(expected_amplitude(1, 0), 0.0);
    }

    #[test]
    fn q_dist_normalized_and_shifted() {
        let t = TrellisTables::new(ViterbiConfig::paper()).unwrap();
        for prev in 0..2u8 {
            for cur in 0..2u8 {
                let d = t.q_dist(cur, prev);
                let total: f64 = d.iter().map(|&(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-12);
            }
        }
        // (1,1) concentrates on high levels, (0,0) on low levels.
        let hi = t.q_dist(1, 1);
        let lo = t.q_dist(0, 0);
        let mean_hi: f64 = hi.iter().map(|&(l, p)| l as f64 * p).sum();
        let mean_lo: f64 = lo.iter().map(|&(l, p)| l as f64 * p).sum();
        assert!(mean_hi > mean_lo + 2.0);
        // Symmetric pair (0,1) and (1,0) have identical distributions.
        let a = t.q_dist(0, 1);
        let b = t.q_dist(1, 0);
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.0, y.0);
            assert!((x.1 - y.1).abs() < 1e-14);
        }
    }

    #[test]
    fn metrics_minimized_at_expected_level() {
        let t = TrellisTables::new(ViterbiConfig::paper()).unwrap();
        let q = t.quantizer();
        // Quantize the exact amplitude; the metric of the matching branch
        // must be no larger than that of any other branch at that level.
        for cur in 0..2u8 {
            for prev in 0..2u8 {
                let level = q.quantize(expected_amplitude(cur, prev));
                let own = t.metric(level, cur, prev);
                for c2 in 0..2u8 {
                    for p2 in 0..2u8 {
                        assert!(
                            own <= t.metric(level, c2, p2),
                            "branch ({cur},{prev}) not optimal at its own level"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn metric_symmetry_between_zero_branches() {
        // Branches (0,1) and (1,0) share the expected amplitude 0, hence
        // share metrics at every level — the duobinary ambiguity the paper's
        // "poor performance at 5 dB" result reflects.
        let t = TrellisTables::new(ViterbiConfig::paper()).unwrap();
        for level in 0..t.levels() {
            assert_eq!(t.metric(level, 0, 1), t.metric(level, 1, 0));
        }
    }

    #[test]
    fn higher_snr_concentrates_q_dist() {
        let lo = TrellisTables::new(ViterbiConfig::paper().with_snr_db(0.0)).unwrap();
        let hi = TrellisTables::new(ViterbiConfig::paper().with_snr_db(15.0)).unwrap();
        let mass_at = |t: &TrellisTables| -> f64 {
            let level = t.quantizer().quantize(2.0);
            t.q_dist(1, 1)
                .iter()
                .find(|&&(l, _)| l == level)
                .map(|&(_, p)| p)
                .unwrap_or(0.0)
        };
        assert!(mass_at(&hi) > mass_at(&lo));
        // At 15 dB, σ ≈ 0.25 and the cell containing +2 is 0.75 wide; the
        // bulk (though not all) of the mass lands in it.
        assert!(mass_at(&hi) > 0.6, "mass = {}", mass_at(&hi));
    }
}
