//! Configuration of the Viterbi case study.

use smg_signal::{Quantizer, SignalError, Snr};
use std::fmt;

/// Parameters of the memory-1 transmitter + quantized receiver + Viterbi
/// decoder system.
///
/// The paper's RTL bit-widths are unpublished; these parameters span the
/// same design space. [`ViterbiConfig::paper`] lands in the paper's
/// state-count regime; [`ViterbiConfig::small`] is a fast configuration for
/// tests and examples.
#[derive(Debug, Clone, PartialEq)]
pub struct ViterbiConfig {
    /// Signal-to-noise ratio in dB (the paper uses 5 dB for Table I and
    /// 8 dB for Table IV).
    pub snr_db: f64,
    /// Traceback length `L ≥ 2` (paper: 6 for error properties, 8 for
    /// convergence; heuristically `4m..5m` suffices).
    pub traceback_len: usize,
    /// Number of quantizer levels at the receiver.
    pub quant_levels: usize,
    /// Quantizer range `[-quant_range, +quant_range]`; transmitted
    /// amplitudes are in `{-2, 0, +2}`.
    pub quant_range: f64,
    /// Path metrics saturate at this cap after min-normalization (the RTL
    /// register width).
    pub pm_cap: u32,
    /// Branch metrics are `round(metric_scale · |v_q − e|)`; larger scales
    /// resolve finer distance differences at the cost of state count.
    pub metric_scale: f64,
}

impl ViterbiConfig {
    /// A configuration matching the paper's Table I experiment regime:
    /// SNR 5 dB, `L = 6`, an 8-level quantizer over `[-3, 3]`.
    pub fn paper() -> Self {
        ViterbiConfig {
            snr_db: 5.0,
            traceback_len: 6,
            quant_levels: 8,
            quant_range: 3.0,
            pm_cap: 16,
            metric_scale: 2.0,
        }
    }

    /// A small configuration for fast tests and examples: `L = 4`, 4-level
    /// quantizer, narrow path-metric registers.
    pub fn small() -> Self {
        ViterbiConfig {
            snr_db: 5.0,
            traceback_len: 4,
            quant_levels: 4,
            quant_range: 3.0,
            pm_cap: 6,
            metric_scale: 1.0,
        }
    }

    /// The paper's convergence experiment (§IV-C / Table IV): SNR 8 dB,
    /// `L = 8`.
    pub fn convergence_paper() -> Self {
        ViterbiConfig {
            snr_db: 8.0,
            traceback_len: 8,
            ..ViterbiConfig::paper()
        }
    }

    /// Returns a copy with a different SNR.
    pub fn with_snr_db(mut self, snr_db: f64) -> Self {
        self.snr_db = snr_db;
        self
    }

    /// Returns a copy with a different traceback length.
    pub fn with_traceback_len(mut self, l: usize) -> Self {
        self.traceback_len = l;
        self
    }

    /// The SNR as a typed value.
    pub fn snr(&self) -> Snr {
        Snr::from_db(self.snr_db)
    }

    /// The average transmitted signal power `E[s²]`: amplitudes
    /// `{-2, 0, +2}` with probabilities `{¼, ½, ¼}` give `E[s²] = 2`.
    pub fn signal_power(&self) -> f64 {
        2.0
    }

    /// The AWGN variance implied by the SNR.
    pub fn noise_variance(&self) -> f64 {
        self.snr().noise_variance(self.signal_power())
    }

    /// The receiver quantizer.
    ///
    /// # Errors
    ///
    /// Propagates [`SignalError`] for degenerate level counts or ranges.
    pub fn quantizer(&self) -> Result<Quantizer, SignalError> {
        Quantizer::symmetric(self.quant_levels, self.quant_range)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.traceback_len < 2 {
            return Err(format!(
                "traceback_len must be at least 2, got {}",
                self.traceback_len
            ));
        }
        if self.traceback_len > 16 {
            return Err(format!(
                "traceback_len above 16 exceeds the packed-state width, got {}",
                self.traceback_len
            ));
        }
        if self.quant_levels < 2 {
            return Err(format!(
                "quant_levels must be at least 2, got {}",
                self.quant_levels
            ));
        }
        if self.quant_range.is_nan() || self.quant_range <= 0.0 {
            return Err(format!(
                "quant_range must be positive, got {}",
                self.quant_range
            ));
        }
        if self.pm_cap == 0 || self.pm_cap > 200 {
            return Err(format!("pm_cap must be in 1..=200, got {}", self.pm_cap));
        }
        if self.metric_scale.is_nan() || self.metric_scale <= 0.0 {
            return Err(format!(
                "metric_scale must be positive, got {}",
                self.metric_scale
            ));
        }
        Ok(())
    }
}

impl Default for ViterbiConfig {
    fn default() -> Self {
        ViterbiConfig::paper()
    }
}

impl fmt::Display for ViterbiConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "viterbi(snr={}dB, L={}, q={}x[-{},{}], pm_cap={}, scale={})",
            self.snr_db,
            self.traceback_len,
            self.quant_levels,
            self.quant_range,
            self.quant_range,
            self.pm_cap,
            self.metric_scale
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(ViterbiConfig::paper().validate().is_ok());
        assert!(ViterbiConfig::small().validate().is_ok());
        assert!(ViterbiConfig::convergence_paper().validate().is_ok());
        assert_eq!(ViterbiConfig::default(), ViterbiConfig::paper());
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(ViterbiConfig::paper()
            .with_traceback_len(1)
            .validate()
            .is_err());
        assert!(ViterbiConfig::paper()
            .with_traceback_len(17)
            .validate()
            .is_err());
        let mut c = ViterbiConfig::paper();
        c.quant_levels = 1;
        assert!(c.validate().is_err());
        let mut c = ViterbiConfig::paper();
        c.pm_cap = 0;
        assert!(c.validate().is_err());
        let mut c = ViterbiConfig::paper();
        c.metric_scale = 0.0;
        assert!(c.validate().is_err());
        let mut c = ViterbiConfig::paper();
        c.quant_range = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn noise_variance_tracks_snr() {
        let lo = ViterbiConfig::paper().with_snr_db(5.0).noise_variance();
        let hi = ViterbiConfig::paper().with_snr_db(8.0).noise_variance();
        assert!(hi < lo);
        // 5 dB, P=2: σ² = 2 / 10^0.5 ≈ 0.6325.
        assert!((lo - 0.632_455_532_033_675_9).abs() < 1e-9);
    }

    #[test]
    fn builders_and_display() {
        let c = ViterbiConfig::paper()
            .with_snr_db(7.5)
            .with_traceback_len(5);
        assert_eq!(c.snr_db, 7.5);
        assert_eq!(c.traceback_len, 5);
        assert!(c.to_string().contains("snr=7.5dB"));
        assert!((c.signal_power() - 2.0).abs() < 1e-12);
        assert_eq!(c.quantizer().unwrap().levels(), 8);
    }
}
