//! Viterbi decoder case study (paper §IV-A and §IV-C).
//!
//! The system under analysis: a transmitter with memory m=1 whose output at
//! time n is the sum of the BPSK amplitudes of the current and previous data
//! bits, `s[n] = a(x[n]) + a(x[n−1]) ∈ {−2, 0, +2}`; AWGN; a uniform
//! quantizer at the receiver; and a two-internal-state Viterbi decoder with
//! traceback length `L` (the paper uses L=6 for error properties and L=8
//! for convergence).
//!
//! Three DTMC models are provided:
//!
//! * [`FullModel`] — the paper's model `M`: path metrics, survivor pointers
//!   `prev0ᵢ/prev1ᵢ` and transmitted-bit history `xᵢ` for all trellis
//!   stages, plus `flag`.
//! * [`ReducedModel`] — the paper's `M_R`: survivor pointers and bit history
//!   replaced by the correctness bits `cᵢ/wᵢ` via the abstraction function
//!   `F_abs` ([`abstraction::f_abs`]); provably a strong lumping of `M`
//!   (checked exhaustively in the tests via `smg-reduce`).
//! * [`ConvergenceModel`] — the §IV-C model for traceback-convergence
//!   property C1: only `(pm0, pm1, x0)` plus a saturating count of
//!   consecutive non-convergent trellis stages.
//!
//! [`decoder::ViterbiDecoder`] is the bit-true implementation of the same
//! datapath used by the Monte-Carlo baseline in `smg-sim`; it shares the
//! add-compare-select and traceback code with the models, so simulation and
//! model checking agree by construction.
//!
//! # Example
//!
//! ```
//! use smg_viterbi::{ReducedModel, ViterbiConfig};
//! use smg_dtmc::{explore, ExploreOptions};
//!
//! let config = ViterbiConfig::small();
//! let model = ReducedModel::new(config)?;
//! let e = explore(&model, &ExploreOptions::default())?;
//! // P2 at T=50: the probability a decoded bit is in error.
//! let ber = smg_dtmc::transient::instantaneous_reward(&e.dtmc, 50);
//! assert!(ber > 0.0 && ber < 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod abstraction;
pub mod acs;
pub mod config;
pub mod convergence;
pub mod decoder;
pub mod full;
pub mod reduced;
pub mod tables;

pub use abstraction::f_abs;
pub use acs::{traceback, AcsOutcome};
pub use config::ViterbiConfig;
pub use convergence::{ConvState, ConvergenceModel};
pub use decoder::ViterbiDecoder;
pub use full::{FullModel, FullState};
pub use reduced::{ReducedModel, ReducedState};
pub use tables::TrellisTables;

/// The atomic proposition marking decoded-bit-in-error states (the paper's
/// `flag`).
pub const FLAG: &str = "flag";
/// The atomic proposition marking non-convergent-traceback states in the
/// convergence model.
pub const NONCONV: &str = "nonconv";
