//! The traceback-convergence model (paper §IV-C).
//!
//! "A convergent trellis stage is defined to be a stage where both prev0
//! and prev1 are assigned the same value. … If at least one convergent
//! stage is encountered during a traceback of length L, the traceback paths
//! are guaranteed to converge." The model keeps only `pm0`, `pm1`, `x₀` and
//! a saturating counter of consecutive non-convergent stages; when the
//! counter reaches `L`, the current decoded bit has non-converging
//! traceback paths and the `nonconv` proposition holds.
//!
//! Property C1 = `R=? [I=T]` over this model computes, in steady state,
//! "the probability that a bit decoded in any time step has non-converging
//! traceback paths" — swept over `L` it regenerates the paper's Figure 2.

use crate::acs::acs;
use crate::config::ViterbiConfig;
use crate::tables::TrellisTables;
use crate::NONCONV;
use smg_dtmc::DtmcModel;
use smg_signal::SignalError;

/// A state of the convergence model: the probabilistic core `(pm0, pm1, x₀)`
/// plus the non-convergence counter. The paper's refining function `F_ref`
/// maps every full state with these values to one equivalence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvState {
    /// Path metric of internal state 0.
    pub pm0: u8,
    /// Path metric of internal state 1.
    pub pm1: u8,
    /// The current transmitted bit.
    pub x0: bool,
    /// Consecutive non-convergent stages, saturating at `L`.
    pub count: u8,
}

impl ConvState {
    /// The power-on state.
    pub fn reset() -> Self {
        ConvState {
            pm0: 0,
            pm1: 0,
            x0: false,
            count: 0,
        }
    }
}

/// The reduced DTMC model for the convergence property C1.
#[derive(Debug, Clone)]
pub struct ConvergenceModel {
    tables: TrellisTables,
    l: u8,
}

impl ConvergenceModel {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid configurations or propagated
    /// [`SignalError`]s.
    pub fn new(config: ViterbiConfig) -> Result<Self, String> {
        config.validate()?;
        let l = config.traceback_len as u8;
        let tables = TrellisTables::new(config).map_err(|e: SignalError| e.to_string())?;
        Ok(ConvergenceModel { tables, l })
    }

    /// The traceback length `L`.
    pub fn traceback_len(&self) -> usize {
        self.l as usize
    }

    /// The precomputed trellis tables.
    pub fn tables(&self) -> &TrellisTables {
        &self.tables
    }

    /// One clocked update given the step's randomness.
    pub fn step(&self, s: &ConvState, xn: bool, level: usize) -> ConvState {
        let out = acs(&self.tables, s.pm0 as u32, s.pm1 as u32, level);
        // "If this trellis stage is non-converging, we increment count by 1.
        //  We reset count to 0 for a convergent stage."
        let convergent = out.prev0 == out.prev1;
        let count = if convergent {
            0
        } else {
            (s.count + 1).min(self.l)
        };
        ConvState {
            pm0: out.pm0 as u8,
            pm1: out.pm1 as u8,
            x0: xn,
            count,
        }
    }
}

impl DtmcModel for ConvergenceModel {
    type State = ConvState;

    fn initial_states(&self) -> Vec<(ConvState, f64)> {
        vec![(ConvState::reset(), 1.0)]
    }

    fn transitions(&self, s: &ConvState) -> Vec<(ConvState, f64)> {
        let x_prev = s.x0 as u8;
        let mut out = Vec::with_capacity(2 * self.tables.levels());
        for xn in 0..2u8 {
            for &(level, pq) in self.tables.q_dist(xn, x_prev) {
                if pq == 0.0 {
                    continue;
                }
                out.push((self.step(s, xn == 1, level), 0.5 * pq));
            }
        }
        out
    }

    fn atomic_propositions(&self) -> Vec<&'static str> {
        vec![NONCONV]
    }

    fn holds(&self, ap: &str, s: &ConvState) -> bool {
        // count ≥ L ⟺ "the previous L trellis stages are non-convergent".
        ap == NONCONV && s.count >= self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smg_dtmc::{explore, transient, ExploreOptions};

    fn c1(config: ViterbiConfig, t: usize) -> f64 {
        let m = ConvergenceModel::new(config).unwrap();
        let e = explore(&m, &ExploreOptions::default()).unwrap();
        transient::instantaneous_reward(&e.dtmc, t)
    }

    #[test]
    fn state_space_is_tiny() {
        // The paper: "Compared to the original model, the number of states
        // is reduced by several orders of magnitude."
        let m = ConvergenceModel::new(ViterbiConfig::convergence_paper()).unwrap();
        let e = explore(&m, &ExploreOptions::default()).unwrap();
        let cap = m.tables().config().pm_cap as usize;
        let l = m.traceback_len();
        assert!(e.dtmc.n_states() <= (2 * cap + 1) * 2 * (l + 1));
        assert!(e.dtmc.n_states() > 10);
    }

    #[test]
    fn c1_decreases_with_traceback_length() {
        // Figure 2: "the probability of non-convergence decreases with
        // traceback length".
        let base = ViterbiConfig::small().with_snr_db(8.0);
        let mut prev = f64::INFINITY;
        for l in [2usize, 3, 4, 6, 8] {
            let v = c1(base.clone().with_traceback_len(l), 150);
            assert!(
                v <= prev + 1e-12,
                "C1 should not increase with L: L={l}, {v} > {prev}"
            );
            prev = v;
        }
    }

    #[test]
    fn c1_is_small_but_positive() {
        let v = c1(ViterbiConfig::small().with_snr_db(8.0), 150);
        assert!(v > 0.0, "non-convergence must be possible");
        assert!(v < 0.5, "but rare: {v}");
    }

    #[test]
    fn c1_stabilizes_over_time() {
        // Table IV behaviour: C1 at T=100/400/1000 nearly identical.
        let m = ConvergenceModel::new(ViterbiConfig::small().with_snr_db(8.0)).unwrap();
        let e = explore(&m, &ExploreOptions::default()).unwrap();
        let a = transient::instantaneous_reward(&e.dtmc, 100);
        let b = transient::instantaneous_reward(&e.dtmc, 400);
        let c = transient::instantaneous_reward(&e.dtmc, 1000);
        assert!((a - b).abs() < 1e-4 * a.max(1e-12), "a={a} b={b}");
        assert!((b - c).abs() < 1e-6 * b.max(1e-12), "b={b} c={c}");
    }

    #[test]
    fn counter_resets_on_convergent_stage() {
        let m = ConvergenceModel::new(ViterbiConfig::small()).unwrap();
        // Find a level with convergent pointers from equal metrics (a clean
        // extreme sample forces both survivors to the same state).
        let t = m.tables();
        let clean = t.quantizer().quantize(2.0);
        let out = acs(t, 0, 0, clean);
        assert_eq!(out.prev0, out.prev1, "extreme sample must converge");
        let s = ConvState {
            pm0: 0,
            pm1: 0,
            x0: false,
            count: 3,
        };
        let s2 = m.step(&s, true, clean);
        assert_eq!(s2.count, 0);
    }

    #[test]
    fn counter_saturates_at_l() {
        let m = ConvergenceModel::new(ViterbiConfig::small()).unwrap();
        let l = m.traceback_len() as u8;
        // Find a non-convergent step if one exists from some metric pair.
        'outer: for pm0 in 0..6u8 {
            for pm1 in 0..6u8 {
                for level in 0..m.tables().levels() {
                    let out = acs(m.tables(), pm0 as u32, pm1 as u32, level);
                    if out.prev0 != out.prev1 {
                        let s = ConvState {
                            pm0,
                            pm1,
                            x0: false,
                            count: l,
                        };
                        let s2 = m.step(&s, false, level);
                        assert_eq!(s2.count, l, "must saturate");
                        assert!(m.holds(NONCONV, &s2));
                        break 'outer;
                    }
                }
            }
        }
    }
}
