//! The reduced Viterbi DTMC model `M_R` (paper §IV-A-3).
//!
//! "Reductions can be defined for checking error properties, that compute
//! bit errors without actually determining the values of the decoded bits."
//! The survivor pointers and transmitted-bit history of `M` are replaced by
//! two bits per stage:
//!
//! * `cᵢ` — whether the pointer *from the internal state matching the true
//!   bit of stage i* leads to the internal state matching the true bit of
//!   stage i+1;
//! * `wᵢ` — whether the pointer *from the other (wrong) internal state*
//!   leads to the true previous state.
//!
//! "This information is sufficient to check the correctness of the
//! traceback operation and thereby, check the correctness of the decoded
//! bit." The variables `pm0`, `pm1` and `x₀` are retained, so the
//! probabilistic function `Γ_p` is preserved — the heart of the paper's
//! strong-lumping proof, which `smg-reduce` re-checks exhaustively in this
//! crate's tests.

use crate::acs::{acs, traceback_correct, traceback_start};
use crate::config::ViterbiConfig;
use crate::tables::TrellisTables;
use crate::FLAG;
use smg_dtmc::DtmcModel;
use smg_signal::SignalError;

/// A state of the reduced model `M_R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReducedState {
    /// Path metric of internal state 0.
    pub pm0: u8,
    /// Path metric of internal state 1.
    pub pm1: u8,
    /// The current transmitted bit `x₀` (needed by `Γ_p`, which conditions
    /// the sample distribution on the previous bit).
    pub x0: bool,
    /// Correctness bits `cᵢ`: bit `i` is stage `i`, `i < L−1`.
    pub c: u16,
    /// Recovery bits `wᵢ`: bit `i` is stage `i`, `i < L−1`.
    pub w: u16,
    /// Decoded-bit-in-error flag.
    pub flag: bool,
}

impl ReducedState {
    /// The power-on state. The all-zero history of [`crate::FullState`]
    /// maps to `c = w = 0` under `F_abs` only when the pointers disagree
    /// with the bits; with everything zero, every pointer (0) matches every
    /// bit (0), so reset has all `c`/`w` bits set.
    pub fn reset(l: usize) -> Self {
        let mask = ((1u32 << (l - 1)) - 1) as u16;
        ReducedState {
            pm0: 0,
            pm1: 0,
            x0: false,
            c: mask,
            w: mask,
            flag: false,
        }
    }
}

/// The reduced Viterbi DTMC model `M_R`.
#[derive(Debug, Clone)]
pub struct ReducedModel {
    tables: TrellisTables,
    l: usize,
}

impl ReducedModel {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid configurations or propagated
    /// [`SignalError`]s.
    pub fn new(config: ViterbiConfig) -> Result<Self, String> {
        config.validate()?;
        let l = config.traceback_len;
        let tables = TrellisTables::new(config).map_err(|e: SignalError| e.to_string())?;
        Ok(ReducedModel { tables, l })
    }

    /// The traceback length `L`.
    pub fn traceback_len(&self) -> usize {
        self.l
    }

    /// The precomputed trellis tables.
    pub fn tables(&self) -> &TrellisTables {
        &self.tables
    }

    /// One clocked update given the step's randomness (new bit `xn`,
    /// quantized sample `level`). This is the paper's Equations 7–9.
    pub fn step(&self, s: &ReducedState, xn: bool, level: usize) -> ReducedState {
        let l = self.l;
        let out = acs(&self.tables, s.pm0 as u32, s.pm1 as u32, level);
        // F_cw (Equation 7): correctness of the new stage-0 pointers with
        // respect to the new true bit xn and the previous true bit x0.
        let ptr_from_true = if xn { out.prev1 } else { out.prev0 };
        let ptr_from_wrong = if xn { out.prev0 } else { out.prev1 };
        let c0 = ptr_from_true == s.x0;
        let w0 = ptr_from_wrong == s.x0;
        let mask = (1u32 << (l - 1)) - 1;
        let c = (((s.c as u32) << 1) | c0 as u32) & mask;
        let w = (((s.w as u32) << 1) | w0 as u32) & mask;
        // F_E^R (Equation 9): traceback in correctness coordinates.
        let start = traceback_start(out.pm0, out.pm1);
        let correct = traceback_correct(c as u16, w as u16, start == xn, l - 1);
        ReducedState {
            pm0: out.pm0 as u8,
            pm1: out.pm1 as u8,
            x0: xn,
            c: c as u16,
            w: w as u16,
            flag: !correct,
        }
    }
}

impl DtmcModel for ReducedModel {
    type State = ReducedState;

    fn initial_states(&self) -> Vec<(ReducedState, f64)> {
        vec![(ReducedState::reset(self.l), 1.0)]
    }

    fn transitions(&self, s: &ReducedState) -> Vec<(ReducedState, f64)> {
        let x_prev = s.x0 as u8;
        let mut out = Vec::with_capacity(2 * self.tables.levels());
        for xn in 0..2u8 {
            for &(level, pq) in self.tables.q_dist(xn, x_prev) {
                if pq == 0.0 {
                    continue;
                }
                out.push((self.step(s, xn == 1, level), 0.5 * pq));
            }
        }
        out
    }

    fn atomic_propositions(&self) -> Vec<&'static str> {
        vec![FLAG]
    }

    fn holds(&self, ap: &str, s: &ReducedState) -> bool {
        ap == FLAG && s.flag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::FullModel;
    use smg_dtmc::{explore, transient, ExploreOptions};

    #[test]
    fn smaller_than_full_model() {
        let cfg = ViterbiConfig::small();
        let full = explore(
            &FullModel::new(cfg.clone()).unwrap(),
            &ExploreOptions::default(),
        )
        .unwrap();
        let reduced =
            explore(&ReducedModel::new(cfg).unwrap(), &ExploreOptions::default()).unwrap();
        assert!(
            reduced.dtmc.n_states() < full.dtmc.n_states(),
            "reduced {} !< full {}",
            reduced.dtmc.n_states(),
            full.dtmc.n_states()
        );
    }

    #[test]
    fn p2_matches_full_model() {
        // The reduction is property-preserving: P2 (instantaneous reward)
        // agrees between M and M_R at every horizon.
        let cfg = ViterbiConfig::small();
        let full = explore(
            &FullModel::new(cfg.clone()).unwrap(),
            &ExploreOptions::default(),
        )
        .unwrap();
        let reduced =
            explore(&ReducedModel::new(cfg).unwrap(), &ExploreOptions::default()).unwrap();
        for t in [0usize, 1, 2, 3, 5, 10, 25, 60] {
            let a = transient::instantaneous_reward(&full.dtmc, t);
            let b = transient::instantaneous_reward(&reduced.dtmc, t);
            assert!((a - b).abs() < 1e-12, "t={t}: full={a} reduced={b}");
        }
    }

    #[test]
    fn p1_matches_full_model() {
        let cfg = ViterbiConfig::small();
        let full = explore(
            &FullModel::new(cfg.clone()).unwrap(),
            &ExploreOptions::default(),
        )
        .unwrap();
        let reduced =
            explore(&ReducedModel::new(cfg).unwrap(), &ExploreOptions::default()).unwrap();
        for t in [1usize, 5, 20] {
            let a = transient::bounded_globally_prob(
                &full.dtmc,
                &full.dtmc.label(FLAG).unwrap().not(),
                t,
            )
            .unwrap();
            let b = transient::bounded_globally_prob(
                &reduced.dtmc,
                &reduced.dtmc.label(FLAG).unwrap().not(),
                t,
            )
            .unwrap();
            assert!((a - b).abs() < 1e-12, "t={t}: full={a} reduced={b}");
        }
    }

    #[test]
    fn reset_state_has_all_correctness_bits() {
        let s = ReducedState::reset(4);
        assert_eq!(s.c, 0b111);
        assert_eq!(s.w, 0b111);
        assert!(!s.flag);
    }

    #[test]
    fn transitions_are_stochastic() {
        let m = ReducedModel::new(ViterbiConfig::small()).unwrap();
        let succ = m.transitions(&ReducedState::reset(4));
        let total: f64 = succ.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ber_converges_to_steady_state() {
        let m = ReducedModel::new(ViterbiConfig::small()).unwrap();
        let e = explore(&m, &ExploreOptions::default()).unwrap();
        let ss = transient::detect_steady_state(&e.dtmc, 1e-10, 10_000);
        assert!(ss.converged_at.is_some(), "chain must reach steady state");
        let series = transient::instantaneous_reward_series(&e.dtmc, 200);
        // Later values settle (paper Table III behaviour).
        let d1 = (series[100] - series[80]).abs();
        let d2 = (series[200] - series[180]).abs();
        assert!(d2 <= d1 + 1e-12);
    }
}
