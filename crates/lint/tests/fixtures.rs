//! Snapshot tests over the seeded-defect fixture corpus.
//!
//! Every `lXXX_*.sm` fixture must report exactly the codes and positions
//! recorded in its `.expect` sidecar (one `L0xx line:col` per line), and
//! every `*_clean.sm` twin must lint clean. Regenerate sidecars with
//! `SMG_LINT_BLESS=1 cargo test -p smg-lint --test fixtures`.

use smg_lang::{check, parse};
use smg_lint::lint;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_paths() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("fixture dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "sm"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn fixtures_match_expected_codes_and_positions() {
    let bless = std::env::var_os("SMG_LINT_BLESS").is_some();
    let paths = fixture_paths();
    assert!(paths.len() >= 20, "fixture corpus went missing");
    let mut seen_codes: BTreeSet<&'static str> = BTreeSet::new();

    for path in paths {
        let name = path
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        let src = fs::read_to_string(&path).expect("fixture readable");
        let checked = check(parse(&src).expect("fixture parses")).expect("fixture checks");
        let report = lint(&checked);
        let actual: Vec<String> = report
            .diagnostics()
            .iter()
            .map(|d| format!("{} {}:{}", d.code, d.pos.line, d.pos.col))
            .collect();

        // Rendering is a pure function of the report: byte-stable.
        assert_eq!(report.render_json(), report.render_json(), "{name}");

        if name.ends_with("_clean.sm") {
            assert!(
                report.is_clean(),
                "{name} must lint clean, found: {actual:?}"
            );
            continue;
        }

        for d in report.diagnostics() {
            seen_codes.insert(d.code.as_str());
        }
        let expect_path = path.with_extension("expect");
        if bless {
            fs::write(&expect_path, actual.join("\n") + "\n").expect("write sidecar");
            continue;
        }
        let expected: Vec<String> = fs::read_to_string(&expect_path)
            .unwrap_or_else(|_| panic!("missing sidecar {}", expect_path.display()))
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect();
        assert_eq!(actual, expected, "{name} diagnostics drifted");
    }

    // The defect half of the corpus exercises every diagnostic code.
    let all: Vec<&str> = seen_codes.into_iter().collect();
    assert_eq!(
        all,
        vec!["L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010"],
        "corpus no longer covers every code"
    );
}
