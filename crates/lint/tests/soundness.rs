//! Soundness proptest: the lint's definite claims are never false
//! positives.
//!
//! For randomized guarded-command programs (rendered to source and
//! re-parsed so diagnostics carry real positions):
//!
//! - any command flagged *dead* (L001) is never taken during exhaustive
//!   expansion — its guard does not hold in any reachable state;
//! - any model flagged *certain deadlock* (L005) really fails expansion
//!   with [`LangError::Deadlock`].
//!
//! Generated assignments are clamped into range and weights are constant
//! and valid, so the only expansion error a generated model can produce
//! is a deadlock — which makes the second assertion exact.

use proptest::prelude::*;
use smg_lang::ast::{
    Assign, BinOp, Command, DeclType, Expr, ModelType, Module, Program, Update, VarDecl,
};
use smg_lang::{check, compile_any_with, eval, Env, ExpandOptions, LangError, Pos, Value};
use smg_lint::{lint, Code};
use std::collections::HashMap;

/// Tiny deterministic generator driven by a proptest-supplied seed —
/// keeps the program shape independent of the shim's strategy surface.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x1234_5678))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct GenVar {
    name: String,
    hi: i64,
}

/// A random comparison over one variable, well-typed by construction.
fn gen_cmp(rng: &mut Rng, vars: &[GenVar]) -> Expr {
    let v = &vars[rng.below(vars.len() as u64) as usize];
    let op = [
        BinOp::Lt,
        BinOp::Le,
        BinOp::Eq,
        BinOp::Neq,
        BinOp::Gt,
        BinOp::Ge,
    ][rng.below(6) as usize];
    // Bounds straddle the range so dead and live guards both appear.
    let c = rng.below((v.hi + 3) as u64) as i64 - 1;
    Expr::Bin(op, Box::new(Expr::name(&v.name)), Box::new(Expr::Int(c)))
}

fn gen_guard(rng: &mut Rng, vars: &[GenVar], depth: u32) -> Expr {
    if depth == 0 || rng.below(2) == 0 {
        return gen_cmp(rng, vars);
    }
    let a = Box::new(gen_guard(rng, vars, depth - 1));
    let b = Box::new(gen_guard(rng, vars, depth - 1));
    match rng.below(3) {
        0 => Expr::Bin(BinOp::And, a, b),
        1 => Expr::Bin(BinOp::Or, a, b),
        _ => Expr::Not(a),
    }
}

/// `min(max(x + d, 0), hi)` — always lands inside the declared range, so
/// generated models can only fail expansion by deadlocking.
fn gen_assign(rng: &mut Rng, v: &GenVar) -> Assign {
    let d = rng.below(3) as i64 - 1;
    let bumped = Expr::Bin(
        BinOp::Add,
        Box::new(Expr::name(&v.name)),
        Box::new(Expr::Int(d)),
    );
    let clamped = Expr::Apply(
        smg_lang::ast::Func::Min,
        vec![
            Expr::Apply(smg_lang::ast::Func::Max, vec![bumped, Expr::Int(0)]),
            Expr::Int(v.hi),
        ],
    );
    Assign {
        var: v.name.clone(),
        value: clamped,
        pos: Pos::start(),
    }
}

fn gen_program(seed: u64) -> Program {
    let mut rng = Rng::new(seed);
    let n_modules = 1 + rng.below(2) as usize;
    let mut program = Program {
        model_type: ModelType::Dtmc,
        ..Program::default()
    };
    let mut all_vars: Vec<GenVar> = Vec::new();
    let mut per_module: Vec<Vec<GenVar>> = Vec::new();
    for mi in 0..n_modules {
        let n_vars = 1 + rng.below(2) as usize;
        let mut mine = Vec::new();
        for vi in 0..n_vars {
            let hi = 1 + rng.below(3) as i64;
            let name = format!("m{mi}v{vi}");
            mine.push(GenVar {
                name: name.clone(),
                hi,
            });
            all_vars.push(GenVar { name, hi });
        }
        per_module.push(mine);
    }
    for (mi, mine) in per_module.iter().enumerate() {
        let mut module = Module {
            name: format!("mod{mi}"),
            vars: Vec::new(),
            commands: Vec::new(),
            pos: Pos::start(),
        };
        for v in mine {
            module.vars.push(VarDecl {
                name: v.name.clone(),
                ty: DeclType::Range(Expr::Int(0), Expr::Int(v.hi)),
                init: Some(Expr::Int(rng.below((v.hi + 1) as u64) as i64)),
                pos: Pos::start(),
            });
        }
        let n_cmds = 1 + rng.below(3) as usize;
        for _ in 0..n_cmds {
            // Guards may read any module's variables; writes stay local.
            let guard = gen_guard(&mut rng, &all_vars, 2);
            let two_way = rng.below(2) == 0;
            let updates = if two_way {
                vec![
                    Update {
                        prob: Expr::Double(0.5),
                        assigns: vec![gen_assign(&mut rng, &mine[0])],
                    },
                    Update {
                        prob: Expr::Double(0.5),
                        assigns: mine
                            .get(1)
                            .map(|v| vec![gen_assign(&mut rng, v)])
                            .unwrap_or_default(),
                    },
                ]
            } else {
                vec![Update {
                    prob: Expr::Int(1),
                    assigns: mine.iter().map(|v| gen_assign(&mut rng, v)).collect(),
                }]
            };
            module.commands.push(Command {
                action: None,
                guard,
                updates,
                pos: Pos::start(),
            });
        }
        program.modules.push(module);
    }
    program
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128 })]

    #[test]
    fn dead_guards_and_certain_deadlocks_are_never_false_positives(seed in 0u64..u64::MAX) {
        // Render and re-parse so diagnostics carry real source positions.
        let source = gen_program(seed).to_string();
        let parsed = smg_lang::parse(&source).expect("generated program parses");
        let checked = check(parsed).expect("generated program checks");
        let report = lint(&checked);

        let compiled = compile_any_with(
            checked.clone(),
            ExpandOptions { max_states: 100_000, allow_stutter: false },
        );

        // Certain deadlock => expansion really deadlocks.
        let flagged_deadlock = report
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::CertainDeadlock);
        if flagged_deadlock {
            prop_assert!(
                matches!(compiled, Err(LangError::Deadlock { .. })),
                "lint claimed certain deadlock but expansion said {:?}\nmodel:\n{source}",
                compiled.as_ref().map(|c| c.states.len()),
            );
        }

        let Ok(compiled) = compiled else { return };
        prop_assert!(!flagged_deadlock);

        // Dead guard => never satisfied at any reachable state.
        for d in report.diagnostics() {
            if d.code != Code::DeadGuard {
                continue;
            }
            let module = checked
                .program
                .modules
                .iter()
                .find(|m| Some(&m.name) == d.module.as_ref())
                .expect("diagnostic names a real module");
            let cmd = module
                .commands
                .iter()
                .find(|c| c.pos == d.pos)
                .expect("diagnostic points at a command");
            for state in &compiled.states {
                let mut vars = HashMap::new();
                for (info, &raw) in checked.vars.iter().zip(state) {
                    let v = if info.is_bool {
                        Value::Bool(raw != 0)
                    } else {
                        Value::Int(raw)
                    };
                    vars.insert(info.name.as_str(), v);
                }
                let env = Env {
                    vars,
                    consts: &checked.consts,
                    formulas: &checked.formulas,
                };
                let taken = matches!(
                    eval(&cmd.guard, &env).map(|v| v.as_bool("soundness")),
                    Ok(Ok(true))
                );
                prop_assert!(
                    !taken,
                    "dead-flagged guard `{}` fires at reachable state {state:?}\nmodel:\n{source}",
                    cmd.guard,
                );
            }
        }
    }
}
