//! # smg-lint — interval-domain static analysis for guarded-command models
//!
//! Every deep model defect — a dead guard, a distribution that cannot sum
//! to 1, an assignment that escapes its variable's range, a guaranteed
//! deadlock — is otherwise caught *dynamically*, at some unlucky state
//! during expansion. This crate catches them *statically*, by running the
//! sound interval evaluator ([`smg_lang::eval_abs`]) over the declared
//! variable box and only reporting what it can prove.
//!
//! The soundness contract is one-sided by design: a diagnostic that
//! claims a guard is *dead* or a model *certainly deadlocks* is never a
//! false positive (reachable states are a subset of the variable box, so
//! a property proved over the box holds over every reachable state).
//! The converse does not hold — a defect the interval domain cannot see
//! is simply not reported. See `docs/LINT.md` for the full argument and
//! the diagnostic code table.
//!
//! ```
//! # fn main() -> Result<(), smg_lang::LangError> {
//! let src = r#"
//!     dtmc
//!     module clock
//!       t : [0..3] init 0;
//!       [] t < 3 -> (t'=t+1);
//!       [] t > 3 -> (t'=0);
//!       [] t = 3 -> true;
//!     endmodule
//! "#;
//! let report = smg_lint::lint(&smg_lang::check(smg_lang::parse(src)?)?);
//! // `t > 3` can never fire: t is declared in [0..3].
//! let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code.as_str()).collect();
//! assert_eq!(codes, vec!["L001"]);
//! # Ok(())
//! # }
//! ```

use smg_lang::ast::{Expr, ModelType};
use smg_lang::value::interval::{eval_abs, refine_box, AbsEnv, AbsVal};
use smg_lang::{compile_any_with, eval, CheckedProgram, Env, ExpandOptions, Pos, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// How deep guard-refinement and formula expansion recurse before giving
/// up (everything beyond is treated as unrefinable, which is sound).
const REFINE_DEPTH: u32 = 64;

/// Runtime tolerance for distribution sums, mirrored from the expansion
/// engine: sums within `1e-6` of 1 are accepted there, so the lint only
/// reports constant sums outside that band.
const SUM_TOL: f64 = 1e-6;

/// Runtime tolerance for individual probabilities (`0 ≤ p ≤ 1 + 1e-9`).
const PROB_TOL: f64 = 1e-9;

/// Tunables for a lint run.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Treat deadlocks as benign self-loops (mirrors the expansion
    /// option): disables the certain-deadlock diagnostic (L005).
    pub allow_stutter: bool,
    /// Budget for the bounded concrete deadlock probe: models whose
    /// variable box holds at most this many valuations are expanded for
    /// real, so clocked-module deadlocks deeper than the initial state
    /// are still caught with zero false positives. `0` disables.
    pub probe_states: usize,
    /// Boxes with at most this many valuations are checked by exhaustive
    /// concrete evaluation instead of intervals — exact dead/constant
    /// verdicts for small models.
    pub exhaustive_cap: u128,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            allow_stutter: false,
            probe_states: 4096,
            exhaustive_cap: 4096,
        }
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but the model still expands (dead guard, unused name…).
    Warning,
    /// The defect is certain to surface as an expansion error if the
    /// offending command ever fires.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Diagnostic codes, one per defect class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// L001 — guard unsatisfiable over the variable box.
    DeadGuard,
    /// L002 — guard provably true everywhere (but not spelled `true`).
    ConstantGuard,
    /// L003 — assignment provably escapes the target variable's range.
    OutOfRangeAssign,
    /// L004 — update weights provably negative, above 1, or constant and
    /// not summing to 1.
    MalformedDistribution,
    /// L005 — the model provably deadlocks (initial state or bounded
    /// concrete probe).
    CertainDeadlock,
    /// L006 — two `dtmc` commands provably enabled together (hidden
    /// nondeterminism resolved by uniform choice).
    OverlappingGuards,
    /// L007 — constant never used.
    UnusedConst,
    /// L008 — formula never used.
    UnusedFormula,
    /// L009 — variable never read.
    UnusedVariable,
    /// L010 — label body provably constant over the box.
    TrivialLabel,
}

impl Code {
    /// The stable `L0xx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::DeadGuard => "L001",
            Code::ConstantGuard => "L002",
            Code::OutOfRangeAssign => "L003",
            Code::MalformedDistribution => "L004",
            Code::CertainDeadlock => "L005",
            Code::OverlappingGuards => "L006",
            Code::UnusedConst => "L007",
            Code::UnusedFormula => "L008",
            Code::UnusedVariable => "L009",
            Code::TrivialLabel => "L010",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::OutOfRangeAssign | Code::MalformedDistribution | Code::CertainDeadlock => {
                Severity::Error
            }
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: severity, stable code, source position and explanation.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Defect class.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Source position of the offending construct.
    pub pos: Pos,
    /// Enclosing module, when the construct lives in one.
    pub module: Option<String>,
    /// Human-readable explanation, including the proved fact.
    pub message: String,
}

/// The outcome of a lint run: diagnostics in (line, col, code) order.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// The findings, ordered by source position then code.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether the model linted clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the report as human-readable text, one block per finding.
    pub fn render_text(&self, source: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let ctx = match &d.module {
                Some(m) => format!(" (module {m})"),
                None => String::new(),
            };
            out.push_str(&format!(
                "{}[{}]: {}\n  --> {}:{}:{}{}\n",
                d.severity, d.code, d.message, source, d.pos.line, d.pos.col, ctx
            ));
        }
        if self.diagnostics.is_empty() {
            out.push_str(&format!("{source}: clean, no lint findings\n"));
        } else {
            out.push_str(&format!(
                "{}: {} finding{}: {} error{}, {} warning{}\n",
                source,
                self.diagnostics.len(),
                plural(self.diagnostics.len()),
                self.error_count(),
                plural(self.error_count()),
                self.warning_count(),
                plural(self.warning_count()),
            ));
        }
        out
    }

    /// Renders the report as JSON (schema `smg-lint/1`). The output is
    /// byte-stable: same model, same bytes, across processes.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"smg-lint/1\",\n");
        out.push_str(&format!("  \"errors\": {},\n", self.error_count()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warning_count()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"code\": \"{}\",\n", d.code));
            out.push_str(&format!("      \"severity\": \"{}\",\n", d.severity));
            out.push_str(&format!("      \"line\": {},\n", d.pos.line));
            out.push_str(&format!("      \"col\": {},\n", d.pos.col));
            match &d.module {
                Some(m) => {
                    out.push_str(&format!("      \"module\": \"{}\",\n", json_escape(m)));
                }
                None => out.push_str("      \"module\": null,\n"),
            }
            out.push_str(&format!(
                "      \"message\": \"{}\"\n",
                json_escape(&d.message)
            ));
            out.push_str("    }");
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lints a checked program with default [`LintOptions`].
pub fn lint(checked: &CheckedProgram) -> LintReport {
    lint_with(checked, &LintOptions::default())
}

/// Lints a checked program: runs every analysis pass and returns the
/// ordered report. Increments the `smg_lint_runs_total` and
/// `smg_lint_diagnostics_total{severity}` counters when an `smg-obs`
/// recorder is installed.
pub fn lint_with(checked: &CheckedProgram, options: &LintOptions) -> LintReport {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let cx = Cx::new(checked, options);

    guard_pass(&cx, &mut diags);
    update_pass(&cx, &mut diags);
    deadlock_pass(&cx, options, &mut diags);
    unused_pass(checked, &mut diags);
    label_pass(&cx, &mut diags);

    diags.sort_by(|a, b| {
        (a.pos.line, a.pos.col, a.code, a.message.as_str()).cmp(&(
            b.pos.line,
            b.pos.col,
            b.code,
            b.message.as_str(),
        ))
    });
    let report = LintReport { diagnostics: diags };

    smg_obs::counter_add("smg_lint_runs_total", None, 1);
    let errors = report.error_count() as u64;
    let warnings = report.warning_count() as u64;
    if errors > 0 {
        smg_obs::counter_add(
            "smg_lint_diagnostics_total",
            Some(("severity", "error")),
            errors,
        );
    }
    if warnings > 0 {
        smg_obs::counter_add(
            "smg_lint_diagnostics_total",
            Some(("severity", "warning")),
            warnings,
        );
    }
    report
}

/// Shared per-run analysis context: the variable box and, for small
/// boxes, the exhaustive list of valuations.
struct Cx<'a> {
    checked: &'a CheckedProgram,
    /// Declared-range box, keyed by variable name.
    var_box: HashMap<&'a str, AbsVal>,
    /// Every valuation of the box when it is small enough to enumerate.
    valuations: Option<Vec<Vec<i64>>>,
}

impl<'a> Cx<'a> {
    fn new(checked: &'a CheckedProgram, options: &LintOptions) -> Cx<'a> {
        let mut var_box = HashMap::new();
        for v in &checked.vars {
            let abs = if v.is_bool {
                AbsVal::bool_any()
            } else {
                AbsVal::Int(v.lo, v.hi)
            };
            var_box.insert(v.name.as_str(), abs);
        }
        let valuations = if checked.state_space_bound() <= options.exhaustive_cap {
            Some(enumerate_box(checked))
        } else {
            None
        };
        Cx {
            checked,
            var_box,
            valuations,
        }
    }

    fn abs_env(&self) -> AbsEnv<'a> {
        AbsEnv {
            vars: self.var_box.clone(),
            consts: &self.checked.consts,
            formulas: &self.checked.formulas,
        }
    }

    fn concrete_env(&self, valuation: &[i64]) -> Env<'_> {
        let mut vars = HashMap::with_capacity(self.checked.vars.len());
        for (info, &raw) in self.checked.vars.iter().zip(valuation) {
            let v = if info.is_bool {
                Value::Bool(raw != 0)
            } else {
                Value::Int(raw)
            };
            vars.insert(info.name.as_str(), v);
        }
        Env {
            vars,
            consts: &self.checked.consts,
            formulas: &self.checked.formulas,
        }
    }

    /// The truth profile of a boolean expression over the whole box:
    /// exhaustive when the box is small, interval-based otherwise.
    fn profile(&self, e: &Expr) -> Profile {
        if let Some(vals) = &self.valuations {
            let mut can_true = false;
            let mut can_false = false;
            let mut can_err = false;
            for v in vals {
                match eval(e, &self.concrete_env(v)).map(|r| r.as_bool("lint")) {
                    Ok(Ok(true)) => can_true = true,
                    Ok(Ok(false)) => can_false = true,
                    _ => can_err = true,
                }
            }
            Profile {
                can_true,
                can_false,
                can_err,
                exact: true,
            }
        } else {
            match eval_abs(e, &self.abs_env()) {
                AbsVal::Bool(can_false, can_true) => Profile {
                    can_true,
                    can_false,
                    can_err: false,
                    exact: false,
                },
                _ => Profile {
                    can_true: true,
                    can_false: true,
                    can_err: true,
                    exact: false,
                },
            }
        }
    }
}

/// What a boolean expression can do over the variable box. With `exact`
/// set the flags are precise; otherwise they over-approximate.
#[derive(Debug, Clone, Copy)]
struct Profile {
    can_true: bool,
    can_false: bool,
    can_err: bool,
    exact: bool,
}

impl Profile {
    /// No valuation makes the expression true (errors permitted: a guard
    /// that errors is still never *satisfied*).
    fn never_true(self) -> bool {
        !self.can_true
    }

    /// Every valuation makes it true, without errors.
    fn always_true(self) -> bool {
        self.can_true && !self.can_false && !self.can_err
    }
}

fn enumerate_box(checked: &CheckedProgram) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    let mut current: Vec<i64> = checked.vars.iter().map(|v| v.lo).collect();
    loop {
        out.push(current.clone());
        // Odometer over the declared ranges.
        let mut i = checked.vars.len();
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if current[i] < checked.vars[i].hi {
                current[i] += 1;
                for (slot, v) in current[i + 1..].iter_mut().zip(&checked.vars[i + 1..]) {
                    *slot = v.lo;
                }
                break;
            }
        }
    }
}

/// L001 (dead), L002 (constant) and L006 (overlapping `dtmc` guards).
fn guard_pass(cx: &Cx<'_>, diags: &mut Vec<Diagnostic>) {
    let is_dtmc = cx.checked.program.model_type == ModelType::Dtmc;
    for m in &cx.checked.program.modules {
        let profiles: Vec<Profile> = m.commands.iter().map(|c| cx.profile(&c.guard)).collect();
        for (ci, cmd) in m.commands.iter().enumerate() {
            let p = profiles[ci];
            if p.never_true() {
                push(
                    diags,
                    Code::DeadGuard,
                    cmd.pos,
                    Some(&m.name),
                    format!(
                        "guard `{}` of command {} is never satisfied over the declared \
                         variable ranges; the command can never fire",
                        cmd.guard,
                        ci + 1
                    ),
                );
            } else if p.always_true() && cmd.guard != Expr::Bool(true) {
                push(
                    diags,
                    Code::ConstantGuard,
                    cmd.pos,
                    Some(&m.name),
                    format!(
                        "guard `{}` of command {} is always true over the declared \
                         variable ranges; spell it `true` or tighten it",
                        cmd.guard,
                        ci + 1
                    ),
                );
            }
        }
        if !is_dtmc {
            continue;
        }
        // Hidden nondeterminism: in a dtmc the expansion engine resolves
        // simultaneously-enabled commands by uniform choice, silently
        // splitting probability mass. Only provable overlaps are
        // reported: a concrete witness valuation for small boxes, or two
        // guards that are each true over the *entire* box.
        for i in 0..m.commands.len() {
            for j in i + 1..m.commands.len() {
                if profiles[i].never_true() || profiles[j].never_true() {
                    continue;
                }
                let overlap = if let Some(vals) = &cx.valuations {
                    vals.iter().any(|v| {
                        let env = cx.concrete_env(v);
                        let both = |e: &Expr| {
                            matches!(eval(e, &env).map(|r| r.as_bool("lint")), Ok(Ok(true)))
                        };
                        both(&m.commands[i].guard) && both(&m.commands[j].guard)
                    })
                } else {
                    profiles[i].always_true() && profiles[j].always_true()
                };
                if overlap {
                    push(
                        diags,
                        Code::OverlappingGuards,
                        m.commands[j].pos,
                        Some(&m.name),
                        format!(
                            "guards of commands {} and {} can hold simultaneously in a \
                             dtmc: the expansion engine resolves the overlap by uniform \
                             choice; make the guards disjoint or declare the model `mdp`",
                            i + 1,
                            j + 1
                        ),
                    );
                }
            }
        }
    }
}

/// L003 (out-of-range assignments) and L004 (malformed distributions),
/// both evaluated over the guard-refined box: states where the command
/// cannot fire do not count against it.
fn update_pass(cx: &Cx<'_>, diags: &mut Vec<Diagnostic>) {
    for m in &cx.checked.program.modules {
        for (ci, cmd) in m.commands.iter().enumerate() {
            let mut refined = cx.var_box.clone();
            if !refine_box(
                &cmd.guard,
                &mut refined,
                &cx.checked.consts,
                &cx.checked.formulas,
                REFINE_DEPTH,
            ) {
                // The guard-constrained box is empty: the command is dead
                // (reported by the guard pass) and nothing it would do
                // can ever happen.
                continue;
            }
            let env = AbsEnv {
                vars: refined,
                consts: &cx.checked.consts,
                formulas: &cx.checked.formulas,
            };

            let mut weights: Vec<Option<f64>> = Vec::with_capacity(cmd.updates.len());
            for u in &cmd.updates {
                let p = eval_abs(&u.prob, &env);
                weights.push(p.singleton());
                if let Some((lo, hi)) = match p {
                    AbsVal::Int(l, h) => Some((l as f64, h as f64)),
                    AbsVal::Double(l, h) => Some((l, h)),
                    _ => None,
                } {
                    if hi < 0.0 {
                        push(
                            diags,
                            Code::MalformedDistribution,
                            cmd.pos,
                            Some(&m.name),
                            format!(
                                "update weight `{}` of command {} is provably negative \
                                 (in [{lo}, {hi}]); expansion rejects it wherever the \
                                 command fires",
                                u.prob,
                                ci + 1
                            ),
                        );
                    } else if lo > 1.0 + PROB_TOL {
                        push(
                            diags,
                            Code::MalformedDistribution,
                            cmd.pos,
                            Some(&m.name),
                            format!(
                                "update weight `{}` of command {} is provably greater \
                                 than 1 (in [{lo}, {hi}])",
                                u.prob,
                                ci + 1
                            ),
                        );
                    }
                }

                // Out-of-range assignments: a provably-zero branch is
                // dropped by the engine and cannot fire.
                if weights.last() == Some(&Some(0.0)) {
                    continue;
                }
                for a in &u.assigns {
                    let Some(&vi) = cx.checked.var_index.get(&a.var) else {
                        continue;
                    };
                    let info = &cx.checked.vars[vi];
                    if info.is_bool {
                        continue;
                    }
                    if let AbsVal::Int(lo, hi) = eval_abs(&a.value, &env) {
                        if hi < info.lo || lo > info.hi {
                            push(
                                diags,
                                Code::OutOfRangeAssign,
                                a.pos,
                                Some(&m.name),
                                format!(
                                    "assignment `{}' = {}` always lands in [{lo}, {hi}], \
                                     outside the declared range [{}..{}]; expansion fails \
                                     wherever command {} fires",
                                    a.var,
                                    a.value,
                                    info.lo,
                                    info.hi,
                                    ci + 1
                                ),
                            );
                        }
                    }
                }
            }

            // Constant-foldable distribution sum, checked against the
            // engine's own tolerance.
            if let Some(sum) = weights.iter().try_fold(0.0f64, |acc, w| w.map(|w| acc + w)) {
                if (sum - 1.0).abs() > SUM_TOL {
                    push(
                        diags,
                        Code::MalformedDistribution,
                        cmd.pos,
                        Some(&m.name),
                        format!(
                            "update weights of command {} are constant and sum to {sum}, \
                             not 1; expansion rejects the command wherever it fires",
                            ci + 1
                        ),
                    );
                }
            }
        }
    }
}

/// L005 — certain deadlock, with zero false positives: either every
/// command of some module is disabled at the (exactly evaluated) initial
/// state, or a bounded concrete expansion of a small model hits a real
/// deadlock.
fn deadlock_pass(cx: &Cx<'_>, options: &LintOptions, diags: &mut Vec<Diagnostic>) {
    if options.allow_stutter {
        return;
    }
    let init: Vec<i64> = cx.checked.vars.iter().map(|v| v.init).collect();
    let env = cx.concrete_env(&init);
    let mut found = false;
    for m in &cx.checked.program.modules {
        let enabled = m.commands.iter().any(|c| {
            matches!(
                eval(&c.guard, &env).map(|v| v.as_bool("lint")),
                Ok(Ok(true))
            )
        });
        let errored = m
            .commands
            .iter()
            .any(|c| eval(&c.guard, &env).map(|v| v.as_bool("lint")).is_err());
        if !enabled && !errored {
            found = true;
            push(
                diags,
                Code::CertainDeadlock,
                m.pos,
                Some(&m.name),
                format!(
                    "module {} has no enabled command in the initial state ({}); \
                     expansion deadlocks immediately",
                    m.name,
                    render_valuation(cx.checked, &init)
                ),
            );
        }
    }
    if found || options.probe_states == 0 {
        return;
    }
    // Bounded concrete probe: only for boxes small enough that full
    // expansion is guaranteed cheap, and only a *real* deadlock counts.
    if cx.checked.state_space_bound() > options.probe_states as u128 {
        return;
    }
    let probe = compile_any_with(
        cx.checked.clone(),
        ExpandOptions {
            max_states: options.probe_states,
            allow_stutter: false,
        },
    );
    if let Err(smg_lang::LangError::Deadlock { module, state }) = probe {
        let pos = cx
            .checked
            .program
            .modules
            .iter()
            .find(|m| m.name == module)
            .map_or_else(Pos::start, |m| m.pos);
        push(
            diags,
            Code::CertainDeadlock,
            pos,
            Some(&module),
            format!(
                "module {module} deadlocks at the reachable state ({state}); \
                 no command is enabled there"
            ),
        );
    }
}

fn render_valuation(checked: &CheckedProgram, valuation: &[i64]) -> String {
    checked
        .vars
        .iter()
        .zip(valuation)
        .map(|(v, &raw)| {
            if v.is_bool {
                format!("{}={}", v.name, raw != 0)
            } else {
                format!("{}={raw}", v.name)
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// L007/L008/L009 — unused constants, formulas and variables, by
/// transitive reachability from the expressions the engine actually
/// evaluates (guards, weights, assignment values, labels, rewards and
/// variable declarations).
fn unused_pass(checked: &CheckedProgram, diags: &mut Vec<Diagnostic>) {
    let const_defs: HashMap<&str, &Expr> = checked
        .program
        .consts
        .iter()
        .map(|c| (c.name.as_str(), &c.value))
        .collect();

    let mut used: HashSet<&str> = HashSet::new();
    let mut read_vars: HashSet<&str> = HashSet::new();
    let mut work: Vec<&Expr> = Vec::new();

    let mut roots: Vec<&Expr> = Vec::new();
    for m in &checked.program.modules {
        for v in &m.vars {
            if let smg_lang::ast::DeclType::Range(lo, hi) = &v.ty {
                roots.push(lo);
                roots.push(hi);
            }
            if let Some(init) = &v.init {
                roots.push(init);
            }
        }
        for c in &m.commands {
            roots.push(&c.guard);
            for u in &c.updates {
                roots.push(&u.prob);
                for a in &u.assigns {
                    roots.push(&a.value);
                }
            }
        }
    }
    for l in &checked.program.labels {
        roots.push(&l.body);
    }
    for r in &checked.program.rewards {
        for item in &r.items {
            roots.push(&item.guard);
            roots.push(&item.value);
        }
    }
    work.extend(roots);

    while let Some(e) = work.pop() {
        walk_names(e, &mut |name| {
            if checked.var_index.contains_key(name) {
                // Safe: every variable name in `var_index` outlives the
                // pass; re-borrow from `checked` to get the long lifetime.
                if let Some(v) = checked.vars.iter().find(|v| v.name == name) {
                    read_vars.insert(v.name.as_str());
                }
            } else if let Some(body) = checked.formulas.get(name) {
                if let Some((key, _)) = checked.formulas.get_key_value(name) {
                    if used.insert(key.as_str()) {
                        work.push(body);
                    }
                }
            } else if let Some((&def_name, &def)) = const_defs.get_key_value(name) {
                if used.insert(def_name) {
                    work.push(def);
                }
            }
        });
    }

    for c in &checked.program.consts {
        if !used.contains(c.name.as_str()) {
            push(
                diags,
                Code::UnusedConst,
                c.pos,
                None,
                format!("constant `{}` is never used", c.name),
            );
        }
    }
    for f in &checked.program.formulas {
        if !used.contains(f.name.as_str()) {
            push(
                diags,
                Code::UnusedFormula,
                f.pos,
                None,
                format!("formula `{}` is never used", f.name),
            );
        }
    }
    for m in &checked.program.modules {
        for v in &m.vars {
            if !read_vars.contains(v.name.as_str()) {
                push(
                    diags,
                    Code::UnusedVariable,
                    v.pos,
                    Some(&m.name),
                    format!(
                        "variable `{}` is never read by any guard, update, label or \
                         reward; it still multiplies the state space",
                        v.name
                    ),
                );
            }
        }
    }
}

fn walk_names(e: &Expr, f: &mut impl FnMut(&str)) {
    match e {
        Expr::Int(_) | Expr::Double(_) | Expr::Bool(_) => {}
        Expr::Name(name, _) => f(name),
        Expr::Neg(inner) | Expr::Not(inner) => walk_names(inner, f),
        Expr::Bin(_, a, b) => {
            walk_names(a, f);
            walk_names(b, f);
        }
        Expr::Ite(c, a, b) => {
            walk_names(c, f);
            walk_names(a, f);
            walk_names(b, f);
        }
        Expr::Apply(_, args) => {
            for a in args {
                walk_names(a, f);
            }
        }
    }
}

/// L010 — labels whose body is provably constant over the box: the
/// proposition can never distinguish states, so every property built on
/// it is trivially true or false.
fn label_pass(cx: &Cx<'_>, diags: &mut Vec<Diagnostic>) {
    for l in &cx.checked.program.labels {
        let p = cx.profile(&l.body);
        // Always-false needs `can_false` in exact mode (an all-error body
        // is not a constant label); in interval mode `!can_true` alone is
        // the strongest certainty available.
        let verdict = if p.always_true() {
            Some(true)
        } else if !p.can_true && !p.can_err && (p.can_false || !p.exact) {
            Some(false)
        } else {
            None
        };
        if let Some(v) = verdict {
            push(
                diags,
                Code::TrivialLabel,
                l.pos,
                None,
                format!(
                    "label \"{}\" is constant ({v}) over the declared variable ranges; \
                     it cannot distinguish states",
                    l.name
                ),
            );
        }
    }
}

fn push(diags: &mut Vec<Diagnostic>, code: Code, pos: Pos, module: Option<&str>, message: String) {
    diags.push(Diagnostic {
        code,
        severity: code.severity(),
        pos,
        module: module.map(str::to_string),
        message,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use smg_lang::{check, parse};

    fn lint_src(src: &str) -> LintReport {
        lint(&check(parse(src).expect("parses")).expect("checks"))
    }

    fn codes(report: &LintReport) -> Vec<&'static str> {
        report
            .diagnostics()
            .iter()
            .map(|d| d.code.as_str())
            .collect()
    }

    #[test]
    fn clean_model_has_no_findings() {
        let report = lint_src(
            r#"
            dtmc
            const int N = 3;
            module clock
              t : [0..N] init 0;
              [] t < N -> (t'=t+1);
              [] t = N -> true;
            endmodule
            label "done" = t = N;
            "#,
        );
        assert!(report.is_clean(), "unexpected findings: {:?}", report);
    }

    #[test]
    fn dead_and_constant_guards_are_flagged() {
        let report = lint_src(
            r#"
            dtmc
            module m
              x : [0..4] init 0;
              [] x < 10 -> (x'=0);
              [] x > 4 -> (x'=0);
            endmodule
            "#,
        );
        // `x < 10` is constant-true (L002) and `x > 4` dead (L001); the
        // two also trigger nothing else.
        assert_eq!(codes(&report), vec!["L002", "L001"]);
    }

    #[test]
    fn out_of_range_assignment_uses_guard_refinement() {
        let report = lint_src(
            r#"
            dtmc
            module m
              x : [0..4] init 0;
              [] x < 4 -> (x'=x+1);
              [] x = 4 -> (x'=x+1);
            endmodule
            "#,
        );
        // Only the second command provably escapes: under `x = 4` the
        // update lands at 5.
        let found: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::OutOfRangeAssign)
            .collect();
        assert_eq!(found.len(), 1, "report: {report:?}");
        assert_eq!(found[0].pos.line, 6);
    }

    #[test]
    fn malformed_distributions_are_flagged() {
        let report = lint_src(
            r#"
            dtmc
            module m
              x : [0..1] init 0;
              [] x = 0 -> 0.25:(x'=1) + 0.25:(x'=0);
              [] x = 1 -> true;
            endmodule
            "#,
        );
        assert!(codes(&report).contains(&"L004"), "report: {report:?}");
    }

    #[test]
    fn certain_deadlock_found_at_init_and_by_probe() {
        // Deadlock at the initial state.
        let at_init = lint_src(
            r#"
            dtmc
            module m
              x : [0..3] init 0;
              [] x > 0 -> (x'=x-1);
            endmodule
            "#,
        );
        assert!(codes(&at_init).contains(&"L005"), "report: {at_init:?}");

        // The classic clocked-module bug: no command at the last tick —
        // only the bounded probe can see it.
        let at_end = lint_src(
            r#"
            dtmc
            module m
              t : [0..3] init 0;
              [] t < 3 -> (t'=t+1);
            endmodule
            "#,
        );
        assert!(codes(&at_end).contains(&"L005"), "report: {at_end:?}");
    }

    #[test]
    fn overlapping_dtmc_guards_are_flagged() {
        let report = lint_src(
            r#"
            dtmc
            module m
              x : [0..3] init 0;
              [] x < 2 -> (x'=x+1);
              [] x < 3 -> (x'=0);
              [] x = 3 -> true;
            endmodule
            "#,
        );
        assert!(codes(&report).contains(&"L006"), "report: {report:?}");
        // The same model declared `mdp` is fine: overlap is the point.
        let mdp = lint_src(
            r#"
            mdp
            module m
              x : [0..3] init 0;
              [] x < 2 -> (x'=x+1);
              [] x < 3 -> (x'=0);
              [] x = 3 -> true;
            endmodule
            "#,
        );
        assert!(!codes(&mdp).contains(&"L006"), "report: {mdp:?}");
    }

    #[test]
    fn unused_entities_are_flagged() {
        let report = lint_src(
            r#"
            dtmc
            const int DEAD = 7;
            const int N = 2;
            formula unused_f = N > 1;
            module m
              x : [0..N] init 0;
              y : [0..1] init 0;
              [] x < N -> (x'=x+1) & (y'=0);
              [] x = N -> true;
            endmodule
            "#,
        );
        let c = codes(&report);
        assert!(c.contains(&"L007"), "report: {report:?}");
        assert!(c.contains(&"L008"), "report: {report:?}");
        assert!(c.contains(&"L009"), "report: {report:?}");
        // N is used (range + guards) and x is read: neither is flagged.
        assert!(!report
            .diagnostics()
            .iter()
            .any(|d| d.message.contains("`N`") || d.message.contains("`x`")));
    }

    #[test]
    fn trivial_labels_are_flagged() {
        let report = lint_src(
            r#"
            dtmc
            module m
              x : [0..3] init 0;
              [] x < 3 -> (x'=x+1);
              [] x = 3 -> true;
            endmodule
            label "always" = x >= 0;
            label "fine" = x = 3;
            "#,
        );
        let trivial: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::TrivialLabel)
            .collect();
        assert_eq!(trivial.len(), 1, "report: {report:?}");
        assert!(trivial[0].message.contains("always"));
    }

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let report = lint_src(
            r#"
            dtmc
            module m
              x : [0..4] init 0;
              [] x > 4 -> (x'=0);
              [] true -> true;
            endmodule
            "#,
        );
        let a = report.render_json();
        let b = report.render_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"schema\": \"smg-lint/1\",\n"));
        assert!(a.contains("\"code\": \"L001\""));
        assert!(a.ends_with("]\n}\n"));
    }

    #[test]
    fn allow_stutter_suppresses_deadlock() {
        let checked = check(
            parse(
                r#"
                dtmc
                module m
                  t : [0..3] init 0;
                  [] t < 3 -> (t'=t+1);
                endmodule
                "#,
            )
            .expect("parses"),
        )
        .expect("checks");
        let strict = lint(&checked);
        assert!(codes(&strict).contains(&"L005"));
        let relaxed = lint_with(
            &checked,
            &LintOptions {
                allow_stutter: true,
                ..LintOptions::default()
            },
        );
        assert!(!codes(&relaxed).contains(&"L005"));
    }
}
