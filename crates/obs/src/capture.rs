//! A recorder that keeps every event, owned, for test assertions.

use crate::trace::ConvergenceRecord;
use crate::{Event, Recorder};
use std::sync::{Mutex, PoisonError};

/// An owned copy of one [`Event`], as stored by [`Capture`].
#[derive(Debug, Clone, PartialEq)]
pub enum CapturedEvent {
    /// A counter increment.
    CounterAdd {
        /// Instrument name.
        name: &'static str,
        /// Label pair, value owned.
        label: Option<(&'static str, String)>,
        /// Increment.
        value: u64,
    },
    /// A gauge write.
    GaugeSet {
        /// Instrument name.
        name: &'static str,
        /// Label pair, value owned.
        label: Option<(&'static str, String)>,
        /// New value.
        value: f64,
    },
    /// A histogram sample.
    Observe {
        /// Instrument name.
        name: &'static str,
        /// Label pair, value owned.
        label: Option<(&'static str, String)>,
        /// Sample.
        value: f64,
    },
    /// A solver convergence record.
    Trace(ConvergenceRecord),
}

fn own(label: Option<(&'static str, &str)>) -> Option<(&'static str, String)> {
    label.map(|(k, v)| (k, v.to_string()))
}

/// Stores every event it sees; tests assert against the accessors.
/// Cheap enough for tests, not meant for production paths.
#[derive(Debug, Default)]
pub struct Capture {
    events: Mutex<Vec<CapturedEvent>>,
}

impl Capture {
    /// An empty capture.
    pub fn new() -> Capture {
        Capture::default()
    }

    /// Every event seen so far, in arrival order.
    pub fn events(&self) -> Vec<CapturedEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Sum of increments to the counter `name`, across all labels.
    pub fn counter(&self, name: &str) -> u64 {
        self.events()
            .iter()
            .filter_map(|e| match e {
                CapturedEvent::CounterAdd { name: n, value, .. } if *n == name => Some(*value),
                _ => None,
            })
            .sum()
    }

    /// Sum of increments to the counter `name` whose label value equals
    /// `label_value`.
    pub fn counter_with(&self, name: &str, label_value: &str) -> u64 {
        self.events()
            .iter()
            .filter_map(|e| match e {
                CapturedEvent::CounterAdd {
                    name: n,
                    label: Some((_, v)),
                    value,
                } if *n == name && v == label_value => Some(*value),
                _ => None,
            })
            .sum()
    }

    /// Last value written to the gauge `name`, if any.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.events().iter().rev().find_map(|e| match e {
            CapturedEvent::GaugeSet { name: n, value, .. } if *n == name => Some(*value),
            _ => None,
        })
    }

    /// Every sample observed into the histogram `name`, in order.
    pub fn observations(&self, name: &str) -> Vec<f64> {
        self.events()
            .iter()
            .filter_map(|e| match e {
                CapturedEvent::Observe { name: n, value, .. } if *n == name => Some(*value),
                _ => None,
            })
            .collect()
    }

    /// Every convergence record seen, in order.
    pub fn traces(&self) -> Vec<ConvergenceRecord> {
        self.events()
            .iter()
            .filter_map(|e| match e {
                CapturedEvent::Trace(rec) => Some(rec.clone()),
                _ => None,
            })
            .collect()
    }

    /// Convergence records from the named driver only.
    pub fn traces_for(&self, driver: &str) -> Vec<ConvergenceRecord> {
        self.traces()
            .into_iter()
            .filter(|r| r.driver == driver)
            .collect()
    }
}

impl Recorder for Capture {
    fn record(&self, event: &Event<'_>) {
        let owned = match *event {
            Event::CounterAdd { name, label, value } => CapturedEvent::CounterAdd {
                name,
                label: own(label),
                value,
            },
            Event::GaugeSet { name, label, value } => CapturedEvent::GaugeSet {
                name,
                label: own(label),
                value,
            },
            Event::Observe { name, label, value } => CapturedEvent::Observe {
                name,
                label: own(label),
                value,
            },
            Event::Trace(rec) => CapturedEvent::Trace(rec.clone()),
        };
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(owned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_slice_the_event_stream() {
        let cap = Capture::new();
        cap.record(&Event::CounterAdd {
            name: "smg_a_total",
            label: Some(("kind", "x")),
            value: 2,
        });
        cap.record(&Event::CounterAdd {
            name: "smg_a_total",
            label: Some(("kind", "y")),
            value: 3,
        });
        cap.record(&Event::GaugeSet {
            name: "smg_g",
            label: None,
            value: 1.0,
        });
        cap.record(&Event::GaugeSet {
            name: "smg_g",
            label: None,
            value: 2.5,
        });
        cap.record(&Event::Observe {
            name: "smg_h_seconds",
            label: None,
            value: 0.25,
        });
        cap.record(&Event::Trace(&ConvergenceRecord {
            driver: "vi",
            sweep: 1,
            residual: Some(0.5),
            width: None,
            component: None,
        }));
        assert_eq!(cap.counter("smg_a_total"), 5);
        assert_eq!(cap.counter_with("smg_a_total", "y"), 3);
        assert_eq!(cap.counter("smg_missing_total"), 0);
        assert_eq!(cap.gauge("smg_g"), Some(2.5));
        assert_eq!(cap.gauge("smg_missing"), None);
        assert_eq!(cap.observations("smg_h_seconds"), vec![0.25]);
        assert_eq!(cap.traces().len(), 1);
        assert_eq!(cap.traces_for("vi")[0].sweep, 1);
        assert!(cap.traces_for("interval").is_empty());
        assert_eq!(cap.events().len(), 6);
    }
}
