//! The solver convergence-trace channel: per-iteration records streamed
//! from the unbounded, certified and topological drivers, and a recorder
//! that serializes them as JSON lines (`check --trace-convergence FILE`).

use crate::{Event, Recorder};
use std::io::Write;
use std::sync::{Mutex, PoisonError};

/// One per-iteration record from a value-iteration-family solver.
///
/// Field availability depends on the driver: residual-test drivers report
/// `residual` (the max update delta of the sweep), interval drivers report
/// `width` (the max `hi − lo` over active states), topological drivers
/// additionally carry the SCC `component` being solved (`None` for a
/// trivial-component backsubstitution batch and for global drivers).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceRecord {
    /// Which driver produced the record (`"gauss_seidel"`, `"power"`,
    /// `"interval"`, `"topo_interval"`, `"vi"`, `"certified_vi"`,
    /// `"topo_certified_vi"`, …).
    pub driver: &'static str,
    /// 1-based sweep index within the driver invocation (for per-component
    /// topological records, the sweeps spent on that component).
    pub sweep: u64,
    /// Max update delta of the sweep, where the driver tests a residual.
    pub residual: Option<f64>,
    /// Max `hi − lo` interval width over active states, where the driver
    /// iterates dual bounds.
    pub width: Option<f64>,
    /// SCC id (condensation component) the record belongs to, for
    /// topological drivers.
    pub component: Option<u32>,
}

impl ConvergenceRecord {
    /// The record as one JSON object (no trailing newline). Keys are
    /// stable: `driver`, `sweep`, `residual`, `width`, `component`;
    /// missing fields are `null`, non-finite numbers are JSON strings.
    pub fn to_json(&self) -> String {
        fn num(v: Option<f64>) -> String {
            match v {
                None => "null".to_string(),
                Some(x) if x.is_finite() => format!("{x}"),
                Some(x) => format!("\"{x}\""),
            }
        }
        format!(
            "{{\"driver\":\"{}\",\"sweep\":{},\"residual\":{},\"width\":{},\"component\":{}}}",
            self.driver,
            self.sweep,
            num(self.residual),
            num(self.width),
            self.component.map_or("null".to_string(), |c| c.to_string()),
        )
    }
}

/// A recorder that writes every [`ConvergenceRecord`] as one JSON line and
/// ignores all other events. Wrap a `BufWriter<File>` for
/// `--trace-convergence`; call [`JsonLines::flush`] (or drop the last
/// handle) when the run is over.
pub struct JsonLines<W: Write + Send> {
    sink: Mutex<W>,
}

impl<W: Write + Send> JsonLines<W> {
    /// A trace writer over `sink`.
    pub fn new(sink: W) -> JsonLines<W> {
        JsonLines {
            sink: Mutex::new(sink),
        }
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O error.
    pub fn flush(&self) -> std::io::Result<()> {
        self.sink
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush()
    }
}

impl<W: Write + Send> Recorder for JsonLines<W> {
    fn record(&self, event: &Event<'_>) {
        if let Event::Trace(rec) = event {
            let mut sink = self.sink.lock().unwrap_or_else(PoisonError::into_inner);
            // A full disk mid-trace must not panic the solver; the flush
            // at the end surfaces persistent errors.
            let _ = writeln!(sink, "{}", rec.to_json());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_keeps_only_traces_with_stable_keys() {
        let w = JsonLines::new(Vec::new());
        w.record(&Event::CounterAdd {
            name: "smg_x_total",
            label: None,
            value: 1,
        });
        w.record(&Event::Trace(&ConvergenceRecord {
            driver: "interval",
            sweep: 3,
            residual: None,
            width: Some(0.5),
            component: None,
        }));
        w.record(&Event::Trace(&ConvergenceRecord {
            driver: "topo_certified_vi",
            sweep: 1,
            residual: Some(f64::INFINITY),
            width: Some(1e-12),
            component: Some(7),
        }));
        let text = String::from_utf8(w.sink.into_inner().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"driver\":\"interval\",\"sweep\":3,\"residual\":null,\
             \"width\":0.5,\"component\":null}"
        );
        assert_eq!(
            lines[1],
            "{\"driver\":\"topo_certified_vi\",\"sweep\":1,\"residual\":\"inf\",\
             \"width\":0.000000000001,\"component\":7}"
        );
    }
}
