//! The aggregating recorder: counters, gauges and fixed-bucket histograms
//! with Prometheus text exposition and a JSON snapshot.

use crate::{Event, Recorder};
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// Latency buckets, applied to `*_seconds` histograms.
const TIME_BUCKETS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];
/// Unit-interval buckets, applied to `*_ratio` histograms.
const RATIO_BUCKETS: &[f64] = &[0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0];
/// Generic magnitude buckets, applied to everything else.
const VALUE_BUCKETS: &[f64] = &[1.0, 2.0, 5.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0];

/// Bucket table for a histogram, picked by name suffix.
fn buckets_for(name: &str) -> &'static [f64] {
    if name.ends_with("_seconds") {
        TIME_BUCKETS
    } else if name.ends_with("_ratio") {
        RATIO_BUCKETS
    } else {
        VALUE_BUCKETS
    }
}

/// `# HELP` text for the workspace's known instruments; anything the engine
/// grows later still renders, with a generic line.
fn help_for(name: &str) -> &'static str {
    match name {
        "smg_explore_states_total" => "States discovered during model exploration.",
        "smg_explore_transitions_total" => "Transitions discovered during model exploration.",
        "smg_explore_levels_total" => "Frontier levels expanded during model exploration.",
        "smg_explore_seconds" => "Wall time of model exploration runs.",
        "smg_solve_sweeps_total" => "Solver sweeps (full matrix passes) by driver.",
        "smg_vi_deflations_total" => {
            "End-component deflation events during certified MDP value iteration."
        }
        "smg_vi_inflations_total" => {
            "Reward-floor inflation events during certified Rmin value iteration."
        }
        "smg_mdp_mecs_total" => "Maximal end components found by MEC decomposition.",
        "smg_pool_dispatch_seconds" => "Worker-pool epoch dispatch-to-completion latency.",
        "smg_pool_epochs_total" => "Parallel epochs dispatched to the worker pool.",
        "smg_pool_tasks_total" => "Tasks dispatched to the worker pool.",
        "smg_pool_inline_runs_total" => "Pool runs executed inline (below the parallel threshold).",
        "smg_pool_lane_utilization_ratio" => "Fraction of pool lanes engaged per epoch.",
        "smg_pool_lanes" => "Configured worker-pool lane count.",
        "smg_pctl_property_seconds" => "Per-property check wall time by solver.",
        "smg_check_properties_total" => "Properties checked by `smg check` runs.",
        "smg_session_cache_hits_total" => "Check-session cache hits by cache kind.",
        "smg_session_cache_misses_total" => "Check-session cache misses by cache kind.",
        "smg_chaos_epochs_total" => "Simulated pool epochs replayed by the chaos harness.",
        "smg_chaos_stalls_total" => "Lane stalls injected by the chaos interleaver.",
        "smg_chaos_injected_panics_total" => "Task panics injected by the chaos interleaver.",
        _ => "Instrument recorded by smg-obs.",
    }
}

/// Instrument key: name plus the optional label pair, owned.
type Key = (&'static str, Option<(&'static str, String)>);

#[derive(Debug, Clone)]
struct Hist {
    buckets: &'static [f64],
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Hist {
    fn new(name: &str) -> Hist {
        let buckets = buckets_for(name);
        Hist {
            buckets,
            counts: vec![0; buckets.len()],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        for (i, &le) in self.buckets.iter().enumerate() {
            if value <= le {
                self.counts[i] += 1;
            }
        }
        self.sum += value;
        self.count += 1;
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    hists: BTreeMap<Key, Hist>,
}

/// An aggregating [`Recorder`]: folds counter/gauge/observe events into
/// sorted instrument maps and renders them as Prometheus text exposition
/// ([`Registry::render_text`]) or a JSON snapshot
/// ([`Registry::render_json`]). Convergence-trace events are not
/// aggregated here — route them to a [`crate::JsonLines`] via
/// [`crate::Fanout`] when both are wanted.
///
/// Rendering order is fully deterministic (sorted by name, then label), so
/// two runs of a deterministic workload produce byte-identical text modulo
/// timing-valued samples.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

/// One family's samples, flattened for rendering.
enum Family<'a> {
    Counter(Vec<(&'a Option<(&'static str, String)>, u64)>),
    Gauge(Vec<(&'a Option<(&'static str, String)>, f64)>),
    Hist(Vec<(&'a Option<(&'static str, String)>, &'a Hist)>),
}

/// Renders a float the way the exposition and JSON writers both want:
/// plain decimal for finite values, Prometheus spellings otherwise.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn label_str(label: &Option<(&'static str, String)>) -> String {
    match label {
        None => String::new(),
        Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
    }
}

/// Label set for a histogram sample, merging the instrument label with an
/// extra `le` pair.
fn label_le(label: &Option<(&'static str, String)>, le: &str) -> String {
    match label {
        None => format!("{{le=\"{le}\"}}"),
        Some((k, v)) => format!("{{{k}=\"{v}\",le=\"{le}\"}}"),
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.counters.is_empty() && inner.gauges.is_empty() && inner.hists.is_empty()
    }

    /// Current value of the counter `name` with the given label value
    /// (`None` for the unlabelled instrument); 0 if never incremented.
    pub fn counter_value(&self, name: &str, label_value: Option<&str>) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner
            .counters
            .iter()
            .find(|((n, l), _)| *n == name && l.as_ref().map(|(_, v)| v.as_str()) == label_value)
            .map_or(0, |(_, v)| *v)
    }

    fn families(inner: &Inner) -> BTreeMap<&'static str, Family<'_>> {
        let mut out: BTreeMap<&'static str, Family<'_>> = BTreeMap::new();
        for ((name, label), value) in &inner.counters {
            match out
                .entry(name)
                .or_insert_with(|| Family::Counter(Vec::new()))
            {
                Family::Counter(samples) => samples.push((label, *value)),
                _ => unreachable!("instrument {name} used as two metric types"),
            }
        }
        for ((name, label), value) in &inner.gauges {
            match out.entry(name).or_insert_with(|| Family::Gauge(Vec::new())) {
                Family::Gauge(samples) => samples.push((label, *value)),
                _ => unreachable!("instrument {name} used as two metric types"),
            }
        }
        for ((name, label), hist) in &inner.hists {
            match out.entry(name).or_insert_with(|| Family::Hist(Vec::new())) {
                Family::Hist(samples) => samples.push((label, hist)),
                _ => unreachable!("instrument {name} used as two metric types"),
            }
        }
        out
    }

    /// The registry as Prometheus text exposition: per family a `# HELP`
    /// and `# TYPE` line followed by its samples, families and samples in
    /// sorted order.
    pub fn render_text(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for (name, family) in Self::families(&inner) {
            out.push_str(&format!("# HELP {name} {}\n", help_for(name)));
            match family {
                Family::Counter(samples) => {
                    out.push_str(&format!("# TYPE {name} counter\n"));
                    for (label, value) in samples {
                        out.push_str(&format!("{name}{} {value}\n", label_str(label)));
                    }
                }
                Family::Gauge(samples) => {
                    out.push_str(&format!("# TYPE {name} gauge\n"));
                    for (label, value) in samples {
                        out.push_str(&format!("{name}{} {}\n", label_str(label), fmt_f64(value)));
                    }
                }
                Family::Hist(samples) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    for (label, hist) in samples {
                        for (i, &le) in hist.buckets.iter().enumerate() {
                            out.push_str(&format!(
                                "{name}_bucket{} {}\n",
                                label_le(label, &fmt_f64(le)),
                                hist.counts[i]
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            label_le(label, "+Inf"),
                            hist.count
                        ));
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            label_str(label),
                            fmt_f64(hist.sum)
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            label_str(label),
                            hist.count
                        ));
                    }
                }
            }
        }
        out
    }

    /// The registry as one JSON object:
    /// `{"counters": [...], "gauges": [...], "histograms": [...]}` with one
    /// `{"name", "label", "value"|…}` entry per instrument, sorted like the
    /// text exposition. Non-finite numbers render as JSON strings.
    pub fn render_json(&self) -> String {
        fn json_num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                format!("\"{}\"", fmt_f64(v))
            }
        }
        fn json_label(label: &Option<(&'static str, String)>) -> String {
            match label {
                None => "null".to_string(),
                Some((k, v)) => format!("{{\"{k}\":\"{v}\"}}"),
            }
        }
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let counters: Vec<String> = inner
            .counters
            .iter()
            .map(|((name, label), value)| {
                format!(
                    "{{\"name\":\"{name}\",\"label\":{},\"value\":{value}}}",
                    json_label(label)
                )
            })
            .collect();
        let gauges: Vec<String> = inner
            .gauges
            .iter()
            .map(|((name, label), value)| {
                format!(
                    "{{\"name\":\"{name}\",\"label\":{},\"value\":{}}}",
                    json_label(label),
                    json_num(*value)
                )
            })
            .collect();
        let hists: Vec<String> = inner
            .hists
            .iter()
            .map(|((name, label), hist)| {
                let buckets: Vec<String> = hist
                    .buckets
                    .iter()
                    .zip(&hist.counts)
                    .map(|(le, c)| format!("{{\"le\":{},\"count\":{c}}}", json_num(*le)))
                    .collect();
                format!(
                    "{{\"name\":\"{name}\",\"label\":{},\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                    json_label(label),
                    hist.count,
                    json_num(hist.sum),
                    buckets.join(",")
                )
            })
            .collect();
        format!(
            "{{\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}]}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

impl Recorder for Registry {
    fn record(&self, event: &Event<'_>) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match *event {
            Event::CounterAdd { name, label, value } => {
                *inner
                    .counters
                    .entry((name, label.map(|(k, v)| (k, v.to_string()))))
                    .or_insert(0) += value;
            }
            Event::GaugeSet { name, label, value } => {
                inner
                    .gauges
                    .insert((name, label.map(|(k, v)| (k, v.to_string()))), value);
            }
            Event::Observe { name, label, value } => {
                inner
                    .hists
                    .entry((name, label.map(|(k, v)| (k, v.to_string()))))
                    .or_insert_with(|| Hist::new(name))
                    .observe(value);
            }
            // Per-iteration traces are a streaming channel, not an
            // aggregate — see `JsonLines`.
            Event::Trace(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.record(&Event::CounterAdd {
            name: "smg_solve_sweeps_total",
            label: Some(("driver", "interval")),
            value: 12,
        });
        reg.record(&Event::CounterAdd {
            name: "smg_solve_sweeps_total",
            label: Some(("driver", "gauss_seidel")),
            value: 4,
        });
        reg.record(&Event::GaugeSet {
            name: "smg_pool_lanes",
            label: None,
            value: 4.0,
        });
        reg.record(&Event::Observe {
            name: "smg_pool_dispatch_seconds",
            label: None,
            value: 3.0e-5,
        });
        reg.record(&Event::Observe {
            name: "smg_pool_dispatch_seconds",
            label: None,
            value: 2.0,
        });
        reg
    }

    #[test]
    fn text_exposition_is_sorted_and_complete() {
        let text = sample_registry().render_text();
        assert!(text.contains("# TYPE smg_solve_sweeps_total counter"));
        assert!(text.contains("smg_solve_sweeps_total{driver=\"gauss_seidel\"} 4"));
        assert!(text.contains("smg_solve_sweeps_total{driver=\"interval\"} 12"));
        assert!(text.contains("# TYPE smg_pool_lanes gauge"));
        assert!(text.contains("smg_pool_lanes 4"));
        assert!(text.contains("# TYPE smg_pool_dispatch_seconds histogram"));
        assert!(text.contains("smg_pool_dispatch_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(text.contains("smg_pool_dispatch_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("smg_pool_dispatch_seconds_sum 2.00003"));
        assert!(text.contains("smg_pool_dispatch_seconds_count 2"));
        // Sorted label values within a family.
        let gs = text.find("driver=\"gauss_seidel\"").unwrap();
        let iv = text.find("driver=\"interval\"").unwrap();
        assert!(gs < iv);
        // Two renders are byte-identical.
        assert_eq!(text, sample_registry().render_text());
    }

    #[test]
    fn bucket_tables_follow_name_suffix() {
        assert_eq!(buckets_for("smg_pool_dispatch_seconds"), TIME_BUCKETS);
        assert_eq!(
            buckets_for("smg_pool_lane_utilization_ratio"),
            RATIO_BUCKETS
        );
        assert_eq!(buckets_for("smg_batch_size"), VALUE_BUCKETS);
    }

    #[test]
    fn json_snapshot_mirrors_the_text() {
        let json = sample_registry().render_json();
        assert!(json.starts_with("{\"counters\":["));
        assert!(json.contains(
            "{\"name\":\"smg_solve_sweeps_total\",\"label\":{\"driver\":\"interval\"},\"value\":12}"
        ));
        assert!(json.contains("\"name\":\"smg_pool_lanes\",\"label\":null,\"value\":4"));
        assert!(json.contains("\"name\":\"smg_pool_dispatch_seconds\""));
        assert!(json.contains("\"count\":2,\"sum\":2.00003"));
    }

    #[test]
    fn counter_value_reads_back() {
        let reg = sample_registry();
        assert_eq!(
            reg.counter_value("smg_solve_sweeps_total", Some("interval")),
            12
        );
        assert_eq!(reg.counter_value("smg_solve_sweeps_total", Some("nope")), 0);
        assert_eq!(reg.counter_value("smg_missing_total", None), 0);
        assert!(!reg.is_empty());
        assert!(Registry::new().is_empty());
    }

    #[test]
    fn traces_are_not_aggregated() {
        let reg = Registry::new();
        reg.record(&Event::Trace(&crate::ConvergenceRecord {
            driver: "vi",
            sweep: 1,
            residual: Some(0.1),
            width: None,
            component: None,
        }));
        assert!(reg.is_empty());
    }
}
