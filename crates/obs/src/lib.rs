//! # smg-obs — the workspace's instrumentation layer
//!
//! Every engine crate (exploration, the chain and MDP solvers, the worker
//! pool, checking sessions) reports what it did through this crate's
//! *recorder seam*: free functions ([`counter_add`], [`gauge_set`],
//! [`observe`], [`trace`]) that forward to whatever [`Recorder`] is
//! installed. With no recorder installed — the default — every entry point
//! is a single relaxed atomic load and an early return, so instrumentation
//! costs nothing measurable on the hot paths (the engine's bit-identical
//! seq/parallel pins and the committed kernel benchmarks all run in this
//! no-op state).
//!
//! Two installation scopes exist, mirroring the two consumers:
//!
//! * [`set_global`] installs a process-wide recorder — the shape a
//!   long-running daemon (`smg-serve`'s `/metrics`) wants. Events fired
//!   from any thread (including pool workers) reach it.
//! * [`with_recorder`] installs a **thread-local** recorder for the
//!   duration of a closure — the shape the CLI (one run, one snapshot) and
//!   tests (parallel-safe capture) want. Events fired on the wrapped
//!   thread prefer the innermost local recorder; other threads fall back
//!   to the global one. Every instrumentation site in the engine fires
//!   from the dispatching thread, so a local recorder sees a full run.
//!
//! The crate ships three recorders: [`Registry`] (atomic-flavoured
//! counters, gauges and fixed-bucket histograms with Prometheus text
//! exposition and a JSON snapshot), [`Capture`] (records raw events for
//! test assertions), and [`JsonLines`] (streams solver
//! [`ConvergenceRecord`]s as JSON lines — the `check --trace-convergence`
//! channel). [`Fanout`] composes them.
//!
//! # Example
//!
//! ```
//! use smg_obs as obs;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(obs::Registry::new());
//! let snapshot = obs::with_recorder(registry.clone(), || {
//!     // ... run a solver; the engine crates fire these internally ...
//!     obs::counter_add("smg_solve_sweeps_total", Some(("driver", "interval")), 12);
//!     obs::gauge_set("smg_pool_lanes", None, 4.0);
//!     obs::observe("smg_pool_dispatch_seconds", None, 3.2e-6);
//!     obs::trace(&obs::ConvergenceRecord {
//!         driver: "interval",
//!         sweep: 12,
//!         residual: None,
//!         width: Some(4.5e-10),
//!         component: None,
//!     });
//!     registry.render_text()
//! });
//! assert!(snapshot.contains("smg_solve_sweeps_total{driver=\"interval\"} 12"));
//! assert!(snapshot.contains("# TYPE smg_pool_dispatch_seconds histogram"));
//! // The exposition parses: 3 metric families, and outside the closure
//! // the seam is a no-op again.
//! let summary = obs::validate_exposition(&snapshot).unwrap();
//! assert!(summary.families >= 3);
//! assert!(!obs::enabled());
//! ```

#![forbid(unsafe_code)]

mod capture;
mod expo;
mod registry;
mod trace;

pub use capture::{Capture, CapturedEvent};
pub use expo::{validate_exposition, ExpositionSummary};
pub use registry::Registry;
pub use trace::{ConvergenceRecord, JsonLines};

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

/// One instrumentation event, borrowed from the call site. Recorders that
/// need to keep an event own-copy it ([`CapturedEvent`]); the aggregating
/// [`Registry`] folds it into its instruments instead.
#[derive(Debug, Clone, Copy)]
pub enum Event<'a> {
    /// A monotone counter increased by `value`.
    CounterAdd {
        /// Instrument name (`smg_*`, counters end in `_total`).
        name: &'static str,
        /// Optional single `key="value"` label pair.
        label: Option<(&'static str, &'a str)>,
        /// Increment (≥ 0 by construction).
        value: u64,
    },
    /// A gauge was set to `value` (last write wins).
    GaugeSet {
        /// Instrument name.
        name: &'static str,
        /// Optional single label pair.
        label: Option<(&'static str, &'a str)>,
        /// New gauge value.
        value: f64,
    },
    /// A histogram observed one sample.
    Observe {
        /// Instrument name (`_seconds` names get latency buckets, `_ratio`
        /// names get unit-interval buckets — see [`Registry`]).
        name: &'static str,
        /// Optional single label pair.
        label: Option<(&'static str, &'a str)>,
        /// Observed sample.
        value: f64,
    },
    /// A solver emitted one per-iteration convergence record.
    Trace(&'a ConvergenceRecord),
}

/// The seam every instrumented crate talks through. Implementations must
/// tolerate concurrent calls from many threads (the worker pool records
/// from its dispatching thread, but a global recorder can also see worker
/// threads).
pub trait Recorder: Send + Sync {
    /// Handles one event. Must not call back into the recording seam
    /// (events produced while recording would recurse).
    fn record(&self, event: &Event<'_>);
}

/// Count of currently installed recorders (the global one counts 1, each
/// active [`with_recorder`] scope counts 1). Zero means every seam entry
/// point returns after one relaxed load — the "instrumentation is free
/// when off" contract.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// The process-wide recorder, if any.
static GLOBAL: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

thread_local! {
    /// Innermost-wins stack of thread-local recorders.
    static LOCAL: RefCell<Vec<Arc<dyn Recorder>>> = const { RefCell::new(Vec::new()) };
}

/// Whether any recorder is installed (globally or on *some* thread). The
/// instrumented crates use this to skip building event payloads; it is a
/// single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Installs (or replaces) the process-wide recorder. Thread-local
/// recorders installed by [`with_recorder`] take precedence on their
/// threads.
pub fn set_global(recorder: Arc<dyn Recorder>) {
    let mut slot = GLOBAL.write().unwrap_or_else(PoisonError::into_inner);
    if slot.replace(recorder).is_none() {
        ACTIVE.fetch_add(1, Ordering::Relaxed);
    }
}

/// Removes the process-wide recorder, returning it if one was installed.
pub fn clear_global() -> Option<Arc<dyn Recorder>> {
    let mut slot = GLOBAL.write().unwrap_or_else(PoisonError::into_inner);
    let prev = slot.take();
    if prev.is_some() {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
    prev
}

/// Runs `f` with `recorder` installed as this thread's recorder (innermost
/// wins; restored on exit, panic included). Events fired by `f` on this
/// thread go to `recorder` instead of the global one; events fired by
/// other threads (e.g. pool workers) still go to the global recorder.
/// Every solver/pool instrumentation site fires from the dispatching
/// thread, so wrapping a check run captures it completely — and two tests
/// wrapping different recorders on different threads never see each
/// other's events.
pub fn with_recorder<R>(recorder: Arc<dyn Recorder>, f: impl FnOnce() -> R) -> R {
    struct Scope;
    impl Drop for Scope {
        fn drop(&mut self) {
            LOCAL.with(|l| l.borrow_mut().pop());
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
    }
    LOCAL.with(|l| l.borrow_mut().push(recorder));
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    let _scope = Scope;
    f()
}

/// Routes one event: innermost thread-local recorder if present, else the
/// global recorder, else dropped.
fn dispatch(event: &Event<'_>) {
    let delivered = LOCAL.with(|l| {
        // A recorder must not re-enter the seam, but user recorders are
        // arbitrary code: don't hold the borrow across the call.
        let local = l.borrow().last().cloned();
        match local {
            Some(r) => {
                r.record(event);
                true
            }
            None => false,
        }
    });
    if !delivered {
        let global = GLOBAL
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        if let Some(r) = global {
            r.record(event);
        }
    }
}

/// Adds `value` to the counter `name` (with an optional label pair).
/// No-op unless a recorder is installed.
#[inline]
pub fn counter_add(name: &'static str, label: Option<(&'static str, &str)>, value: u64) {
    if !enabled() {
        return;
    }
    dispatch(&Event::CounterAdd { name, label, value });
}

/// Sets the gauge `name` to `value`. No-op unless a recorder is installed.
#[inline]
pub fn gauge_set(name: &'static str, label: Option<(&'static str, &str)>, value: f64) {
    if !enabled() {
        return;
    }
    dispatch(&Event::GaugeSet { name, label, value });
}

/// Observes `value` into the histogram `name`. No-op unless a recorder is
/// installed.
#[inline]
pub fn observe(name: &'static str, label: Option<(&'static str, &str)>, value: f64) {
    if !enabled() {
        return;
    }
    dispatch(&Event::Observe { name, label, value });
}

/// Emits one solver convergence record. No-op unless a recorder is
/// installed; callers that would allocate to build the record should guard
/// with [`enabled`] first.
#[inline]
pub fn trace(record: &ConvergenceRecord) {
    if !enabled() {
        return;
    }
    dispatch(&Event::Trace(record));
}

/// A monotonic span timer: started with [`Span::start`], it observes the
/// elapsed wall time (seconds) into the histogram `name` when dropped.
/// When no recorder is installed at start time the span holds no clock
/// reading and drops for free.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    label: Option<(&'static str, &'static str)>,
    start: Option<Instant>,
}

impl Span {
    /// Starts a span feeding the histogram `name`.
    #[must_use]
    pub fn start(name: &'static str) -> Span {
        Span {
            name,
            label: None,
            start: enabled().then(Instant::now),
        }
    }

    /// Starts a labelled span.
    #[must_use]
    pub fn start_with(name: &'static str, key: &'static str, value: &'static str) -> Span {
        Span {
            name,
            label: Some((key, value)),
            start: enabled().then(Instant::now),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            observe(self.name, self.label, start.elapsed().as_secs_f64());
        }
    }
}

/// Broadcasts every event to a set of recorders, in order — e.g. a
/// [`Registry`] snapshot plus a [`JsonLines`] trace file in one CLI run.
pub struct Fanout(Vec<Arc<dyn Recorder>>);

impl Fanout {
    /// A fanout over `recorders`.
    pub fn new(recorders: Vec<Arc<dyn Recorder>>) -> Fanout {
        Fanout(recorders)
    }
}

impl Recorder for Fanout {
    fn record(&self, event: &Event<'_>) {
        for r in &self.0 {
            r.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seam_is_off_by_default_and_scoped_install_restores() {
        assert!(!enabled());
        // Events with no recorder vanish (and must not panic).
        counter_add("smg_test_total", None, 1);
        let cap = Arc::new(Capture::new());
        let inner = Arc::new(Capture::new());
        with_recorder(cap.clone(), || {
            assert!(enabled());
            counter_add("smg_test_total", None, 2);
            // Innermost wins.
            with_recorder(inner.clone(), || {
                counter_add("smg_test_total", None, 40);
            });
            counter_add("smg_test_total", Some(("kind", "x")), 3);
        });
        assert_eq!(cap.counter("smg_test_total"), 5);
        assert_eq!(inner.counter("smg_test_total"), 40);
        assert_eq!(cap.counter_with("smg_test_total", "x"), 3);
    }

    #[test]
    fn scoped_recorder_survives_panics() {
        let cap = Arc::new(Capture::new());
        let r = std::panic::catch_unwind(|| {
            with_recorder(cap.clone(), || panic!("boom"));
        });
        assert!(r.is_err());
        assert!(!enabled());
        counter_add("smg_after_total", None, 1);
        assert_eq!(cap.counter("smg_after_total"), 0);
    }

    #[test]
    fn global_recorder_receives_other_threads() {
        // Serialized with any other global-using test by the install
        // itself being process-wide; this is the only one in this crate.
        let cap = Arc::new(Capture::new());
        set_global(cap.clone());
        std::thread::spawn(|| counter_add("smg_thread_total", None, 7))
            .join()
            .unwrap();
        let got = clear_global();
        assert!(got.is_some());
        assert_eq!(cap.counter("smg_thread_total"), 7);
        assert!(clear_global().is_none());
    }

    #[test]
    fn span_observes_elapsed_seconds() {
        let cap = Arc::new(Capture::new());
        with_recorder(cap.clone(), || {
            let span = Span::start_with("smg_test_seconds", "kind", "a");
            std::hint::black_box(17 * 3);
            drop(span);
        });
        let obs = cap.observations("smg_test_seconds");
        assert_eq!(obs.len(), 1);
        assert!(obs[0] >= 0.0);
        // Started outside any recorder scope: drops silently even if a
        // recorder appears afterwards.
        let late = Span::start("smg_test_seconds");
        with_recorder(cap.clone(), move || drop(late));
        assert_eq!(cap.observations("smg_test_seconds").len(), 1);
    }

    #[test]
    fn fanout_broadcasts() {
        let a = Arc::new(Capture::new());
        let b = Arc::new(Capture::new());
        let fan = Arc::new(Fanout::new(vec![a.clone(), b.clone()]));
        with_recorder(fan, || {
            gauge_set("smg_test_lanes", None, 4.0);
        });
        assert_eq!(a.gauge("smg_test_lanes"), Some(4.0));
        assert_eq!(b.gauge("smg_test_lanes"), Some(4.0));
    }
}
